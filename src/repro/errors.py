"""Exception hierarchy for the LASER reproduction."""

from typing import Optional

__all__ = [
    "ReproError",
    "AssemblyError",
    "SimulationError",
    "MemoryError_",
    "DeadlockError",
    "AllocationError",
    "HtmAbort",
    "RepairError",
    "DetectorStall",
    "FaultInjectionError",
    "WorkloadError",
    "SheriffIncompatible",
    "SheriffCrash",
]


class ReproError(Exception):
    """Base class for every error raised by this package."""


class AssemblyError(ReproError):
    """A program could not be assembled (unknown label, bad operand...)."""


class SimulationError(ReproError):
    """The machine entered an invalid state (bad address, deadlock...)."""


class MemoryError_(SimulationError):
    """An access touched an address outside any mapped region."""


class DeadlockError(SimulationError):
    """No core can make progress (e.g. all spinning on a lost lock)."""


class AllocationError(SimulationError):
    """The simulated allocator ran out of heap or got bad arguments."""


class HtmAbort(ReproError):
    """A hardware transaction aborted (capacity, conflict, or injected).

    Raised internally by the HTM model and handled by the SSB flush
    logic.  Mirrors the RTM abort status word: a structured ``reason``
    plus the context needed to decide between retry and fallback.

    ``reason``
        Short classification string; starts with ``"capacity"`` or
        ``"conflict"`` (free text after the classification is allowed
        for diagnostics, e.g. ``"capacity: 9 lines > 8 ways"``).
    ``abort_pc``
        PC of the instruction whose flush aborted, when known.
    ``conflict_line``
        Cache line index implicated in the abort, when known.
    ``abort_count``
        The HTM's running abort counter at the time of this abort
        (used by the SSB's consecutive-abort fallback policy).
    """

    def __init__(self, reason: str, abort_pc: Optional[int] = None,
                 conflict_line: Optional[int] = None, abort_count: int = 0):
        super().__init__(reason)
        self.reason = reason
        self.abort_pc = abort_pc
        self.conflict_line = conflict_line
        self.abort_count = abort_count

    @property
    def is_capacity(self) -> bool:
        return self.reason.startswith("capacity")

    @property
    def is_conflict(self) -> bool:
        return self.reason.startswith("conflict")


class RepairError(ReproError):
    """LASERREPAIR could not analyze or instrument the target program."""


class DetectorStall(ReproError):
    """The userspace detector missed one or more poll intervals.

    Raised at the detector's poll site (by fault injection, or by any
    future real stall condition) and handled by ``Laser.run_built``,
    which skips the poll, lets driver buffers back up, and resyncs on
    the next healthy poll.  Never escapes the run loop.
    """


class FaultInjectionError(ReproError):
    """A fault plan is malformed (unknown site, bad probability...)."""


class WorkloadError(ReproError):
    """A workload was misconfigured or references unknown resources."""


class SheriffIncompatible(ReproError):
    """The workload uses features Sheriff does not support (Section 7.3)."""


class SheriffCrash(ReproError):
    """The workload encounters a runtime error under Sheriff (Table 1)."""
