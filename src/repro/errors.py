"""Exception hierarchy for the LASER reproduction."""


class ReproError(Exception):
    """Base class for every error raised by this package."""


class AssemblyError(ReproError):
    """A program could not be assembled (unknown label, bad operand...)."""


class SimulationError(ReproError):
    """The machine entered an invalid state (bad address, deadlock...)."""


class MemoryError_(SimulationError):
    """An access touched an address outside any mapped region."""


class DeadlockError(SimulationError):
    """No core can make progress (e.g. all spinning on a lost lock)."""


class AllocationError(SimulationError):
    """The simulated allocator ran out of heap or got bad arguments."""


class HtmAbort(ReproError):
    """A hardware transaction aborted (capacity or conflict).

    Raised internally by the HTM model and handled by the SSB flush logic;
    carries the abort reason for diagnostics.
    """

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class RepairError(ReproError):
    """LASERREPAIR could not analyze or instrument the target program."""


class WorkloadError(ReproError):
    """A workload was misconfigured or references unknown resources."""


class SheriffIncompatible(ReproError):
    """The workload uses features Sheriff does not support (Section 7.3)."""


class SheriffCrash(ReproError):
    """The workload encounters a runtime error under Sheriff (Table 1)."""
