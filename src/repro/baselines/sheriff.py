"""Sheriff baseline: the threads-as-processes execution model.

Sheriff [18] "places each thread into its own private address space,
sending updates between threads on synchronization operations."  We
implement that execution model directly on the simulator:

* every thread writes into a **private overlay** instead of shared
  memory (so false sharing physically cannot occur — which is why
  Sheriff-Protect fixes histogram' and linear_regression "even though
  Sheriff-Detect does not detect anything");
* synchronization operations (atomics, fences, thread exit) **commit**
  the overlay: the diff-and-merge cost of Sheriff's twin-page machinery
  is charged per dirtied page, which is what makes
  synchronization-intensive workloads (water_nsquared) collapse;
* remote writes become visible only at the writer's next commit.  A
  thread spinning on a plain load of a flag that its producer never
  synchronizes will spin forever — workloads relying on racy flag
  hand-offs livelock, which surfaces as the runtime errors ("x") of
  Table 1;
* **Sheriff-Detect** additionally write-protects pages each sampling
  epoch, so the first store to a page per epoch takes a protection
  fault.

Compatibility is enforced from each workload's metadata (Section 7.3:
spin-lock/OpenMP users are incompatible; many others crash), and
Sheriff-Detect's *detection* output — allocation sites, not source
lines — is reproduced from the same metadata, since it depends on
Sheriff-internal thresholds the paper does not specify.  Timing is
fully emergent from the execution model above.

Sheriff does not preserve TSO (Section 5: its twin-page mechanism
cannot detect silent stores, and multi-byte atomic stores can appear
byte-granular); we model the performance consequences, not the
memory-model violations.
"""

import enum
from typing import Dict, List, Set

from repro.errors import SheriffCrash, SheriffIncompatible, SimulationError
from repro.sim.machine import Machine
from repro.sim.memory import PAGE_SIZE
from repro.workloads.base import SheriffSupport

__all__ = ["SheriffMode", "SheriffMachine", "SheriffResult", "run_sheriff"]

#: Fixed cost of one commit (signal handling + twin-page bookkeeping).
SYNC_BASE_COST = 800

#: Per-dirty-page diff-and-merge cost at a commit.
PAGE_MERGE_COST = 600

#: Sheriff-Detect: cost of the write-protection fault taken on the first
#: store to a page in each sampling epoch.
WRITE_FAULT_COST = 1_500

#: Sheriff-Detect: sampling epoch length in cycles.
DETECT_EPOCH_CYCLES = 25_000


class SheriffMode(enum.Enum):
    DETECT = "sheriff-detect"
    PROTECT = "sheriff-protect"


class SheriffMachine(Machine):
    """A machine running under Sheriff's execution model."""

    def __init__(self, program, mode: SheriffMode, **kwargs):
        super().__init__(program, **kwargs)
        self.mode = mode
        self._overlays: List[Dict[int, int]] = [
            {} for _ in range(len(self.cores))
        ]
        self._dirty_pages: List[Set[int]] = [set() for _ in self.cores]
        self._faulted_pages: List[Set[int]] = [set() for _ in self.cores]
        self._next_epoch = DETECT_EPOCH_CYCLES
        self.sync_commits = 0
        self.pages_merged = 0
        self.write_faults = 0

    # ------------------------------------------------------------------
    # Memory routing: private overlays, no coherence
    # ------------------------------------------------------------------

    def mem_read(self, core, inst, addr: int, size: int):
        if inst.is_fence:
            # The sync op itself operates on shared memory (the overlay
            # was committed by fence_extra just before).
            value = self.memory.read(addr, size)
            return value, self.latency.l1_hit
        overlay = self._overlays[core.core_id]
        value = self.memory.read(addr, size)
        for i in range(size):
            byte = overlay.get(addr + i)
            if byte is not None:
                value = (value & ~(0xFF << (8 * i))) | (byte << (8 * i))
        return value, self.latency.l1_hit

    def mem_write(self, core, inst, addr: int, value: int, size: int) -> int:
        if inst.is_fence:
            self.memory.write(addr, value, size)
            return self.latency.l1_hit
        latency = self.latency.l1_hit
        cid = core.core_id
        if self.mode is SheriffMode.DETECT:
            if self.cycle >= self._next_epoch:
                # New sampling epoch: pages are re-protected everywhere.
                for faulted in self._faulted_pages:
                    faulted.clear()
                self._next_epoch = self.cycle + DETECT_EPOCH_CYCLES
            page = addr // PAGE_SIZE
            if page not in self._faulted_pages[cid]:
                self._faulted_pages[cid].add(page)
                self.write_faults += 1
                latency += WRITE_FAULT_COST
        overlay = self._overlays[cid]
        for i in range(size):
            overlay[addr + i] = (value >> (8 * i)) & 0xFF
            self._dirty_pages[cid].add((addr + i) // PAGE_SIZE)
        return latency

    # ------------------------------------------------------------------
    # Synchronization: diff and merge
    # ------------------------------------------------------------------

    def fence_extra(self, core) -> int:
        cid = core.core_id
        overlay = self._overlays[cid]
        if not overlay and not self._dirty_pages[cid]:
            return SYNC_BASE_COST
        for addr, byte in overlay.items():
            self.memory.write(addr, byte, 1)
        pages = len(self._dirty_pages[cid])
        overlay.clear()
        self._dirty_pages[cid].clear()
        self.sync_commits += 1
        self.pages_merged += pages
        return SYNC_BASE_COST + PAGE_MERGE_COST * pages


class SheriffResult:
    """Outcome of one workload run under a Sheriff scheme."""

    def __init__(self, mode: SheriffMode, cycles: int,
                 machine: SheriffMachine, reduced_input: bool,
                 reported_sites: List[str]):
        self.mode = mode
        self.cycles = cycles
        self.machine = machine
        self.reduced_input = reduced_input
        #: Sheriff-Detect reports *allocation sites* ("it only identifies
        #: the allocation site of the falsely-shared object"), never
        #: source lines.
        self.reported_sites = reported_sites

    def __repr__(self):
        return "<SheriffResult %s cycles=%d sites=%d>" % (
            self.mode.value, self.cycles, len(self.reported_sites),
        )


def run_sheriff(workload, mode: SheriffMode, seed: int = 0,
                scale: float = 1.0, allow_reduced_input: bool = True,
                max_cycles: int = 8_000_000) -> SheriffResult:
    """Run a workload under Sheriff-Detect or Sheriff-Protect.

    Raises :class:`SheriffIncompatible` / :class:`SheriffCrash` per the
    workload's documented compatibility (and on emergent livelock of the
    private-address-space visibility model).
    """
    if workload.sheriff_support is SheriffSupport.INCOMPATIBLE:
        raise SheriffIncompatible(
            "%s uses constructs Sheriff does not support" % workload.name
        )
    reduced = False
    if workload.sheriff_support is SheriffSupport.CRASH:
        if not (allow_reduced_input and workload.sheriff_reduced_input_ok):
            raise SheriffCrash("%s: runtime error under Sheriff" % workload.name)
        reduced = True
        scale = scale * 0.5

    built = workload.build(heap_offset=0, seed=seed, scale=scale)
    machine = SheriffMachine(built.program, mode, seed=seed,
                             allocator=built.allocator)
    built.apply_init(machine)
    try:
        result = machine.run(max_cycles=max_cycles)
    except SimulationError:
        raise SheriffCrash(
            "%s: livelock under Sheriff's visibility model" % workload.name
        )
    if not result.finished:
        raise SheriffCrash(
            "%s: livelock under Sheriff's visibility model" % workload.name
        )

    reported_sites: List[str] = []
    if mode is SheriffMode.DETECT:
        for bug in workload.bugs:
            if bug.sheriff_detects:
                reported_sites.append(_allocation_site_for(workload, bug))
        reported_sites.extend(getattr(workload, "sheriff_fp_sites", []))
    return SheriffResult(mode, result.cycles, machine, reduced, reported_sites)


def _allocation_site_for(workload, bug) -> str:
    """Sheriff's report granularity: the object's allocation site."""
    return "malloc-wrapper: %s" % bug.primary_location.file
