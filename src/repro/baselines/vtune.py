"""A VTune Amplifier XE-style profiler baseline (Section 7.1/7.2).

Key modelling choices, all taken from the paper's description:

* "VTune ... configures the PEBS mechanism to raise an interrupt after
  each HITM event for improved accuracy (which has significant
  performance ramifications)": the PMU runs with SAV=1 and every HITM
  costs a per-event interrupt charged to the application.
* VTune is a general profiler, not a contention detector: alongside the
  HITM collector it samples ordinary memory events with per-sample PMIs,
  so memory-dense code slows down even with zero contention (the
  string_match 7x case).
* "VTune simply reports source code locations where HITM events arise":
  no stack-address filtering, no cache-line model, no TS/FS
  classification.  Its report is the line aggregation above a rate
  threshold, plus the memory-hot lines its general-exploration analysis
  flags — the source of its extra false positives across non-contended
  benchmarks.

The default rate threshold follows the paper's procedure, not its
number: "for fairness we apply a similar balanced rate threshold ... to
exclude as many VTune false positives as possible without introducing
false negatives."  Because VTune's own interrupt overhead inflates each
benchmark's runtime (deflating its measured per-line rates), the
balanced value on our simulated clock is 480 events/sec — and, exactly
as in the paper, no threshold can save the dedup queue bug, whose
measured rate sits below every other bug's.
"""

from typing import List

from repro.core.detect.linemap import LineAggregator
from repro.isa.program import SourceLocation
from repro.sim.machine import Machine

__all__ = ["VTuneProfiler", "VTuneResult"]

#: Cost charged to the application for each HITM's PMI.  Expressed
#: against the compressed simulated clock (CYCLES_PER_SECOND is 1e6, so
#: HITM rates here are ~1000x denser per cycle than on the paper's
#: 3.4 GHz part; the interrupt cost is scaled to match the paper's
#: observed VTune slowdowns rather than its absolute PMI latency).
HITM_INTERRUPT_COST = 100

#: PMI cost for one general-exploration memory sample (includes the
#: sampling interrupt and call-stack collection).
MEM_SAMPLE_COST = 6_000

#: Sample-after value for the general memory-event collector.
MEM_SAMPLE_AFTER = 499

#: Rate of sampled memory events (events/sec) above which a line is
#: flagged as memory-hot in the report.
MEM_HOT_THRESHOLD = 40_000.0


class VTuneResult:
    """Outcome of profiling one workload with the VTune baseline."""

    def __init__(self, cycles: int, hitm_lines, mem_hot_lines, machine,
                 total_hitms: int):
        self.cycles = cycles
        #: [(location, rate)] for lines above the HITM threshold.
        self.hitm_lines = hitm_lines
        #: [(location, rate)] for memory-hot lines (general exploration).
        self.mem_hot_lines = mem_hot_lines
        self.machine = machine
        self.total_hitms = total_hitms

    def reported_locations(self) -> List[SourceLocation]:
        """Everything VTune shows the user, HITM lines first."""
        seen = []
        for loc, _rate in self.hitm_lines + self.mem_hot_lines:
            if loc not in seen:
                seen.append(loc)
        return seen

    def __repr__(self):
        return "<VTuneResult cycles=%d lines=%d>" % (
            self.cycles, len(self.reported_locations()),
        )


class VTuneProfiler:
    """Interrupt-per-event HITM profiling plus general memory sampling."""

    def __init__(self, rate_threshold: float = 480.0, seed: int = 0,
                 interrupt_cost: int = HITM_INTERRUPT_COST,
                 mem_sample_cost: int = MEM_SAMPLE_COST,
                 mem_sample_after: int = MEM_SAMPLE_AFTER):
        self.rate_threshold = rate_threshold
        self.seed = seed
        self.interrupt_cost = interrupt_cost
        self.mem_sample_cost = mem_sample_cost
        self.mem_sample_after = mem_sample_after

    def run_workload(self, workload, scale: float = 1.0,
                     max_cycles: int = 200_000_000) -> VTuneResult:
        built = workload.build(heap_offset=0, seed=self.seed, scale=scale)
        return self.run_built(built, max_cycles=max_cycles)

    def run_built(self, built, max_cycles: int = 200_000_000) -> VTuneResult:
        import random

        from repro.isa.program import PC_STRIDE
        from repro.rng import derive_seed

        program = built.program
        machine = Machine(program, seed=self.seed, allocator=built.allocator)
        built.apply_init(machine)

        hitm_aggregator = LineAggregator(program, sample_after_value=1)
        mem_aggregator = LineAggregator(
            program, sample_after_value=self.mem_sample_after
        )
        state = {"hitms": 0, "mem_ops": [0] * len(machine.cores)}
        skid_rng = random.Random(derive_seed(self.seed, "vtune-skid"))

        def on_hitm(core, inst, addr, is_write, cycle):
            # Interrupt-driven PC capture: the PMI lands several
            # instructions after the triggering access (the pre-PEBS
            # skid the paper describes in Section 3), smearing a hot
            # site's samples across its neighbourhood — the mechanism
            # behind VTune's extra false positives on contention-heavy
            # benchmarks.
            state["hitms"] += 1
            recorded_pc = inst.pc
            if skid_rng.random() > 0.35:
                recorded_pc += PC_STRIDE * skid_rng.randint(1, 6)
            hitm_aggregator.add_record_pc(recorded_pc)
            return self.interrupt_cost

        def on_memory_op(core, inst, cycle):
            counts = state["mem_ops"]
            counts[core] += 1
            if counts[core] % self.mem_sample_after:
                return 0
            mem_aggregator.add_record_pc(inst.pc)
            return self.mem_sample_cost

        machine.on_hitm = on_hitm
        machine.on_memory_op = on_memory_op
        result = machine.run(max_cycles=max_cycles)

        hitm_lines = [
            (stats.location,
             stats.hitm_rate(result.cycles, 1))
            for stats in hitm_aggregator.lines_above_threshold(
                result.cycles, self.rate_threshold
            )
        ]
        mem_hot_lines = [
            (stats.location,
             stats.hitm_rate(result.cycles, self.mem_sample_after))
            for stats in mem_aggregator.lines_above_threshold(
                result.cycles, MEM_HOT_THRESHOLD
            )
        ]
        return VTuneResult(result.cycles, hitm_lines, mem_hot_lines,
                           machine, state["hitms"])
