"""Comparator baselines: VTune-like profiling and the Sheriff schemes."""

from repro.baselines.vtune import VTuneProfiler, VTuneResult
from repro.baselines.sheriff import (
    SheriffMachine,
    SheriffMode,
    SheriffResult,
    run_sheriff,
)

__all__ = [
    "VTuneProfiler",
    "VTuneResult",
    "SheriffMachine",
    "SheriffMode",
    "SheriffResult",
    "run_sheriff",
]
