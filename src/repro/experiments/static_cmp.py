"""Static predictor vs. dynamic detector: cache-line recall/precision.

The static sharing predictor (``repro.static.predict``) claims to flag
every cache line the dynamic detector can observe contention on — it
over-approximates (no notion of rate), so the interesting scores are:

* **recall** — of the cache lines the *dynamic* run classified as
  false sharing (byte-accurate line model, ``CacheLineModel``), what
  fraction did the predictor flag?  The acceptance bar is 1.0 on the
  clean false-sharing workloads: a static miss would mean the abstract
  interpreter lost a footprint it needed.
* **precision** — of the lines the predictor flagged, what fraction
  did the dynamic run confirm?  Expected to be low (cold sharing and
  one-time handoffs are flagged too); reported to quantify the
  asymmetry, not as a bar.

Both sides see the *same* built program: the workload is built once
with the detector's heap shift and the dynamic run monitors that exact
build (repair disabled so the access stream is not rewritten mid-run).
"""

from typing import List, Optional, Set

from repro.core.config import LaserConfig
from repro.core.detect.linemodel import SharingType
from repro.core.laser import Laser
from repro.experiments.tables import render_table
from repro.static.predict import StaticSharingReport, predict_program
from repro.workloads.base import Workload
from repro.workloads.registry import all_workloads

__all__ = ["StaticCmpRow", "StaticCmpResult", "run_static_cmp"]


class StaticCmpRow:
    """One workload's static-vs-dynamic comparison."""

    def __init__(self, name: str, dynamic_fs: Set[int], dynamic_ts: Set[int],
                 static_flagged: Set[int], static_report: StaticSharingReport):
        self.name = name
        #: Cache lines the dynamic run observed FS (resp. TS) events on.
        self.dynamic_fs = dynamic_fs
        self.dynamic_ts = dynamic_ts
        #: Every cache line the predictor flagged (any sharing class).
        self.static_flagged = static_flagged
        self.static_report = static_report

    @property
    def dynamic_contended(self) -> Set[int]:
        return self.dynamic_fs | self.dynamic_ts

    @property
    def missed_fs_lines(self) -> Set[int]:
        """Dynamically-confirmed FS lines the predictor did not flag."""
        return self.dynamic_fs - self.static_flagged

    @property
    def fs_recall(self) -> Optional[float]:
        """Fraction of dynamic FS cache lines the predictor flagged."""
        if not self.dynamic_fs:
            return None
        hit = len(self.dynamic_fs & self.static_flagged)
        return hit / len(self.dynamic_fs)

    @property
    def recall(self) -> Optional[float]:
        """Fraction of all dynamically contended lines flagged."""
        contended = self.dynamic_contended
        if not contended:
            return None
        return len(contended & self.static_flagged) / len(contended)

    @property
    def precision(self) -> Optional[float]:
        """Fraction of flagged lines the dynamic run confirmed."""
        if not self.static_flagged:
            return None
        hit = len(self.static_flagged & self.dynamic_contended)
        return hit / len(self.static_flagged)

    @staticmethod
    def _pct(value: Optional[float]) -> str:
        return "-" if value is None else "%.2f" % value

    def cells(self) -> List[str]:
        return [
            self.name,
            str(len(self.dynamic_fs)),
            str(len(self.dynamic_ts)),
            str(len(self.static_flagged)),
            self._pct(self.fs_recall),
            self._pct(self.recall),
            self._pct(self.precision),
            str(len(self.static_report.clipped)),
        ]


class StaticCmpResult:
    """All rows of the static-vs-dynamic comparison."""

    def __init__(self, rows: List[StaticCmpRow]):
        self.rows = rows

    def row_for(self, name: str) -> Optional[StaticCmpRow]:
        for row in self.rows:
            if row.name == name:
                return row
        return None

    @property
    def fs_recall_floor(self) -> Optional[float]:
        """Worst FS recall over rows where the dynamic run saw FS."""
        scores = [r.fs_recall for r in self.rows if r.fs_recall is not None]
        return min(scores) if scores else None

    def render(self) -> str:
        headers = ["benchmark", "dyn FS", "dyn TS", "static", "FS recall",
                   "recall", "precision", "clipped"]
        body = [row.cells() for row in self.rows]
        table = render_table(
            headers, body,
            title="Static predictor vs. dynamic detector (cache lines)")
        floor = self.fs_recall_floor
        if floor is not None:
            table += "\nFS recall floor: %.2f" % floor
        return table


def run_static_cmp(workloads: Optional[List[Workload]] = None, seed: int = 0,
                   scale: float = 1.0,
                   config: Optional[LaserConfig] = None,
                   min_events: int = 1) -> StaticCmpResult:
    """Score the static predictor against dynamic ground truth.

    ``min_events`` is the dynamic evidence threshold: a cache line needs
    at least that many classified sharing events of a class to count as
    ground truth for it.
    """
    base = config or LaserConfig()
    # Repair off: a rewrite mid-run redirects stores through the SSB and
    # changes which lines the model observes, which would make the
    # ground truth depend on repair timing.
    cfg = base.replace(seed=seed, repair_enabled=False)
    rows = []
    for workload in workloads if workloads is not None else all_workloads():
        built = workload.build(heap_offset=cfg.heap_shift, seed=cfg.seed,
                               scale=scale)
        result = Laser(cfg).run_built(built)
        model = result.pipeline.line_model
        dynamic_fs = set(model.contended_lines(
            SharingType.FALSE_SHARING, min_events=min_events))
        dynamic_ts = set(model.contended_lines(
            SharingType.TRUE_SHARING, min_events=min_events))
        static_report = predict_program(built.program)
        rows.append(StaticCmpRow(
            workload.name, dynamic_fs, dynamic_ts,
            static_report.flagged_cache_lines(), static_report))
    return StaticCmpResult(rows)


if __name__ == "__main__":  # pragma: no cover
    print(run_static_cmp().render())
