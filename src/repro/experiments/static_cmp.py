"""Static predictor vs. dynamic detector: cache-line recall/precision.

The static sharing predictor (``repro.static.predict``) claims to flag
every cache line the dynamic detector can observe contention on — it
over-approximates (no notion of rate), so the interesting scores are:

* **recall** — of the cache lines the *dynamic* run classified as
  false sharing (byte-accurate line model, ``CacheLineModel``), what
  fraction did the predictor flag?  The acceptance bar is 1.0 on the
  clean false-sharing workloads: a static miss would mean the abstract
  interpreter lost a footprint it needed.
* **precision** — of the lines the predictor flagged, what fraction
  did the dynamic run confirm?  Expected to be low (cold sharing and
  one-time handoffs are flagged too); reported per workload — along
  with the raw count of statically-flagged-but-never-observed lines —
  to quantify the asymmetry, not as a bar.

Both sides see the *same* built program: the workload is built once
with the detector's heap shift and the dynamic run monitors that exact
build (repair disabled so the access stream is not rewritten mid-run).

Cells shard over :class:`~repro.experiments.runner.SweepRunner` (one
cell per workload; ``--workers`` on the CLI): cells are independent
and seed-deterministic and the merge preserves submission order, so
results are byte-identical at any worker count.
"""

import argparse
import sys
from typing import List, Optional, Set, Tuple

from repro.core.config import LaserConfig
from repro.core.detect.linemodel import SharingType
from repro.core.laser import Laser
from repro.experiments.runner import SweepRunner
from repro.experiments.tables import render_table
from repro.static.predict import predict_program
from repro.workloads.base import Workload
from repro.workloads.registry import all_workloads, get_workload

__all__ = ["StaticCmpRow", "StaticCmpResult", "run_static_cmp"]


class StaticCmpRow:
    """One workload's static-vs-dynamic comparison."""

    def __init__(self, name: str, dynamic_fs: Set[int], dynamic_ts: Set[int],
                 static_flagged: Set[int], static_clipped: int):
        self.name = name
        #: Cache lines the dynamic run observed FS (resp. TS) events on.
        self.dynamic_fs = dynamic_fs
        self.dynamic_ts = dynamic_ts
        #: Every cache line the predictor flagged (any sharing class).
        self.static_flagged = static_flagged
        #: Footprints the predictor clipped (its coverage gap).
        self.static_clipped = static_clipped

    @property
    def dynamic_contended(self) -> Set[int]:
        return self.dynamic_fs | self.dynamic_ts

    @property
    def missed_fs_lines(self) -> Set[int]:
        """Dynamically-confirmed FS lines the predictor did not flag."""
        return self.dynamic_fs - self.static_flagged

    @property
    def static_only_lines(self) -> Set[int]:
        """Statically-flagged lines the dynamic run never confirmed."""
        return self.static_flagged - self.dynamic_contended

    @property
    def fs_recall(self) -> Optional[float]:
        """Fraction of dynamic FS cache lines the predictor flagged."""
        if not self.dynamic_fs:
            return None
        hit = len(self.dynamic_fs & self.static_flagged)
        return hit / len(self.dynamic_fs)

    @property
    def recall(self) -> Optional[float]:
        """Fraction of all dynamically contended lines flagged."""
        contended = self.dynamic_contended
        if not contended:
            return None
        return len(contended & self.static_flagged) / len(contended)

    @property
    def precision(self) -> Optional[float]:
        """Fraction of flagged lines the dynamic run confirmed."""
        if not self.static_flagged:
            return None
        hit = len(self.static_flagged & self.dynamic_contended)
        return hit / len(self.static_flagged)

    @staticmethod
    def _pct(value: Optional[float]) -> str:
        return "-" if value is None else "%.2f" % value

    def cells(self) -> List[str]:
        return [
            self.name,
            str(len(self.dynamic_fs)),
            str(len(self.dynamic_ts)),
            str(len(self.static_flagged)),
            self._pct(self.fs_recall),
            self._pct(self.recall),
            self._pct(self.precision),
            str(len(self.static_only_lines)),
            str(self.static_clipped),
        ]


class StaticCmpResult:
    """All rows of the static-vs-dynamic comparison."""

    def __init__(self, rows: List[StaticCmpRow]):
        self.rows = rows

    def row_for(self, name: str) -> Optional[StaticCmpRow]:
        for row in self.rows:
            if row.name == name:
                return row
        return None

    @property
    def fs_recall_floor(self) -> Optional[float]:
        """Worst FS recall over rows where the dynamic run saw FS."""
        scores = [r.fs_recall for r in self.rows if r.fs_recall is not None]
        return min(scores) if scores else None

    def render(self) -> str:
        headers = ["benchmark", "dyn FS", "dyn TS", "static", "FS recall",
                   "recall", "precision", "static-only", "clipped"]
        body = [row.cells() for row in self.rows]
        table = render_table(
            headers, body,
            title="Static predictor vs. dynamic detector (cache lines)")
        floor = self.fs_recall_floor
        if floor is not None:
            table += "\nFS recall floor: %.2f" % floor
        return table


def _static_cmp_cell(name: str, cfg: LaserConfig, scale: float,
                     min_events: int) -> Tuple:
    """One workload's cell: runs in a pool worker, returns reduced data.

    Module-level and returning only small picklable values (the
    ``SweepRunner`` contract): the workload is rebuilt from its name
    and the heavy run objects never cross the process boundary.
    """
    workload = get_workload(name)
    built = workload.build(heap_offset=cfg.heap_shift, seed=cfg.seed,
                           scale=scale)
    result = Laser(cfg).run_built(built)
    model = result.pipeline.line_model
    dynamic_fs = sorted(model.contended_lines(
        SharingType.FALSE_SHARING, min_events=min_events))
    dynamic_ts = sorted(model.contended_lines(
        SharingType.TRUE_SHARING, min_events=min_events))
    static_report = predict_program(built.program)
    return (name, dynamic_fs, dynamic_ts,
            sorted(static_report.flagged_cache_lines()),
            len(static_report.clipped))


def run_static_cmp(workloads: Optional[List[Workload]] = None, seed: int = 0,
                   scale: float = 1.0,
                   config: Optional[LaserConfig] = None,
                   min_events: int = 1,
                   workers: Optional[int] = 1) -> StaticCmpResult:
    """Score the static predictor against dynamic ground truth.

    ``min_events`` is the dynamic evidence threshold: a cache line needs
    at least that many classified sharing events of a class to count as
    ground truth for it.  ``workers`` shards the per-workload cells over
    a :class:`SweepRunner` (1 = serial; results are identical at any
    width).  Workloads must be registry-resolvable by name — the cells
    rebuild them inside the pool workers.
    """
    base = config or LaserConfig()
    # Repair off: a rewrite mid-run redirects stores through the SSB and
    # changes which lines the model observes, which would make the
    # ground truth depend on repair timing.
    cfg = base.replace(seed=seed, repair_enabled=False)
    names = [
        w.name for w in (workloads if workloads is not None
                         else all_workloads())
    ]
    runner = SweepRunner(workers=workers)
    cells = runner.starmap(
        _static_cmp_cell,
        [(name, cfg, scale, min_events) for name in names],
    )
    rows = [
        StaticCmpRow(name, set(dynamic_fs), set(dynamic_ts),
                     set(static_flagged), clipped)
        for name, dynamic_fs, dynamic_ts, static_flagged, clipped in cells
    ]
    return StaticCmpResult(rows)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.static_cmp",
        description="Static predictor vs. dynamic detector scores.")
    parser.add_argument("--workers", type=int, default=1,
                        help="pool width for the per-workload cells "
                             "(default 1 = serial)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--min-events", type=int, default=1)
    args = parser.parse_args(argv)
    result = run_static_cmp(seed=args.seed, scale=args.scale,
                            min_events=args.min_events,
                            workers=args.workers)
    print(result.render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
