"""Race-certifier accuracy: predicted verdicts vs. curated ground truth.

The static certifier (``repro.static.race``) is a *must* analysis run
conservatively toward RACE: synchronization it cannot prove is treated
as absent.  This harness quantifies that asymmetry the same way
``static_cmp.py`` does for the sharing predictor:

* **recall** — of the workloads that really contain an unsynchronized
  conflicting access pair (under the simulator's model: all threads
  start together, no joins), what fraction does the certifier call
  unsafe?  The bar is 1.0 — a missed race is the soundness hole the
  certifier exists to close.
* **precision** — of the workloads the certifier calls unsafe, what
  fraction are really racy?  Expected below 1.0; each false positive
  is a known recognition gap (computed lock addresses, unknown-value
  index widening, non-constant spin bounds), and the per-row notes say
  which.

Ground truth is curated per workload from the emitted programs (see
``GROUND_TRUTH``); the intentionally-racy variants additionally pin
*location-level* truth via their ``race_locations`` attribute.  Cells
shard over :class:`~repro.experiments.runner.SweepRunner` (one per
workload, ``--workers`` on the CLI) and merge deterministically.
"""

import argparse
import sys
from typing import Dict, List, Optional, Tuple

from repro.core.config import LaserConfig
from repro.experiments.runner import SweepRunner
from repro.experiments.tables import render_table
from repro.static.race import certify_built
from repro.workloads.registry import (
    all_workloads,
    get_workload,
    variant_workloads,
)

__all__ = ["GROUND_TRUTH", "RaceCmpRow", "RaceCmpResult", "run_race_cmp"]

#: Curated per-workload truth: does the emitted program contain a
#: conflicting cross-thread access pair with no synchronization
#: ordering it?  (Simulator model: every thread starts at cycle 0.)
#: The comments name the mechanism; False entries flagged unsafe by the
#: certifier are its documented false positives.
GROUND_TRUTH: Dict[str, bool] = {
    # -- really racy: unsynchronized handoffs or plain-RMW sharing ----
    "matrix_multiply": True,    # write->read handoff, readers never wait
    "string_match": True,       # dictionary handoff, readers never wait
    "kmeans": True,             # plain-addm'd shared `modified` flag
    "fft": True,                # transpose handoff with no flag/barrier
    "ocean_cp": True,           # boundary-row handoff before any barrier
    "ocean_ncp": True,          # boundary-row handoff before any barrier
    "vips": True,               # region handoff read while being written
    "raytrace.parsec": True,    # BVH handoff read while being written
    "freqmine": True,           # un-locked addm on the shared header
    "radix": True,              # un-locked addm on shared rank buckets
    # -- synchronized (or never actually conflicting) -----------------
    "barnes": False,
    "blackscholes": False,
    "bodytrack": False,
    "canneal": False,
    "dedup": False,
    "facesim": False,
    "ferret": False,
    "fluidanimate": False,      # FP: computed per-cell lock addresses
    "fmm": False,
    "histogram": False,         # FP: unknown loaded byte widens index
    "histogram'": False,        # FP: same widening as histogram
    "linear_regression": False,
    "lu_cb": False,
    "lu_ncb": False,
    "pca": False,
    "radiosity": False,         # FP: branch-joined lock addresses
    "raytrace.splash2x": False,
    "reverse_index": False,
    "streamcluster": False,
    "swaptions": False,
    "volrend": False,
    "water_nsquared": False,    # FP: computed per-molecule locks
    "water_spatial": False,
    "word_count": False,
    "x264": False,              # FP: spin bound is a loop variable
}


class RaceCmpRow:
    """One workload's certifier-vs-truth comparison."""

    def __init__(self, name: str, actual_racy: bool, predicted_racy: bool,
                 racy_locations: List[str], truth_locations: List[str],
                 clipped: int):
        self.name = name
        self.actual_racy = actual_racy
        self.predicted_racy = predicted_racy
        #: Source locations the certifier blamed (str(SourceLocation)).
        self.racy_locations = racy_locations
        #: Declared ground-truth race locations (variants only).
        self.truth_locations = truth_locations
        self.clipped = clipped

    @property
    def outcome(self) -> str:
        if self.actual_racy:
            return "TP" if self.predicted_racy else "FN"
        return "FP" if self.predicted_racy else "TN"

    @property
    def locations_covered(self) -> Optional[bool]:
        """Did the certifier blame every declared race location?"""
        if not self.truth_locations:
            return None
        return set(self.truth_locations) <= set(self.racy_locations)

    def cells(self) -> List[str]:
        covered = self.locations_covered
        return [
            self.name,
            "racy" if self.actual_racy else "safe",
            "RACE" if self.predicted_racy else "ok",
            self.outcome,
            "-" if covered is None else ("yes" if covered else "NO"),
            str(self.clipped),
        ]


class RaceCmpResult:
    """All rows plus the aggregate precision/recall."""

    def __init__(self, rows: List[RaceCmpRow]):
        self.rows = rows

    def row_for(self, name: str) -> Optional[RaceCmpRow]:
        for row in self.rows:
            if row.name == name:
                return row
        return None

    def _count(self, outcome: str) -> int:
        return sum(1 for row in self.rows if row.outcome == outcome)

    @property
    def recall(self) -> Optional[float]:
        relevant = self._count("TP") + self._count("FN")
        return self._count("TP") / relevant if relevant else None

    @property
    def precision(self) -> Optional[float]:
        flagged = self._count("TP") + self._count("FP")
        return self._count("TP") / flagged if flagged else None

    def render(self) -> str:
        headers = ["workload", "truth", "certified", "outcome",
                   "locs covered", "clipped"]
        table = render_table(
            headers, [row.cells() for row in self.rows],
            title="Race certifier vs. curated ground truth")
        parts = []
        if self.recall is not None:
            parts.append("recall=%.2f" % self.recall)
        if self.precision is not None:
            parts.append("precision=%.2f" % self.precision)
        parts.append("TP=%d FP=%d FN=%d TN=%d" % (
            self._count("TP"), self._count("FP"),
            self._count("FN"), self._count("TN")))
        return table + "\n" + " ".join(parts)


def _race_cmp_cell(name: str, cfg: LaserConfig,
                   scale: float) -> Tuple:
    """One workload's cell (module-level + reduced: the pool contract)."""
    workload = get_workload(name)
    built = workload.build(heap_offset=cfg.heap_shift, seed=cfg.seed,
                           scale=scale)
    cert = certify_built(built)
    truth_locations = [
        str(loc) for loc in getattr(workload, "race_locations", [])
    ]
    return (name, cert.unsafe,
            [str(loc) for loc in cert.racy_locations()],
            truth_locations, cert.clipped_footprints)


def run_race_cmp(names: Optional[List[str]] = None, seed: int = 0,
                 scale: float = 1.0,
                 config: Optional[LaserConfig] = None,
                 workers: Optional[int] = 1) -> RaceCmpResult:
    """Score the certifier against ``GROUND_TRUTH`` (+ variant labels)."""
    cfg = (config or LaserConfig()).replace(seed=seed)
    if names is None:
        names = [w.name for w in all_workloads() + variant_workloads()]
    runner = SweepRunner(workers=workers)
    cells = runner.starmap(
        _race_cmp_cell, [(name, cfg, scale) for name in names])
    rows = []
    for name, predicted, racy_locs, truth_locs, clipped in cells:
        # Variants are racy by construction (they declare the
        # locations); registry workloads come from the curated table.
        actual = bool(truth_locs) or GROUND_TRUTH.get(name, False)
        rows.append(RaceCmpRow(name, actual, predicted, racy_locs,
                               truth_locs, clipped))
    return RaceCmpResult(rows)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.race_cmp",
        description="Race-certifier precision/recall vs. ground truth.")
    parser.add_argument("--workers", type=int, default=1,
                        help="pool width for per-workload cells")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=1.0)
    args = parser.parse_args(argv)
    result = run_race_cmp(seed=args.seed, scale=args.scale,
                          workers=args.workers)
    print(result.render())
    # Recall is the soundness bar: a missed real race fails the run.
    return 0 if (result.recall is None or result.recall == 1.0) else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
