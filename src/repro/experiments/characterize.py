"""Figure 3: accuracy of Haswell HITM records, per test class.

For each of the 160 Section 3.1 test cases (sampling disabled — every
HITM event produces a record), we compare each record's data address
and PC against ground truth and report, per test case, the percentage
of correct data addresses, exact PCs, and exact-or-adjacent PCs.  The
paper's findings, which this experiment reproduces:

* RW (load-triggered) records: ~75% correct addresses, ~40% exact PCs,
  ~70% counting adjacent PCs;
* WW (store-triggered) records: highly inaccurate addresses and PCs
  (adjacent PCs reach ~34%);
* the per-test scatter is wide (the dots of Figure 3).
"""

from typing import Dict, List

from repro.pebs.imprecision import ImprecisionModel
from repro.sim.machine import Machine
from repro.sim.vmmap import MIN_APP_TEXT_SPAN
from repro.experiments.tables import render_table
from repro.workloads.characterization import CharacterizationCase, generate_cases

__all__ = ["CaseAccuracy", "CharacterizationResult", "run_characterization"]

GROUPS = ["TSRW", "FSRW", "TSWW", "FSWW"]


class CaseAccuracy:
    """Per-test-case record accuracy percentages."""

    def __init__(self, case: CharacterizationCase, records: int,
                 addr_correct: float, pc_exact: float, pc_adjacent: float):
        self.case = case
        self.records = records
        self.addr_correct = addr_correct
        self.pc_exact = pc_exact
        #: exact-or-adjacent, the dark circles of Figure 3.
        self.pc_adjacent = pc_adjacent


class CharacterizationResult:
    def __init__(self, cases: List[CaseAccuracy]):
        self.cases = cases

    def group(self, name: str) -> List[CaseAccuracy]:
        return [c for c in self.cases if c.case.group == name]

    def group_means(self) -> Dict[str, Dict[str, float]]:
        out = {}
        for name in GROUPS:
            members = self.group(name)
            n = max(1, len(members))
            out[name] = {
                "addr_correct": sum(c.addr_correct for c in members) / n,
                "pc_exact": sum(c.pc_exact for c in members) / n,
                "pc_adjacent": sum(c.pc_adjacent for c in members) / n,
            }
        return out

    def render(self) -> str:
        means = self.group_means()
        headers = ["group", "cases", "% correct addr", "% exact PC",
                   "% exact-or-adjacent PC"]
        body = []
        for name in GROUPS:
            stats = means[name]
            body.append([
                name,
                str(len(self.group(name))),
                "%.1f" % (100 * stats["addr_correct"]),
                "%.1f" % (100 * stats["pc_exact"]),
                "%.1f" % (100 * stats["pc_adjacent"]),
            ])
        return render_table(
            headers, body,
            title="Figure 3: HITM record accuracy by test class "
                  "(group means over per-case percentages)",
        )


def _measure_case(case: CharacterizationCase, seed: int) -> CaseAccuracy:
    built = case.build(seed=seed)
    machine = Machine(built.program, seed=seed, allocator=built.allocator)
    built.apply_init(machine)
    app_start = built.program.code_base
    imprecision = ImprecisionModel(
        app_start, app_start + MIN_APP_TEXT_SPAN, seed=seed
    )
    counts = {"records": 0, "addr": 0, "exact": 0, "adjacent": 0}

    def on_hitm(core, inst, addr, is_write, cycle):
        recorded_pc, recorded_addr = imprecision.distort(
            inst.pc, addr, store_triggered=is_write
        )
        counts["records"] += 1
        if recorded_addr == addr:
            counts["addr"] += 1
        verdict = ImprecisionModel.classify_pc(recorded_pc, inst.pc)
        if verdict == "exact":
            counts["exact"] += 1
            counts["adjacent"] += 1
        elif verdict == "adjacent":
            counts["adjacent"] += 1
        return 0

    machine.on_hitm = on_hitm
    machine.run(max_cycles=4_000_000)
    n = max(1, counts["records"])
    return CaseAccuracy(
        case,
        counts["records"],
        counts["addr"] / n,
        counts["exact"] / n,
        counts["adjacent"] / n,
    )


def run_characterization(cases=None, seed: int = 0) -> CharacterizationResult:
    """Run the full (or a subset of the) 160-case characterization."""
    return CharacterizationResult([
        _measure_case(case, seed) for case in (cases or generate_cases())
    ])


if __name__ == "__main__":  # pragma: no cover
    print(run_characterization().render())
