"""Chaos soak harness: crash the monitor, demand the same answer.

The crash-recovery claim (``repro.resilience``) is behavioral, not
structural: under any schedule of detector/driver crashes and corrupted
checkpoints, the recovered run's final bug report must *converge* to
the fault-free run's — the same source lines, each with the same
dominant true-/false-sharing verdict.  Cycle counts may legitimately
differ (a crash can delay a repair attach, shifting machine timing),
but the diagnosis may not.

The harness sweeps seeds x named crash schedules over the standard
workloads, runs each case twice (fault-free baseline, then chaotic),
and compares :func:`report_signature` of the two reports.  Recovery
``resil.*`` trace events from the chaotic run ride along so a failed
case is a readable story, and the CLI writes the whole sweep as a
JSONL artifact for CI.

Run directly::

    PYTHONPATH=src python -m repro.experiments.chaos --out chaos.jsonl

or through the ``chaos``-marked tests in ``tests/test_resilience.py``
(``pytest -m chaos``).
"""

import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import LaserConfig
from repro.core.laser import Laser, LaserRunResult
from repro.experiments.runner import SweepRunner
from repro.faults import FaultPlan
from repro.workloads import get_workload

__all__ = [
    "CRASH_SCHEDULES",
    "ChaosOutcome",
    "schedule_plan",
    "report_signature",
    "run_chaos_case",
    "run_chaos_soak",
    "render_outcomes",
]

#: Named crash schedules: fault site -> occurrence indices (the
#: injector's per-site consultation counter, so a schedule is exact and
#: deterministic — no probabilities).  ``detector.crash`` is consulted
#: twice per poll, so even indices are pre-poll crashes and odd indices
#: post-read (unacked batch) crashes; ``driver.crash`` is consulted
#: once per interval; ``checkpoint.corrupt`` is consulted once per
#: *generation candidate* at restore time, so occurrence 0 corrupts the
#: newest generation and forces the fallback path.
CRASH_SCHEDULES: Dict[str, Dict[str, Sequence[int]]] = {
    # First consultation ever: the detector dies before any poll or
    # checkpoint exists — the checkpoint-less cold start must replay
    # the journal from seq 0.
    "detector-cold-start": {"detector.crash": (0,)},
    # Mid-run pre-poll crash: restore from a real checkpoint, replay
    # the suffix.
    "detector-mid": {"detector.crash": (8,)},
    # Post-read crash: the batch was read but never acked; replay must
    # recover it and the re-delivery must dedup.
    "detector-post-read": {"detector.crash": (7,)},
    # Two spaced crashes: recover, run on, crash again.
    "detector-repeated": {"detector.crash": (2, 13)},
    # Driver dies, wiping its volatile buffers; the journal heals the
    # wipe at the same interval's poll.
    "driver-early": {"driver.crash": (1,)},
    "driver-repeated": {"driver.crash": (2, 6)},
    # Both components die at different times.
    "double-fault": {"detector.crash": (6,), "driver.crash": (9,)},
    # The newest checkpoint generation is corrupt at restore time;
    # recovery must detect the bad CRC and fall back a generation.
    "corrupt-fallback": {"detector.crash": (10,), "checkpoint.corrupt": (0,)},
}


def schedule_plan(name: str, seed: int = 0) -> FaultPlan:
    """Materialize a named crash schedule as a deterministic FaultPlan."""
    plan = FaultPlan(seed=seed)
    for site, at in sorted(CRASH_SCHEDULES[name].items()):
        plan.add(site, at=at)
    return plan


def report_signature(result: LaserRunResult) -> frozenset:
    """The diagnosis a report makes: lines + dominant TS/FS verdicts.

    This is what the paper's user acts on — *which* lines contend and
    *whether* the contention is false sharing (repairable) or true
    sharing.  Event counts and rates are deliberately excluded: a crash
    shifts repair timing, which shifts rates, without changing the
    diagnosis.
    """
    return frozenset(
        (str(line.location), "FS" if line.fs_events > line.ts_events else "TS")
        for line in result.report.lines
    )


class ChaosOutcome:
    """One (workload, schedule, seed) cell of the soak grid."""

    __slots__ = ("workload", "schedule", "seed", "converged",
                 "baseline_signature", "chaotic_signature", "health",
                 "recovery_events", "baseline_cycles", "chaotic_cycles")

    def __init__(self, workload: str, schedule: str, seed: int,
                 baseline: LaserRunResult, chaotic: LaserRunResult):
        self.workload = workload
        self.schedule = schedule
        self.seed = seed
        self.baseline_signature = report_signature(baseline)
        self.chaotic_signature = report_signature(chaotic)
        self.converged = self.baseline_signature == self.chaotic_signature
        self.health = chaotic.health.as_dict()
        self.baseline_cycles = baseline.cycles
        self.chaotic_cycles = chaotic.cycles
        #: The chaotic run's recovery story, straight from the tracer.
        self.recovery_events: List[dict] = [
            {"cycle": event.cycle, "name": event.name,
             "args": dict(event.args or {})}
            for event in chaotic.telemetry.tracer.events_named("resil.")
        ]

    def as_dict(self) -> dict:
        return {
            "workload": self.workload,
            "schedule": self.schedule,
            "seed": self.seed,
            "converged": self.converged,
            "baseline_signature": sorted(self.baseline_signature),
            "chaotic_signature": sorted(self.chaotic_signature),
            "baseline_cycles": self.baseline_cycles,
            "chaotic_cycles": self.chaotic_cycles,
            "health": self.health,
            "recovery_events": self.recovery_events,
        }

    def __repr__(self):
        return "<ChaosOutcome %s/%s seed=%d %s>" % (
            self.workload, self.schedule, self.seed,
            "converged" if self.converged else "DIVERGED",
        )


def run_chaos_case(workload_name: str, schedule_name: str, seed: int = 0,
                   config: Optional[LaserConfig] = None) -> ChaosOutcome:
    """Baseline vs chaotic run of one cell; tracing on for the story."""
    cfg = (config or LaserConfig()).replace(seed=seed, trace_enabled=True)
    workload = get_workload(workload_name)
    baseline = Laser(cfg).run_workload(workload)
    chaotic = Laser(cfg, faults=schedule_plan(schedule_name, seed=seed)
                    ).run_workload(workload)
    return ChaosOutcome(workload_name, schedule_name, seed, baseline, chaotic)


#: Default soak grid: the three standard sweep workloads.  Scoped small
#: enough for CI (|workloads| x |schedules| x |seeds| runs, two runs
#: each) but covering every recovery path: cold start, checkpointed
#: restore, post-read dedup, driver wipe, double fault and corrupt
#: fallback.
SOAK_WORKLOADS = ("histogram'", "histogram", "linear_regression")


def run_chaos_soak(workloads: Sequence[str] = SOAK_WORKLOADS,
                   schedules: Optional[Sequence[str]] = None,
                   seeds: Sequence[int] = (0,),
                   config: Optional[LaserConfig] = None,
                   workers: Optional[int] = None,
                   runner: Optional[SweepRunner] = None) -> List[ChaosOutcome]:
    """The full sweep: every (workload, schedule, seed) cell.

    Cells fan out over a :class:`SweepRunner` process pool
    (``workers=None`` sizes to the host; 1 = serial) and merge back in
    grid order, so the outcome list is identical at any worker count.
    Pass ``runner`` to reuse a caller's runner — its ``cost_summary``
    then reports what this soak cost in host time.
    """
    cells = [
        (workload, schedule, seed, config)
        for workload in workloads
        for schedule in (schedules or sorted(CRASH_SCHEDULES))
        for seed in seeds
    ]
    if runner is None:
        runner = SweepRunner(workers)
    return runner.starmap(_chaos_cell, cells)


def _chaos_cell(workload: str, schedule: str, seed: int,
                config: Optional[LaserConfig]) -> ChaosOutcome:
    """One soak cell, shaped for pool workers (module-level, picklable)."""
    return run_chaos_case(workload, schedule, seed=seed, config=config)


def render_outcomes(outcomes: Sequence[ChaosOutcome]) -> str:
    """Human-readable soak summary table."""
    lines = ["%-18s %-20s %4s  %-9s  %s" % (
        "workload", "schedule", "seed", "verdict", "recovery")]
    for outcome in outcomes:
        health = outcome.health
        lines.append("%-18s %-20s %4d  %-9s  restarts=%d replayed=%d "
                     "deduped=%d ckpt=%d/%d/%d" % (
                         outcome.workload, outcome.schedule, outcome.seed,
                         "converged" if outcome.converged else "DIVERGED",
                         health["detector_crash_restarts"]
                         + health["driver_crash_restarts"],
                         health["records_replayed"],
                         health["records_deduped"],
                         health["checkpoints_written"],
                         health["checkpoints_restored"],
                         health["checkpoints_corrupt"],
                     ))
    diverged = sum(1 for outcome in outcomes if not outcome.converged)
    lines.append("%d/%d cells converged" % (
        len(outcomes) - diverged, len(outcomes)))
    return "\n".join(lines)


def write_artifact(outcomes: Sequence[ChaosOutcome], path: str) -> None:
    """One JSONL line per cell (the CI recovery-trace artifact)."""
    with open(path, "w") as fh:
        for outcome in outcomes:
            fh.write(json.dumps(outcome.as_dict(), sort_keys=True) + "\n")


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workloads", nargs="*", default=list(SOAK_WORKLOADS))
    parser.add_argument("--schedules", nargs="*", default=None,
                        choices=sorted(CRASH_SCHEDULES), metavar="SCHEDULE")
    parser.add_argument("--seeds", nargs="*", type=int, default=[0])
    parser.add_argument("--out", default=None,
                        help="write the JSONL recovery-trace artifact here")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool width (default: host cores; "
                             "1 = serial)")
    args = parser.parse_args(argv)
    outcomes: List[ChaosOutcome] = []
    # One runner (and therefore one process pool) shared across every
    # schedule: the pool is spawned once, and each schedule's batch
    # reports its own recovery bill as it lands.
    with SweepRunner(args.workers) as runner:
        for schedule in (args.schedules or sorted(CRASH_SCHEDULES)):
            batch = run_chaos_soak(workloads=args.workloads,
                                   schedules=[schedule], seeds=args.seeds,
                                   runner=runner)
            outcomes.extend(batch)
            print("%-20s %d cells: restarts=%d shed=%d" % (
                schedule, len(batch),
                sum(cell.health["detector_crash_restarts"]
                    + cell.health["driver_crash_restarts"]
                    for cell in batch),
                sum(cell.health["records_shed"] for cell in batch)))
        print()
        print(render_outcomes(outcomes))
        print(runner.cost_summary())
    if args.out:
        write_artifact(outcomes, args.out)
        print("wrote %s" % args.out)
    return 0 if all(outcome.converged for outcome in outcomes) else 1


if __name__ == "__main__":
    raise SystemExit(main())
