"""ASCII rendering helpers for experiment tables and figures."""

from typing import List, Sequence

__all__ = ["render_table", "render_bars", "geomean"]


def render_table(headers: Sequence[str], rows: List[Sequence[object]],
                 title: str = "") -> str:
    """Fixed-width ASCII table."""
    columns = len(headers)
    widths = [len(str(h)) for h in headers]
    text_rows = []
    for row in rows:
        cells = [str(cell) for cell in row]
        if len(cells) != columns:
            raise ValueError("row width mismatch: %r" % (row,))
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))
        text_rows.append(cells)
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(columns)))
    for cells in text_rows:
        lines.append("  ".join(cells[i].ljust(widths[i]) for i in range(columns)))
    return "\n".join(lines)


def render_bars(labels: Sequence[str], values: Sequence[float],
                title: str = "", width: int = 48,
                fmt: str = "%.3f") -> str:
    """Horizontal ASCII bar chart (the 'figure' renderer)."""
    if len(labels) != len(values):
        raise ValueError("labels/values length mismatch")
    peak = max(values) if values else 1.0
    label_width = max((len(label) for label in labels), default=0)
    lines = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(round(width * value / peak))) if peak > 0 else ""
        lines.append(
            "%s  %s %s" % (label.ljust(label_width), (fmt % value).rjust(8), bar)
        )
    return "\n".join(lines)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's summary statistic for Figure 10)."""
    if not values:
        raise ValueError("no values")
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError("geomean requires positive values")
        product *= value
    return product ** (1.0 / len(values))
