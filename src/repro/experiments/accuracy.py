"""Table 1 (detection accuracy) and Table 2 (contention type).

For every workload, the experiment runs LASERDETECT, the VTune baseline
and Sheriff-Detect, then scores each tool against the known-performance-
bug database:

* **false negative** — a database bug none of whose source lines the
  tool reported;
* **false positive** — a reported source line covered by no database
  bug.  Sheriff-Detect reports allocation *sites*, which can never match
  a line-level bug; per the paper's accounting its site reports are
  false positives, and reverse_index's bug — which Sheriff sees only as
  "somewhere inside the malloc wrapper" — still counts as a false
  negative.
"""

from typing import Dict, List, Optional

from repro.baselines.sheriff import SheriffMode, run_sheriff
from repro.baselines.vtune import VTuneProfiler
from repro.core.config import LaserConfig
from repro.core.detect.report import ContentionClass, ContentionReport
from repro.errors import SheriffCrash, SheriffIncompatible
from repro.experiments.runner import run_laser_on
from repro.experiments.tables import render_table
from repro.workloads.base import Workload
from repro.workloads.registry import all_workloads

__all__ = ["AccuracyRow", "AccuracyResult", "run_accuracy",
           "run_contention_type", "score_report_lines"]


def score_report_lines(workload: Workload, reported_locations) -> Dict[str, int]:
    """Score a line-level report against the bug database."""
    false_negatives = 0
    for bug in workload.bugs:
        if not any(bug.covers(loc) for loc in reported_locations):
            false_negatives += 1
    bug_lines = set(workload.bug_locations())
    false_positives = sum(1 for loc in reported_locations if loc not in bug_lines)
    return {"fn": false_negatives, "fp": false_positives}


class AccuracyRow:
    """One benchmark's Table 1 row."""

    def __init__(self, name: str, bug_count: int):
        self.name = name
        self.bug_count = bug_count
        self.laser_fn = 0
        self.laser_fp = 0
        self.vtune_fn = 0
        self.vtune_fp = 0
        self.sheriff_fn: Optional[int] = None  # None -> crash/incompatible
        self.sheriff_fp: Optional[int] = None
        self.sheriff_status = "ok"

    @staticmethod
    def _dash(value) -> str:
        if value is None:
            return "?"
        return "-" if value == 0 else str(value)

    def cells(self) -> List[str]:
        if self.sheriff_status == "crash":
            sheriff = ["x", ""]
        elif self.sheriff_status == "incompatible":
            sheriff = ["i", ""]
        else:
            sheriff = [self._dash(self.sheriff_fn), self._dash(self.sheriff_fp)]
        return [
            self.name,
            self._dash(self.bug_count),
            self._dash(self.laser_fn),
            self._dash(self.laser_fp),
            self._dash(self.vtune_fn),
            self._dash(self.vtune_fp),
        ] + sheriff


class AccuracyResult:
    """All rows plus totals (the reproduction of Table 1)."""

    def __init__(self, rows: List[AccuracyRow]):
        self.rows = rows

    @property
    def totals(self) -> Dict[str, int]:
        out = {
            "bugs": sum(r.bug_count for r in self.rows),
            "laser_fn": sum(r.laser_fn for r in self.rows),
            "laser_fp": sum(r.laser_fp for r in self.rows),
            "vtune_fn": sum(r.vtune_fn for r in self.rows),
            "vtune_fp": sum(r.vtune_fp for r in self.rows),
            "sheriff_fn": sum(r.sheriff_fn or 0 for r in self.rows),
            "sheriff_fp": sum(r.sheriff_fp or 0 for r in self.rows),
        }
        return out

    def row_for(self, name: str) -> Optional[AccuracyRow]:
        for row in self.rows:
            if row.name == name:
                return row
        return None

    def render(self) -> str:
        headers = ["benchmark", "bugs", "LASER FN", "LASER FP",
                   "VTune FN", "VTune FP", "Sheriff FN", "Sheriff FP"]
        body = [row.cells() for row in self.rows]
        totals = self.totals
        body.append([
            "Total", str(totals["bugs"]),
            str(totals["laser_fn"]), str(totals["laser_fp"]),
            str(totals["vtune_fn"]), str(totals["vtune_fp"]),
            str(totals["sheriff_fn"]), str(totals["sheriff_fp"]),
        ])
        return render_table(headers, body,
                            title="Table 1: detection accuracy (FN/FP)")


def _laser_report(workload: Workload, seed: int, scale: float,
                  config: Optional[LaserConfig]) -> ContentionReport:
    return run_laser_on(workload, seed=seed, scale=scale, config=config).report


def run_accuracy(workloads: Optional[List[Workload]] = None, seed: int = 0,
                 scale: float = 1.0,
                 config: Optional[LaserConfig] = None) -> AccuracyResult:
    """Reproduce Table 1 over ``workloads`` (default: all 35)."""
    rows = []
    for workload in workloads or all_workloads():
        bug_count = getattr(workload, "TABLE1_BUG_COUNT", len(workload.bugs))
        row = AccuracyRow(workload.name, bug_count)

        laser_report = _laser_report(workload, seed, scale, config)
        laser_score = score_report_lines(
            workload, laser_report.reported_locations()
        )
        row.laser_fn = laser_score["fn"]
        row.laser_fp = laser_score["fp"]

        vtune = VTuneProfiler(seed=seed).run_workload(workload, scale=scale)
        vtune_score = score_report_lines(workload, vtune.reported_locations())
        row.vtune_fn = vtune_score["fn"]
        row.vtune_fp = vtune_score["fp"]

        try:
            sheriff = run_sheriff(workload, SheriffMode.DETECT, seed=seed,
                                  scale=scale, allow_reduced_input=False)
            # Site-level reports never match line-level bugs.
            row.sheriff_fn = len(workload.bugs)
            row.sheriff_fp = len(sheriff.reported_sites)
        except SheriffIncompatible:
            row.sheriff_status = "incompatible"
        except SheriffCrash:
            row.sheriff_status = "crash"
        rows.append(row)
    return AccuracyResult(rows)


class ContentionTypeRow:
    """One Table 2 row: actual vs. reported contention type."""

    def __init__(self, name: str, actual: str, laser: str, sheriff: str):
        self.name = name
        self.actual = actual
        self.laser = laser
        self.sheriff = sheriff

    @property
    def laser_correct(self) -> bool:
        return self.laser == self.actual


class ContentionTypeResult:
    def __init__(self, rows: List[ContentionTypeRow]):
        self.rows = rows

    @property
    def correct_count(self) -> int:
        return sum(1 for row in self.rows if row.laser_correct)

    def row_for(self, name: str) -> Optional[ContentionTypeRow]:
        for row in self.rows:
            if row.name == name:
                return row
        return None

    def render(self) -> str:
        headers = ["benchmark", "contention", "LASERDETECT", "SheriffDet"]
        body = [[r.name, r.actual, r.laser, r.sheriff] for r in self.rows]
        table = render_table(headers, body,
                             title="Table 2: contention type per bug")
        return table + "\nLASER correct for %d of %d" % (
            self.correct_count, len(self.rows),
        )


def run_contention_type(seed: int = 0, scale: float = 1.0,
                        config: Optional[LaserConfig] = None) -> ContentionTypeResult:
    """Reproduce Table 2 over the workloads with performance bugs."""
    rows = []
    for workload in all_workloads():
        if not workload.bugs:
            continue
        report = _laser_report(workload, seed, scale, config)
        # LASER's verdict for the benchmark: the class of the hottest
        # reported line that belongs to a database bug.
        laser_class = ContentionClass.UNKNOWN
        for line in report.lines:
            if any(bug.covers(line.location) for bug in workload.bugs):
                laser_class = line.contention_class
                break
        actual = workload.bugs[0].kind.value

        try:
            sheriff = run_sheriff(workload, SheriffMode.DETECT, seed=seed,
                                  scale=scale, allow_reduced_input=False)
            sheriff_cell = "FS" if sheriff.reported_sites else "-"
        except SheriffIncompatible:
            sheriff_cell = "i"
        except SheriffCrash:
            sheriff_cell = "x"
        rows.append(
            ContentionTypeRow(workload.name, actual, laser_class.value,
                              sheriff_cell)
        )
    return ContentionTypeResult(rows)


if __name__ == "__main__":  # pragma: no cover
    print(run_accuracy().render())
    print()
    print(run_contention_type().render())
