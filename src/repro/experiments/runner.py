"""Shared run helpers for the experiment harnesses.

The paper presents performance as "the average of 10 runs, after
excluding the slowest and fastest runs"; we do the same with seeds
(default 5 runs, trimmed), since seed variation is our analog of
run-to-run variation.
"""

from typing import Callable, List, Optional

from repro.core.config import LaserConfig
from repro.core.laser import Laser, LaserRunResult
from repro.sim.machine import Machine, RunResult
from repro.workloads.base import BuiltWorkload, Workload

__all__ = [
    "run_native",
    "run_built_native",
    "run_laser_on",
    "native_cycles",
    "average_cycles",
    "trimmed_mean",
    "DEFAULT_RUNS",
]

DEFAULT_RUNS = 5


def run_built_native(built: BuiltWorkload, seed: int = 0,
                     max_cycles: int = 200_000_000) -> RunResult:
    """Execute a built workload with no monitoring attached."""
    machine = Machine(built.program, seed=seed, allocator=built.allocator)
    built.apply_init(machine)
    return machine.run(max_cycles=max_cycles)


def run_native(workload: Workload, seed: int = 0,
               scale: float = 1.0) -> RunResult:
    built = workload.build(heap_offset=0, seed=seed, scale=scale)
    return run_built_native(built, seed=seed)


def run_laser_on(workload: Workload, seed: int = 0, scale: float = 1.0,
                 config: Optional[LaserConfig] = None) -> LaserRunResult:
    cfg = (config or LaserConfig()).replace(seed=seed)
    return Laser(cfg).run_workload(workload, scale=scale)


def trimmed_mean(values: List[float]) -> float:
    """Mean after dropping the min and max (the paper's averaging)."""
    if not values:
        raise ValueError("no values to average")
    if len(values) <= 2:
        return sum(values) / len(values)
    ordered = sorted(values)
    trimmed = ordered[1:-1]
    return sum(trimmed) / len(trimmed)


def average_cycles(run: Callable[[int], int], runs: int = DEFAULT_RUNS) -> float:
    """Trimmed-mean cycles of ``run(seed)`` over ``runs`` seeds."""
    return trimmed_mean([float(run(seed)) for seed in range(runs)])


def native_cycles(workload: Workload, scale: float = 1.0,
                  runs: int = DEFAULT_RUNS) -> float:
    return average_cycles(
        lambda seed: run_native(workload, seed=seed, scale=scale).cycles,
        runs=runs,
    )
