"""Shared run helpers for the experiment harnesses.

The paper presents performance as "the average of 10 runs, after
excluding the slowest and fastest runs".  We keep the same *averaging
discipline* (trimmed mean: drop min and max) but default to 5 seeds
rather than 10 runs — see ``DEFAULT_RUNS`` for the rationale.  Every
experiment entry point (``run_overhead``, ``run_speedups``,
``run_sav_sweep``, the bench writer) accepts ``runs`` and threads it
through to these helpers, so a config that wants the paper's full 10
can ask for it.
"""

from typing import Callable, List, Optional

from repro.core.config import LaserConfig
from repro.core.laser import Laser, LaserRunResult
from repro.sim.machine import Machine, RunResult
from repro.workloads.base import BuiltWorkload, Workload

__all__ = [
    "run_native",
    "run_built_native",
    "run_laser_on",
    "native_cycles",
    "laser_cycles",
    "average_cycles",
    "trimmed_mean",
    "DEFAULT_RUNS",
]

#: Seeds per measurement.  The paper averages 10 *runs* of a >1 minute
#: native binary; our analog of run-to-run variation is seed variation
#: in a simulator whose runs are deterministic per seed, and 5 seeds
#: (trimmed to the middle 3) already stabilizes the trimmed mean to
#: well under the 1-2% effects the experiments care about, at half the
#: suite wall-clock.  Pass ``runs=10`` to any experiment entry point to
#: reproduce the paper's count exactly.
DEFAULT_RUNS = 5


def run_built_native(built: BuiltWorkload, seed: int = 0,
                     max_cycles: int = 200_000_000) -> RunResult:
    """Execute a built workload with no monitoring attached."""
    machine = Machine(built.program, seed=seed, allocator=built.allocator)
    built.apply_init(machine)
    return machine.run(max_cycles=max_cycles)


def run_native(workload: Workload, seed: int = 0,
               scale: float = 1.0) -> RunResult:
    built = workload.build(heap_offset=0, seed=seed, scale=scale)
    return run_built_native(built, seed=seed)


def run_laser_on(workload: Workload, seed: int = 0, scale: float = 1.0,
                 config: Optional[LaserConfig] = None) -> LaserRunResult:
    cfg = (config or LaserConfig()).replace(seed=seed)
    return Laser(cfg).run_workload(workload, scale=scale)


def trimmed_mean(values: List[float]) -> float:
    """Mean after dropping the min and max (the paper's averaging)."""
    if not values:
        raise ValueError("no values to average")
    if len(values) <= 2:
        return sum(values) / len(values)
    ordered = sorted(values)
    trimmed = ordered[1:-1]
    return sum(trimmed) / len(trimmed)


def average_cycles(run: Callable[[int], int], runs: int = DEFAULT_RUNS) -> float:
    """Trimmed-mean cycles of ``run(seed)`` over ``runs`` seeds.

    ``runs`` is caller-facing on purpose: experiment configs that want
    the paper's 10-run averaging (or a quick 3-run smoke) pass it down
    rather than relying on the module default.
    """
    return trimmed_mean([float(run(seed)) for seed in range(runs)])


def native_cycles(workload: Workload, scale: float = 1.0,
                  runs: int = DEFAULT_RUNS) -> float:
    """Trimmed-mean native cycles over ``runs`` seeds."""
    return average_cycles(
        lambda seed: run_native(workload, seed=seed, scale=scale).cycles,
        runs=runs,
    )


def laser_cycles(workload: Workload, scale: float = 1.0,
                 runs: int = DEFAULT_RUNS,
                 config: Optional[LaserConfig] = None) -> float:
    """Trimmed-mean LASER-on cycles over ``runs`` seeds."""
    return average_cycles(
        lambda seed: run_laser_on(
            workload, seed=seed, scale=scale, config=config
        ).cycles,
        runs=runs,
    )
