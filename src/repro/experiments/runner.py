"""Shared run helpers for the experiment harnesses.

The paper presents performance as "the average of 10 runs, after
excluding the slowest and fastest runs".  We keep the same *averaging
discipline* (trimmed mean: drop min and max) but default to 5 seeds
rather than 10 runs — see ``DEFAULT_RUNS`` for the rationale.  Every
experiment entry point (``run_overhead``, ``run_speedups``,
``run_sav_sweep``, the bench writer) accepts ``runs`` and threads it
through to these helpers, so a config that wants the paper's full 10
can ask for it.

:class:`SweepRunner` is the single fan-out path for every multi-run
experiment: the chaos soak, the threshold sweep and the bench writer
all shard their (workload, seed, …) cells over one
``ProcessPoolExecutor`` instead of hand-rolling three bespoke serial
loops.  Cells are independent and seed-deterministic, and the merge
preserves submission order, so results are byte-identical at any
worker count — parallelism changes wall-clock only.
"""

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence

from repro.core.config import LaserConfig
from repro.core.laser import Laser, LaserRunResult
from repro.sim.machine import Machine, RunResult
from repro.workloads.base import BuiltWorkload, Workload

__all__ = [
    "run_native",
    "run_built_native",
    "run_laser_on",
    "native_cycles",
    "laser_cycles",
    "average_cycles",
    "trimmed_mean",
    "DEFAULT_RUNS",
    "SweepRunner",
]

#: Seeds per measurement.  The paper averages 10 *runs* of a >1 minute
#: native binary; our analog of run-to-run variation is seed variation
#: in a simulator whose runs are deterministic per seed, and 5 seeds
#: (trimmed to the middle 3) already stabilizes the trimmed mean to
#: well under the 1-2% effects the experiments care about, at half the
#: suite wall-clock.  Pass ``runs=10`` to any experiment entry point to
#: reproduce the paper's count exactly.
DEFAULT_RUNS = 5


class SweepRunner:
    """Deterministic parallel fan-out over independent experiment cells.

    ``map(fn, cells)`` applies a module-level (picklable) ``fn`` to
    every cell and returns the results *in cell order* — the merge is
    deterministic regardless of which worker finished first, so a
    sweep's output is identical at any worker count.

    ``workers=None`` sizes the pool to the host (``os.cpu_count``);
    ``workers<=1`` — or a single cell — runs serially in-process with
    no pool at all.  Environments that forbid subprocess pools (some
    sandboxes block the semaphores ``ProcessPoolExecutor`` needs) fall
    back to the serial path with accounting in ``used_workers``.

    The process pool is created lazily on the first pooled ``map`` and
    *reused* across subsequent maps — a soak that loops over schedules
    pays worker spawn once, not once per schedule.  ``close()`` (or
    using the runner as a context manager) shuts the pool down; an
    unclosed pool is reaped with the runner.

    Workers receive *cell specs* (names, seeds, configs — small
    picklable values) and build the heavy objects themselves; results
    should likewise be reduced, picklable summaries, not live machines.

    Every ``map`` also records how much host wall-clock each cell cost
    (``cell_seconds``, measured inside the worker) so sweeps can report
    their own price — a pure observation that leaves results untouched.
    """

    def __init__(self, workers: Optional[int] = None):
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        #: Pool width actually used by the last ``map`` (1 = serial).
        self.used_workers = 1
        #: Per-cell host wall-clock seconds of the last ``map``, in
        #: cell order (measured in the worker, so pool scheduling gaps
        #: are excluded).
        self.cell_seconds: List[float] = []
        #: Wall-clock seconds the last ``map`` took end to end on the
        #: submitting side (what the operator actually waited).
        self.elapsed_seconds = 0.0
        #: Lifetime accounting across every ``map`` this runner ran —
        #: what a multi-schedule soak reports at the end.
        self.maps_run = 0
        self.lifetime_cell_seconds = 0.0
        self.lifetime_elapsed_seconds = 0.0
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_unavailable = False

    def map(self, fn: Callable, cells: Iterable) -> List:
        cells = list(cells)
        timed_fn = _Timed(fn)
        t0 = time.perf_counter()
        timed = self._dispatch(timed_fn, cells)
        self.elapsed_seconds = time.perf_counter() - t0
        self.cell_seconds = [seconds for seconds, _ in timed]
        self.maps_run += 1
        self.lifetime_cell_seconds += sum(s for s, _ in timed)
        self.lifetime_elapsed_seconds += self.elapsed_seconds
        return [result for _, result in timed]

    def _dispatch(self, fn: Callable, cells: List) -> List:
        width = min(self.workers, len(cells))
        if width <= 1:
            self.used_workers = 1
            return [fn(cell) for cell in cells]
        pool = self._ensure_pool()
        if pool is None:
            self.used_workers = 1
            return [fn(cell) for cell in cells]
        try:
            results = list(pool.map(fn, cells))
        except (OSError, PermissionError):
            # The pool died under us (host revoked subprocess rights
            # mid-soak): drop it and degrade to the serial path rather
            # than failing the sweep.
            self._pool_unavailable = True
            self.close()
            self.used_workers = 1
            return [fn(cell) for cell in cells]
        self.used_workers = width
        return results

    def _ensure_pool(self) -> Optional[ProcessPoolExecutor]:
        """The shared pool, created on first pooled map and reused.

        Returns ``None`` where subprocess pools are unavailable (some
        sandboxes block the semaphores ``ProcessPoolExecutor`` needs) —
        the decision is remembered, so a soak probes the host once.
        """
        if self._pool is None and not self._pool_unavailable:
            try:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            except (OSError, PermissionError):
                self._pool_unavailable = True
        return self._pool

    def close(self) -> None:
        """Shut the shared pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):
        # A runner that failed validation in __init__ has no pool slot.
        if getattr(self, "_pool", None) is not None:
            self.close()

    def starmap(self, fn: Callable, cells: Iterable[Sequence]) -> List:
        """``map`` for cells that are argument tuples."""
        return self.map(_Star(fn), cells)

    @property
    def total_cell_seconds(self) -> float:
        """Summed per-cell cost of the last ``map`` (CPU-time-ish: what
        the cells cost, as opposed to what the operator waited)."""
        return sum(self.cell_seconds)

    def cost_summary(self) -> str:
        """One line of sweep-cost accounting for CLI footers."""
        cells = len(self.cell_seconds)
        if not cells:
            return "sweep cost: no cells run"
        worst = max(self.cell_seconds)
        line = (
            "sweep cost: %d cells, %.2fs total cell time "
            "(max %.2fs/cell), %.2fs elapsed on %d worker(s)"
            % (cells, self.total_cell_seconds, worst,
               self.elapsed_seconds, self.used_workers)
        )
        if self.maps_run > 1:
            line += ("; lifetime: %d maps, %.2fs cell time, %.2fs elapsed"
                     % (self.maps_run, self.lifetime_cell_seconds,
                        self.lifetime_elapsed_seconds))
        return line

    def __repr__(self):
        return "<SweepRunner workers=%d>" % self.workers


class _Star:
    """Picklable adapter: unpack one cell tuple into ``fn(*cell)``."""

    def __init__(self, fn: Callable):
        self.fn = fn

    def __call__(self, cell):
        return self.fn(*cell)


class _Timed:
    """Picklable adapter: time one cell in the worker.

    Returns ``(seconds, result)``; the runner strips the timing before
    handing results back, so sweep outputs are byte-identical to the
    untimed path.
    """

    def __init__(self, fn: Callable):
        self.fn = fn

    def __call__(self, cell):
        t0 = time.perf_counter()
        result = self.fn(cell)
        return time.perf_counter() - t0, result


def run_built_native(built: BuiltWorkload, seed: int = 0,
                     max_cycles: int = 200_000_000) -> RunResult:
    """Execute a built workload with no monitoring attached."""
    machine = Machine(built.program, seed=seed, allocator=built.allocator)
    built.apply_init(machine)
    return machine.run(max_cycles=max_cycles)


def run_native(workload: Workload, seed: int = 0,
               scale: float = 1.0) -> RunResult:
    built = workload.build(heap_offset=0, seed=seed, scale=scale)
    return run_built_native(built, seed=seed)


def run_laser_on(workload: Workload, seed: int = 0, scale: float = 1.0,
                 config: Optional[LaserConfig] = None) -> LaserRunResult:
    cfg = (config or LaserConfig()).replace(seed=seed)
    return Laser(cfg).run_workload(workload, scale=scale)


def trimmed_mean(values: List[float]) -> float:
    """Mean after dropping the min and max (the paper's averaging)."""
    if not values:
        raise ValueError("no values to average")
    if len(values) <= 2:
        return sum(values) / len(values)
    ordered = sorted(values)
    trimmed = ordered[1:-1]
    return sum(trimmed) / len(trimmed)


def average_cycles(run: Callable[[int], int], runs: int = DEFAULT_RUNS) -> float:
    """Trimmed-mean cycles of ``run(seed)`` over ``runs`` seeds.

    ``runs`` is caller-facing on purpose: experiment configs that want
    the paper's 10-run averaging (or a quick 3-run smoke) pass it down
    rather than relying on the module default.
    """
    return trimmed_mean([float(run(seed)) for seed in range(runs)])


def native_cycles(workload: Workload, scale: float = 1.0,
                  runs: int = DEFAULT_RUNS) -> float:
    """Trimmed-mean native cycles over ``runs`` seeds."""
    return average_cycles(
        lambda seed: run_native(workload, seed=seed, scale=scale).cycles,
        runs=runs,
    )


def laser_cycles(workload: Workload, scale: float = 1.0,
                 runs: int = DEFAULT_RUNS,
                 config: Optional[LaserConfig] = None) -> float:
    """Trimmed-mean LASER-on cycles over ``runs`` seeds."""
    return average_cycles(
        lambda seed: run_laser_on(
            workload, seed=seed, scale=scale, config=config
        ).cycles,
        runs=runs,
    )
