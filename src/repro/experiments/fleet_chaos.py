"""Fleet chaos soak: burn one tenant, demand the others never notice.

The fleet's isolation claim (``repro.fleet``) is stronger than the
single-run recovery claim the plain chaos soak pins.  There, a crashed
monitor must *converge* to the fault-free diagnosis.  Here, a fleet
runs N tenants while a schedule of tenant crashes, floods and
transport partitions is aimed at exactly one **victim** tenant, and:

* every **bystander** tenant's report and health must be byte-for-byte
  identical to its fault-free single-run baseline — not converged,
  *identical* (its shard shares nothing with the victim's, so there is
  nothing for the fault to perturb);
* the victim must meet its schedule's own criterion: crash schedules
  recover to the byte-identical report (the surviving session is
  fault-free), partition and in-shard crash schedules converge by
  report signature, flood schedules keep coverage (shedding costs
  time-to-detect, never lines), and the eviction schedule must
  actually evict — the fleet's honest answer, never a silent abort.

Cells fan out at the (schedule, seed) level over one shared
:class:`~repro.experiments.runner.SweepRunner`; the fleet inside each
cell runs its shards serially (no nested pools).  The victim's shard
runs with tracing on, so each cell carries a per-tenant recovery trace
for the CI artifact.

Run directly::

    PYTHONPATH=src python -m repro.experiments.fleet_chaos \\
        --out fleet_chaos.json --trace-out tenant_recovery.json
"""

import json
from typing import Dict, List, Optional, Sequence

from repro.core.config import LaserConfig
from repro.core.laser import Laser
from repro.experiments.chaos import report_signature
from repro.experiments.runner import SweepRunner
from repro.faults import FaultPlan
from repro.fleet.health import TenantState
from repro.fleet.pool import FleetPool
from repro.fleet.tenants import plan_fleet
from repro.workloads import get_workload

__all__ = [
    "FLEET_SCHEDULES",
    "FleetChaosOutcome",
    "fleet_schedule_plan",
    "run_fleet_chaos_case",
    "run_fleet_chaos_soak",
    "render_fleet_outcomes",
]

#: Named fleet fault schedules, every one aimed at the victim tenant
#: (tenant 0 of the planned fleet).  Values are fault-site kwargs, as
#: for :meth:`~repro.faults.FaultPlan.add`.  Occurrence indices:
#: ``tenant.crash``/``tenant.flood`` are consulted once per session
#: attempt, ``shard.partition`` once per poll, the in-shard sites as on
#: the single-run path.
FLEET_SCHEDULES: Dict[str, Dict[str, dict]] = {
    # The client dies at its first session; the restart session runs
    # fault-free, so the recovered report must be byte-identical.
    "tenant-crash": {"tenant.crash": dict(at=(0,))},
    # Two consecutive client deaths: backoff doubles, then recovery.
    "tenant-crash-repeated": {"tenant.crash": dict(at=(0, 1))},
    # The client dies at every attempt: the restart budget must run
    # out and the tenant must be evicted, not retried forever.
    "tenant-evict": {"tenant.crash": dict(probability=1.0)},
    # The standard record storm, confined to the victim's own budget.
    "tenant-flood": {"tenant.flood": dict(at=(0,))},
    # The victim's transport drops two polls; the backlog is delivered
    # late and the diagnosis converges.
    "shard-partition": {"shard.partition": dict(at=(2, 5))},
    # In-shard detector crash: the victim's own journal/checkpoint
    # stack recovers it, invisibly to everyone else.
    "shard-detector-crash": {"detector.crash": dict(at=(8,))},
    # Crash plus a corrupt newest checkpoint generation: recovery must
    # fall back a generation inside the victim's shard alone.
    "shard-corrupt-fallback": {"detector.crash": dict(at=(10,)),
                               "checkpoint.corrupt": dict(at=(0,))},
    # Compound: flood and partition the same tenant.
    "flood-plus-partition": {"tenant.flood": dict(at=(0,)),
                             "shard.partition": dict(at=(3,))},
}

#: What the *victim* must achieve under each schedule (bystanders are
#: always held to byte identity).
VICTIM_CRITERIA: Dict[str, str] = {
    "tenant-crash": "byte",
    "tenant-crash-repeated": "byte",
    "tenant-evict": "evicted",
    "tenant-flood": "coverage",
    "shard-partition": "signature",
    "shard-detector-crash": "signature",
    "shard-corrupt-fallback": "signature",
    "flood-plus-partition": "coverage",
}

#: Default soak fleet size: a mixed 4-tenant fleet per cell keeps the
#: grid CI-sized while still giving three bystanders per schedule.
DEFAULT_TENANTS = 4


def fleet_schedule_plan(name: str, seed: int = 0) -> FaultPlan:
    """Materialize a named fleet schedule as one tenant's FaultPlan."""
    plan = FaultPlan(seed=seed)
    for site, kwargs in sorted(FLEET_SCHEDULES[name].items()):
        plan.add(site, **kwargs)
    return plan


class FleetChaosOutcome:
    """One (schedule, seed) cell: the fleet run vs per-tenant baselines."""

    __slots__ = ("schedule", "seed", "criterion", "victim", "victim_state",
                 "victim_ok", "isolated", "bystanders", "restarts", "shed",
                 "partitions", "victim_outcome")

    def __init__(self, schedule: str, seed: int, criterion: str,
                 victim_name: str, fleet_result, baselines: Dict[str, object]):
        self.schedule = schedule
        self.seed = seed
        self.criterion = criterion
        self.victim = victim_name
        victim = fleet_result.tenant(victim_name)
        self.victim_state = victim.state
        self.victim_ok = self._judge_victim(victim, baselines[victim_name])
        #: name -> byte-identical-to-baseline, for every bystander.
        self.bystanders = {
            outcome.tenant: self._byte_identical(
                outcome, baselines[outcome.tenant])
            for outcome in fleet_result.outcomes
            if outcome.tenant != victim_name
        }
        self.isolated = all(self.bystanders.values())
        self.restarts = fleet_result.health.total_restarts
        self.shed = fleet_result.health.total_shed
        self.partitions = sum(
            o.transport_partitions for o in fleet_result.outcomes)
        #: The victim's full outcome (sessions, recovery trace) for the
        #: CI artifact.
        self.victim_outcome = victim.as_dict()

    @staticmethod
    def _byte_identical(outcome, baseline) -> bool:
        return (outcome.report_render == baseline.report.render()
                and outcome.health == baseline.health.as_dict())

    def _judge_victim(self, victim, baseline) -> bool:
        base_signature = report_signature(baseline)
        if self.criterion == "evicted":
            return (victim.state == TenantState.EVICTED
                    and victim.report_render is None)
        if victim.state == TenantState.EVICTED:
            return False
        if self.criterion == "byte":
            return self._byte_identical(victim, baseline)
        if self.criterion == "signature":
            return victim.signature == base_signature
        if self.criterion == "coverage":
            base_lines = {location for location, _ in base_signature}
            victim_lines = {location for location, _ in victim.signature}
            return base_lines <= victim_lines
        raise ValueError("unknown victim criterion %r" % self.criterion)

    @property
    def ok(self) -> bool:
        return self.victim_ok and self.isolated

    def as_dict(self) -> dict:
        return {
            "schedule": self.schedule,
            "seed": self.seed,
            "criterion": self.criterion,
            "victim": self.victim,
            "victim_state": self.victim_state,
            "victim_ok": self.victim_ok,
            "isolated": self.isolated,
            "bystanders": self.bystanders,
            "restarts": self.restarts,
            "shed": self.shed,
            "partitions": self.partitions,
            "ok": self.ok,
            "victim_outcome": self.victim_outcome,
        }

    def __repr__(self):
        return "<FleetChaosOutcome %s seed=%d %s>" % (
            self.schedule, self.seed, "ok" if self.ok else "FAILED")


def run_fleet_chaos_case(schedule: str, seed: int = 0,
                         tenants: int = DEFAULT_TENANTS,
                         config: Optional[LaserConfig] = None
                         ) -> FleetChaosOutcome:
    """One cell: plan a fleet, burn tenant 0, compare everyone.

    The fleet's shards run serially inside this call (cells are the
    parallel unit; no nested pools), and the victim's shard runs with
    tracing on so the outcome carries its recovery story.
    """
    spec = plan_fleet(n=tenants, seed=seed, base_config=config)
    victim = spec.tenants[0]
    # Tracing is observationally free (bit-identity contract), so the
    # victim's baseline uses the same traced config.
    victim.config = victim.config.replace(trace_enabled=True)
    spec.faults[victim.name] = fleet_schedule_plan(schedule, seed=seed)
    fleet_result = FleetPool(spec, workers=1).run()
    baselines = {
        tenant.name: Laser(tenant.config).run_workload(
            get_workload(tenant.workload))
        for tenant in spec.tenants
    }
    return FleetChaosOutcome(schedule, seed, VICTIM_CRITERIA[schedule],
                             victim.name, fleet_result, baselines)


def _fleet_cell(schedule: str, seed: int, tenants: int,
                config: Optional[LaserConfig]) -> FleetChaosOutcome:
    """One soak cell, shaped for pool workers (module-level, picklable)."""
    return run_fleet_chaos_case(schedule, seed=seed, tenants=tenants,
                                config=config)


def run_fleet_chaos_soak(schedules: Optional[Sequence[str]] = None,
                         seeds: Sequence[int] = (0,),
                         tenants: int = DEFAULT_TENANTS,
                         config: Optional[LaserConfig] = None,
                         workers: Optional[int] = None,
                         runner: Optional[SweepRunner] = None
                         ) -> List[FleetChaosOutcome]:
    """The full soak: every (schedule, seed) cell, in grid order."""
    cells = [
        (schedule, seed, tenants, config)
        for schedule in (schedules or sorted(FLEET_SCHEDULES))
        for seed in seeds
    ]
    if runner is None:
        runner = SweepRunner(workers)
    return runner.starmap(_fleet_cell, cells)


def render_fleet_outcomes(outcomes: Sequence[FleetChaosOutcome]) -> str:
    """Human-readable soak summary table."""
    lines = ["%-24s %4s  %-10s  %-9s  %-8s  %s" % (
        "schedule", "seed", "criterion", "victim", "isolated",
        "fleet bill")]
    for outcome in outcomes:
        lines.append("%-24s %4d  %-10s  %-9s  %-8s  restarts=%d shed=%d "
                     "partitions=%d" % (
                         outcome.schedule, outcome.seed, outcome.criterion,
                         "ok" if outcome.victim_ok else "FAILED",
                         "yes" if outcome.isolated else "NO",
                         outcome.restarts, outcome.shed,
                         outcome.partitions))
    failed = sum(1 for outcome in outcomes if not outcome.ok)
    lines.append("%d/%d cells ok" % (len(outcomes) - failed, len(outcomes)))
    return "\n".join(lines)


def write_artifact(outcomes: Sequence[FleetChaosOutcome], path: str) -> None:
    """The whole soak as one JSON document (the CI artifact)."""
    with open(path, "w") as fh:
        json.dump([outcome.as_dict() for outcome in outcomes], fh,
                  indent=2, sort_keys=True)


def write_recovery_trace(outcomes: Sequence[FleetChaosOutcome],
                         path: str) -> bool:
    """One per-tenant recovery trace (the richest victim story found).

    Picks the cell whose victim logged the most recovery events — the
    artifact a failed CI run is debugged from.  Returns False (writing
    nothing) if no cell traced any recovery.
    """
    best = None
    for outcome in outcomes:
        events = outcome.victim_outcome["recovery_events"]
        if events and (best is None
                       or len(events)
                       > len(best.victim_outcome["recovery_events"])):
            best = outcome
    if best is None:
        return False
    with open(path, "w") as fh:
        json.dump({
            "schedule": best.schedule,
            "seed": best.seed,
            "tenant": best.victim,
            "state": best.victim_state,
            "sessions": best.victim_outcome["sessions"],
            "recovery_events": best.victim_outcome["recovery_events"],
        }, fh, indent=2, sort_keys=True)
    return True


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--schedules", nargs="*", default=None,
                        choices=sorted(FLEET_SCHEDULES), metavar="SCHEDULE")
    parser.add_argument("--seeds", nargs="*", type=int, default=[0])
    parser.add_argument("--tenants", type=int, default=DEFAULT_TENANTS)
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool width (default: host cores; "
                             "1 = serial)")
    parser.add_argument("--out", default=None,
                        help="write the fleet soak JSON artifact here")
    parser.add_argument("--trace-out", default=None,
                        help="write one per-tenant recovery trace here")
    args = parser.parse_args(argv)
    outcomes: List[FleetChaosOutcome] = []
    with SweepRunner(args.workers) as runner:
        for schedule in (args.schedules or sorted(FLEET_SCHEDULES)):
            batch = run_fleet_chaos_soak(schedules=[schedule],
                                         seeds=args.seeds,
                                         tenants=args.tenants,
                                         runner=runner)
            outcomes.extend(batch)
            print("%-24s %d cells: restarts=%d shed=%d partitions=%d" % (
                schedule, len(batch),
                sum(cell.restarts for cell in batch),
                sum(cell.shed for cell in batch),
                sum(cell.partitions for cell in batch)))
        print()
        print(render_fleet_outcomes(outcomes))
        print(runner.cost_summary())
    if args.out:
        write_artifact(outcomes, args.out)
        print("wrote %s" % args.out)
    if args.trace_out:
        if write_recovery_trace(outcomes, args.trace_out):
            print("wrote %s" % args.trace_out)
        else:
            print("no recovery events traced; %s not written"
                  % args.trace_out)
    return 0 if all(outcome.ok for outcome in outcomes) else 1


if __name__ == "__main__":
    raise SystemExit(main())
