"""Figure 13: the effect of the sample-after value on dedup's runtime.

The paper sweeps SAV from 1 to 31 (1 and all primes — "experience
reports ... suggest that prime numbers are good SAV choices") on dedup,
the benchmark most sensitive to sampling: per-event recording (SAV=1)
costs ~50% runtime, modest sampling brings it down to ~6% at the
default SAV=19, with no marginal benefit beyond.
"""

from typing import List, Optional, Tuple

from repro.core.config import LaserConfig
from repro.experiments.runner import (
    run_laser_on,
    run_native,
    trimmed_mean,
)
from repro.experiments.tables import render_table
from repro.workloads.registry import get_workload

__all__ = ["SAV_VALUES", "SavResult", "run_sav_sweep"]

#: 1 plus every prime up to 31 (the paper's sweep).
SAV_VALUES = [1, 2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31]


class SavResult:
    def __init__(self, benchmark: str, points: List[Tuple[int, float]]):
        self.benchmark = benchmark
        #: [(sav, normalized runtime)]
        self.points = points

    def normalized_at(self, sav: int) -> float:
        for s, norm in self.points:
            if s == sav:
                return norm
        raise KeyError(sav)

    def render(self) -> str:
        headers = ["SAV", "normalized runtime"]
        body = [[str(s), "%.3f" % n] for s, n in self.points]
        return render_table(
            headers, body,
            title="Figure 13: %s runtime vs sample-after value" % self.benchmark,
        )


def run_sav_sweep(benchmark: str = "dedup", runs: int = 3,
                  scale: float = 1.0,
                  sav_values: Optional[List[int]] = None) -> SavResult:
    workload = get_workload(benchmark)
    native = trimmed_mean([
        float(run_native(workload, seed=s, scale=scale).cycles)
        for s in range(runs)
    ])
    points = []
    for sav in sav_values or SAV_VALUES:
        config = LaserConfig(sample_after_value=sav, repair_enabled=False)
        cycles = trimmed_mean([
            float(run_laser_on(workload, seed=s, scale=scale,
                               config=config).cycles)
            for s in range(runs)
        ])
        points.append((sav, cycles / native))
    return SavResult(benchmark, points)


if __name__ == "__main__":  # pragma: no cover
    print(run_sav_sweep().render())
