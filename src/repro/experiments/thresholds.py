"""Figure 9: detection accuracy vs. the rate threshold.

The paper sweeps LASERDETECT's rate threshold from 32 to 64K HITMs/sec
(log scale) and counts total false positives and false negatives across
the suite.  Because thresholds are applied at *report* time, the sweep
needs only one monitored run per workload — the reports are re-cut
offline, exactly as Section 4.2 describes.
"""

from typing import List, Optional, Tuple

from repro.core.config import LaserConfig
from repro.experiments.accuracy import score_report_lines
from repro.experiments.runner import run_laser_on
from repro.experiments.tables import render_table
from repro.workloads.registry import all_workloads

__all__ = ["THRESHOLDS", "ThresholdSweepResult", "run_threshold_sweep"]

#: 32 ... 64K, doubling (the paper's log-scale x axis).
THRESHOLDS = [32 * (2 ** i) for i in range(12)]


class ThresholdSweepResult:
    def __init__(self, points: List[Tuple[float, int, int]],
                 default_threshold: float):
        #: [(threshold, false_positives, false_negatives)]
        self.points = points
        self.default_threshold = default_threshold

    def at(self, threshold: float) -> Tuple[int, int]:
        for t, fp, fn in self.points:
            if t == threshold:
                return fp, fn
        raise KeyError(threshold)

    def render(self) -> str:
        headers = ["threshold (HITM/s)", "false positives", "false negatives"]
        body = []
        for t, fp, fn in self.points:
            marker = "  <- default" if t == self.default_threshold else ""
            body.append(["%g%s" % (t, marker), str(fp), str(fn)])
        return render_table(headers, body,
                            title="Figure 9: accuracy vs rate threshold")


def run_threshold_sweep(workloads=None, seed: int = 0, scale: float = 1.0,
                        thresholds: Optional[List[float]] = None,
                        config: Optional[LaserConfig] = None) -> ThresholdSweepResult:
    cfg = config or LaserConfig()
    sweep = [float(t) for t in (thresholds or THRESHOLDS)]
    # One monitored run per workload; keep the full pipelines around and
    # re-cut their reports per threshold.
    monitored = []
    for workload in workloads or all_workloads():
        result = run_laser_on(workload, seed=seed, scale=scale, config=cfg)
        monitored.append((workload, result))

    points = []
    for threshold in sweep:
        total_fp = 0
        total_fn = 0
        for workload, result in monitored:
            report = result.pipeline.report(result.cycles, threshold)
            score = score_report_lines(workload, report.reported_locations())
            total_fp += score["fp"]
            total_fn += score["fn"]
        points.append((threshold, total_fp, total_fn))
    return ThresholdSweepResult(points, cfg.rate_threshold)


if __name__ == "__main__":  # pragma: no cover
    print(run_threshold_sweep().render())
