"""Figure 9: detection accuracy vs. the rate threshold.

The paper sweeps LASERDETECT's rate threshold from 32 to 64K HITMs/sec
(log scale) and counts total false positives and false negatives across
the suite.  Because thresholds are applied at *report* time, the sweep
needs only one monitored run per workload — the reports are re-cut
offline, exactly as Section 4.2 describes.

Workloads are independent, so the sweep shards per-workload over the
shared :class:`~repro.experiments.runner.SweepRunner` process pool:
each worker monitors its workload once, re-cuts its report at every
threshold, and returns just the (fp, fn) grid; the merge sums the
grids in workload order, so totals are identical at any worker count.
"""

from typing import List, Optional, Sequence, Tuple

from repro.core.config import LaserConfig
from repro.experiments.accuracy import score_report_lines
from repro.experiments.runner import SweepRunner, run_laser_on
from repro.experiments.tables import render_table
from repro.workloads.registry import all_workloads, get_workload

__all__ = ["THRESHOLDS", "ThresholdSweepResult", "run_threshold_sweep"]

#: 32 ... 64K, doubling (the paper's log-scale x axis).
THRESHOLDS = [32 * (2 ** i) for i in range(12)]


class ThresholdSweepResult:
    def __init__(self, points: List[Tuple[float, int, int]],
                 default_threshold: float):
        #: [(threshold, false_positives, false_negatives)]
        self.points = points
        self.default_threshold = default_threshold

    def at(self, threshold: float,
           rel_tol: float = 1e-9) -> Tuple[int, int]:
        """Accuracy at the swept threshold nearest ``threshold``.

        Sweep grids are often computed (``base * 2**k``, numpy-style
        linspaces), so exact float equality against a literal like
        ``1000.0`` is a trap.  The lookup snaps to the nearest swept
        point within ``rel_tol`` (relative to the requested threshold)
        and raises a ``KeyError`` naming the available grid otherwise.
        """
        if not self.points:
            raise KeyError(
                "threshold %g: sweep has no points" % threshold)
        t, fp, fn = min(self.points, key=lambda p: abs(p[0] - threshold))
        if abs(t - threshold) > rel_tol * max(abs(threshold), abs(t), 1.0):
            raise KeyError(
                "threshold %g not in sweep grid %s (nearest is %g)"
                % (threshold, [p[0] for p in self.points], t))
        return fp, fn

    def render(self) -> str:
        headers = ["threshold (HITM/s)", "false positives", "false negatives"]
        body = []
        for t, fp, fn in self.points:
            marker = "  <- default" if t == self.default_threshold else ""
            body.append(["%g%s" % (t, marker), str(fp), str(fn)])
        return render_table(headers, body,
                            title="Figure 9: accuracy vs rate threshold")


def _threshold_cell(name: str, seed: int, scale: float,
                    thresholds: Sequence[float],
                    config: Optional[LaserConfig]) -> List[Tuple[int, int]]:
    """One workload's sweep: monitor once, re-cut at every threshold.

    Module-level and reduced-output on purpose: pool workers receive
    only the cell spec and return only the per-threshold (fp, fn)
    pairs, never a live pipeline.
    """
    workload = get_workload(name)
    result = run_laser_on(workload, seed=seed, scale=scale, config=config)
    scores = []
    for threshold in thresholds:
        report = result.pipeline.report(result.cycles, threshold)
        score = score_report_lines(workload, report.reported_locations())
        scores.append((score["fp"], score["fn"]))
    return scores


def run_threshold_sweep(workloads=None, seed: int = 0, scale: float = 1.0,
                        thresholds: Optional[List[float]] = None,
                        config: Optional[LaserConfig] = None,
                        workers: Optional[int] = None,
                        runner: Optional[SweepRunner] = None) -> ThresholdSweepResult:
    """Figure 9 sweep.  Pass ``runner`` to reuse a caller's
    :class:`SweepRunner`; its ``cost_summary`` then covers this sweep."""
    cfg = config or LaserConfig()
    sweep = [float(t) for t in (thresholds or THRESHOLDS)]
    names = [w.name for w in (workloads or all_workloads())]
    cells = [(name, seed, scale, tuple(sweep), config) for name in names]
    if runner is None:
        runner = SweepRunner(workers)
    grids = runner.starmap(_threshold_cell, cells)

    points = []
    for index, threshold in enumerate(sweep):
        total_fp = sum(grid[index][0] for grid in grids)
        total_fn = sum(grid[index][1] for grid in grids)
        points.append((threshold, total_fp, total_fn))
    return ThresholdSweepResult(points, cfg.rate_threshold)


if __name__ == "__main__":  # pragma: no cover
    _runner = SweepRunner(None)
    print(run_threshold_sweep(runner=_runner).render())
    print(_runner.cost_summary())
