"""Figure 10 (runtime overhead) and Figure 12 (LASER time breakdown).

Figure 10: normalized runtime of every benchmark under LASER and under
the VTune baseline, relative to native execution (trimmed mean over
seeds, as the paper averages 10 runs dropping the extremes).  The
paper's headline numbers: LASER geomean 1.02 with kmeans worst at 1.22
and linear_regression/histogram'/lu_ncb *faster* than native (repair and
the lu_ncb layout coincidence); VTune geomean 1.84 with string_match
worst at 7x.

Figure 12: for the highest-overhead benchmarks, the driver and detector
CPU time as a fraction of application CPU time — both are tiny, showing
the overhead is interference, not LASER computation.
"""

from typing import List, Optional

from repro.baselines.vtune import VTuneProfiler
from repro.core.config import LaserConfig
from repro.experiments.runner import (
    DEFAULT_RUNS,
    run_laser_on,
    run_native,
    trimmed_mean,
)
from repro.experiments.tables import geomean, render_bars, render_table
from repro.workloads.registry import all_workloads

__all__ = ["OverheadRow", "OverheadResult", "run_overhead",
           "BreakdownRow", "run_time_breakdown"]


class OverheadRow:
    def __init__(self, name: str, laser_norm: float, vtune_norm: float,
                 laser_repaired: bool):
        self.name = name
        self.laser_norm = laser_norm
        self.vtune_norm = vtune_norm
        self.laser_repaired = laser_repaired


class OverheadResult:
    """Figure 10's data: per-benchmark normalized runtimes + geomeans."""

    def __init__(self, rows: List[OverheadRow]):
        self.rows = rows

    @property
    def laser_geomean(self) -> float:
        return geomean([row.laser_norm for row in self.rows])

    @property
    def vtune_geomean(self) -> float:
        return geomean([row.vtune_norm for row in self.rows])

    def row_for(self, name: str) -> Optional[OverheadRow]:
        for row in self.rows:
            if row.name == name:
                return row
        return None

    def worst_laser(self) -> OverheadRow:
        return max(self.rows, key=lambda r: r.laser_norm)

    def worst_vtune(self) -> OverheadRow:
        return max(self.rows, key=lambda r: r.vtune_norm)

    def render(self) -> str:
        headers = ["benchmark", "LASER", "VTune", "repaired"]
        body = [
            [r.name, "%.3f" % r.laser_norm, "%.3f" % r.vtune_norm,
             "yes" if r.laser_repaired else ""]
            for r in self.rows
        ]
        body.append(["geomean", "%.3f" % self.laser_geomean,
                     "%.3f" % self.vtune_geomean, ""])
        table = render_table(
            headers, body,
            title="Figure 10: normalized runtime (lower is better)")
        bars = render_bars(
            [r.name for r in self.rows],
            [r.laser_norm for r in self.rows],
            title="\nLASER normalized runtime",
        )
        return table + "\n" + bars


def run_overhead(workloads=None, runs: int = DEFAULT_RUNS,
                 scale: float = 1.0,
                 config: Optional[LaserConfig] = None) -> OverheadResult:
    rows = []
    for workload in workloads or all_workloads():
        native = trimmed_mean([
            float(run_native(workload, seed=s, scale=scale).cycles)
            for s in range(runs)
        ])
        laser_runs = [
            run_laser_on(workload, seed=s, scale=scale, config=config)
            for s in range(runs)
        ]
        laser = trimmed_mean([float(r.cycles) for r in laser_runs])
        vtune = trimmed_mean([
            float(VTuneProfiler(seed=s).run_workload(workload, scale=scale).cycles)
            for s in range(runs)
        ])
        rows.append(OverheadRow(
            workload.name,
            laser / native,
            vtune / native,
            any(r.repaired for r in laser_runs),
        ))
    return OverheadResult(rows)


class BreakdownRow:
    """Figure 12: one high-overhead benchmark's LASER time breakdown."""

    def __init__(self, name: str, slowdown: float, driver_pct: float,
                 detector_pct: float):
        self.name = name
        self.slowdown = slowdown
        self.driver_pct = driver_pct
        self.detector_pct = detector_pct


class BreakdownResult:
    def __init__(self, rows: List[BreakdownRow]):
        self.rows = rows

    def render(self) -> str:
        headers = ["benchmark", "slowdown", "driver %", "detector %"]
        body = [
            [r.name, "%.2fx" % r.slowdown, "%.2f%%" % r.driver_pct,
             "%.2f%%" % r.detector_pct]
            for r in self.rows
        ]
        return render_table(
            headers, body,
            title="Figure 12: driver/detector share of application CPU time",
        )


def run_time_breakdown(names=("kmeans", "x264", "water_nsquared"),
                       seed: int = 0, scale: float = 1.0) -> BreakdownResult:
    """Figure 12 for the benchmarks the paper highlights."""
    from repro.workloads.registry import get_workload

    rows = []
    for name in names:
        workload = get_workload(name)
        native = run_native(workload, seed=seed, scale=scale)
        laser = run_laser_on(workload, seed=seed, scale=scale)
        app_cpu = max(1, laser.application_cpu_cycles)
        rows.append(BreakdownRow(
            name,
            laser.cycles / native.cycles,
            100.0 * laser.driver_cycles / app_cpu,
            100.0 * laser.detector_cycles / app_cpu,
        ))
    return BreakdownResult(rows)


if __name__ == "__main__":  # pragma: no cover
    result = run_overhead(runs=3)
    print(result.render())
    print()
    print(run_time_breakdown().render())
