"""Figure 14: LASER vs. manual fixes vs. the Sheriff schemes.

Normalized runtime of LASER, the manually-fixed binaries (where a fix
exists), Sheriff-Detect and Sheriff-Protect, for the benchmarks where
at least one Sheriff scheme runs.  An "x" marks a runtime error — and,
as in the paper, four benchmarks (marked "*") only run under Sheriff
with the reduced simlarge input.

The paper's shapes this experiment reproduces:

* Sheriff *fixes* histogram' and linear_regression even though
  Sheriff-Detect detects nothing in them (the private address spaces
  physically remove false sharing);
* on synchronization-heavy code (water_nsquared) the threads-as-
  processes execution model collapses;
* LASER is uniformly low-overhead.
"""

from typing import List, Optional

from repro.baselines.sheriff import SheriffMode, run_sheriff
from repro.core.config import LaserConfig
from repro.errors import SheriffCrash, SheriffIncompatible
from repro.experiments.runner import (
    run_built_native,
    run_laser_on,
    run_native,
)
from repro.experiments.tables import render_table
from repro.workloads.base import SheriffSupport

__all__ = ["SheriffComparisonRow", "SheriffComparisonResult",
           "run_sheriff_comparison", "FIGURE14_BENCHMARKS"]

#: The benchmarks of Figure 14 ("*" = Sheriff needs the reduced input).
FIGURE14_BENCHMARKS = [
    "blackscholes", "ferret", "histogram", "histogram'", "kmeans",
    "linear_regression", "lu_cb", "lu_ncb", "matrix_multiply", "pca",
    "radix", "raytrace.splash2x", "reverse_index", "string_match",
    "swaptions", "water_nsquared", "water_spatial",
]


class SheriffComparisonRow:
    def __init__(self, name: str, reduced_input: bool):
        self.name = name
        self.reduced_input = reduced_input
        self.laser: Optional[float] = None
        self.manual: Optional[float] = None
        self.sheriff_detect: Optional[float] = None  # None -> x
        self.sheriff_protect: Optional[float] = None

    @staticmethod
    def _cell(value: Optional[float]) -> str:
        return "x" if value is None else "%.3f" % value

    def cells(self) -> List[str]:
        label = self.name + ("*" if self.reduced_input else "")
        return [
            label,
            "%.3f" % self.laser,
            "-" if self.manual is None else "%.3f" % self.manual,
            self._cell(self.sheriff_detect),
            self._cell(self.sheriff_protect),
        ]


class SheriffComparisonResult:
    def __init__(self, rows: List[SheriffComparisonRow]):
        self.rows = rows

    def row_for(self, name: str) -> Optional[SheriffComparisonRow]:
        for row in self.rows:
            if row.name == name:
                return row
        return None

    def render(self) -> str:
        headers = ["benchmark", "LASER", "manual fix",
                   "Sheriff-Detect", "Sheriff-Protect"]
        return render_table(
            headers, [row.cells() for row in self.rows],
            title="Figure 14: normalized runtime (lower is better; "
                  "x = runtime error, * = reduced input for Sheriff)",
        )


def run_sheriff_comparison(names=None, seed: int = 0, scale: float = 1.0,
                           config: Optional[LaserConfig] = None) -> SheriffComparisonResult:
    from repro.workloads.registry import get_workload

    rows = []
    for name in names or FIGURE14_BENCHMARKS:
        workload = get_workload(name)
        reduced = (
            workload.sheriff_support is SheriffSupport.CRASH
            and workload.sheriff_reduced_input_ok
        )
        row = SheriffComparisonRow(name, reduced)
        # Sheriff normalizes against native at the input Sheriff uses.
        sheriff_scale = scale * 0.5 if reduced else scale
        native = run_native(workload, seed=seed, scale=scale).cycles
        sheriff_native = (
            run_native(workload, seed=seed, scale=sheriff_scale).cycles
            if reduced else native
        )

        row.laser = run_laser_on(workload, seed=seed, scale=scale,
                                 config=config).cycles / native

        fixed = workload.build_fixed(heap_offset=0, seed=seed, scale=scale)
        if fixed is not None:
            row.manual = run_built_native(fixed, seed=seed).cycles / native

        for mode, attr in ((SheriffMode.DETECT, "sheriff_detect"),
                           (SheriffMode.PROTECT, "sheriff_protect")):
            try:
                result = run_sheriff(workload, mode, seed=seed, scale=scale)
                setattr(row, attr, result.cycles / sheriff_native)
            except (SheriffCrash, SheriffIncompatible):
                setattr(row, attr, None)
        rows.append(row)
    return SheriffComparisonResult(rows)


if __name__ == "__main__":  # pragma: no cover
    print(run_sheriff_comparison().render())
