"""The overload-control frontier: overhead vs detection latency vs accuracy.

The overload controller (:mod:`repro.control`) trades detection
latency for bounded overhead: raising the SAV and shedding admissions
under a record storm keeps the detector cheap, but each surviving
record stands for more events, so the evidence thresholds take longer
to cross.  This experiment maps that frontier empirically — the
Figure 9 sweep extended into the overload regime.

Every cell runs one workload under a standard ``load.burst`` storm at
one of four controller *profiles*:

* ``off``    — controller disabled (the PR 5 baseline; eats the storm),
* ``on``     — controller enabled at its shipped defaults,
* ``tight``  — hair-trigger ladder (escalate fast, small budget),
* ``loose``  — patient ladder (escalate slow, generous budget),

and reports three axes per cell:

* **overhead** — monitored-cycles / native-cycles under the storm;
* **detect latency** — machine cycle of the first interim report line
  crossing the rate threshold (``detect.line_over_threshold``), i.e.
  time-to-first-detection; ``-`` if the run never detects;
* **accuracy** — the final report's false positives / negatives
  against the workload's ground-truth bug database.

Workload×profile cells are independent, so they shard over the shared
:class:`~repro.experiments.runner.SweepRunner` process pool; workers
return plain dicts and the merge preserves cell order, so the table is
identical at any worker count.

Usage::

    python -m repro.experiments.frontier [--workloads a,b] [--seed N]
        [--workers W] [--out frontier.json]
"""

import json
from typing import Dict, List, Optional, Sequence

from repro.core.config import LaserConfig
from repro.core.laser import Laser
from repro.experiments.accuracy import score_report_lines
from repro.experiments.runner import SweepRunner, run_native
from repro.experiments.tables import render_table
from repro.faults import FaultPlan
from repro.workloads.registry import get_workload

__all__ = [
    "CONTROL_PROFILES",
    "FRONTIER_WORKLOADS",
    "FrontierResult",
    "run_frontier_sweep",
]

#: Long-runway, steady-HITM workloads: the storm needs room to engage
#: the ladder and the run needs to outlive the recovery.
FRONTIER_WORKLOADS = ("linear_regression", "kmeans", "volrend")

#: The standard storm every cell faces (``load.burst``; the site is
#: consulted per real HITM, so this roughly multiplies record flow by
#: ``1 + 0.5 * 16 = 9`` while it lasts).
BURST_PROBABILITY = 0.5
BURST_MAX_FIRES = 1200

#: Controller profiles: config overrides per named ladder temperament.
CONTROL_PROFILES: Dict[str, Dict] = {
    "off": {"control_enabled": False},
    "on": {"control_enabled": True},
    "tight": {
        "control_enabled": True,
        "control_budget_records": 64,
        "control_escalate_after": 1,
        "control_recover_after": 1,
    },
    "loose": {
        "control_enabled": True,
        "control_budget_records": 256,
        "control_escalate_after": 3,
        "control_recover_after": 2,
    },
}

#: Render/merge order for the profiles.
PROFILE_ORDER = ("off", "on", "tight", "loose")


class FrontierResult:
    """The frontier grid: one row dict per (workload, profile) cell."""

    def __init__(self, rows: List[Dict]):
        self.rows = rows

    def cell(self, workload: str, profile: str) -> Dict:
        for row in self.rows:
            if row["workload"] == workload and row["profile"] == profile:
                return row
        raise KeyError((workload, profile))

    def render(self) -> str:
        headers = ["workload", "profile", "overhead", "detect@cycle",
                   "fp", "fn", "shed", "peak mode"]
        body = []
        for row in self.rows:
            latency = ("%d" % row["detect_cycle"]
                       if row["detect_cycle"] is not None else "-")
            body.append([
                row["workload"], row["profile"],
                "%.3fx" % row["overhead"], latency,
                str(row["fp"]), str(row["fn"]),
                str(row["records_shed"]), row["peak_mode"],
            ])
        return render_table(
            headers, body,
            title="Overload frontier: overhead vs detection latency "
                  "vs accuracy under a record storm",
        )

    def as_dict(self) -> Dict:
        return {"schema": "laser-frontier/v1", "rows": self.rows}


def _frontier_cell(name: str, profile: str, seed: int) -> Dict:
    """One cell: run the workload under the storm at one profile."""
    workload = get_workload(name)
    native = run_native(workload, seed=seed)
    cfg = LaserConfig().replace(seed=seed, trace_enabled=True,
                                **CONTROL_PROFILES[profile])
    plan = FaultPlan(seed=seed).add(
        "load.burst", probability=BURST_PROBABILITY,
        max_fires=BURST_MAX_FIRES,
    )
    result = Laser(cfg, faults=plan).run_workload(workload)

    detect_cycle = None
    for event in result.telemetry.tracer.events():
        if event.name == "detect.line_over_threshold":
            detect_cycle = event.cycle
            break
    score = score_report_lines(
        workload, result.report.reported_locations())
    windows = result.telemetry.windows
    modes = [w.control_mode for w in windows if w.control_mode]
    peak = max(modes, key=_mode_rank) if modes else "off"
    return {
        "workload": name,
        "profile": profile,
        "seed": seed,
        "overhead": (float(result.cycles) / native.cycles
                     if native.cycles else 0.0),
        "detect_cycle": detect_cycle,
        "fp": score["fp"],
        "fn": score["fn"],
        "records_shed": result.driver.records_shed,
        "records_offered": result.pmu.records_generated,
        "peak_mode": peak,
        "mode_changes": result.health.control_mode_changes,
    }


def _mode_rank(mode: str) -> int:
    from repro.control import ControlMode

    return ControlMode.rung(mode)


def run_frontier_sweep(workloads: Optional[Sequence[str]] = None,
                       profiles: Optional[Sequence[str]] = None,
                       seed: int = 0,
                       workers: Optional[int] = None,
                       runner: Optional[SweepRunner] = None) -> FrontierResult:
    """Sweep the (workload × profile) grid; deterministic per seed.

    Pass ``runner`` to reuse a caller's :class:`SweepRunner`; its
    ``cost_summary`` then reports what this grid cost in host time.
    """
    names = list(workloads or FRONTIER_WORKLOADS)
    profs = list(profiles or PROFILE_ORDER)
    cells = [(name, profile, seed)
             for name in names for profile in profs]
    if runner is None:
        runner = SweepRunner(workers)
    rows = runner.starmap(_frontier_cell, cells)
    return FrontierResult(list(rows))


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workloads", default=None,
                        help="comma-separated workload names "
                             "(default: the frontier trio)")
    parser.add_argument("--profiles", default=None,
                        help="comma-separated profile names "
                             "(default: off,on,tight,loose)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool width (default: host cores; "
                             "1 = serial)")
    parser.add_argument("--out", default=None,
                        help="also write the grid as JSON")
    args = parser.parse_args(argv)
    names = args.workloads.split(",") if args.workloads else None
    profs = args.profiles.split(",") if args.profiles else None
    runner = SweepRunner(args.workers)
    result = run_frontier_sweep(workloads=names, profiles=profs,
                                seed=args.seed, runner=runner)
    print(result.render())
    print(runner.cost_summary())
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(result.as_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")
        print("wrote %s (%d cells)" % (args.out, len(result.rows)))
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
