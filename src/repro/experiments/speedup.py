"""Figure 11: speedups from automatic repair and from manual fixes.

Left (automatic): workloads LASERREPAIR accelerates online — the paper
reports linear_regression 16% and histogram' 19% faster under LASER.
Right (manual): speedups from source fixes guided by LASERDETECT's
reports — dedup 1.16x (lock-free queue), histogram' 5.8x (padding),
kmeans 1.05x (stack-allocated sums), linear_regression 16.9x
(alignment), lu_ncb 1.36x (alignment), reverse_index 1.04x (padding).
"""

from typing import List, Optional

from repro.core.config import LaserConfig
from repro.experiments.runner import (
    DEFAULT_RUNS,
    run_built_native,
    run_laser_on,
    run_native,
    trimmed_mean,
)
from repro.experiments.tables import render_table
from repro.workloads.registry import get_workload

__all__ = ["SpeedupEntry", "SpeedupResult", "run_speedups",
           "AUTOMATIC_BENCHMARKS", "MANUAL_BENCHMARKS"]

#: Workloads whose false sharing LASERREPAIR fixes online (Figure 11 left).
AUTOMATIC_BENCHMARKS = ["histogram'", "linear_regression"]

#: Workloads with manual fixes guided by LASERDETECT (Figure 11 right).
MANUAL_BENCHMARKS = ["dedup", "histogram'", "kmeans", "linear_regression",
                     "lu_ncb", "reverse_index"]


class SpeedupEntry:
    def __init__(self, name: str, kind: str, speedup: float,
                 repaired: bool = False):
        self.name = name
        self.kind = kind  # "automatic" | "manual"
        self.speedup = speedup
        self.repaired = repaired


class SpeedupResult:
    def __init__(self, entries: List[SpeedupEntry]):
        self.entries = entries

    def entry_for(self, name: str, kind: str) -> Optional[SpeedupEntry]:
        for entry in self.entries:
            if entry.name == name and entry.kind == kind:
                return entry
        return None

    def render(self) -> str:
        headers = ["benchmark", "kind", "speedup"]
        body = [
            [e.name, e.kind, "%.2fx" % e.speedup] for e in self.entries
        ]
        return render_table(headers, body,
                            title="Figure 11: repair speedups (higher is better)")


def run_speedups(runs: int = DEFAULT_RUNS, scale: float = 1.0,
                 config: Optional[LaserConfig] = None) -> SpeedupResult:
    entries = []
    for name in AUTOMATIC_BENCHMARKS:
        workload = get_workload(name)
        native = trimmed_mean([
            float(run_native(workload, seed=s, scale=scale).cycles)
            for s in range(runs)
        ])
        laser_runs = [
            run_laser_on(workload, seed=s, scale=scale, config=config)
            for s in range(runs)
        ]
        laser = trimmed_mean([float(r.cycles) for r in laser_runs])
        entries.append(SpeedupEntry(
            name, "automatic", native / laser,
            repaired=any(r.repaired for r in laser_runs),
        ))
    for name in MANUAL_BENCHMARKS:
        workload = get_workload(name)
        native = trimmed_mean([
            float(run_native(workload, seed=s, scale=scale).cycles)
            for s in range(runs)
        ])
        fixed_cycles = []
        for s in range(runs):
            built = workload.build_fixed(heap_offset=0, seed=s, scale=scale)
            if built is None:
                raise ValueError("%s has no manual fix" % name)
            fixed_cycles.append(float(run_built_native(built, seed=s).cycles))
        fixed = trimmed_mean(fixed_cycles)
        entries.append(SpeedupEntry(name, "manual", native / fixed))
    return SpeedupResult(entries)


if __name__ == "__main__":  # pragma: no cover
    print(run_speedups(runs=3).render())
