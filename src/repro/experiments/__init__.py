"""Experiment harnesses: one module per table/figure of the paper.

Every module exposes a ``run_*`` function returning a plain result
object with a ``render()`` method that prints the same rows/series the
paper reports.  ``benchmarks/`` wraps these for pytest-benchmark; the
modules are also runnable directly (``python -m
repro.experiments.accuracy``).
"""

from repro.experiments.runner import (
    average_cycles,
    native_cycles,
    run_laser_on,
    run_native,
)

__all__ = [
    "average_cycles",
    "native_cycles",
    "run_laser_on",
    "run_native",
]
