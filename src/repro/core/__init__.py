"""LASER itself: detection (Section 4), repair (Section 5), system (Section 6)."""

from repro.core.config import LaserConfig
from repro.core.laser import Laser, LaserRunResult, RunHealth

__all__ = ["LaserConfig", "Laser", "LaserRunResult", "RunHealth"]
