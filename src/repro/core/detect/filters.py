"""Event filtering: the first stages of the detection pipeline (Section 4.1).

When a HITM record arrives, its PC is classified by parsing the
application's virtual memory map (the ``/proc/<pid>/maps`` analog);
records whose PC does not come from the application or its libraries are
dropped as spurious.  Records whose *data address* lies on a thread
stack are also dropped, as stacks "are unlikely to be shared between
threads and thus unlikely to be sources of cache contention."

An optional third stage consumes the static sharing certificate
(``repro.static.race``): when a line-priority set is installed, records
whose data address falls on a *heap* cache line the certifier proved
thread-local are dropped before they cost pipeline work — the detector
spends its budget where static analysis says sharing can exist.  The
stage judges only addresses the certificate can speak about: records
whose data address is unmapped (PEBS imprecision makes many data
addresses garbage, while their PCs still carry aggregation evidence)
or in a non-heap region pass through untouched.
"""

from typing import FrozenSet, Iterable, Optional

from repro._constants import CACHE_LINE_SIZE
from repro.pebs.events import StrippedRecord
from repro.sim.vmmap import RegionKind, VirtualMemoryMap

__all__ = ["RecordFilter"]


#: Region-kind codes used by the vectorized classifier (indices into
#: the one-array-per-map tables; ``-1`` = unmapped).
_KIND_CODES = {kind: code for code, kind in enumerate(RegionKind)}
_APP_CODE = _KIND_CODES[RegionKind.APP_CODE]
_LIB_CODE = _KIND_CODES[RegionKind.LIB_CODE]
_HEAP_CODE = _KIND_CODES[RegionKind.HEAP]
_STACK_CODE = _KIND_CODES[RegionKind.STACK]


class RecordFilter:
    """Memory-map based record filtering."""

    def __init__(self, vmmap: VirtualMemoryMap,
                 line_priorities: Optional[Iterable[int]] = None):
        self.vmmap = vmmap
        #: Cache lines worth detection budget (None = admit everything).
        self.line_priorities: Optional[FrozenSet[int]] = (
            None if line_priorities is None else frozenset(line_priorities))
        self.dropped_bad_pc = 0
        self.dropped_stack_addr = 0
        self.dropped_unprioritized = 0
        self.passed = 0
        # SoA region tables for admit_batch, built on first batch (the
        # map's region set is fixed once the machine is composed).
        self._tables = None

    def admit(self, record: StrippedRecord) -> bool:
        """True if ``record`` survives all filter stages."""
        if not self.vmmap.is_application_or_library_code(record.pc):
            self.dropped_bad_pc += 1
            return False
        if self.vmmap.is_stack_address(record.data_addr):
            self.dropped_stack_addr += 1
            return False
        if (self.line_priorities is not None
                and record.data_addr // CACHE_LINE_SIZE
                not in self.line_priorities
                and self.vmmap.classify(record.data_addr)
                is RegionKind.HEAP):
            self.dropped_unprioritized += 1
            return False
        self.passed += 1
        return True

    # ------------------------------------------------------------------
    # Struct-of-arrays path (engine ``numpy``)
    # ------------------------------------------------------------------

    def _region_tables(self, np):
        """(starts, ends, kinds, priority_lines) arrays for the map."""
        if self._tables is None:
            regions = self.vmmap.regions()
            regions.sort(key=lambda r: r.start)
            starts = np.fromiter((r.start for r in regions), np.uint64,
                                 count=len(regions))
            ends = np.fromiter((r.end for r in regions), np.uint64,
                               count=len(regions))
            kinds = np.fromiter((_KIND_CODES[r.kind] for r in regions),
                                np.int64, count=len(regions))
            prio = None
            if self.line_priorities is not None:
                prio = np.fromiter(sorted(self.line_priorities), np.uint64,
                                   count=len(self.line_priorities))
            self._tables = (starts, ends, kinds, prio)
        return self._tables

    def _classify_batch(self, values, np):
        """Region-kind code per address (``-1`` = unmapped)."""
        starts, ends, kinds, _prio = self._region_tables(np)
        slot = np.searchsorted(starts, values, side="right") - 1
        clipped = np.maximum(slot, 0)
        mapped = (slot >= 0) & (values < ends[clipped])
        return np.where(mapped, kinds[clipped], -1)

    def admit_batch(self, pc, addr, np):
        """Vectorized :meth:`admit` over pc/addr columns.

        Returns the admitted mask; charges each record to the same
        (first-failing) drop counter the scalar stage would, so the
        filter's accounting is engine-invariant.
        """
        pc_kind = self._classify_batch(pc, np)
        addr_kind = self._classify_batch(addr, np)
        app = (pc_kind == _APP_CODE) | (pc_kind == _LIB_CODE)
        stack = app & (addr_kind == _STACK_CODE)
        admitted = app & ~stack
        if self.line_priorities is not None:
            prio = self._region_tables(np)[3]
            line = addr // np.uint64(CACHE_LINE_SIZE)
            unprioritized = (admitted & (addr_kind == _HEAP_CODE)
                             & ~np.isin(line, prio))
            self.dropped_unprioritized += int(unprioritized.sum())
            admitted = admitted & ~unprioritized
        self.dropped_bad_pc += int((~app).sum())
        self.dropped_stack_addr += int(stack.sum())
        self.passed += int(admitted.sum())
        return admitted

    @property
    def total_seen(self) -> int:
        return (self.passed + self.dropped_bad_pc + self.dropped_stack_addr
                + self.dropped_unprioritized)
