"""Event filtering: the first stages of the detection pipeline (Section 4.1).

When a HITM record arrives, its PC is classified by parsing the
application's virtual memory map (the ``/proc/<pid>/maps`` analog);
records whose PC does not come from the application or its libraries are
dropped as spurious.  Records whose *data address* lies on a thread
stack are also dropped, as stacks "are unlikely to be shared between
threads and thus unlikely to be sources of cache contention."
"""

from repro.pebs.events import StrippedRecord
from repro.sim.vmmap import VirtualMemoryMap

__all__ = ["RecordFilter"]


class RecordFilter:
    """Memory-map based record filtering."""

    def __init__(self, vmmap: VirtualMemoryMap):
        self.vmmap = vmmap
        self.dropped_bad_pc = 0
        self.dropped_stack_addr = 0
        self.passed = 0

    def admit(self, record: StrippedRecord) -> bool:
        """True if ``record`` survives both filter stages."""
        if not self.vmmap.is_application_or_library_code(record.pc):
            self.dropped_bad_pc += 1
            return False
        if self.vmmap.is_stack_address(record.data_addr):
            self.dropped_stack_addr += 1
            return False
        self.passed += 1
        return True

    @property
    def total_seen(self) -> int:
        return self.passed + self.dropped_bad_pc + self.dropped_stack_addr
