"""Event filtering: the first stages of the detection pipeline (Section 4.1).

When a HITM record arrives, its PC is classified by parsing the
application's virtual memory map (the ``/proc/<pid>/maps`` analog);
records whose PC does not come from the application or its libraries are
dropped as spurious.  Records whose *data address* lies on a thread
stack are also dropped, as stacks "are unlikely to be shared between
threads and thus unlikely to be sources of cache contention."

An optional third stage consumes the static sharing certificate
(``repro.static.race``): when a line-priority set is installed, records
whose data address falls on a *heap* cache line the certifier proved
thread-local are dropped before they cost pipeline work — the detector
spends its budget where static analysis says sharing can exist.  The
stage judges only addresses the certificate can speak about: records
whose data address is unmapped (PEBS imprecision makes many data
addresses garbage, while their PCs still carry aggregation evidence)
or in a non-heap region pass through untouched.
"""

from typing import FrozenSet, Iterable, Optional

from repro._constants import CACHE_LINE_SIZE
from repro.pebs.events import StrippedRecord
from repro.sim.vmmap import RegionKind, VirtualMemoryMap

__all__ = ["RecordFilter"]


class RecordFilter:
    """Memory-map based record filtering."""

    def __init__(self, vmmap: VirtualMemoryMap,
                 line_priorities: Optional[Iterable[int]] = None):
        self.vmmap = vmmap
        #: Cache lines worth detection budget (None = admit everything).
        self.line_priorities: Optional[FrozenSet[int]] = (
            None if line_priorities is None else frozenset(line_priorities))
        self.dropped_bad_pc = 0
        self.dropped_stack_addr = 0
        self.dropped_unprioritized = 0
        self.passed = 0

    def admit(self, record: StrippedRecord) -> bool:
        """True if ``record`` survives all filter stages."""
        if not self.vmmap.is_application_or_library_code(record.pc):
            self.dropped_bad_pc += 1
            return False
        if self.vmmap.is_stack_address(record.data_addr):
            self.dropped_stack_addr += 1
            return False
        if (self.line_priorities is not None
                and record.data_addr // CACHE_LINE_SIZE
                not in self.line_priorities
                and self.vmmap.classify(record.data_addr)
                is RegionKind.HEAP):
            self.dropped_unprioritized += 1
            return False
        self.passed += 1
        return True

    @property
    def total_seen(self) -> int:
        return (self.passed + self.dropped_bad_pc + self.dropped_stack_addr
                + self.dropped_unprioritized)
