"""Contention reports produced by LASERDETECT.

At application exit (and at periodic checks), the detector reports, for
each source line above the rate threshold, the HITM rate plus the number
of true- and false-sharing events attributed to that line, and a
classification of the contention type.  The classification is
conservative: a line whose TS/FS event counts are too small or too mixed
is reported as UNKNOWN — the linear_regression situation, where low data
address accuracy on write-write HITM records leaves the line model
without a conclusive signal (Table 2).
"""

import enum
from typing import List, Optional

from repro.isa.program import SourceLocation

__all__ = ["ContentionClass", "LineReport", "ContentionReport"]

#: Minimum sharing events before a TS/FS verdict is attempted.
MIN_CLASSIFY_EVENTS = 6

#: Required dominance ratio between the majority and minority class.
CLASSIFY_DOMINANCE = 1.8

#: Minimum total false-sharing events (across candidate lines) before
#: LASERREPAIR is invoked: the repair trigger must not fire on lines
#: whose sharing evidence is pure noise.
MIN_REPAIR_FS_EVIDENCE = 3

#: Minimum fraction of a line's records that must have produced a
#: sharing event for a verdict.  Write-only lines feed the line model
#: mostly garbage data addresses (Figure 3: ~10% address accuracy for
#: store-triggered records), so they rarely reach MIN_CLASSIFY_EVENTS —
#: which is why LASER reports linear_regression's contention type as
#: unknown "due to low data address accuracy" (Table 2).  Kept at 0:
#: the sparsity effect alone reproduces the paper's verdicts.
CLASSIFY_CONFIDENCE_FRACTION = 0.0


class ContentionClass(enum.Enum):
    TRUE_SHARING = "TS"
    FALSE_SHARING = "FS"
    UNKNOWN = "unknown"


def classify_counts(ts_events: int, fs_events: int,
                    record_count: int = 0) -> ContentionClass:
    """Derive a contention verdict from per-line TS/FS event counts."""
    total = ts_events + fs_events
    needed = max(
        MIN_CLASSIFY_EVENTS,
        int(CLASSIFY_CONFIDENCE_FRACTION * record_count),
    )
    if total < needed:
        return ContentionClass.UNKNOWN
    if ts_events >= CLASSIFY_DOMINANCE * fs_events:
        return ContentionClass.TRUE_SHARING
    if fs_events >= CLASSIFY_DOMINANCE * ts_events:
        return ContentionClass.FALSE_SHARING
    return ContentionClass.UNKNOWN


class LineReport:
    """One reported source line."""

    __slots__ = ("location", "record_count", "hitm_rate", "ts_events",
                 "fs_events", "fs_event_rate", "ts_event_rate",
                 "contention_class")

    def __init__(self, location: SourceLocation, record_count: int,
                 hitm_rate: float, ts_events: int, fs_events: int,
                 fs_event_rate: float = 0.0, ts_event_rate: float = 0.0):
        self.location = location
        self.record_count = record_count
        self.hitm_rate = hitm_rate
        self.ts_events = ts_events
        self.fs_events = fs_events
        #: Estimated FS/TS sharing events per simulated second; the
        #: repair trigger (Section 4.4) keys off the FS event rate, not
        #: the (confidence-gated) verdict, which is how a bug whose type
        #: is reported "unknown" can still be repaired automatically.
        self.fs_event_rate = fs_event_rate
        self.ts_event_rate = ts_event_rate
        self.contention_class = classify_counts(ts_events, fs_events,
                                                record_count)

    def __repr__(self):
        return "<LineReport %s rate=%.0f/s TS=%d FS=%d -> %s>" % (
            self.location,
            self.hitm_rate,
            self.ts_events,
            self.fs_events,
            self.contention_class.value,
        )


class ContentionReport:
    """The detector's output for one run."""

    def __init__(self, lines: List[LineReport], duration_cycles: int,
                 sample_after_value: int, rate_threshold: float):
        self.lines = lines
        self.duration_cycles = duration_cycles
        self.sample_after_value = sample_after_value
        self.rate_threshold = rate_threshold

    def reported_locations(self) -> List[SourceLocation]:
        return [line.location for line in self.lines]

    def line_for(self, location: SourceLocation) -> Optional[LineReport]:
        for line in self.lines:
            if line.location == location:
                return line
        return None

    def false_sharing_lines(self, min_rate: float = 0.0) -> List[LineReport]:
        """Reported lines classified as false sharing above ``min_rate``."""
        return [
            line
            for line in self.lines
            if line.contention_class is ContentionClass.FALSE_SHARING
            and line.hitm_rate >= min_rate
        ]

    def repair_candidates(self, min_total_hitm_rate: float) -> List[LineReport]:
        """Lines to hand to LASERREPAIR, if their combined rate merits it.

        Section 4.4: the detector "periodically checks the HITM event
        rate, triggering LASERREPAIR if the rate of false sharing events
        exceeds a given threshold."  Candidate lines are the reported
        lines not dominated by true-sharing evidence (repairing true
        sharing is fruitless, Section 7.1); an UNKNOWN verdict does not
        block repair — that is how linear_regression, whose type the
        detector cannot pin down, still gets repaired automatically.
        Returns [] unless the candidates' combined HITM rate reaches
        ``min_total_hitm_rate``.
        """
        candidates = [
            line
            for line in self.lines
            if line.contention_class is not ContentionClass.TRUE_SHARING
            and line.fs_events >= line.ts_events
        ]
        total_rate = sum(line.hitm_rate for line in candidates)
        total_fs = sum(line.fs_events for line in candidates)
        total_ts = sum(line.ts_events for line in candidates)
        if total_rate < min_total_hitm_rate:
            return []
        if total_fs < MIN_REPAIR_FS_EVIDENCE or 1.5 * total_fs < total_ts:
            return []
        return candidates

    def dominant_class(self) -> ContentionClass:
        """Aggregate verdict over the hottest reported lines."""
        if not self.lines:
            return ContentionClass.UNKNOWN
        ts = sum(line.ts_events for line in self.lines)
        fs = sum(line.fs_events for line in self.lines)
        records = sum(line.record_count for line in self.lines)
        return classify_counts(ts, fs, records)

    def render(self) -> str:
        """Human-readable report, the tool's console output."""
        if not self.lines:
            return "no contention above %.0f HITMs/sec" % self.rate_threshold
        rows = ["%-28s %10s %8s %8s %8s" % ("location", "HITM/s", "TS", "FS", "class")]
        for line in self.lines:
            rows.append(
                "%-28s %10.0f %8d %8d %8s"
                % (
                    str(line.location),
                    line.hitm_rate,
                    line.ts_events,
                    line.fs_events,
                    line.contention_class.value,
                )
            )
        return "\n".join(rows)
