"""LASERDETECT: the HITM record processing pipeline of Section 4."""

from repro.core.detect.filters import RecordFilter
from repro.core.detect.linemap import LineAggregator, LineStats
from repro.core.detect.linemodel import CacheLineModel, SharingType
from repro.core.detect.loadstore import LoadStoreSets, MemoryOpInfo
from repro.core.detect.pipeline import DetectionPipeline, PipelineStats
from repro.core.detect.report import ContentionReport, LineReport

__all__ = [
    "RecordFilter",
    "LineAggregator",
    "LineStats",
    "CacheLineModel",
    "SharingType",
    "LoadStoreSets",
    "MemoryOpInfo",
    "DetectionPipeline",
    "PipelineStats",
    "ContentionReport",
    "LineReport",
]
