"""The full LASERDETECT event-processing pipeline (Figure 4).

Record in -> PC classified against the memory map -> stack data
addresses dropped -> PC aggregated by source line -> instruction decoded
through the load/store sets -> byte-accurate cache line model ->
per-line true/false sharing counts.

The pipeline is incremental: records are pushed as the driver delivers
them (the LASER system pushes every detection window), and reports can
be cut at any time with any rate threshold — thresholds are applied at
report time, "offline, without rerunning the program."
"""

from typing import Dict, Iterable, List, Optional, Set

from repro._constants import DETECTOR_RECORD_COST
from repro.accel import get_numpy, resolve_engine
from repro.core.detect.filters import RecordFilter
from repro.core.detect.linemap import LineAggregator
from repro.core.detect.linemodel import CacheLineModel, SharingType
from repro.core.detect.loadstore import LoadStoreSets
from repro.core.detect.report import ContentionReport, LineReport
from repro.isa.program import Program, SourceLocation
from repro.obs.trace import NULL_TRACER
from repro.pebs.batch import RecordBatch
from repro.pebs.events import StrippedRecord
from repro.sim.vmmap import VirtualMemoryMap

__all__ = ["DetectionPipeline", "PipelineStats"]

#: Batches below this size take the scalar path even on the numpy
#: engine: per-batch fixed costs (column builds, ~40 kernel launches)
#: beat the scalar loop until roughly a hundred records — measured
#: crossover ~130 on the bench workloads' record mix — and both paths
#: land in byte-identical state, so the cutover is invisible.
_BATCH_MIN = 128


class PipelineStats:
    """Bookkeeping across all pipeline stages."""

    __slots__ = (
        "records_seen",
        "records_admitted",
        "undecodable_pcs",
        "detector_cycles",
    )

    def __init__(self):
        self.records_seen = 0
        self.records_admitted = 0
        self.undecodable_pcs = 0
        self.detector_cycles = 0


class DetectionPipeline:
    """Stateful pipeline consuming stripped HITM records."""

    def __init__(
        self,
        program: Program,
        vmmap: VirtualMemoryMap,
        sample_after_value: int,
        record_cost: int = DETECTOR_RECORD_COST,
        tracer=None,
        line_priorities: Optional[Iterable[int]] = None,
        engine: str = "auto",
    ):
        #: Resolved record/detection engine (``"numpy"``/``"python"``);
        #: picks between the struct-of-arrays batch path and the
        #: scalar per-record loop.  Observationally invisible.
        self.engine = resolve_engine(engine)
        self.program = program
        self.filter = RecordFilter(vmmap, line_priorities=line_priorities)
        self.aggregator = LineAggregator(program, sample_after_value)
        self.load_store_sets = LoadStoreSets.from_program(program)
        self.line_model = CacheLineModel()
        self.sample_after_value = sample_after_value
        self.record_cost = record_cost
        self.stats = PipelineStats()
        #: Event tracer (``repro.obs.trace``); emits ``detect.window_roll``
        #: per detection window and ``detect.line_over_threshold`` the
        #: first time a source line crosses the report threshold.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._lines_reported: Set[SourceLocation] = set()
        # Per-source-line TS/FS event counts ("associated with the PC of N").
        self._sharing_by_line: Dict[SourceLocation, List[int]] = {}

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def process(self, records: Iterable[StrippedRecord]) -> None:
        if (self.engine == "numpy" and hasattr(records, "__len__")
                and len(records) >= _BATCH_MIN):
            self._process_batch(records)
            return
        for record in records:
            self._process_one(record)

    def _process_one(self, record: StrippedRecord) -> None:
        self.stats.records_seen += 1
        self.stats.detector_cycles += self.record_cost
        if not self.filter.admit(record):
            return
        self.stats.records_admitted += 1

        # Stage: aggregate by source line (addresses are NOT consulted,
        # which is what makes location detection robust to address noise).
        # The record's weight is its base-SAV multiple: sampling thinned
        # by the overload controller still estimates unbiased rates.
        loc = self.aggregator.add_record_pc(record.pc, record.weight)

        # Stage: decode the PC through the load/store sets; records whose
        # PC is not a memory op (a skidded or random PC) cannot be decoded
        # and skip the line model.
        op = self.load_store_sets.lookup(record.pc)
        if op is None:
            self.stats.undecodable_pcs += 1
            return

        # Stage: byte-accurate cache line model.  x86 RMW instructions
        # are both loads and stores; feed the write (the contention-
        # relevant half), accepting the inaccuracy the paper notes.
        sharing = self.line_model.observe(record.data_addr, op.size, op.is_store)
        if sharing is SharingType.NONE or loc is None:
            return
        counts = self._sharing_by_line.setdefault(loc, [0, 0])
        if sharing is SharingType.TRUE_SHARING:
            counts[0] += record.weight
        else:
            counts[1] += record.weight

    def _process_batch(self, records) -> None:
        """Struct-of-arrays ingest: the scalar stages, vectorized.

        Stage order and state transitions mirror :meth:`_process_one`
        exactly — the line model's per-line access chain is resolved
        with shifted group arrays, aggregation/scatter run as
        ``np.add.at``-style kernels, and every dict mutation happens in
        the scalar path's insertion order — so both paths produce
        byte-identical pipeline state.
        """
        np = get_numpy()
        batch = (records if isinstance(records, RecordBatch)
                 else RecordBatch(list(records), "numpy"))
        pc = batch.col("pc")
        addr = batch.col("addr")
        weight = batch.col("weight")
        n = len(batch)
        self.stats.records_seen += n
        self.stats.detector_cycles += n * self.record_cost
        admitted = self.filter.admit_batch(pc, addr, np)
        n_admitted = int(admitted.sum())
        if not n_admitted:
            return
        self.stats.records_admitted += n_admitted
        apc = pc[admitted]
        aweight = weight[admitted]
        rec_loc = self.aggregator.add_record_pcs(apc, aweight, np)
        decoded, size, is_store = self.load_store_sets.lookup_batch(apc, np)
        self.stats.undecodable_pcs += int((~decoded).sum())
        if not decoded.any():
            return
        sharing = self.line_model.observe_batch(
            addr[admitted][decoded], size[decoded], is_store[decoded], np
        )
        self._scatter_sharing(
            rec_loc[decoded], aweight[decoded], sharing, np
        )

    def _scatter_sharing(self, rec_loc, weight, sharing, np) -> None:
        """Accumulate per-line TS/FS weights (the last scalar stage)."""
        counted = (sharing > 0) & (rec_loc >= 0)
        if not counted.any():
            return
        loc_ids = rec_loc[counted]
        weights = weight[counted]
        is_ts = sharing[counted] == 1
        unique, first, inverse = np.unique(
            loc_ids, return_index=True, return_inverse=True)
        ts_sums = np.zeros(len(unique), np.int64)
        fs_sums = np.zeros(len(unique), np.int64)
        np.add.at(ts_sums, inverse[is_ts], weights[is_ts])
        np.add.at(fs_sums, inverse[~is_ts], weights[~is_ts])
        for j in np.argsort(first, kind="stable"):
            loc = self.aggregator.location_for_id(int(unique[j]))
            counts = self._sharing_by_line.setdefault(loc, [0, 0])
            counts[0] += int(ts_sums[j])
            counts[1] += int(fs_sums[j])

    def roll_window(self, window_cycles: int,
                    cycle: Optional[int] = None) -> None:
        """Close a detection window (called at each periodic check).

        ``cycle`` is the machine cycle at which the window closed; it
        timestamps the trace event (callers without a clock may omit
        it and the event is stamped with the window length alone).
        """
        self.aggregator.roll_window(window_cycles)
        if self.tracer.enabled:
            self.tracer.emit(
                "detect.window_roll",
                cycle if cycle is not None else window_cycles,
                window_cycles=window_cycles,
                records_seen=self.stats.records_seen,
                records_admitted=self.stats.records_admitted,
                undecodable_pcs=self.stats.undecodable_pcs,
            )

    # ------------------------------------------------------------------
    # Checkpoint/restore (``repro.resilience``)
    # ------------------------------------------------------------------

    def reset_state(self) -> None:
        """Discard all accumulated state (checkpoint-less cold start).

        Leaves the pure-function stages (filter, load/store sets) alone
        and reinitializes everything :meth:`state_dict` would capture;
        the caller then replays the journal from seq 0.
        """
        self.stats = PipelineStats()
        self.aggregator = LineAggregator(self.program, self.sample_after_value)
        self.line_model = CacheLineModel()
        self._lines_reported = set()
        self._sharing_by_line = {}

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of all mutable pipeline state.

        The filter and the load/store sets are pure functions of the
        program and memory map, so only the accumulated statistics are
        captured.  Collections are emitted in sorted order so the same
        state always encodes to the same bytes (the checkpoint CRC is
        meaningful).
        """
        return {
            "stats": {
                "records_seen": self.stats.records_seen,
                "records_admitted": self.stats.records_admitted,
                "undecodable_pcs": self.stats.undecodable_pcs,
                "detector_cycles": self.stats.detector_cycles,
            },
            "aggregator": self.aggregator.state_dict(),
            "line_model": self.line_model.state_dict(),
            "sharing_by_line": [
                [loc.file, loc.line, counts[0], counts[1]]
                for loc, counts in sorted(
                    self._sharing_by_line.items(),
                    key=lambda item: (item[0].file, item[0].line),
                )
            ],
            "lines_reported": [
                [loc.file, loc.line]
                for loc in sorted(self._lines_reported,
                                  key=lambda l: (l.file, l.line))
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        stats = state["stats"]
        self.stats.records_seen = stats["records_seen"]
        self.stats.records_admitted = stats["records_admitted"]
        self.stats.undecodable_pcs = stats["undecodable_pcs"]
        self.stats.detector_cycles = stats["detector_cycles"]
        self.aggregator.load_state_dict(state["aggregator"])
        self.line_model.load_state_dict(state["line_model"])
        self._sharing_by_line = {
            SourceLocation(file, line): [ts, fs]
            for file, line, ts, fs in state["sharing_by_line"]
        }
        self._lines_reported = {
            SourceLocation(file, line)
            for file, line in state["lines_reported"]
        }

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def report(self, duration_cycles: int, rate_threshold: float) -> ContentionReport:
        """Cut a report at the given threshold (applied offline)."""
        from repro._constants import CYCLES_PER_SECOND

        scale = (
            self.sample_after_value * CYCLES_PER_SECOND / duration_cycles
            if duration_cycles > 0
            else 0.0
        )
        lines = []
        traced = self.tracer.enabled
        for stats in self.aggregator.lines_above_threshold(
            duration_cycles, rate_threshold
        ):
            ts, fs = self._sharing_by_line.get(stats.location, (0, 0))
            if traced and stats.location not in self._lines_reported:
                self._lines_reported.add(stats.location)
                self.tracer.emit(
                    "detect.line_over_threshold", duration_cycles,
                    location=str(stats.location),
                    hitm_rate=round(stats.hitm_rate(
                        duration_cycles, self.sample_after_value), 3),
                    ts_events=ts, fs_events=fs,
                )
            lines.append(
                LineReport(
                    location=stats.location,
                    record_count=stats.record_count,
                    hitm_rate=stats.hitm_rate(
                        duration_cycles, self.sample_after_value
                    ),
                    ts_events=ts,
                    fs_events=fs,
                    fs_event_rate=fs * scale,
                    ts_event_rate=ts * scale,
                )
            )
        return ContentionReport(
            lines, duration_cycles, self.sample_after_value, rate_threshold
        )

    def contending_pcs_for_line(self, location: SourceLocation) -> List[int]:
        """Memory-op PCs the binary analysis maps to ``location``.

        Used when invoking LASERREPAIR: the detector hands over the PCs
        involved in false sharing (Section 4.4).
        """
        return [
            pc
            for pc in self.program.pcs_for_location(location)
            if pc in self.load_store_sets
        ]
