"""Load/store set extraction: the detector's binary analysis (Section 4.3).

"We analyze the application binary at runtime, to construct load and
store sets identifying load PCs and store PCs and their sizes.  These
sets are then provided as inputs to the detector."  On x86 an
instruction can be both a load and a store (our CMPXCHG/XADD); the
detector treats those as both, which the paper notes is a potential
source of inaccuracy.
"""

from typing import Dict, Optional

from repro.isa.program import Program

__all__ = ["MemoryOpInfo", "LoadStoreSets"]


class MemoryOpInfo:
    """What the binary analysis knows about one memory-op PC."""

    __slots__ = ("pc", "is_load", "is_store", "size")

    def __init__(self, pc: int, is_load: bool, is_store: bool, size: int):
        self.pc = pc
        self.is_load = is_load
        self.is_store = is_store
        self.size = size

    def __repr__(self):
        kind = "rmw" if (self.is_load and self.is_store) else (
            "load" if self.is_load else "store"
        )
        return "<MemOp %#x %s %dB>" % (self.pc, kind, self.size)


class LoadStoreSets:
    """PC -> memory-op metadata, built from the program binary."""

    def __init__(self, ops: Dict[int, MemoryOpInfo]):
        self._ops = ops
        # SoA tables for lookup_batch, built on first batch (the sets
        # are a pure function of the program binary).
        self._tables = None

    @classmethod
    def from_program(cls, program: Program) -> "LoadStoreSets":
        ops: Dict[int, MemoryOpInfo] = {}
        for inst in program.all_instructions():
            if inst.is_memory_op:
                ops[inst.pc] = MemoryOpInfo(
                    inst.pc, inst.is_load, inst.is_store, inst.size
                )
        return cls(ops)

    def lookup(self, pc: int) -> Optional[MemoryOpInfo]:
        """Metadata for ``pc``, or None if it is not a memory op."""
        return self._ops.get(pc)

    def lookup_batch(self, pcs, np):
        """Vectorized :meth:`lookup` over a batch's PC column.

        Returns ``(decoded, size, is_store)`` arrays; ``size`` and
        ``is_store`` are meaningful only where ``decoded`` is set (a
        PC outside the sets is a skidded or random PC).
        """
        if self._tables is None:
            keys = sorted(self._ops)
            self._tables = (
                np.fromiter(keys, np.uint64, count=len(keys)),
                np.fromiter((self._ops[pc].size for pc in keys),
                            np.int64, count=len(keys)),
                np.fromiter((self._ops[pc].is_store for pc in keys),
                            np.bool_, count=len(keys)),
            )
        table_pcs, sizes, stores = self._tables
        if len(table_pcs) == 0:
            decoded = np.zeros(len(pcs), np.bool_)
            return decoded, np.zeros(len(pcs), np.int64), decoded
        slot = np.searchsorted(table_pcs, pcs)
        clipped = np.minimum(slot, len(table_pcs) - 1)
        decoded = (slot < len(table_pcs)) & (table_pcs[clipped] == pcs)
        return decoded, sizes[clipped], stores[clipped]

    def __len__(self):
        return len(self._ops)

    def __contains__(self, pc: int) -> bool:
        return pc in self._ops
