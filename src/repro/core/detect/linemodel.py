"""The cache line model: classifying true vs. false sharing (Section 4.3).

Each tracked cache line records the type (read or write) and byte
positions (a bitmap) of its *previous* access (Figure 5).  When a new
access arrives:

* if the byte ranges overlap and at least one access is a write ->
  **true sharing**;
* if they are disjoint and at least one access is a write ->
  **false sharing**;
* read-read pairs are not contention.

Each sharing event is counted against the PC of the incoming access.
Lines live in a hash table so only the few contended lines cost memory.
"""

import enum
from typing import Dict, Optional, Tuple

from repro._constants import CACHE_LINE_SIZE

__all__ = ["SharingType", "CacheLineModel"]


class SharingType(enum.Enum):
    TRUE_SHARING = "TS"
    FALSE_SHARING = "FS"
    NONE = "none"


class _LineInfo:
    """Previous-access record for one cache line (Figure 5).

    ``ts_events``/``fs_events`` accumulate the line's own classification
    history so reports (and the static-vs-dynamic comparison) can work
    at cache-line granularity, not just per source line.
    """

    __slots__ = ("bitmap", "was_write", "ts_events", "fs_events")

    def __init__(self, bitmap: int, was_write: bool):
        self.bitmap = bitmap
        self.was_write = was_write
        self.ts_events = 0
        self.fs_events = 0


def _access_bitmap(addr: int, size: int) -> Tuple[int, int, int]:
    """(line_index, bitmap, clipped_size) for an access.

    Accesses straddling the line end are clipped to the first line, as
    the model tracks one line per record.
    """
    line = addr // CACHE_LINE_SIZE
    offset = addr % CACHE_LINE_SIZE
    span = min(size, CACHE_LINE_SIZE - offset)
    bitmap = ((1 << span) - 1) << offset
    return line, bitmap, span


class CacheLineModel:
    """Byte-granular last-access tracking with TS/FS classification."""

    def __init__(self):
        self._lines: Dict[int, _LineInfo] = {}
        self.ts_events = 0
        self.fs_events = 0

    def observe(self, addr: int, size: int, is_write: bool) -> SharingType:
        """Feed one decoded access; returns the sharing type it triggered."""
        line, bitmap, _span = _access_bitmap(addr, size)
        info = self._lines.get(line)
        if info is None:
            self._lines[line] = _LineInfo(bitmap, is_write)
            return SharingType.NONE
        overlap = info.bitmap & bitmap
        any_write = is_write or info.was_write
        info.bitmap = bitmap
        info.was_write = is_write
        if not any_write:
            return SharingType.NONE
        if overlap:
            self.ts_events += 1
            info.ts_events += 1
            return SharingType.TRUE_SHARING
        self.fs_events += 1
        info.fs_events += 1
        return SharingType.FALSE_SHARING

    def observe_batch(self, addr, size, is_write, np):
        """Vectorized :meth:`observe` over decoded access columns.

        Returns an int8 array of sharing codes per access (0 = none,
        1 = TS, 2 = FS) in the batch's record order.  The model's
        previous-access chain is inherently sequential *per line*, so
        the batch is grouped by cache line with a stable sort and each
        access's predecessor is read from the shifted group arrays —
        the first access of each group chains to the stored line table
        instead.  All counters come out identical to feeding the
        records through :meth:`observe` one at a time.
        """
        n = len(addr)
        line = addr // np.uint64(CACHE_LINE_SIZE)
        offset = addr - line * np.uint64(CACHE_LINE_SIZE)
        span = np.minimum(size.astype(np.uint64),
                          np.uint64(CACHE_LINE_SIZE) - offset)
        # (~0 >> (64 - span)) is overflow-safe at span == 64, unlike
        # (1 << span) - 1.
        bitmap = ((~np.uint64(0)) >> (np.uint64(64) - span)) << offset
        order = np.argsort(line, kind="stable")
        s_line = line[order]
        s_bitmap = bitmap[order]
        s_write = is_write[order]
        prev_bitmap = np.empty_like(s_bitmap)
        prev_write = np.empty_like(s_write)
        prev_bitmap[1:] = s_bitmap[:-1]
        prev_write[1:] = s_write[:-1]
        heads = np.empty(n, np.bool_)
        heads[0] = True
        heads[1:] = s_line[1:] != s_line[:-1]
        head_idx = np.nonzero(heads)[0]
        has_prev = ~heads
        lines = self._lines
        infos = []
        for k in head_idx:
            info = lines.get(int(s_line[k]))
            infos.append(info)
            if info is not None:
                has_prev[k] = True
                prev_bitmap[k] = info.bitmap
                prev_write[k] = info.was_write
        any_write = s_write | prev_write
        overlap = (prev_bitmap & s_bitmap) != 0
        ts = has_prev & any_write & overlap
        fs = has_prev & any_write & ~overlap
        self.ts_events += int(ts.sum())
        self.fs_events += int(fs.sum())
        # Per-group tallies and last-access state.
        group = np.cumsum(heads) - 1
        n_groups = len(head_idx)
        ts_group = np.bincount(group[ts], minlength=n_groups)
        fs_group = np.bincount(group[fs], minlength=n_groups)
        group_end = np.empty(n_groups, np.int64)
        group_end[:-1] = head_idx[1:] - 1
        group_end[-1] = n - 1
        # New lines must enter the table in the scalar path's order:
        # first touch in *record* order (order[head] is the group's
        # earliest original index, courtesy of the stable sort).
        new_groups = [g for g in range(n_groups) if infos[g] is None]
        new_groups.sort(key=lambda g: order[head_idx[g]])
        for g in new_groups:
            infos[g] = lines.setdefault(
                int(s_line[head_idx[g]]),
                _LineInfo(int(s_bitmap[head_idx[g]]),
                          bool(s_write[head_idx[g]])),
            )
        for g in range(n_groups):
            info = infos[g]
            end = group_end[g]
            info.bitmap = int(s_bitmap[end])
            info.was_write = bool(s_write[end])
            info.ts_events += int(ts_group[g])
            info.fs_events += int(fs_group[g])
        codes = np.zeros(n, np.int8)
        codes[order] = (ts * np.int8(1)) + (fs * np.int8(2))
        return codes

    def state_dict(self) -> dict:
        """JSON-serializable snapshot (checkpoint payload)."""
        return {
            "ts_events": self.ts_events,
            "fs_events": self.fs_events,
            "lines": [
                [line, info.bitmap, 1 if info.was_write else 0,
                 info.ts_events, info.fs_events]
                for line, info in sorted(self._lines.items())
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        self.ts_events = state["ts_events"]
        self.fs_events = state["fs_events"]
        self._lines = {}
        for line, bitmap, was_write, ts_events, fs_events in state["lines"]:
            info = _LineInfo(bitmap, bool(was_write))
            info.ts_events = ts_events
            info.fs_events = fs_events
            self._lines[line] = info

    def previous_access(self, addr: int) -> Optional[Tuple[int, bool]]:
        """(bitmap, was_write) of the tracked line, for introspection."""
        info = self._lines.get(addr // CACHE_LINE_SIZE)
        if info is None:
            return None
        return info.bitmap, info.was_write

    @property
    def tracked_lines(self) -> int:
        return len(self._lines)

    def line_events(self, line: int) -> Tuple[int, int]:
        """(ts_events, fs_events) observed on one cache line."""
        info = self._lines.get(line)
        if info is None:
            return 0, 0
        return info.ts_events, info.fs_events

    def contended_lines(
        self, kind: Optional[SharingType] = None, min_events: int = 1
    ) -> Dict[int, Tuple[int, int]]:
        """Cache lines with >= ``min_events`` sharing events observed.

        Maps line index -> (ts_events, fs_events).  With ``kind`` set,
        the threshold applies to that event class only — the ground
        truth the static predictor is scored against.
        """
        out: Dict[int, Tuple[int, int]] = {}
        for line, info in self._lines.items():
            if kind is SharingType.TRUE_SHARING:
                relevant = info.ts_events
            elif kind is SharingType.FALSE_SHARING:
                relevant = info.fs_events
            else:
                relevant = info.ts_events + info.fs_events
            if relevant >= min_events:
                out[line] = (info.ts_events, info.fs_events)
        return out
