"""Source-line aggregation and rate thresholding (Section 4.2).

The detector "builds a map from PC to the number of HITM records
received for that PC (regardless of data address), and reports the rate
at which HITM events occur for each source code line."  Lines below the
rate threshold are filtered at *report* time, so the threshold can be
adjusted offline without rerunning the program.

The aggregator counts *records*; to express the result as a HITM-event
rate it multiplies by the sample-after value (each record stands for SAV
events).  Records sampled while the overload controller held the SAV
above base (:mod:`repro.control`) arrive with a ``weight`` — the SAV
multiplier — and count as that many base-SAV records, so throttling
thins the record stream without biasing the rates cut from it.
"""

from typing import Dict, List, Optional

from repro._constants import CYCLES_PER_SECOND
from repro.isa.program import Program, SourceLocation

__all__ = ["LineStats", "LineAggregator", "MIN_WINDOW_RECORDS"]

#: Minimum records a line must receive within one peak-rate window for
#: that window to update its peak rate (suppresses one-shot bursts such
#: as startup hand-off scans).
MIN_WINDOW_RECORDS = 6

#: Peak-rate windows span several detection check intervals: a line must
#: sustain its rate across a window this long, not just spike inside one
#: 50K-cycle check, before its peak rate is remembered.
PEAK_WINDOW_CYCLES = 150_000


class LineStats:
    """Accumulated HITM information for one source line."""

    __slots__ = ("location", "record_count", "pcs", "peak_window_rate",
                 "_window_start_count")

    def __init__(self, location: SourceLocation):
        self.location = location
        self.record_count = 0
        self.pcs: Dict[int, int] = {}
        #: Highest rate observed over any detection window.  A line that
        #: was hot before LASERREPAIR eliminated its contention must not
        #: vanish from the report just because the whole-run average got
        #: diluted by the repaired phase.
        self.peak_window_rate = 0.0
        self._window_start_count = 0

    def add(self, pc: int, weight: int = 1) -> None:
        self.record_count += weight
        self.pcs[pc] = self.pcs.get(pc, 0) + weight

    def cumulative_rate(self, duration_cycles: int,
                        sample_after_value: int) -> float:
        if duration_cycles <= 0:
            return 0.0
        events = self.record_count * sample_after_value
        return events * CYCLES_PER_SECOND / duration_cycles

    def hitm_rate(self, duration_cycles: int, sample_after_value: int) -> float:
        """Estimated HITM events/sec: max of cumulative and peak window."""
        return max(
            self.cumulative_rate(duration_cycles, sample_after_value),
            self.peak_window_rate,
        )

    def roll_window(self, window_cycles: int, sample_after_value: int) -> None:
        if window_cycles <= 0:
            return
        delta = self.record_count - self._window_start_count
        self._window_start_count = self.record_count
        if delta < MIN_WINDOW_RECORDS:
            # A couple of records in one window is burst noise, not a
            # sustained rate.
            return
        rate = delta * sample_after_value * CYCLES_PER_SECOND / window_cycles
        self.peak_window_rate = max(self.peak_window_rate, rate)


class LineAggregator:
    """PC -> source line aggregation over the program's debug info."""

    def __init__(self, program: Program, sample_after_value: int):
        self.program = program
        self.sample_after_value = sample_after_value
        self._lines: Dict[SourceLocation, LineStats] = {}
        self.unresolved_pcs = 0
        self._window_cycles_accumulated = 0
        # SoA debug-info tables for add_record_pcs, built on first
        # batch (the program's PC map is immutable after assembly;
        # repair rewrites produce *new* Program objects).
        self._pc_tables = None

    def add_record_pc(self, pc: int,
                      weight: int = 1) -> Optional[SourceLocation]:
        """Attribute one record to the source line its PC maps to."""
        loc = self.program.location_of_pc(pc)
        if loc is None:
            self.unresolved_pcs += 1
            return None
        stats = self._lines.get(loc)
        if stats is None:
            stats = LineStats(loc)
            self._lines[loc] = stats
        stats.add(pc, weight)
        return loc

    # ------------------------------------------------------------------
    # Struct-of-arrays path (engine ``numpy``)
    # ------------------------------------------------------------------

    def _debug_tables(self, np):
        """(sorted_pcs, loc_ids, loc_list): the vectorized debug info.

        ``loc_ids[i]`` is the dense id of ``sorted_pcs[i]``'s source
        location (``-1`` for instructions without debug info); ids are
        assigned in PC order and resolved back through ``loc_list``.
        """
        if self._pc_tables is None:
            pcs = self.program.all_pcs()
            loc_list = []
            loc_index: Dict[SourceLocation, int] = {}
            ids = []
            for pc in pcs:
                loc = self.program.location_of_pc(pc)
                if loc is None:
                    ids.append(-1)
                    continue
                lid = loc_index.get(loc)
                if lid is None:
                    lid = len(loc_list)
                    loc_index[loc] = lid
                    loc_list.append(loc)
                ids.append(lid)
            self._pc_tables = (
                np.fromiter(pcs, np.uint64, count=len(pcs)),
                np.fromiter(ids, np.int64, count=len(ids)),
                loc_list,
            )
        return self._pc_tables

    def add_record_pcs(self, pcs, weights, np):
        """Vectorized :meth:`add_record_pc` over a batch's PC column.

        Returns the per-record location-id array (``-1`` where the PC
        resolved to no source line).  Per-line stats are updated in
        first-occurrence order, so :class:`LineStats` creation — and
        each line's per-PC dict — matches the scalar path's dict
        insertion order exactly.
        """
        table_pcs, loc_ids, loc_list = self._debug_tables(np)
        slot = np.searchsorted(table_pcs, pcs)
        clipped = np.minimum(slot, len(table_pcs) - 1)
        known = (slot < len(table_pcs)) & (table_pcs[clipped] == pcs)
        rec_loc = np.where(known, loc_ids[clipped], -1)
        resolved = rec_loc >= 0
        self.unresolved_pcs += int((~resolved).sum())
        if not resolved.any():
            return rec_loc
        rl = rec_loc[resolved]
        rpc = pcs[resolved]
        rw = weights[resolved]
        # One key per (line, pc) pair: admitted PCs sit far below 2**48
        # (the map's code regions top out under the stack), so the id
        # packs into the upper bits without collision.
        key = (rl.astype(np.uint64) << np.uint64(48)) | rpc
        # Group by key with one stable sort; per-group weight sums via
        # reduceat stay exact int64 (np.add.at is an order of magnitude
        # slower, and bincount's float64 weights would break exactness).
        order = np.argsort(key, kind="stable")
        skey = key[order]
        heads = np.empty(len(skey), np.bool_)
        heads[0] = True
        heads[1:] = skey[1:] != skey[:-1]
        head_idx = np.nonzero(heads)[0]
        sums = np.add.reduceat(rw[order], head_idx)
        # order[head] is each group's earliest original index (stable
        # sort), so visiting groups by it replays the scalar path's
        # first-occurrence dict insertion order exactly.
        firsts = order[head_idx]
        for g in np.argsort(firsts, kind="stable"):
            k = int(skey[head_idx[g]])
            loc = loc_list[k >> 48]
            pc = k & 0xFFFF_FFFF_FFFF
            stats = self._lines.get(loc)
            if stats is None:
                stats = LineStats(loc)
                self._lines[loc] = stats
            count = int(sums[g])
            stats.record_count += count
            stats.pcs[pc] = stats.pcs.get(pc, 0) + count
        return rec_loc

    def location_for_id(self, loc_id: int) -> SourceLocation:
        """Resolve a dense location id from :meth:`add_record_pcs`."""
        return self._pc_tables[2][loc_id]

    def roll_window(self, window_cycles: int) -> None:
        """Account a detection check; closes a peak window when enough
        cycles have accumulated."""
        self._window_cycles_accumulated += window_cycles
        if self._window_cycles_accumulated < PEAK_WINDOW_CYCLES:
            return
        for stats in self._lines.values():
            stats.roll_window(
                self._window_cycles_accumulated, self.sample_after_value
            )
        self._window_cycles_accumulated = 0

    def state_dict(self) -> dict:
        """JSON-serializable snapshot (checkpoint payload)."""
        return {
            "unresolved_pcs": self.unresolved_pcs,
            "window_cycles_accumulated": self._window_cycles_accumulated,
            "lines": [
                {
                    "file": stats.location.file,
                    "line": stats.location.line,
                    "record_count": stats.record_count,
                    "pcs": sorted(stats.pcs.items()),
                    "peak_window_rate": stats.peak_window_rate,
                    "window_start_count": stats._window_start_count,
                }
                for stats in sorted(
                    self._lines.values(),
                    key=lambda s: (s.location.file, s.location.line),
                )
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        self.unresolved_pcs = state["unresolved_pcs"]
        self._window_cycles_accumulated = state["window_cycles_accumulated"]
        self._lines = {}
        for entry in state["lines"]:
            loc = SourceLocation(entry["file"], entry["line"])
            stats = LineStats(loc)
            stats.record_count = entry["record_count"]
            stats.pcs = {pc: count for pc, count in entry["pcs"]}
            stats.peak_window_rate = entry["peak_window_rate"]
            stats._window_start_count = entry["window_start_count"]
            self._lines[loc] = stats

    def lines_above_threshold(self, duration_cycles: int,
                              rate_threshold: float) -> List[LineStats]:
        """Source lines whose HITM rate meets the threshold, hottest first."""
        hot = [
            stats
            for stats in self._lines.values()
            if stats.hitm_rate(duration_cycles, self.sample_after_value)
            >= rate_threshold
        ]
        hot.sort(key=lambda s: -s.record_count)
        return hot

    def all_lines(self) -> List[LineStats]:
        return sorted(self._lines.values(), key=lambda s: -s.record_count)

    def stats_for(self, loc: SourceLocation) -> Optional[LineStats]:
        return self._lines.get(loc)
