"""The LASER system (Section 6, Figure 8).

Wires together the three components: the kernel driver (PEBS buffers +
record stripping), the userspace detector process (the Section 4
pipeline), and the online repair mechanism (Section 5).  The detector
"forks the application process to be analyzed" — modelled as a small
heap-base shift in the child's layout — then configures the driver and
consumes records while the application runs.  At every check interval
the detector evaluates false-sharing rates and may invoke LASERREPAIR,
which attaches to the running machine like Pin attaches to a running
process.

Deployability is the paper's whole argument, so the loop is built to
degrade rather than die:

* a stalled detector (``DetectorStall``) skips its poll; the bounded
  driver outbox absorbs the backlog (dropping with accounting beyond
  its capacity) and the next healthy poll resyncs;
* a rejected or failed repair evaluation backs off exponentially and
  is re-evaluated later — contention character shifts at runtime, so
  "unprofitable now" is not "unprofitable forever";
* an attached repair is watched: if the post-repair HITM rate shows
  the repair stopped paying off (or the SSB is thrashing the HTM),
  the watchdog detaches the instrumentation, restoring the original
  program;
* a *crashed* component (``detector.crash``/``driver.crash`` fault
  sites) is supervised (``repro.resilience``): records are journaled
  at the driver boundary, detector state is checkpointed at interval
  boundaries, and a restarted detector restores the last good
  checkpoint and replays exactly the unprocessed journal suffix.  A
  component that exhausts its restart budget trips a circuit breaker
  and the run degrades — detection-only, then passthrough — instead
  of aborting;
* every degradation event is tallied in a :class:`RunHealth` record on
  the result, and under *any* fault schedule the run completes with a
  (possibly degraded) report instead of an exception.
"""

from typing import Optional, Set

from repro._constants import CYCLES_PER_SECOND
from repro.core.config import LaserConfig
from repro.core.detect.pipeline import DetectionPipeline
from repro.core.detect.report import ContentionReport
from repro.core.repair.manager import LaserRepair, RepairPlan
from repro.errors import DetectorStall, RepairError
from repro.faults import FaultInjector, FaultPlan
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import RunTelemetry, WindowStats
from repro.obs.trace import NULL_TRACER, EventTracer
from repro.pebs.driver import KernelDriver
from repro.pebs.imprecision import ImprecisionModel
from repro.pebs.pmu import PerformanceMonitoringUnit
from repro.resilience import Backoff, DegradeMode, ResilienceRuntime
from repro.resilience.journal import RecordJournal, batch_sort_key
from repro.sim.machine import Machine

__all__ = ["Laser", "LaserRunResult", "RunHealth"]


class RunHealth:
    """Degradation tally for one run: what was lost, what was survived.

    All-zero counters mean the run was pristine — the graceful-
    degradation machinery observed nothing and changed nothing.
    """

    _FIELDS = (
        "records_dropped",
        "records_lost",
        "records_corrupted",
        "detector_stalls",
        "detector_restarts",
        "repair_rejections",
        "repair_verifier_rejections",
        "repair_errors",
        "rollbacks",
        "htm_aborts",
        "injected_htm_aborts",
        "ssb_fallback_activations",
        "faults_injected",
        "undecodable_pcs",
        "records_pending_at_exit",
        # Crash recovery (``repro.resilience``).
        "detector_crashes",
        "detector_crash_restarts",
        "driver_crashes",
        "driver_crash_restarts",
        "breaker_trips",
        "records_replayed",
        "records_deduped",
        "checkpoints_written",
        "checkpoints_restored",
        "checkpoints_corrupt",
    )
    #: Informational fields: reported, but not degradation.  A repair
    #: *rejection* is the healthy path (Section 5.4); undecodable PCs
    #: are expected PEBS skid noise (most wrong PCs are not memory
    #: ops); records pending at application exit are drained into the
    #: final report, not lost; checkpoints are *written* on every
    #: healthy run (recovery insurance, not degradation) — restoring
    #: one, or finding one corrupt, is what counts.
    _INFO_FIELDS = frozenset({
        "repair_rejections",
        "undecodable_pcs",
        "records_pending_at_exit",
        "checkpoints_written",
    })
    __slots__ = _FIELDS

    def __init__(self, **counts: int):
        for field in self._FIELDS:
            setattr(self, field, counts.pop(field, 0))
        if counts:
            raise TypeError("unknown RunHealth fields: %s" % sorted(counts))

    @property
    def degraded(self) -> bool:
        """True if anything was lost, restarted, rolled back or faulted.

        Fields in ``_INFO_FIELDS`` are reported but not counted here:
        declining an unprofitable repair is the healthy path
        (Section 5.4), undecodable PCs are expected skid noise, and
        exit-pending records are drained into the final report.  A
        *verifier* rejection is different: the rewriter produced code
        the static TSO/SSB checker could not prove safe, so
        ``repair_verifier_rejections`` does count as degradation.
        """
        return any(
            getattr(self, field)
            for field in self._FIELDS
            if field not in self._INFO_FIELDS
        )

    def as_dict(self) -> dict:
        return {field: getattr(self, field) for field in self._FIELDS}

    def recovery_summary(self) -> str:
        """One line of crash-recovery accounting (quickstart prints it)."""
        return (
            "recovery: restarts detector=%d driver=%d breaker_trips=%d "
            "replayed=%d deduped=%d checkpoints=%d/%d/%d (written/restored/corrupt)"
            % (
                self.detector_crash_restarts,
                self.driver_crash_restarts,
                self.breaker_trips,
                self.records_replayed,
                self.records_deduped,
                self.checkpoints_written,
                self.checkpoints_restored,
                self.checkpoints_corrupt,
            )
        )

    def summary(self) -> str:
        """One line for operators (quickstart prints this)."""
        if not self.degraded:
            info = [
                "%s=%d" % (field, getattr(self, field))
                for field in self._FIELDS
                if field in self._INFO_FIELDS and getattr(self, field)
            ]
            base = "healthy (no drops, stalls, rollbacks or faults)"
            return base + (" [info: %s]" % " ".join(info) if info else "")
        parts = [
            "%s=%d" % (field, getattr(self, field))
            for field in self._FIELDS
            if getattr(self, field)
        ]
        return "degraded: " + " ".join(parts)

    def __eq__(self, other):
        return isinstance(other, RunHealth) and self.as_dict() == other.as_dict()

    def __repr__(self):
        return "<RunHealth %s>" % self.summary()


class LaserRunResult:
    """Everything observable from one application run under LASER."""

    def __init__(
        self,
        cycles: int,
        report: ContentionReport,
        repaired: bool,
        repair_plan: Optional[RepairPlan],
        pmu: PerformanceMonitoringUnit,
        driver: KernelDriver,
        pipeline: DetectionPipeline,
        machine: Machine,
        health: Optional[RunHealth] = None,
        telemetry: Optional[RunTelemetry] = None,
        resilience: Optional[ResilienceRuntime] = None,
    ):
        self.cycles = cycles
        self.report = report
        self.repaired = repaired
        self.repair_plan = repair_plan
        self.pmu = pmu
        self.driver = driver
        self.pipeline = pipeline
        self.machine = machine
        self.health = health or RunHealth()
        #: Per-run observability bundle (``repro.obs``): the windowed
        #: metrics time series, the registry snapshots, and the event
        #: tracer (NULL_TRACER unless ``config.trace_enabled``).
        self.telemetry = telemetry or RunTelemetry()
        #: Crash-recovery bundle (``repro.resilience``), or ``None``
        #: when ``config.resilience_enabled`` is off.
        self.resilience = resilience

    @property
    def detector_cycles(self) -> int:
        """CPU time spent in the userspace detector (Figure 12)."""
        return self.pipeline.stats.detector_cycles

    @property
    def driver_cycles(self) -> int:
        """CPU time spent in the kernel driver (Figure 12)."""
        return self.driver.driver_cycles

    @property
    def application_cpu_cycles(self) -> int:
        """Total busy CPU time across application cores."""
        return sum(core.stats.busy_cycles for core in self.machine.cores)

    @property
    def rolled_back(self) -> bool:
        """True if a repair was applied and later detached."""
        return self.health.rollbacks > 0

    def __repr__(self):
        return "<LaserRunResult cycles=%d hitms=%d repaired=%s%s>" % (
            self.cycles,
            self.pmu.total_hitm_count,
            self.repaired,
            " DEGRADED" if self.health.degraded else "",
        )


class _DetectorState:
    """The detector process's in-memory loop state.

    Everything here dies with a detector crash and is rebuilt from the
    last checkpoint (plus journal replay); keeping it in one object
    keeps the crash/restore boundary honest.  The repair-attachment
    flags (``plan``/``repaired``/``rolled_back``) are *not* part of the
    checkpointed loop state — the resilience runtime is the durable
    authority on what instrumentation is live in the machine, and
    restore reconciles against it (a checkpoint can legitimately be a
    generation stale; trusting its attachment flags could double-attach).
    """

    __slots__ = ("plan", "repaired", "rolled_back", "stalled",
                 "window_start", "backoff_remaining", "repair_backoff",
                 "attach_rate", "windows_since_attach",
                 "mark_cycle", "mark_hitm", "mark_aborts")

    def __init__(self, config: LaserConfig):
        self.plan: Optional[RepairPlan] = None
        self.repaired = False
        self.rolled_back = False
        self.repair_backoff = Backoff(
            config.repair_backoff_intervals, config.repair_backoff_max
        )
        self.reset_loop_state()

    def reset_loop_state(self) -> None:
        """Cold-start values (a restart with no checkpoint to restore)."""
        self.stalled = False
        self.window_start = 0
        self.backoff_remaining = 0
        self.repair_backoff.reset()
        self.attach_rate = 0.0
        self.windows_since_attach = 0
        self.mark_cycle = 0
        self.mark_hitm = 0
        self.mark_aborts = 0

    def loop_state(self) -> dict:
        """Checkpoint payload for the loop-control state."""
        return {
            "window_start": self.window_start,
            "stalled": self.stalled,
            "backoff_remaining": self.backoff_remaining,
            "backoff_current": self.repair_backoff.current,
            "attach_rate": self.attach_rate,
            "windows_since_attach": self.windows_since_attach,
            "mark_cycle": self.mark_cycle,
            "mark_hitm": self.mark_hitm,
            "mark_aborts": self.mark_aborts,
        }

    def load_loop_state(self, loop: dict) -> None:
        self.window_start = loop["window_start"]
        self.stalled = loop["stalled"]
        self.backoff_remaining = loop["backoff_remaining"]
        self.repair_backoff.current = loop["backoff_current"]
        self.attach_rate = loop["attach_rate"]
        self.windows_since_attach = loop["windows_since_attach"]
        self.mark_cycle = loop["mark_cycle"]
        self.mark_hitm = loop["mark_hitm"]
        self.mark_aborts = loop["mark_aborts"]


class Laser:
    """The deployable system: detect + (optionally) repair online."""

    def __init__(self, config: Optional[LaserConfig] = None,
                 faults: Optional[FaultPlan] = None):
        self.config = config or LaserConfig()
        #: Fault schedule applied to every run (empty = free, identical
        #: to no injection at all).
        self.faults = faults or FaultPlan()
        self.repairer = LaserRepair(
            min_stores_per_flush=self.config.min_stores_per_flush,
            abort_fallback_threshold=self.config.htm_abort_fallback_threshold,
            verify_rewrites=self.config.verify_repairs,
        )

    # ------------------------------------------------------------------
    # Running a workload under LASER
    # ------------------------------------------------------------------

    def run_workload(self, workload, scale: float = 1.0,
                     max_cycles: int = 200_000_000) -> LaserRunResult:
        """Fork (build with the shifted heap) and monitor a workload."""
        built = workload.build(
            heap_offset=self.config.heap_shift,
            seed=self.config.seed,
            scale=scale,
        )
        return self.run_built(built, max_cycles=max_cycles)

    def run_built(self, built,
                  max_cycles: int = 200_000_000) -> LaserRunResult:
        """Monitor an already-built program."""
        config = self.config
        program = built.program
        injector = FaultInjector(self.faults)
        # Observability: the tracer is shared by every instrumented
        # component (machine/HTM, PMU, driver, pipeline, repair); the
        # telemetry bundle collects the per-window time series.  With
        # tracing off the shared NULL_TRACER makes every site a single
        # predicted-not-taken branch, and a run's simulated cycles are
        # identical either way — tracing observes, it never charges.
        tracer = (
            EventTracer(capacity=config.trace_capacity)
            if config.trace_enabled else NULL_TRACER
        )
        telemetry = RunTelemetry(tracer=tracer, metrics=MetricsRegistry())
        machine = Machine(
            program,
            seed=config.seed,
            allocator=built.allocator,
            fault_injector=injector,
            tracer=tracer,
        )
        built.apply_init(machine)

        # Wrong PCs scatter across the whole app text region (most of a
        # real binary is cold code with no HITM-relevant debug lines).
        app_region = machine.vmmap.find(program.code_base)
        imprecision = ImprecisionModel(
            app_region.start, app_region.end, seed=config.seed
        )
        # Crash recovery (``repro.resilience``): like tracing, the
        # runtime observes and never charges simulated cycles, so a run
        # with no crash faults is bit-identical with it on or off.
        # Built before the driver so records are journaled from the
        # very first delivery.
        runtime = (
            ResilienceRuntime(config, config.seed,
                              injector=injector, tracer=tracer)
            if config.resilience_enabled else None
        )
        driver = KernelDriver(
            outbox_capacity=config.outbox_capacity, injector=injector,
            tracer=tracer,
            journal=runtime.journal if runtime is not None else None,
        )
        pmu = PerformanceMonitoringUnit(
            imprecision,
            driver=driver,
            sample_after_value=config.sample_after_value,
            pebs_enabled=config.detection_enabled,
            injector=injector,
            tracer=tracer,
        )
        machine.on_hitm = pmu.on_hitm
        pipeline = DetectionPipeline(
            program, machine.vmmap, config.sample_after_value,
            tracer=tracer,
        )
        tracer.emit(
            "laser.run_begin", 0, program=program.name,
            sample_after_value=config.sample_after_value,
            check_interval=config.check_interval_cycles,
            repair_enabled=config.repair_enabled,
        )

        health = RunHealth()
        st = _DetectorState(config)
        next_check = config.check_interval_cycles
        interval = 0
        # Windowed-telemetry marker: totals as of the last recorded
        # window, so each window stores deltas (see _record_window).
        marker = {
            "cycle": 0, "hitm": 0, "seen": 0, "admitted": 0,
            "dropped": 0, "detector": 0, "driver": 0,
            "flushes": 0, "aborts": 0,
        }

        while True:
            result = machine.run(until_cycle=next_check, max_cycles=max_cycles)
            interval += 1
            # Component supervision: service crash faults and any due
            # restarts before the detector's poll.
            recovery = False
            if runtime is not None:
                recovery = self._supervise(
                    runtime, driver, pipeline, st, machine, injector, interval
                )
            detector = (
                runtime.supervisor["detector"] if runtime is not None else None
            )
            polled = False
            if detector is None or detector.running:
                # The detector's periodic poll forces a drain of partially
                # filled per-core buffers (otherwise records would sit until
                # the 64-record buffer-full interrupt, blinding the online
                # repair trigger on short phases).  A stalled detector skips
                # the poll; records back up in the bounded driver outbox and
                # the next healthy poll resyncs over the combined window.
                if (runtime is not None
                        and injector.fires("detector.crash")):
                    # Pre-poll crash: the detector dies before its read;
                    # the whole batch waits in the journal for the restart.
                    self._detector_crashed(runtime, interval, machine.cycle)
                else:
                    try:
                        if injector.fires("detector.stall"):
                            raise DetectorStall(
                                "detector missed poll at cycle %d" % machine.cycle
                            )
                        if st.stalled:
                            st.stalled = False
                            health.detector_restarts += 1
                            tracer.emit("detector.resync", machine.cycle,
                                        backlog=driver.pending_records)
                        records = driver.flush_all()
                        if (runtime is not None
                                and injector.fires("detector.crash")):
                            # Post-read, pre-ack crash: the read batch is
                            # discarded unacknowledged; it stays below no
                            # mark, so replay recovers it and the driver's
                            # re-delivery is deduplicated.
                            self._detector_crashed(runtime, interval,
                                                   machine.cycle)
                        else:
                            self._process_poll(runtime, pipeline, st, records,
                                               recovery, machine)
                            pipeline.roll_window(machine.cycle - st.window_start,
                                                 cycle=machine.cycle)
                            st.window_start = machine.cycle
                            polled = True
                    except DetectorStall:
                        health.detector_stalls += 1
                        st.stalled = True
                        tracer.emit("detector.stall", machine.cycle,
                                    backlog=driver.pending_records)
            detector_up = detector is None or detector.running
            self._record_window(
                telemetry, marker, machine, pmu, driver, pipeline, st.plan,
                stalled=st.stalled or not detector_up,
                repair_state=("attached" if st.repaired
                              else "rolled_back" if st.rolled_back
                              else "idle"),
                extra_buffers=(runtime.detached_buffers
                               if runtime is not None else ()),
            )
            if result.finished:
                break
            next_check = machine.cycle + config.check_interval_cycles
            if not polled:
                continue  # a stalled, crashed or down detector evaluates nothing
            self._repair_step(runtime, pipeline, st, machine, pmu, injector,
                              health, tracer)
            if (runtime is not None
                    and interval % config.checkpoint_every_windows == 0):
                self._save_checkpoint(runtime, pipeline, st, machine.cycle)

        # Records still sitting in the driver at application exit were
        # never seen by the *online* detector; surface the count before
        # the final drain folds them into the offline report.
        health.records_pending_at_exit = driver.pending_records
        was_down = (
            runtime is not None
            and not runtime.supervisor["detector"].running
        )
        if runtime is not None:
            if was_down:
                # Offline recovery: the detector was down (or halted in
                # passthrough) when the application exited.  The journal
                # is durable, so the report is rebuilt the same way a
                # restarted detector would: checkpoint + replay, then
                # the final drain.
                tracer.emit(
                    "resil.offline_recover", machine.cycle,
                    status=runtime.supervisor["detector"].status,
                )
                self._restore_detector(runtime, pipeline, st, machine, tracer)
                self._process_poll(runtime, pipeline, st,
                                   driver.flush_all(), True, machine)
            else:
                fresh, dups = RecordJournal.dedup(
                    driver.flush_all(), runtime.journal.acked_seq
                )
                runtime.count_deduped(dups)
                pipeline.process(fresh)
        else:
            pipeline.process(driver.flush_all())
        if health.records_pending_at_exit or st.stalled or was_down:
            # Catch-up window: whatever the final drain added beyond the
            # last recorded window (stalled finishes, exit backlogs).
            self._record_window(
                telemetry, marker, machine, pmu, driver, pipeline, st.plan,
                stalled=st.stalled or was_down,
                repair_state=("attached" if st.repaired
                              else "rolled_back" if st.rolled_back
                              else "idle"),
                extra_buffers=(runtime.detached_buffers
                               if runtime is not None else ()),
            )
        report = pipeline.report(machine.cycle, config.rate_threshold)
        self._finalize_health(health, machine, driver, injector, st.plan,
                              pipeline, runtime)
        tracer.emit(
            "laser.run_end", machine.cycle, cycles=machine.cycle,
            hitm_events=pmu.total_hitm_count, repaired=st.repaired,
            degraded=health.degraded,
        )
        return LaserRunResult(
            cycles=machine.cycle,
            report=report,
            repaired=st.repaired,
            repair_plan=st.plan,
            pmu=pmu,
            driver=driver,
            pipeline=pipeline,
            machine=machine,
            health=health,
            telemetry=telemetry,
            resilience=runtime,
        )

    # ------------------------------------------------------------------
    # Crash recovery (``repro.resilience``)
    # ------------------------------------------------------------------

    def _supervise(self, runtime: ResilienceRuntime, driver: KernelDriver,
                   pipeline: DetectionPipeline, st: _DetectorState,
                   machine: Machine, injector: FaultInjector,
                   interval: int) -> bool:
        """Service crash faults and due restarts at an interval boundary.

        Returns True when the upcoming poll is a *recovery poll* — one
        that must take its batch from the journal because the driver's
        volatile buffers no longer hold the full picture.
        """
        supervisor = runtime.supervisor
        cycle = machine.cycle
        recovery = False
        component = supervisor["driver"]
        if component.running:
            if injector.fires("driver.crash"):
                driver.crash_reset()
                if supervisor.crash("driver", interval, cycle):
                    # A kernel module reload is synchronous: the driver
                    # is back before the next delivery.  The wiped
                    # volatile records were journaled at delivery, so
                    # this interval's poll heals from the WAL.
                    supervisor.restart("driver", interval, cycle)
                    recovery = True
                elif self._breaker_tripped(runtime, "driver", interval, cycle):
                    recovery = True  # rearmed immediately; heal from WAL
                else:
                    driver.halted = True
            else:
                supervisor.beat("driver", interval)
        component = supervisor["detector"]
        if component.running:
            supervisor.beat("detector", interval)
        elif supervisor.due("detector", interval):
            supervisor.restart("detector", interval, cycle)
            self._restore_detector(runtime, pipeline, st, machine,
                                   runtime.tracer)
            recovery = True
        return recovery

    def _detector_crashed(self, runtime: ResilienceRuntime,
                          interval: int, cycle: int) -> None:
        """The detector process died; schedule its restart (or degrade)."""
        if not runtime.supervisor.crash("detector", interval, cycle):
            self._breaker_tripped(runtime, "detector", interval, cycle)

    def _breaker_tripped(self, runtime: ResilienceRuntime, name: str,
                         interval: int, cycle: int) -> bool:
        """Walk the degrade ladder after a circuit-breaker trip.

        Returns True if the component was handed a fresh budget and is
        running again (drivers come back immediately — they are
        stateless beyond their volatiles; the detector restarts through
        the normal restore path next interval).
        """
        mode = runtime.degrade(interval, cycle)
        if mode == DegradeMode.DETECTION_ONLY:
            immediate = name == "driver"
            runtime.supervisor.rearm(
                name, interval, cycle,
                max_attempts=self.config.max_component_restarts,
                immediate=immediate,
            )
            return immediate
        # PASSTHROUGH: the component stays halted; monitoring stands
        # down and the final report is recovered offline from the WAL.
        return False

    def _restore_detector(self, runtime: ResilienceRuntime,
                          pipeline: DetectionPipeline, st: _DetectorState,
                          machine: Machine, tracer) -> None:
        """Rebuild a restarted detector: checkpoint, reconcile, replay."""
        state = runtime.checkpoints.load(machine.cycle)
        if state is None:
            # Checkpoint-less cold start (first restart before any
            # checkpoint was written, or every generation corrupt):
            # empty pipeline, replay the journal from seq 0.
            pipeline.reset_state()
            st.reset_loop_state()
        else:
            pipeline.load_state_dict(state["pipeline"])
            st.load_loop_state(state["loop"])
        # The runtime — not the (possibly stale, possibly fallen-back)
        # checkpoint — is the authority on what instrumentation is live
        # in the machine; trusting an older generation here could
        # double-attach or strand an SSB.
        if runtime.attached_state is not None:
            st.plan = RepairPlan.from_attached_state(
                machine.program, runtime.attached_state
            )
            st.repaired = True
            st.rolled_back = False
        else:
            st.plan = None
            st.repaired = False
            st.rolled_back = runtime.rolled_back
        # Replay the acked suffix in live order: each marked batch is
        # one pre-crash poll, re-sorted exactly as read_records merged
        # it and rolled through the same window boundary.  The unacked
        # tail is left for the caller's recovery poll.
        start = state["acked_seq"] if state is not None else 0
        batches, tail = runtime.journal.batches_after(start)
        replayed = 0
        for entries, poll_cycle in batches:
            batch = sorted(entries, key=batch_sort_key)
            pipeline.process(batch)
            pipeline.roll_window(poll_cycle - st.window_start,
                                 cycle=poll_cycle)
            st.window_start = poll_cycle
            replayed += len(batch)
        runtime.count_replayed(replayed)
        if tracer.enabled:
            tracer.emit("resil.replay", machine.cycle, from_seq=start,
                        batches=len(batches), records=replayed,
                        tail=len(tail))

    @staticmethod
    def _process_poll(runtime: Optional[ResilienceRuntime],
                      pipeline: DetectionPipeline, st: _DetectorState,
                      records, recovery: bool, machine: Machine) -> None:
        """Process one poll's batch, with journal dedup/ack when enabled."""
        if runtime is None:
            pipeline.process(records)
            return
        journal = runtime.journal
        if recovery:
            # The journal is authoritative after a crash: the unacked
            # tail is a superset of whatever survived in the driver's
            # volatile buffers, so the driver's own delivery is counted
            # as duplicate and the difference as replayed.
            tail = journal.entries_after(journal.acked_seq)
            runtime.count_deduped(len(records))
            runtime.count_replayed(len(tail) - len(records))
            batch = sorted(tail, key=batch_sort_key)
        else:
            batch, dups = RecordJournal.dedup(records, journal.acked_seq)
            runtime.count_deduped(dups)
        pipeline.process(batch)
        if batch:
            journal.mark_batch(max(r.seq for r in batch), machine.cycle)

    @staticmethod
    def _save_checkpoint(runtime: ResilienceRuntime,
                         pipeline: DetectionPipeline, st: _DetectorState,
                         cycle: int) -> None:
        state = {
            "pipeline": pipeline.state_dict(),
            "loop": st.loop_state(),
            "acked_seq": runtime.journal.acked_seq,
        }
        runtime.checkpoints.save(state, cycle)
        # Compaction: entries at or below the *oldest retained*
        # checkpoint's watermark can never be replayed again, even if
        # restore falls back a generation.
        runtime.journal.truncate_through(
            runtime.checkpoints.min_retained("acked_seq")
        )

    # ------------------------------------------------------------------
    # Repair evaluation at a healthy interval boundary
    # ------------------------------------------------------------------

    def _repair_step(self, runtime: Optional[ResilienceRuntime],
                     pipeline: DetectionPipeline, st: _DetectorState,
                     machine: Machine, pmu: PerformanceMonitoringUnit,
                     injector: FaultInjector, health: RunHealth,
                     tracer) -> None:
        config = self.config
        if not (config.repair_enabled and config.detection_enabled):
            return
        if st.repaired:
            # Post-repair watchdog: judge the attached repair every
            # watchdog_windows windows; detach if it stopped paying.
            st.windows_since_attach += 1
            if (config.rollback_enabled
                    and st.windows_since_attach % config.watchdog_windows == 0):
                elapsed = machine.cycle - st.mark_cycle
                post_rate = (
                    (pmu.total_hitm_count - st.mark_hitm)
                    * CYCLES_PER_SECOND / elapsed
                    if elapsed > 0 else 0.0
                )
                aborts = self._ssb_abort_count(machine)
                abort_rate = (aborts - st.mark_aborts) / config.watchdog_windows
                paying = (post_rate < config.watchdog_rate_ratio * st.attach_rate
                          and abort_rate < config.watchdog_abort_rate)
                tracer.emit(
                    "repair.watchdog", machine.cycle,
                    post_rate=round(post_rate, 3),
                    attach_rate=round(st.attach_rate, 3),
                    abort_rate=round(abort_rate, 3),
                    verdict="keep" if paying else "detach",
                )
                if not paying:
                    self.repairer.detach(machine, st.plan)
                    health.rollbacks += 1
                    st.repaired = False
                    st.rolled_back = True
                    if runtime is not None:
                        # Detachment is durable state: record it (and the
                        # host-side SSB stats) and checkpoint immediately
                        # so no restore resurrects the attachment.
                        runtime.note_detached(st.plan.detached_buffers)
                        self._save_checkpoint(runtime, pipeline, st,
                                              machine.cycle)
                else:
                    st.mark_cycle = machine.cycle
                    st.mark_hitm = pmu.total_hitm_count
                    st.mark_aborts = aborts
            return
        if st.rolled_back:
            return  # one rollback ends repair attempts for the run
        if runtime is not None and not runtime.repair_allowed:
            return  # degraded to detection-only: no new instrumentation
        if st.backoff_remaining > 0:
            st.backoff_remaining -= 1
            return
        try:
            if injector.fires("repair.error"):
                raise RepairError(
                    "injected repair analysis failure at cycle %d"
                    % machine.cycle
                )
            plan = self._maybe_repair(machine, pipeline, tracer)
        except RepairError:
            health.repair_errors += 1
            st.backoff_remaining = st.repair_backoff.step()
            tracer.emit("repair.backoff", machine.cycle,
                        reason="repair_error",
                        intervals=st.backoff_remaining)
            return
        st.plan = plan if plan is not None else st.plan
        if plan is not None and plan.profitable:
            self.repairer.attach(machine, plan)
            st.repaired = True
            st.windows_since_attach = 0
            st.attach_rate = (
                pmu.total_hitm_count * CYCLES_PER_SECOND / machine.cycle
                if machine.cycle > 0 else 0.0
            )
            st.mark_cycle = machine.cycle
            st.mark_hitm = pmu.total_hitm_count
            st.mark_aborts = self._ssb_abort_count(machine)
            if runtime is not None:
                # Attachment is durable state: record the serialized
                # plan and checkpoint immediately, so a restore from
                # any retained generation reconciles correctly.
                runtime.note_attached(plan.attached_state())
                self._save_checkpoint(runtime, pipeline, st, machine.cycle)
        elif plan is not None and plan.rejected_reason:
            # Re-evaluate later instead of bailing out permanently:
            # contention character shifts, and so does profitability.
            if plan.verifier_rejected:
                health.repair_verifier_rejections += 1
            else:
                health.repair_rejections += 1
            st.backoff_remaining = st.repair_backoff.step()
            tracer.emit("repair.backoff", machine.cycle,
                        reason=plan.rejected_reason,
                        intervals=st.backoff_remaining)

    # ------------------------------------------------------------------
    # Accounting helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _ssb_abort_count(machine: Machine) -> int:
        return sum(
            core.ssb.stats.htm_aborts
            for core in machine.cores
            if core.ssb is not None
        )

    @staticmethod
    def _ssb_buffers(machine: Machine, plan: Optional[RepairPlan],
                     extra=()):
        """Attached + detached SSBs, deduplicated by identity.

        A detached buffer can be referenced both by the plan that owned
        it and by the resilience runtime's durable list (which outlives
        detector crashes); counting it twice would double its stats.
        """
        buffers = {
            id(core.ssb): core.ssb
            for core in machine.cores
            if core.ssb is not None
        }
        if plan is not None:
            for ssb in plan.detached_buffers:
                buffers[id(ssb)] = ssb
        for ssb in extra:
            buffers[id(ssb)] = ssb
        return list(buffers.values())

    @classmethod
    def _ssb_totals(cls, machine: Machine, plan: Optional[RepairPlan],
                    extra=()):
        """(flushes, htm_aborts) over attached *and* detached SSBs."""
        buffers = cls._ssb_buffers(machine, plan, extra)
        return (
            sum(ssb.stats.flushes for ssb in buffers),
            sum(ssb.stats.htm_aborts for ssb in buffers),
        )

    def _record_window(self, telemetry: RunTelemetry, marker: dict,
                       machine: Machine, pmu: PerformanceMonitoringUnit,
                       driver: KernelDriver, pipeline: DetectionPipeline,
                       plan: Optional[RepairPlan], stalled: bool,
                       repair_state: str, extra_buffers=()) -> None:
        """Close one telemetry window: deltas since ``marker``.

        Also updates the metrics registry, whose snapshot rides along
        with the window (``telemetry.snapshots``).

        The marker is a *high-water mark*: a detector restore can
        legitimately regress pipeline totals (cold start from a
        compacted journal after every checkpoint generation proved
        corrupt), so deltas clamp at zero and the marker never moves
        backwards — replay then only counts progress past the totals
        already reported.
        """
        end = machine.cycle
        flushes, aborts = self._ssb_totals(machine, plan, extra_buffers)
        totals = {
            "hitm": pmu.total_hitm_count,
            "seen": pipeline.stats.records_seen,
            "admitted": pipeline.stats.records_admitted,
            "dropped": driver.records_dropped,
            "detector": pipeline.stats.detector_cycles,
            "driver": driver.driver_cycles,
            "flushes": flushes,
            "aborts": aborts,
        }
        deltas = {
            key: max(0, totals[key] - marker[key]) for key in totals
        }
        start = marker["cycle"]
        duration = end - start
        rate = (
            deltas["hitm"] * CYCLES_PER_SECOND / duration
            if duration > 0 else 0.0
        )
        window = WindowStats(
            index=len(telemetry.windows),
            start_cycle=start,
            end_cycle=end,
            stalled=stalled,
            repair_state=repair_state,
            hitm_events=deltas["hitm"],
            hitm_rate=rate,
            records_seen=deltas["seen"],
            records_admitted=deltas["admitted"],
            records_dropped=deltas["dropped"],
            detector_cycles=deltas["detector"],
            driver_cycles=deltas["driver"],
            ssb_flushes=deltas["flushes"],
            ssb_htm_aborts=deltas["aborts"],
        )
        for key in totals:
            marker[key] = max(totals[key], marker[key])
        marker["cycle"] = end
        metrics = telemetry.metrics
        metrics.counter("hitm.events").inc(window.hitm_events)
        metrics.counter("records.seen").inc(window.records_seen)
        metrics.counter("records.admitted").inc(window.records_admitted)
        metrics.counter("records.dropped").inc(window.records_dropped)
        metrics.counter("detector.cycles").inc(window.detector_cycles)
        metrics.counter("driver.cycles").inc(window.driver_cycles)
        metrics.counter("ssb.flushes").inc(window.ssb_flushes)
        metrics.counter("ssb.htm_aborts").inc(window.ssb_htm_aborts)
        metrics.counter("detector.stalled_windows").inc(1 if stalled else 0)
        metrics.gauge("window.hitm_rate").set(round(rate, 6))
        metrics.gauge("repair.attached").set(
            1 if repair_state == "attached" else 0
        )
        metrics.histogram("window.hitm_rate_hist").observe(round(rate, 6))
        telemetry.record_window(window)

    @classmethod
    def _finalize_health(cls, health: "RunHealth", machine: Machine,
                         driver: KernelDriver, injector: FaultInjector,
                         plan: Optional[RepairPlan],
                         pipeline: Optional[DetectionPipeline] = None,
                         runtime: Optional[ResilienceRuntime] = None) -> None:
        if pipeline is not None:
            health.undecodable_pcs = pipeline.stats.undecodable_pcs
        health.records_dropped = driver.records_dropped
        health.records_lost = injector.fired["pebs.record_drop"]
        health.records_corrupted = injector.fired["pebs.record_corrupt"]
        health.htm_aborts = machine.htm.aborts
        health.injected_htm_aborts = injector.fired["htm.abort"]
        extra = runtime.detached_buffers if runtime is not None else ()
        health.ssb_fallback_activations = sum(
            ssb.stats.fallback_activations
            for ssb in cls._ssb_buffers(machine, plan, extra)
        )
        health.faults_injected = injector.total_fired
        if runtime is not None:
            supervisor = runtime.supervisor
            health.detector_crashes = supervisor["detector"].crashes
            health.detector_crash_restarts = supervisor["detector"].restarts
            health.driver_crashes = supervisor["driver"].crashes
            health.driver_crash_restarts = supervisor["driver"].restarts
            health.breaker_trips = sum(
                component.breaker_trips
                for component in supervisor.components
            )
            health.records_replayed = runtime.records_replayed
            health.records_deduped = runtime.records_deduped
            health.checkpoints_written = runtime.checkpoints.written
            health.checkpoints_restored = runtime.checkpoints.restored
            health.checkpoints_corrupt = runtime.checkpoints.corrupt_detected

    # ------------------------------------------------------------------
    # Repair trigger (Section 4.4)
    # ------------------------------------------------------------------

    def _maybe_repair(self, machine: Machine, pipeline: DetectionPipeline,
                      tracer: Optional[EventTracer] = None,
                      ) -> Optional[RepairPlan]:
        """Check FS rates; build a plan if they exceed the trigger."""
        interim = pipeline.report(machine.cycle, self.config.rate_threshold)
        fs_lines = interim.repair_candidates(
            min_total_hitm_rate=self.config.repair_trigger_rate
        )
        if not fs_lines:
            return None
        contending_pcs: Set[int] = set()
        for line in fs_lines:
            contending_pcs.update(
                pipeline.contending_pcs_for_line(line.location)
            )
        if not contending_pcs:
            return None
        if tracer is not None and tracer.enabled:
            tracer.emit(
                "repair.trigger", machine.cycle,
                lines=[str(line.location) for line in fs_lines],
                pcs=len(contending_pcs),
            )
        return self.repairer.plan(
            machine.program, contending_pcs,
            tracer=tracer if tracer is not None else NULL_TRACER,
            cycle=machine.cycle,
        )
