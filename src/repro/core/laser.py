"""The LASER system (Section 6, Figure 8).

Wires together the three components: the kernel driver (PEBS buffers +
record stripping), the userspace detector process (the Section 4
pipeline), and the online repair mechanism (Section 5).  The detector
"forks the application process to be analyzed" — modelled as a small
heap-base shift in the child's layout — then configures the driver and
consumes records while the application runs.  At every check interval
the detector evaluates false-sharing rates and may invoke LASERREPAIR,
which attaches to the running machine like Pin attaches to a running
process.

The run loop itself lives in the service kernel
(:mod:`repro.core.services`): ``run_built`` composes a
:class:`~repro.core.services.context.RunContext` with six services —
driver poll, detection, repair, resilience, telemetry, overload
control — under a deterministic
:class:`~repro.core.services.scheduler.Scheduler`, and wraps the
outcome.  Deployability is the paper's whole argument, so
the kernel degrades rather than dies: stalls resync, rejected repairs
back off, unprofitable repairs detach, crashed components restart from
checkpoint + journal, exhausted restart budgets degrade the run
(detection-only, then passthrough) instead of aborting, and every
degradation event is tallied in a :class:`RunHealth` record on the
result.
"""

from typing import Optional

from repro.accel import resolve_engine, resolve_sim_engine
from repro.core.config import LaserConfig
from repro.core.detect.pipeline import DetectionPipeline
from repro.core.detect.report import ContentionReport
from repro.core.health import RunHealth
from repro.core.repair.manager import LaserRepair, RepairPlan
from repro.core.services import (
    ControlService,
    DetectionService,
    DetectorState,
    DriverPollService,
    RepairService,
    ResilienceService,
    RunContext,
    Scheduler,
    TelemetryService,
)
from repro.faults import FaultInjector, FaultPlan
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import NULL_PROFILER, HostProfiler
from repro.obs.telemetry import RunTelemetry
from repro.obs.trace import NULL_TRACER, EventTracer
from repro.pebs.driver import KernelDriver
from repro.pebs.imprecision import ImprecisionModel
from repro.pebs.pmu import PerformanceMonitoringUnit
from repro.resilience import ResilienceRuntime
from repro.sim.machine import Machine
from repro.static.race import certify_built

__all__ = ["Laser", "LaserRunResult", "RunHealth"]


class LaserRunResult:
    """Everything observable from one application run under LASER."""

    def __init__(
        self,
        cycles: int,
        report: ContentionReport,
        repaired: bool,
        repair_plan: Optional[RepairPlan],
        pmu: PerformanceMonitoringUnit,
        driver: KernelDriver,
        pipeline: DetectionPipeline,
        machine: Machine,
        health: Optional[RunHealth] = None,
        telemetry: Optional[RunTelemetry] = None,
        resilience: Optional[ResilienceRuntime] = None,
        profile: Optional[HostProfiler] = None,
    ):
        self.cycles = cycles
        self.report = report
        self.repaired = repaired
        self.repair_plan = repair_plan
        self.pmu = pmu
        self.driver = driver
        self.pipeline = pipeline
        self.machine = machine
        self.health = health or RunHealth()
        #: Per-run observability bundle (``repro.obs``): the windowed
        #: metrics time series, the registry snapshots, and the event
        #: tracer (NULL_TRACER unless ``config.trace_enabled``).
        self.telemetry = telemetry or RunTelemetry()
        #: Crash-recovery bundle (``repro.resilience``), or ``None``
        #: when ``config.resilience_enabled`` is off.
        self.resilience = resilience
        #: Host-time profiler (``repro.obs.profile``) with this run's
        #: wall-clock breakdown, or ``None`` when
        #: ``config.profile_enabled`` is off.
        self.profile = profile

    @property
    def detector_cycles(self) -> int:
        """CPU time spent in the userspace detector (Figure 12)."""
        return self.pipeline.stats.detector_cycles

    @property
    def driver_cycles(self) -> int:
        """CPU time spent in the kernel driver (Figure 12)."""
        return self.driver.driver_cycles

    @property
    def application_cpu_cycles(self) -> int:
        """Total busy CPU time across application cores."""
        return sum(core.stats.busy_cycles for core in self.machine.cores)

    @property
    def rolled_back(self) -> bool:
        """True if a repair was applied and later detached."""
        return self.health.rollbacks > 0

    def __repr__(self):
        return "<LaserRunResult cycles=%d hitms=%d repaired=%s%s>" % (
            self.cycles,
            self.pmu.total_hitm_count,
            self.repaired,
            " DEGRADED" if self.health.degraded else "",
        )


class Laser:
    """The deployable system: detect + (optionally) repair online."""

    def __init__(self, config: Optional[LaserConfig] = None,
                 faults: Optional[FaultPlan] = None,
                 transport=None):
        self.config = config or LaserConfig()
        #: Fault schedule applied to every run (empty = free, identical
        #: to no injection at all).
        self.faults = faults or FaultPlan()
        #: Client-to-shard record transport (``repro.fleet``), or
        #: ``None`` on the single-run path.  Transports are stateful
        #: across polls, so the fleet attaches a fresh one per session;
        #: with no transport the driver-poll slice is byte-identical to
        #: pre-fleet behavior.
        self.transport = transport
        self.repairer = LaserRepair(
            min_stores_per_flush=self.config.min_stores_per_flush,
            abort_fallback_threshold=self.config.htm_abort_fallback_threshold,
            verify_rewrites=self.config.verify_repairs,
        )

    # ------------------------------------------------------------------
    # Running a workload under LASER
    # ------------------------------------------------------------------

    def run_workload(self, workload, scale: float = 1.0,
                     max_cycles: int = 200_000_000) -> LaserRunResult:
        """Fork (build with the shifted heap) and monitor a workload."""
        built = workload.build(
            heap_offset=self.config.heap_shift,
            seed=self.config.seed,
            scale=scale,
        )
        return self.run_built(built, max_cycles=max_cycles)

    def run_built(self, built,
                  max_cycles: int = 200_000_000) -> LaserRunResult:
        """Monitor an already-built program: compose the kernel, run it."""
        config = self.config
        program = built.program
        injector = FaultInjector(self.faults)
        # Acceleration engines (``repro.accel``): resolved once per run
        # so every component agrees, and recorded on RunHealth so the
        # run reports which engines actually served it.
        engine = resolve_engine(config.engine)
        sim_engine = resolve_sim_engine(config.sim_engine)
        # Observability: the tracer is shared by every instrumented
        # component; with tracing off the shared NULL_TRACER makes
        # every site a single predicted-not-taken branch, and a run's
        # simulated cycles are identical either way.
        tracer = (
            EventTracer(capacity=config.trace_capacity)
            if config.trace_enabled else NULL_TRACER
        )
        telemetry = RunTelemetry(tracer=tracer, metrics=MetricsRegistry())
        # Host-time profiling follows the same discipline: one shared
        # profiler (or the NULL_PROFILER), reading only the host clock,
        # so simulated outputs are bit-identical on or off.
        profiler = (
            HostProfiler() if config.profile_enabled else NULL_PROFILER
        )
        machine = Machine(
            program,
            seed=config.seed,
            allocator=built.allocator,
            fault_injector=injector,
            tracer=tracer,
            profiler=profiler,
            engine=sim_engine,
        )
        built.apply_init(machine)
        # Wrong PCs scatter across the whole app text region (most of a
        # real binary is cold code with no HITM-relevant debug lines).
        app_region = machine.vmmap.find(program.code_base)
        imprecision = ImprecisionModel(
            app_region.start, app_region.end, seed=config.seed
        )
        # Crash recovery: like tracing, the runtime observes and never
        # charges simulated cycles.  Built before the driver so records
        # are journaled from the very first delivery.
        runtime = (
            ResilienceRuntime(config, config.seed,
                              injector=injector, tracer=tracer)
            if config.resilience_enabled else None
        )
        driver = KernelDriver(
            outbox_capacity=config.outbox_capacity, injector=injector,
            tracer=tracer,
            journal=runtime.journal if runtime is not None else None,
            profiler=profiler,
            engine=engine,
        )
        pmu = PerformanceMonitoringUnit(
            imprecision,
            driver=driver,
            sample_after_value=config.sample_after_value,
            pebs_enabled=config.detection_enabled,
            injector=injector,
            tracer=tracer,
        )
        machine.on_hitm = pmu.on_hitm
        # Static race certification: computed only when a knob asks for
        # it, so default runs stay bit-identical to the golden pins.
        certificate = None
        if config.race_gate or config.static_prefilter:
            certificate = certify_built(built)
            tracer.emit(
                "static.certificate", 0,
                unsafe=certificate.unsafe,
                racy_lines=len(certificate.racy_lines()),
                priority_lines=len(certificate.priority_lines()),
                complete=certificate.complete,
            )
        # The certificate-derived prefilter is fail-open: applied only
        # when the certifier classified *every* footprint (a clipped
        # footprint means a line could be shared without appearing in
        # the priority set).
        line_priorities = None
        if (config.static_prefilter and certificate is not None
                and certificate.complete):
            line_priorities = certificate.priority_lines()
        pipeline = DetectionPipeline(
            program, machine.vmmap, config.sample_after_value,
            tracer=tracer, line_priorities=line_priorities,
            engine=engine,
        )
        ctx = RunContext(
            config=config, machine=machine, program=program,
            injector=injector, tracer=tracer, telemetry=telemetry,
            health=RunHealth(engine=engine, sim_engine=sim_engine),
            driver=driver, pmu=pmu,
            pipeline=pipeline, repairer=self.repairer, runtime=runtime,
            st=DetectorState(config), certificate=certificate,
            profiler=profiler, transport=self.transport,
        )
        resilience = ResilienceService()
        scheduler = Scheduler(
            ctx,
            resilience=resilience,
            driver_poll=DriverPollService(resilience),
            detection=DetectionService(resilience),
            repair=RepairService(self.repairer, resilience),
            telemetry=TelemetryService(),
            control=ControlService(),
        )
        report = scheduler.run(max_cycles=max_cycles)
        return LaserRunResult(
            cycles=machine.cycle,
            report=report,
            repaired=ctx.st.repaired,
            repair_plan=ctx.st.plan,
            pmu=pmu,
            driver=driver,
            pipeline=pipeline,
            machine=machine,
            health=ctx.health,
            telemetry=telemetry,
            resilience=runtime,
            profile=profiler if config.profile_enabled else None,
        )
