"""The LASER system (Section 6, Figure 8).

Wires together the three components: the kernel driver (PEBS buffers +
record stripping), the userspace detector process (the Section 4
pipeline), and the online repair mechanism (Section 5).  The detector
"forks the application process to be analyzed" — modelled as a small
heap-base shift in the child's layout — then configures the driver and
consumes records while the application runs.  At every check interval
the detector evaluates false-sharing rates and may invoke LASERREPAIR,
which attaches to the running machine like Pin attaches to a running
process.
"""

from typing import Optional, Set

from repro.core.config import LaserConfig
from repro.core.detect.pipeline import DetectionPipeline
from repro.core.detect.report import ContentionReport
from repro.core.repair.manager import LaserRepair, RepairPlan
from repro.pebs.driver import KernelDriver
from repro.pebs.imprecision import ImprecisionModel
from repro.pebs.pmu import PerformanceMonitoringUnit
from repro.sim.machine import Machine

__all__ = ["Laser", "LaserRunResult"]


class LaserRunResult:
    """Everything observable from one application run under LASER."""

    def __init__(
        self,
        cycles: int,
        report: ContentionReport,
        repaired: bool,
        repair_plan: Optional[RepairPlan],
        pmu: PerformanceMonitoringUnit,
        driver: KernelDriver,
        pipeline: DetectionPipeline,
        machine: Machine,
    ):
        self.cycles = cycles
        self.report = report
        self.repaired = repaired
        self.repair_plan = repair_plan
        self.pmu = pmu
        self.driver = driver
        self.pipeline = pipeline
        self.machine = machine

    @property
    def detector_cycles(self) -> int:
        """CPU time spent in the userspace detector (Figure 12)."""
        return self.pipeline.stats.detector_cycles

    @property
    def driver_cycles(self) -> int:
        """CPU time spent in the kernel driver (Figure 12)."""
        return self.driver.driver_cycles

    @property
    def application_cpu_cycles(self) -> int:
        """Total busy CPU time across application cores."""
        return sum(core.stats.busy_cycles for core in self.machine.cores)

    def __repr__(self):
        return "<LaserRunResult cycles=%d hitms=%d repaired=%s>" % (
            self.cycles,
            self.pmu.total_hitm_count,
            self.repaired,
        )


class Laser:
    """The deployable system: detect + (optionally) repair online."""

    def __init__(self, config: Optional[LaserConfig] = None):
        self.config = config or LaserConfig()
        self.repairer = LaserRepair(
            min_stores_per_flush=self.config.min_stores_per_flush
        )

    # ------------------------------------------------------------------
    # Running a workload under LASER
    # ------------------------------------------------------------------

    def run_workload(self, workload, scale: float = 1.0,
                     max_cycles: int = 200_000_000) -> LaserRunResult:
        """Fork (build with the shifted heap) and monitor a workload."""
        built = workload.build(
            heap_offset=self.config.heap_shift,
            seed=self.config.seed,
            scale=scale,
        )
        return self.run_built(built, max_cycles=max_cycles)

    def run_built(self, built,
                  max_cycles: int = 200_000_000) -> LaserRunResult:
        """Monitor an already-built program."""
        config = self.config
        program = built.program
        machine = Machine(
            program,
            seed=config.seed,
            allocator=built.allocator,
        )
        built.apply_init(machine)

        # Wrong PCs scatter across the whole app text region (most of a
        # real binary is cold code with no HITM-relevant debug lines).
        app_region = machine.vmmap.find(program.code_base)
        imprecision = ImprecisionModel(
            app_region.start, app_region.end, seed=config.seed
        )
        driver = KernelDriver()
        pmu = PerformanceMonitoringUnit(
            imprecision,
            driver=driver,
            sample_after_value=config.sample_after_value,
            pebs_enabled=config.detection_enabled,
        )
        machine.on_hitm = pmu.on_hitm
        pipeline = DetectionPipeline(
            program, machine.vmmap, config.sample_after_value
        )

        repaired = False
        plan: Optional[RepairPlan] = None
        next_check = config.check_interval_cycles
        window_start = 0
        while True:
            result = machine.run(until_cycle=next_check, max_cycles=max_cycles)
            # The detector's periodic poll forces a drain of partially
            # filled per-core buffers (otherwise records would sit until
            # the 64-record buffer-full interrupt, blinding the online
            # repair trigger on short phases).
            pipeline.process(driver.flush_all())
            pipeline.roll_window(machine.cycle - window_start)
            window_start = machine.cycle
            if result.finished:
                break
            next_check = machine.cycle + config.check_interval_cycles
            if not (config.repair_enabled and config.detection_enabled):
                continue
            if repaired or (plan is not None and plan.rejected_reason):
                continue  # already repaired, or already deemed unprofitable
            plan = self._maybe_repair(machine, pipeline)
            if plan is not None and plan.profitable:
                self.repairer.attach(machine, plan)
                repaired = True

        pipeline.process(driver.flush_all())
        report = pipeline.report(machine.cycle, config.rate_threshold)
        return LaserRunResult(
            cycles=machine.cycle,
            report=report,
            repaired=repaired,
            repair_plan=plan,
            pmu=pmu,
            driver=driver,
            pipeline=pipeline,
            machine=machine,
        )

    # ------------------------------------------------------------------
    # Repair trigger (Section 4.4)
    # ------------------------------------------------------------------

    def _maybe_repair(self, machine: Machine,
                      pipeline: DetectionPipeline) -> Optional[RepairPlan]:
        """Check FS rates; build a plan if they exceed the trigger."""
        interim = pipeline.report(machine.cycle, self.config.rate_threshold)
        fs_lines = interim.repair_candidates(
            min_total_hitm_rate=self.config.repair_trigger_rate
        )
        if not fs_lines:
            return None
        contending_pcs: Set[int] = set()
        for line in fs_lines:
            contending_pcs.update(
                pipeline.contending_pcs_for_line(line.location)
            )
        if not contending_pcs:
            return None
        return self.repairer.plan(machine.program, contending_pcs)
