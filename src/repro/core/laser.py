"""The LASER system (Section 6, Figure 8).

Wires together the three components: the kernel driver (PEBS buffers +
record stripping), the userspace detector process (the Section 4
pipeline), and the online repair mechanism (Section 5).  The detector
"forks the application process to be analyzed" — modelled as a small
heap-base shift in the child's layout — then configures the driver and
consumes records while the application runs.  At every check interval
the detector evaluates false-sharing rates and may invoke LASERREPAIR,
which attaches to the running machine like Pin attaches to a running
process.

Deployability is the paper's whole argument, so the loop is built to
degrade rather than die:

* a stalled detector (``DetectorStall``) skips its poll; the bounded
  driver outbox absorbs the backlog (dropping with accounting beyond
  its capacity) and the next healthy poll resyncs;
* a rejected or failed repair evaluation backs off exponentially and
  is re-evaluated later — contention character shifts at runtime, so
  "unprofitable now" is not "unprofitable forever";
* an attached repair is watched: if the post-repair HITM rate shows
  the repair stopped paying off (or the SSB is thrashing the HTM),
  the watchdog detaches the instrumentation, restoring the original
  program;
* every degradation event is tallied in a :class:`RunHealth` record on
  the result, and under *any* fault schedule the run completes with a
  (possibly degraded) report instead of an exception.
"""

from typing import Optional, Set

from repro._constants import CYCLES_PER_SECOND
from repro.core.config import LaserConfig
from repro.core.detect.pipeline import DetectionPipeline
from repro.core.detect.report import ContentionReport
from repro.core.repair.manager import LaserRepair, RepairPlan
from repro.errors import DetectorStall, RepairError
from repro.faults import FaultInjector, FaultPlan
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import RunTelemetry, WindowStats
from repro.obs.trace import NULL_TRACER, EventTracer
from repro.pebs.driver import KernelDriver
from repro.pebs.imprecision import ImprecisionModel
from repro.pebs.pmu import PerformanceMonitoringUnit
from repro.sim.machine import Machine

__all__ = ["Laser", "LaserRunResult", "RunHealth"]


class RunHealth:
    """Degradation tally for one run: what was lost, what was survived.

    All-zero counters mean the run was pristine — the graceful-
    degradation machinery observed nothing and changed nothing.
    """

    _FIELDS = (
        "records_dropped",
        "records_lost",
        "records_corrupted",
        "detector_stalls",
        "detector_restarts",
        "repair_rejections",
        "repair_verifier_rejections",
        "repair_errors",
        "rollbacks",
        "htm_aborts",
        "injected_htm_aborts",
        "ssb_fallback_activations",
        "faults_injected",
        "undecodable_pcs",
        "records_pending_at_exit",
    )
    #: Informational fields: reported, but not degradation.  A repair
    #: *rejection* is the healthy path (Section 5.4); undecodable PCs
    #: are expected PEBS skid noise (most wrong PCs are not memory
    #: ops); records pending at application exit are drained into the
    #: final report, not lost.
    _INFO_FIELDS = frozenset({
        "repair_rejections",
        "undecodable_pcs",
        "records_pending_at_exit",
    })
    __slots__ = _FIELDS

    def __init__(self, **counts: int):
        for field in self._FIELDS:
            setattr(self, field, counts.pop(field, 0))
        if counts:
            raise TypeError("unknown RunHealth fields: %s" % sorted(counts))

    @property
    def degraded(self) -> bool:
        """True if anything was lost, restarted, rolled back or faulted.

        Fields in ``_INFO_FIELDS`` are reported but not counted here:
        declining an unprofitable repair is the healthy path
        (Section 5.4), undecodable PCs are expected skid noise, and
        exit-pending records are drained into the final report.  A
        *verifier* rejection is different: the rewriter produced code
        the static TSO/SSB checker could not prove safe, so
        ``repair_verifier_rejections`` does count as degradation.
        """
        return any(
            getattr(self, field)
            for field in self._FIELDS
            if field not in self._INFO_FIELDS
        )

    def as_dict(self) -> dict:
        return {field: getattr(self, field) for field in self._FIELDS}

    def summary(self) -> str:
        """One line for operators (quickstart prints this)."""
        if not self.degraded:
            info = [
                "%s=%d" % (field, getattr(self, field))
                for field in self._FIELDS
                if field in self._INFO_FIELDS and getattr(self, field)
            ]
            base = "healthy (no drops, stalls, rollbacks or faults)"
            return base + (" [info: %s]" % " ".join(info) if info else "")
        parts = [
            "%s=%d" % (field, getattr(self, field))
            for field in self._FIELDS
            if getattr(self, field)
        ]
        return "degraded: " + " ".join(parts)

    def __eq__(self, other):
        return isinstance(other, RunHealth) and self.as_dict() == other.as_dict()

    def __repr__(self):
        return "<RunHealth %s>" % self.summary()


class LaserRunResult:
    """Everything observable from one application run under LASER."""

    def __init__(
        self,
        cycles: int,
        report: ContentionReport,
        repaired: bool,
        repair_plan: Optional[RepairPlan],
        pmu: PerformanceMonitoringUnit,
        driver: KernelDriver,
        pipeline: DetectionPipeline,
        machine: Machine,
        health: Optional[RunHealth] = None,
        telemetry: Optional[RunTelemetry] = None,
    ):
        self.cycles = cycles
        self.report = report
        self.repaired = repaired
        self.repair_plan = repair_plan
        self.pmu = pmu
        self.driver = driver
        self.pipeline = pipeline
        self.machine = machine
        self.health = health or RunHealth()
        #: Per-run observability bundle (``repro.obs``): the windowed
        #: metrics time series, the registry snapshots, and the event
        #: tracer (NULL_TRACER unless ``config.trace_enabled``).
        self.telemetry = telemetry or RunTelemetry()

    @property
    def detector_cycles(self) -> int:
        """CPU time spent in the userspace detector (Figure 12)."""
        return self.pipeline.stats.detector_cycles

    @property
    def driver_cycles(self) -> int:
        """CPU time spent in the kernel driver (Figure 12)."""
        return self.driver.driver_cycles

    @property
    def application_cpu_cycles(self) -> int:
        """Total busy CPU time across application cores."""
        return sum(core.stats.busy_cycles for core in self.machine.cores)

    @property
    def rolled_back(self) -> bool:
        """True if a repair was applied and later detached."""
        return self.health.rollbacks > 0

    def __repr__(self):
        return "<LaserRunResult cycles=%d hitms=%d repaired=%s%s>" % (
            self.cycles,
            self.pmu.total_hitm_count,
            self.repaired,
            " DEGRADED" if self.health.degraded else "",
        )


class Laser:
    """The deployable system: detect + (optionally) repair online."""

    def __init__(self, config: Optional[LaserConfig] = None,
                 faults: Optional[FaultPlan] = None):
        self.config = config or LaserConfig()
        #: Fault schedule applied to every run (empty = free, identical
        #: to no injection at all).
        self.faults = faults or FaultPlan()
        self.repairer = LaserRepair(
            min_stores_per_flush=self.config.min_stores_per_flush,
            abort_fallback_threshold=self.config.htm_abort_fallback_threshold,
            verify_rewrites=self.config.verify_repairs,
        )

    # ------------------------------------------------------------------
    # Running a workload under LASER
    # ------------------------------------------------------------------

    def run_workload(self, workload, scale: float = 1.0,
                     max_cycles: int = 200_000_000) -> LaserRunResult:
        """Fork (build with the shifted heap) and monitor a workload."""
        built = workload.build(
            heap_offset=self.config.heap_shift,
            seed=self.config.seed,
            scale=scale,
        )
        return self.run_built(built, max_cycles=max_cycles)

    def run_built(self, built,
                  max_cycles: int = 200_000_000) -> LaserRunResult:
        """Monitor an already-built program."""
        config = self.config
        program = built.program
        injector = FaultInjector(self.faults)
        # Observability: the tracer is shared by every instrumented
        # component (machine/HTM, PMU, driver, pipeline, repair); the
        # telemetry bundle collects the per-window time series.  With
        # tracing off the shared NULL_TRACER makes every site a single
        # predicted-not-taken branch, and a run's simulated cycles are
        # identical either way — tracing observes, it never charges.
        tracer = (
            EventTracer(capacity=config.trace_capacity)
            if config.trace_enabled else NULL_TRACER
        )
        telemetry = RunTelemetry(tracer=tracer, metrics=MetricsRegistry())
        machine = Machine(
            program,
            seed=config.seed,
            allocator=built.allocator,
            fault_injector=injector,
            tracer=tracer,
        )
        built.apply_init(machine)

        # Wrong PCs scatter across the whole app text region (most of a
        # real binary is cold code with no HITM-relevant debug lines).
        app_region = machine.vmmap.find(program.code_base)
        imprecision = ImprecisionModel(
            app_region.start, app_region.end, seed=config.seed
        )
        driver = KernelDriver(
            outbox_capacity=config.outbox_capacity, injector=injector,
            tracer=tracer,
        )
        pmu = PerformanceMonitoringUnit(
            imprecision,
            driver=driver,
            sample_after_value=config.sample_after_value,
            pebs_enabled=config.detection_enabled,
            injector=injector,
            tracer=tracer,
        )
        machine.on_hitm = pmu.on_hitm
        pipeline = DetectionPipeline(
            program, machine.vmmap, config.sample_after_value,
            tracer=tracer,
        )
        tracer.emit(
            "laser.run_begin", 0, program=program.name,
            sample_after_value=config.sample_after_value,
            check_interval=config.check_interval_cycles,
            repair_enabled=config.repair_enabled,
        )

        health = RunHealth()
        repaired = False
        rolled_back = False
        plan: Optional[RepairPlan] = None
        next_check = config.check_interval_cycles
        window_start = 0
        # Windowed-telemetry marker: totals as of the last recorded
        # window, so each window stores deltas (see _record_window).
        marker = {
            "cycle": 0, "hitm": 0, "seen": 0, "admitted": 0,
            "dropped": 0, "detector": 0, "driver": 0,
            "flushes": 0, "aborts": 0,
        }
        stalled = False
        backoff_remaining = 0
        next_backoff = config.repair_backoff_intervals
        # Watchdog state (meaningful only while a repair is attached).
        attach_rate = 0.0
        windows_since_attach = 0
        mark_cycle = 0
        mark_hitm = 0
        mark_aborts = 0

        while True:
            result = machine.run(until_cycle=next_check, max_cycles=max_cycles)
            # The detector's periodic poll forces a drain of partially
            # filled per-core buffers (otherwise records would sit until
            # the 64-record buffer-full interrupt, blinding the online
            # repair trigger on short phases).  A stalled detector skips
            # the poll; records back up in the bounded driver outbox and
            # the next healthy poll resyncs over the combined window.
            try:
                if injector.fires("detector.stall"):
                    raise DetectorStall(
                        "detector missed poll at cycle %d" % machine.cycle
                    )
                if stalled:
                    stalled = False
                    health.detector_restarts += 1
                    tracer.emit("detector.resync", machine.cycle,
                                backlog=driver.pending_records)
                pipeline.process(driver.flush_all())
                pipeline.roll_window(machine.cycle - window_start,
                                     cycle=machine.cycle)
                window_start = machine.cycle
            except DetectorStall:
                health.detector_stalls += 1
                stalled = True
                tracer.emit("detector.stall", machine.cycle,
                            backlog=driver.pending_records)
            self._record_window(
                telemetry, marker, machine, pmu, driver, pipeline, plan,
                stalled=stalled,
                repair_state=("attached" if repaired
                              else "rolled_back" if rolled_back
                              else "idle"),
            )
            if result.finished:
                break
            next_check = machine.cycle + config.check_interval_cycles
            if stalled:
                continue  # a stalled detector evaluates nothing
            if not (config.repair_enabled and config.detection_enabled):
                continue
            if repaired:
                # Post-repair watchdog: judge the attached repair every
                # watchdog_windows windows; detach if it stopped paying.
                windows_since_attach += 1
                if (config.rollback_enabled
                        and windows_since_attach % config.watchdog_windows == 0):
                    elapsed = machine.cycle - mark_cycle
                    post_rate = (
                        (pmu.total_hitm_count - mark_hitm)
                        * CYCLES_PER_SECOND / elapsed
                        if elapsed > 0 else 0.0
                    )
                    aborts = self._ssb_abort_count(machine)
                    abort_rate = (aborts - mark_aborts) / config.watchdog_windows
                    paying = (post_rate < config.watchdog_rate_ratio * attach_rate
                              and abort_rate < config.watchdog_abort_rate)
                    tracer.emit(
                        "repair.watchdog", machine.cycle,
                        post_rate=round(post_rate, 3),
                        attach_rate=round(attach_rate, 3),
                        abort_rate=round(abort_rate, 3),
                        verdict="keep" if paying else "detach",
                    )
                    if not paying:
                        self.repairer.detach(machine, plan)
                        health.rollbacks += 1
                        repaired = False
                        rolled_back = True
                    else:
                        mark_cycle = machine.cycle
                        mark_hitm = pmu.total_hitm_count
                        mark_aborts = aborts
                continue
            if rolled_back:
                continue  # one rollback ends repair attempts for the run
            if backoff_remaining > 0:
                backoff_remaining -= 1
                continue
            try:
                if injector.fires("repair.error"):
                    raise RepairError(
                        "injected repair analysis failure at cycle %d"
                        % machine.cycle
                    )
                plan = self._maybe_repair(machine, pipeline, tracer)
            except RepairError:
                health.repair_errors += 1
                backoff_remaining = next_backoff
                next_backoff = min(next_backoff * 2, config.repair_backoff_max)
                tracer.emit("repair.backoff", machine.cycle,
                            reason="repair_error",
                            intervals=backoff_remaining)
                continue
            if plan is not None and plan.profitable:
                self.repairer.attach(machine, plan)
                repaired = True
                windows_since_attach = 0
                attach_rate = (
                    pmu.total_hitm_count * CYCLES_PER_SECOND / machine.cycle
                    if machine.cycle > 0 else 0.0
                )
                mark_cycle = machine.cycle
                mark_hitm = pmu.total_hitm_count
                mark_aborts = self._ssb_abort_count(machine)
            elif plan is not None and plan.rejected_reason:
                # Re-evaluate later instead of bailing out permanently:
                # contention character shifts, and so does profitability.
                if plan.verifier_rejected:
                    health.repair_verifier_rejections += 1
                else:
                    health.repair_rejections += 1
                backoff_remaining = next_backoff
                next_backoff = min(next_backoff * 2, config.repair_backoff_max)
                tracer.emit("repair.backoff", machine.cycle,
                            reason=plan.rejected_reason,
                            intervals=backoff_remaining)

        # Records still sitting in the driver at application exit were
        # never seen by the *online* detector; surface the count before
        # the final drain folds them into the offline report.
        health.records_pending_at_exit = driver.pending_records
        pipeline.process(driver.flush_all())
        if health.records_pending_at_exit or stalled:
            # Catch-up window: whatever the final drain added beyond the
            # last recorded window (stalled finishes, exit backlogs).
            self._record_window(
                telemetry, marker, machine, pmu, driver, pipeline, plan,
                stalled=stalled,
                repair_state=("attached" if repaired
                              else "rolled_back" if rolled_back
                              else "idle"),
            )
        report = pipeline.report(machine.cycle, config.rate_threshold)
        self._finalize_health(health, machine, driver, injector, plan,
                              pipeline)
        tracer.emit(
            "laser.run_end", machine.cycle, cycles=machine.cycle,
            hitm_events=pmu.total_hitm_count, repaired=repaired,
            degraded=health.degraded,
        )
        return LaserRunResult(
            cycles=machine.cycle,
            report=report,
            repaired=repaired,
            repair_plan=plan,
            pmu=pmu,
            driver=driver,
            pipeline=pipeline,
            machine=machine,
            health=health,
            telemetry=telemetry,
        )

    @staticmethod
    def _ssb_abort_count(machine: Machine) -> int:
        return sum(
            core.ssb.stats.htm_aborts
            for core in machine.cores
            if core.ssb is not None
        )

    @staticmethod
    def _ssb_totals(machine: Machine, plan: Optional[RepairPlan]):
        """(flushes, htm_aborts) over attached *and* detached SSBs."""
        buffers = [
            core.ssb for core in machine.cores if core.ssb is not None
        ]
        if plan is not None:
            buffers.extend(plan.detached_buffers)
        return (
            sum(ssb.stats.flushes for ssb in buffers),
            sum(ssb.stats.htm_aborts for ssb in buffers),
        )

    def _record_window(self, telemetry: RunTelemetry, marker: dict,
                       machine: Machine, pmu: PerformanceMonitoringUnit,
                       driver: KernelDriver, pipeline: DetectionPipeline,
                       plan: Optional[RepairPlan], stalled: bool,
                       repair_state: str) -> None:
        """Close one telemetry window: deltas since ``marker``.

        Also updates the metrics registry, whose snapshot rides along
        with the window (``telemetry.snapshots``).
        """
        end = machine.cycle
        flushes, aborts = self._ssb_totals(machine, plan)
        totals = {
            "hitm": pmu.total_hitm_count,
            "seen": pipeline.stats.records_seen,
            "admitted": pipeline.stats.records_admitted,
            "dropped": driver.records_dropped,
            "detector": pipeline.stats.detector_cycles,
            "driver": driver.driver_cycles,
            "flushes": flushes,
            "aborts": aborts,
        }
        start = marker["cycle"]
        duration = end - start
        hitm_delta = totals["hitm"] - marker["hitm"]
        rate = (
            hitm_delta * CYCLES_PER_SECOND / duration if duration > 0 else 0.0
        )
        window = WindowStats(
            index=len(telemetry.windows),
            start_cycle=start,
            end_cycle=end,
            stalled=stalled,
            repair_state=repair_state,
            hitm_events=hitm_delta,
            hitm_rate=rate,
            records_seen=totals["seen"] - marker["seen"],
            records_admitted=totals["admitted"] - marker["admitted"],
            records_dropped=totals["dropped"] - marker["dropped"],
            detector_cycles=totals["detector"] - marker["detector"],
            driver_cycles=totals["driver"] - marker["driver"],
            ssb_flushes=totals["flushes"] - marker["flushes"],
            ssb_htm_aborts=totals["aborts"] - marker["aborts"],
        )
        marker.update(totals)
        marker["cycle"] = end
        metrics = telemetry.metrics
        metrics.counter("hitm.events").inc(window.hitm_events)
        metrics.counter("records.seen").inc(window.records_seen)
        metrics.counter("records.admitted").inc(window.records_admitted)
        metrics.counter("records.dropped").inc(window.records_dropped)
        metrics.counter("detector.cycles").inc(window.detector_cycles)
        metrics.counter("driver.cycles").inc(window.driver_cycles)
        metrics.counter("ssb.flushes").inc(window.ssb_flushes)
        metrics.counter("ssb.htm_aborts").inc(window.ssb_htm_aborts)
        metrics.counter("detector.stalled_windows").inc(1 if stalled else 0)
        metrics.gauge("window.hitm_rate").set(round(rate, 6))
        metrics.gauge("repair.attached").set(
            1 if repair_state == "attached" else 0
        )
        metrics.histogram("window.hitm_rate_hist").observe(round(rate, 6))
        telemetry.record_window(window)

    @staticmethod
    def _finalize_health(health: "RunHealth", machine: Machine,
                         driver: KernelDriver, injector: FaultInjector,
                         plan: Optional[RepairPlan],
                         pipeline: Optional[DetectionPipeline] = None) -> None:
        if pipeline is not None:
            health.undecodable_pcs = pipeline.stats.undecodable_pcs
        health.records_dropped = driver.records_dropped
        health.records_lost = injector.fired["pebs.record_drop"]
        health.records_corrupted = injector.fired["pebs.record_corrupt"]
        health.htm_aborts = machine.htm.aborts
        health.injected_htm_aborts = injector.fired["htm.abort"]
        buffers = [
            core.ssb for core in machine.cores if core.ssb is not None
        ]
        if plan is not None:
            buffers.extend(plan.detached_buffers)
        health.ssb_fallback_activations = sum(
            ssb.stats.fallback_activations for ssb in buffers
        )
        health.faults_injected = injector.total_fired

    # ------------------------------------------------------------------
    # Repair trigger (Section 4.4)
    # ------------------------------------------------------------------

    def _maybe_repair(self, machine: Machine, pipeline: DetectionPipeline,
                      tracer: Optional[EventTracer] = None,
                      ) -> Optional[RepairPlan]:
        """Check FS rates; build a plan if they exceed the trigger."""
        interim = pipeline.report(machine.cycle, self.config.rate_threshold)
        fs_lines = interim.repair_candidates(
            min_total_hitm_rate=self.config.repair_trigger_rate
        )
        if not fs_lines:
            return None
        contending_pcs: Set[int] = set()
        for line in fs_lines:
            contending_pcs.update(
                pipeline.contending_pcs_for_line(line.location)
            )
        if not contending_pcs:
            return None
        if tracer is not None and tracer.enabled:
            tracer.emit(
                "repair.trigger", machine.cycle,
                lines=[str(line.location) for line in fs_lines],
                pcs=len(contending_pcs),
            )
        return self.repairer.plan(
            machine.program, contending_pcs,
            tracer=tracer if tracer is not None else NULL_TRACER,
            cycle=machine.cycle,
        )
