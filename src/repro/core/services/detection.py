"""The detection pipeline's run slice, as a service.

Consumes the batch the driver-poll service drained, feeds it through
the Section 4 pipeline (with journal dedup/ack when resilience is on),
and rolls the detection window at each successful poll.  It owns the
pipeline's share of the checkpoint payload — the pipeline state dict
plus the detector's loop-control state — and the final drain at
application exit, including the offline-recovery path when the
detector was down (or halted in passthrough) at exit: the journal is
durable, so the report is rebuilt the same way a restarted detector
would build it — checkpoint + replay, then the final drain.
"""

from repro.core.services.base import Service
from repro.pebs.batch import RecordBatch
from repro.resilience.journal import RecordJournal, batch_sort_key

__all__ = ["DetectionService"]


class DetectionService(Service):
    """Pipeline windows + threshold-relevant ingest for one run."""

    name = "detection"

    def __init__(self, resilience):
        #: The resilience service; offline exit recovery restores
        #: through it when the detector was down at application exit.
        self._resilience = resilience

    # ------------------------------------------------------------------
    # Poll slice
    # ------------------------------------------------------------------

    def on_poll(self, ctx) -> None:
        if ctx.poll_records is None:
            return  # stalled, crashed or down detector ingests nothing
        self._process_poll(ctx, ctx.poll_records, ctx.recovery)
        ctx.pipeline.roll_window(ctx.cycle - ctx.st.window_start,
                                 cycle=ctx.cycle)
        ctx.st.window_start = ctx.cycle
        ctx.polled = True

    @staticmethod
    def _emit_batch(ctx, batch) -> None:
        """Span-tracing provenance: one ``detect.batch`` per ingested
        batch, with the journal seq range when records carry one.

        Gated behind ``config.trace_spans`` (off by default): any new
        default-on emission would change the trace stream's golden
        SHA-256 pin.
        """
        if not (ctx.config.trace_spans and ctx.tracer.enabled and batch):
            return
        seqs = [r.seq for r in batch if getattr(r, "seq", None) is not None]
        ctx.tracer.emit(
            "detect.batch", ctx.cycle, records=len(batch),
            seq_lo=min(seqs) if seqs else None,
            seq_hi=max(seqs) if seqs else None,
        )

    @staticmethod
    def _process_poll(ctx, records, recovery: bool) -> None:
        """Process one poll's batch, with journal dedup/ack when enabled."""
        runtime, pipeline = ctx.runtime, ctx.pipeline
        if runtime is None:
            DetectionService._emit_batch(ctx, records)
            pipeline.process(records)
            return
        journal = runtime.journal
        if recovery:
            # The journal is authoritative after a crash: the unacked
            # tail is a superset of whatever survived in the driver's
            # volatile buffers, so the driver's own delivery is counted
            # as duplicate and the difference as replayed.
            tail = journal.entries_after(journal.acked_seq)
            runtime.count_deduped(len(records))
            runtime.count_replayed(len(tail) - len(records))
            batch = sorted(tail, key=batch_sort_key)
        else:
            batch, dups = RecordJournal.dedup(records, journal.acked_seq)
            runtime.count_deduped(dups)
        DetectionService._emit_batch(ctx, batch)
        pipeline.process(batch)
        if batch:
            seq_hi = (batch.max_seq() if isinstance(batch, RecordBatch)
                      else max(r.seq for r in batch))
            journal.mark_batch(seq_hi, ctx.cycle)

    # ------------------------------------------------------------------
    # Checkpoint share: pipeline state + detector loop state
    # ------------------------------------------------------------------

    def on_checkpoint_save(self, ctx, state: dict) -> None:
        state["pipeline"] = ctx.pipeline.state_dict()
        state["loop"] = ctx.st.loop_state()

    def on_checkpoint_restore(self, ctx, state) -> None:
        if state is None:
            # Checkpoint-less cold start (first restart before any
            # checkpoint was written, or every generation corrupt):
            # empty pipeline, replay the journal from seq 0.
            ctx.pipeline.reset_state()
            ctx.st.reset_loop_state()
        else:
            ctx.pipeline.load_state_dict(state["pipeline"])
            ctx.st.load_loop_state(state["loop"])

    # ------------------------------------------------------------------
    # Exit: the final drain (offline recovery when the detector died)
    # ------------------------------------------------------------------

    def on_exit(self, ctx) -> None:
        runtime = ctx.runtime
        if runtime is None:
            final = ctx.driver.flush_batch()
            self._emit_batch(ctx, final)
            ctx.pipeline.process(final)
            return
        if ctx.was_down:
            # Offline recovery: the detector was down (or halted in
            # passthrough) when the application exited.  The journal
            # is durable, so the report is rebuilt the same way a
            # restarted detector would: checkpoint + replay, then the
            # final drain.
            ctx.tracer.emit(
                "resil.offline_recover", ctx.cycle,
                status=runtime.supervisor["detector"].status,
            )
            self._resilience.restore_detector(ctx)
            self._process_poll(ctx, ctx.driver.flush_all(), True)
        else:
            fresh, dups = RecordJournal.dedup(
                ctx.driver.flush_batch(), runtime.journal.acked_seq
            )
            runtime.count_deduped(dups)
            self._emit_batch(ctx, fresh)
            ctx.pipeline.process(fresh)

    def health(self, ctx) -> None:
        ctx.health.undecodable_pcs = ctx.pipeline.stats.undecodable_pcs
        ctx.health.records_filtered_static = (
            ctx.pipeline.filter.dropped_unprioritized)
