"""Closed-loop overload control, as a service.

Mounts an :class:`~repro.control.controller.OverloadController` as the
sixth lifecycle service.  It runs *last* in the poll slice — after the
telemetry service has closed the interval's window — so the window it
reads is exactly the one the operator sees, and the knob settings it
writes take effect for the *next* interval:

* **signals in**: the just-closed :class:`WindowStats` (normalized
  record flow, outbox drops and backlog, detection latency);
* **knobs out**: the PMU's SAV (and matching record weight), the
  scheduler's poll cadence (``ctx.poll_interval_cycles``) and the
  driver's per-interval admission budget.

Whether or not the mode changed, every evaluation re-arms the driver's
admission meter for the coming interval — the budget is per interval,
and the driver has no clock of its own.

The ``control.stuck`` fault site freezes one evaluation: signals go
unread and knobs stay put, but the admission meter is still re-armed
(the *driver* enforces the budget; a wedged controller must not turn
an old budget into a one-interval-only throttle).

With ``config.control_enabled`` off (the default) every hook returns
immediately and contributes nothing to checkpoints, traces, metrics or
window serialization, keeping controller-off runs bit-identical to the
pre-control golden pins.
"""

from repro.control import ControlMode, ControlSignals, OverloadController
from repro.core.services.base import Service

__all__ = ["ControlService"]


class ControlService(Service):
    """The overload controller's mount point in the run kernel."""

    name = "control"

    def __init__(self):
        self.controller = None
        self._shed_mark = 0

    @staticmethod
    def _enabled(ctx) -> bool:
        return ctx.config.control_enabled

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def on_start(self, ctx) -> None:
        if not self._enabled(ctx):
            return
        config = ctx.config
        self.controller = OverloadController(
            base_sav=config.sample_after_value,
            base_interval_cycles=config.check_interval_cycles,
            budget_records=config.control_budget_records,
            overload_ratio=config.control_overload_ratio,
            recover_ratio=config.control_recover_ratio,
            escalate_after=config.control_escalate_after,
            recover_after=config.control_recover_after,
            passthrough_after=config.control_passthrough_after,
            sav_step=config.control_sav_step,
            poll_step=config.control_poll_step,
            max_sav=config.control_max_sav,
        )
        self._shed_mark = 0
        self._apply_knobs(ctx)

    def on_poll(self, ctx) -> None:
        if not self._enabled(ctx):
            return
        controller = self.controller
        if ctx.injector.fires("control.stuck"):
            controller.stuck_intervals += 1
            ctx.tracer.emit("control.stuck", ctx.cycle,
                            mode=controller.mode)
            # Knobs stay frozen, but the driver's per-interval meter
            # still re-arms: the budget is enforced by the driver, not
            # by the (currently wedged) controller.
            ctx.driver.set_admission(ctx.driver.admission_budget)
            self._note_shed(ctx)
            return
        # The telemetry service ran earlier in this same poll slice, so
        # windows[-1] is the interval that just closed.
        window = ctx.telemetry.windows[-1]
        signals = ControlSignals(
            records_offered=window.records_offered,
            sample_after_value=window.sav or controller.base_sav,
            duration_cycles=window.duration_cycles,
            records_dropped=window.records_dropped,
            outbox_pending=window.outbox_pending,
            detect_latency=window.detect_latency,
        )
        if controller.evaluate(signals):
            self._apply_knobs(ctx)
            ctx.tracer.emit(
                "control.mode", ctx.cycle, mode=controller.mode,
                flow=round(controller.normalized_flow(signals), 3),
                **controller.knobs().as_dict()
            )
        else:
            ctx.driver.set_admission(ctx.driver.admission_budget)
        self._note_shed(ctx)

    def on_checkpoint_save(self, ctx, state: dict) -> None:
        if self._enabled(ctx):
            state["control"] = self.controller.state_dict()

    def on_checkpoint_restore(self, ctx, state) -> None:
        if not self._enabled(ctx):
            return
        if state is None or "control" not in state:
            # Cold start (or a pre-control checkpoint generation).
            self.controller.reset()
        else:
            self.controller.load_state_dict(state["control"])
        # Reapply: a crash may have died mid-shed, and the restored
        # mode must keep actuating the same knobs it did before.
        self._apply_knobs(ctx)

    def health(self, ctx) -> None:
        if not self._enabled(ctx):
            return
        controller, health = self.controller, ctx.health
        health.control_mode_changes = controller.mode_changes
        health.control_throttled_windows = (
            controller.residency[ControlMode.THROTTLED])
        health.control_shedding_windows = (
            controller.residency[ControlMode.SHEDDING])
        health.control_passthrough_windows = (
            controller.residency[ControlMode.PASSTHROUGH])
        health.control_sav_max_excess = controller.sav_max_excess
        health.control_poll_max_excess = controller.poll_max_excess
        health.control_stuck_intervals = controller.stuck_intervals

    # ------------------------------------------------------------------
    # Actuation
    # ------------------------------------------------------------------

    def _apply_knobs(self, ctx) -> None:
        """Write the current mode's knob settings into the components."""
        knobs = self.controller.knobs()
        ctx.pmu.sample_after_value = knobs.sample_after_value
        ctx.pmu.sample_weight = knobs.sample_weight
        ctx.poll_interval_cycles = knobs.poll_interval_cycles
        ctx.driver.set_admission(knobs.admission_budget)
        ctx.control_mode = self.controller.mode
        ctx.tracer.emit("control.knobs", ctx.cycle,
                        mode=self.controller.mode, **knobs.as_dict())

    def _note_shed(self, ctx) -> None:
        """Trace the interval's shed delta (the explicit accounting)."""
        shed = ctx.driver.records_shed
        if shed > self._shed_mark:
            ctx.tracer.emit("control.shed", ctx.cycle,
                            shed=shed - self._shed_mark, total=shed,
                            mode=self.controller.mode)
            self._shed_mark = shed
