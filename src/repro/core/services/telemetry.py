"""Windowed run telemetry, as a service.

Closes one :class:`~repro.obs.telemetry.WindowStats` window per check
interval — deltas against a high-water-mark marker — and feeds the
metrics registry whose snapshot rides along with each window.  At exit
it closes one catch-up window when the final drain added progress
beyond the last recorded window (stalled finishes, exit backlogs).

The marker is a *high-water mark*: a detector restore can legitimately
regress pipeline totals (cold start from a compacted journal after
every checkpoint generation proved corrupt), so deltas clamp at zero
and the marker never moves backwards — replay then only counts
progress past the totals already reported.
"""

from repro._constants import CYCLES_PER_SECOND
from repro.core.services.base import Service
from repro.core.services.context import ssb_totals
from repro.obs.telemetry import WindowStats

__all__ = ["TelemetryService"]


class TelemetryService(Service):
    """Window stats + timeline markers for one run."""

    name = "telemetry"

    _MARKER_KEYS = ("hitm", "seen", "admitted", "dropped", "detector",
                    "driver", "flushes", "aborts", "offered", "shed")

    def __init__(self):
        self._marker = None

    def on_start(self, ctx) -> None:
        # Totals as of the last recorded window, so each window stores
        # deltas (see _record_window).
        self._marker = {key: 0 for key in self._MARKER_KEYS}
        self._marker["cycle"] = 0

    def on_poll(self, ctx) -> None:
        """Close the interval's window (even on the final interval)."""
        st = ctx.st
        self._record_window(
            ctx,
            stalled=st.stalled or not ctx.detector_up,
            repair_state=st.repair_state,
            extra_buffers=ctx.detached_buffers,
        )

    def on_exit(self, ctx) -> None:
        """Catch-up window: whatever the final drain added beyond the
        last recorded window (stalled finishes, exit backlogs)."""
        st = ctx.st
        if ctx.health.records_pending_at_exit or st.stalled or ctx.was_down:
            self._record_window(
                ctx,
                stalled=st.stalled or ctx.was_down,
                repair_state=st.repair_state,
                extra_buffers=ctx.detached_buffers,
            )

    def health(self, ctx) -> None:
        """Tracer ring-buffer pressure: events evicted oldest-first.

        A capacity-sizing signal (info field), not degradation — the
        run behaves identically however full the ring gets.
        """
        ctx.health.trace_events_dropped = ctx.tracer.events_dropped

    def _record_window(self, ctx, stalled: bool, repair_state: str,
                       extra_buffers=()) -> None:
        """Close one telemetry window: deltas since the marker.

        Also updates the metrics registry, whose snapshot rides along
        with the window (``telemetry.snapshots``).
        """
        marker = self._marker
        telemetry, machine = ctx.telemetry, ctx.machine
        pipeline, driver = ctx.pipeline, ctx.driver
        end = machine.cycle
        flushes, aborts = ssb_totals(machine, ctx.st.plan, extra_buffers)
        totals = {
            "hitm": ctx.pmu.total_hitm_count,
            "seen": pipeline.stats.records_seen,
            "admitted": pipeline.stats.records_admitted,
            "dropped": driver.records_dropped,
            "detector": pipeline.stats.detector_cycles,
            "driver": driver.driver_cycles,
            "flushes": flushes,
            "aborts": aborts,
            "offered": ctx.pmu.records_generated,
            "shed": driver.records_shed,
        }
        deltas = {
            key: max(0, totals[key] - marker[key]) for key in totals
        }
        start = marker["cycle"]
        duration = end - start
        rate = (
            deltas["hitm"] * CYCLES_PER_SECOND / duration
            if duration > 0 else 0.0
        )
        window = WindowStats(
            index=len(telemetry.windows),
            start_cycle=start,
            end_cycle=end,
            stalled=stalled,
            repair_state=repair_state,
            hitm_events=deltas["hitm"],
            hitm_rate=rate,
            records_seen=deltas["seen"],
            records_admitted=deltas["admitted"],
            records_dropped=deltas["dropped"],
            detector_cycles=deltas["detector"],
            driver_cycles=deltas["driver"],
            ssb_flushes=deltas["flushes"],
            ssb_htm_aborts=deltas["aborts"],
            # Overload-control extras.  ``control_mode`` stays None on
            # controller-off runs, which keeps them out of the window's
            # serialized form (byte-identity with the pre-control pin).
            records_offered=deltas["offered"],
            records_shed=deltas["shed"],
            outbox_pending=driver.pending_records,
            detect_latency=ctx.poll_lag_cycles,
            control_mode=ctx.control_mode,
            sav=ctx.pmu.sample_after_value,
            admit_budget=driver.admission_budget,
        )
        for key in totals:
            marker[key] = max(totals[key], marker[key])
        marker["cycle"] = end
        telemetry.close_window(window)
