"""The run kernel: a slim deterministic scheduler over the services.

The scheduler owns the machine's run slices and the order in which the
services see each lifecycle moment; the services own the behavior.
Ordering within a slice is a kernel contract (and a bit-identity
requirement — fault sites are consulted in slice order):

* **poll slice** (every interval boundary, including the final one):
  resilience (supervision, due restarts) → driver poll (drain, crash
  and stall sites) → detection (ingest + window roll) → repair (no-op)
  → telemetry (close the window) → control (read the closed window,
  actuate knobs for the next interval).
* **check-interval slice** (non-final interval, successful poll only):
  driver → detection (no-ops) → repair (trigger/watchdog/backoff) →
  resilience (checkpoint cadence — after repair, so an attach-time
  checkpoint keeps its historical position) → telemetry → control
  (no-ops).
* **exit slice**: resilience (``was_down`` verdict) → driver poll
  (exit-backlog accounting, *before* the final drain claims it) →
  detection (final drain / offline recovery) → repair (no-op) →
  telemetry (catch-up window) → control (no-op).

Checkpoint payloads are assembled by fanning ``on_checkpoint_save``
across the services (detection: pipeline + loop state; resilience:
journal watermark; control: ladder state, when enabled) and restored
by fanning ``on_checkpoint_restore`` (detection: load or cold-start;
repair: attachment reconciliation against the runtime's durable
authority; control: re-actuate the restored mode's knobs) — the
fan-out orders are fixed here too.

The machine slice length is ``ctx.poll_interval_cycles`` — the
*actuated* poll cadence, which starts at the configured check interval
and is the overload controller's second knob.

When host-time profiling is on (``config.profile_enabled``), each
fan-out opens a profiler span for the slice and a nested span per
service, so the breakdown attributes wall time to every service at
every lifecycle moment.  The profiler reads only the host clock —
simulated behavior is identical with profiling on or off — and a
disabled profiler reduces every fan-out to the plain loop.
"""

__all__ = ["Scheduler"]


class Scheduler:
    """Deterministic composition of the six run services."""

    def __init__(self, ctx, resilience, driver_poll, detection, repair,
                 telemetry, control=None):
        if control is None:
            # Imported lazily so the base kernel types never depend on
            # the control package at import time.
            from repro.core.services.control import ControlService
            control = ControlService()
        self.ctx = ctx
        self.resilience = resilience
        self.driver_poll = driver_poll
        self.detection = detection
        self.repair = repair
        self.telemetry = telemetry
        self.control = control
        #: Uniform registration order (start/health fan-outs).
        self.services = (resilience, driver_poll, detection, repair,
                         telemetry, control)
        self._poll_order = (resilience, driver_poll, detection, repair,
                            telemetry, control)
        self._check_order = (driver_poll, detection, repair, resilience,
                             telemetry, control)
        self._exit_order = (resilience, driver_poll, detection, repair,
                            telemetry, control)
        self._save_order = (detection, resilience, control)
        self._restore_order = (detection, repair, control)
        ctx.scheduler = self

    # ------------------------------------------------------------------
    # Checkpoint fan-outs (invoked by the resilience service)
    # ------------------------------------------------------------------

    def checkpoint_state(self, ctx) -> dict:
        """Assemble one checkpoint payload from service contributions."""
        state: dict = {}
        for service in self._save_order:
            service.on_checkpoint_save(ctx, state)
        return state

    def restore_state(self, ctx, state) -> None:
        """Fan a loaded payload (or ``None`` = cold start) back out."""
        for service in self._restore_order:
            service.on_checkpoint_restore(ctx, state)

    # ------------------------------------------------------------------
    # The run loop
    # ------------------------------------------------------------------

    def _fan(self, slice_name, order, hook):
        """Fan one lifecycle hook across ``order``, profiled per service.

        The profiled branch is kept out of the common path: a disabled
        profiler makes this a plain method-dispatch loop.
        """
        ctx = self.ctx
        profiler = ctx.profiler
        if not profiler.enabled:
            for service in order:
                getattr(service, hook)(ctx)
            return
        profiler.begin(slice_name)
        try:
            for service in order:
                profiler.begin(service.name)
                try:
                    getattr(service, hook)(ctx)
                finally:
                    profiler.end()
        finally:
            profiler.end()

    def run(self, max_cycles: int):
        """Drive the machine to completion; returns the final report."""
        ctx = self.ctx
        config, machine = ctx.config, ctx.machine
        ctx.tracer.emit(
            "laser.run_begin", 0, program=ctx.program.name,
            sample_after_value=config.sample_after_value,
            check_interval=config.check_interval_cycles,
            repair_enabled=config.repair_enabled,
        )
        self._fan("start", self.services, "on_start")
        next_check = ctx.poll_interval_cycles
        while True:
            result = machine.run(until_cycle=next_check,
                                 max_cycles=max_cycles)
            ctx.begin_interval()
            self._fan("poll", self._poll_order, "on_poll")
            if result.finished:
                break
            next_check = machine.cycle + ctx.poll_interval_cycles
            if not ctx.polled:
                continue  # a stalled, crashed or down detector evaluates nothing
            self._fan("check", self._check_order, "on_check_interval")
        self._fan("exit", self._exit_order, "on_exit")
        report = ctx.pipeline.report(machine.cycle, config.rate_threshold)
        for service in self.services:
            service.health(ctx)
        # Whole-run fault accounting belongs to the kernel, not to any
        # one service.
        ctx.health.faults_injected = ctx.injector.total_fired
        ctx.tracer.emit(
            "laser.run_end", machine.cycle, cycles=machine.cycle,
            hitm_events=ctx.pmu.total_hitm_count, repaired=ctx.st.repaired,
            degraded=ctx.health.degraded,
        )
        return report
