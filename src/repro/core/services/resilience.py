"""Crash recovery as a service: supervision, checkpoints, degrade.

Owns the :class:`~repro.resilience.runtime.ResilienceRuntime` wiring of
one run: it services crash faults and due restarts at each interval
boundary (``on_poll``, before the driver's poll slice), drives the
checkpoint cadence (``on_check_interval``, after repair so an
attach-time checkpoint keeps its historical order), computes the
exit-time ``was_down`` verdict, and rebuilds a restarted detector —
checkpoint fan-out, attachment reconciliation, journal replay.

Every hook is a no-op when the run has no resilience runtime
(``config.resilience_enabled`` off).
"""

from repro.core.services.base import Service
from repro.resilience import DegradeMode
from repro.resilience.journal import batch_sort_key

__all__ = ["ResilienceService"]


class ResilienceService(Service):
    """Supervisor + crash sites + checkpoint cadence + replay."""

    name = "resilience"

    # ------------------------------------------------------------------
    # Interval-boundary supervision (runs before the driver poll)
    # ------------------------------------------------------------------

    def on_poll(self, ctx) -> None:
        """Service crash faults and due restarts; set ``ctx.recovery``.

        ``ctx.recovery`` is True when the upcoming poll must take its
        batch from the journal because the driver's volatile buffers no
        longer hold the full picture.
        """
        runtime = ctx.runtime
        if runtime is None:
            return
        supervisor = runtime.supervisor
        interval, cycle = ctx.interval, ctx.cycle
        recovery = False
        component = supervisor["driver"]
        if component.running:
            if ctx.injector.fires("driver.crash"):
                ctx.driver.crash_reset()
                if supervisor.crash("driver", interval, cycle):
                    # A kernel module reload is synchronous: the driver
                    # is back before the next delivery.  The wiped
                    # volatile records were journaled at delivery, so
                    # this interval's poll heals from the WAL.
                    supervisor.restart("driver", interval, cycle)
                    recovery = True
                elif self.breaker_tripped(ctx, "driver"):
                    recovery = True  # rearmed immediately; heal from WAL
                else:
                    ctx.driver.halted = True
            else:
                supervisor.beat("driver", interval)
        component = supervisor["detector"]
        if component.running:
            supervisor.beat("detector", interval)
        elif supervisor.due("detector", interval):
            supervisor.restart("detector", interval, cycle)
            self.restore_detector(ctx)
            recovery = True
        ctx.recovery = recovery

    def detector_crashed(self, ctx) -> None:
        """The detector process died; schedule its restart (or degrade)."""
        if not ctx.runtime.supervisor.crash("detector", ctx.interval,
                                            ctx.cycle):
            self.breaker_tripped(ctx, "detector")

    def breaker_tripped(self, ctx, name: str) -> bool:
        """Walk the degrade ladder after a circuit-breaker trip.

        Returns True if the component was handed a fresh budget and is
        running again (drivers come back immediately — they are
        stateless beyond their volatiles; the detector restarts through
        the normal restore path next interval).
        """
        runtime = ctx.runtime
        mode = runtime.degrade(ctx.interval, ctx.cycle)
        if mode == DegradeMode.DETECTION_ONLY:
            immediate = name == "driver"
            runtime.supervisor.rearm(
                name, ctx.interval, ctx.cycle,
                max_attempts=ctx.config.max_component_restarts,
                immediate=immediate,
            )
            return immediate
        # PASSTHROUGH: the component stays halted; monitoring stands
        # down and the final report is recovered offline from the WAL.
        return False

    # ------------------------------------------------------------------
    # Checkpoint cadence (runs after the repair service's evaluation)
    # ------------------------------------------------------------------

    def on_check_interval(self, ctx) -> None:
        if (ctx.runtime is not None
                and ctx.interval % ctx.config.checkpoint_every_windows == 0):
            self.save_checkpoint(ctx)

    def save_checkpoint(self, ctx) -> None:
        """Assemble per-service contributions, save, compact the WAL."""
        runtime = ctx.runtime
        runtime.checkpoints.save(ctx.scheduler.checkpoint_state(ctx),
                                 ctx.cycle)
        # Compaction: entries at or below the *oldest retained*
        # checkpoint's watermark can never be replayed again, even if
        # restore falls back a generation.
        runtime.journal.truncate_through(
            runtime.checkpoints.min_retained("acked_seq")
        )

    def on_checkpoint_save(self, ctx, state: dict) -> None:
        state["acked_seq"] = ctx.runtime.journal.acked_seq

    # ------------------------------------------------------------------
    # Restart / restore / replay
    # ------------------------------------------------------------------

    def restore_detector(self, ctx) -> None:
        """Rebuild a restarted detector: checkpoint, reconcile, replay."""
        runtime = ctx.runtime
        state = runtime.checkpoints.load(ctx.cycle)
        # Fan the payload out: detection loads (or cold-starts) the
        # pipeline and loop state, repair reconciles attachment against
        # the runtime's durable authority.
        ctx.scheduler.restore_state(ctx, state)
        # Replay the acked suffix in live order: each marked batch is
        # one pre-crash poll, re-sorted exactly as read_records merged
        # it and rolled through the same window boundary.  The unacked
        # tail is left for the caller's recovery poll.
        start = state["acked_seq"] if state is not None else 0
        batches, tail = runtime.journal.batches_after(start)
        replayed = 0
        for entries, poll_cycle in batches:
            batch = sorted(entries, key=batch_sort_key)
            ctx.pipeline.process(batch)
            ctx.pipeline.roll_window(poll_cycle - ctx.st.window_start,
                                     cycle=poll_cycle)
            ctx.st.window_start = poll_cycle
            replayed += len(batch)
        runtime.count_replayed(replayed)
        if ctx.tracer.enabled:
            ctx.tracer.emit("resil.replay", ctx.cycle, from_seq=start,
                            batches=len(batches), records=replayed,
                            tail=len(tail))

    # ------------------------------------------------------------------
    # Exit and health
    # ------------------------------------------------------------------

    def on_exit(self, ctx) -> None:
        """Record whether the detector was down when the app exited."""
        ctx.was_down = (
            ctx.runtime is not None
            and not ctx.runtime.supervisor["detector"].running
        )

    def health(self, ctx) -> None:
        runtime = ctx.runtime
        if runtime is None:
            return
        health = ctx.health
        supervisor = runtime.supervisor
        health.detector_crashes = supervisor["detector"].crashes
        health.detector_crash_restarts = supervisor["detector"].restarts
        health.driver_crashes = supervisor["driver"].crashes
        health.driver_crash_restarts = supervisor["driver"].restarts
        health.breaker_trips = sum(
            component.breaker_trips
            for component in supervisor.components
        )
        health.records_replayed = runtime.records_replayed
        health.records_deduped = runtime.records_deduped
        health.checkpoints_written = runtime.checkpoints.written
        health.checkpoints_restored = runtime.checkpoints.restored
        health.checkpoints_corrupt = runtime.checkpoints.corrupt_detected
