"""The detector's driver-facing poll slice, as a service.

At every check interval the detector's periodic poll forces a drain of
partially filled per-core PEBS buffers (otherwise records would sit
until the 64-record buffer-full interrupt, blinding the online repair
trigger on short phases).  This service owns that read boundary and
everything that can go wrong at it:

* a stalled detector (``detector.stall``) skips its poll; the bounded
  driver outbox absorbs the backlog and the next healthy poll resyncs;
* a crashed detector (``detector.crash``) — pre-poll or post-read,
  before the ack — is routed to the resilience service, and the
  journal recovers the unacked batch on restart;
* a healthy poll hands its drained batch to the detection service via
  ``ctx.poll_records``.

At exit it surfaces the records still sitting in the driver (never
seen by the *online* detector) before the final drain folds them into
the offline report, and it owns the driver-boundary health counters.
"""

from repro.core.services.base import Service
from repro.errors import DetectorStall

__all__ = ["DriverPollService"]


class DriverPollService(Service):
    """PEBS drain + journal boundary of the detector's poll."""

    name = "driver_poll"

    def __init__(self, resilience):
        #: The resilience service; crash faults at the read boundary
        #: are routed to it (restart scheduling, degrade ladder).
        self._resilience = resilience

    def on_poll(self, ctx) -> None:
        if not ctx.detector_up:
            return
        health, st, injector = ctx.health, ctx.st, ctx.injector
        if ctx.runtime is not None and injector.fires("detector.crash"):
            # Pre-poll crash: the detector dies before its read; the
            # whole batch waits in the journal for the restart.
            self._resilience.detector_crashed(ctx)
            return
        if ctx.transport is not None and ctx.transport.blocks_poll(ctx):
            # Fleet transport partition (``shard.partition``): the
            # detector is healthy but its read returns nothing — the
            # backlog queues client-side (buffers + outbox) and the
            # next healed poll delivers it late.  Never taken on the
            # single-run path (no transport attached).
            return
        try:
            if injector.fires("detector.stall"):
                raise DetectorStall(
                    "detector missed poll at cycle %d" % ctx.cycle
                )
            if st.stalled:
                st.stalled = False
                health.detector_restarts += 1
                ctx.tracer.emit("detector.resync", ctx.cycle,
                                backlog=ctx.driver.pending_records)
            records = ctx.driver.flush_batch()
            if records:
                # Detection latency: age of the batch's oldest record
                # (flush_all returns timestamp order).  The overload
                # controller reads this as its lag signal.
                ctx.poll_lag_cycles = ctx.cycle - records[0].cycle
            if ctx.runtime is not None and injector.fires("detector.crash"):
                # Post-read, pre-ack crash: the read batch is discarded
                # unacknowledged; it stays below no mark, so replay
                # recovers it and the driver's re-delivery is
                # deduplicated.
                self._resilience.detector_crashed(ctx)
            else:
                ctx.poll_records = records
        except DetectorStall:
            health.detector_stalls += 1
            st.stalled = True
            ctx.tracer.emit("detector.stall", ctx.cycle,
                            backlog=ctx.driver.pending_records)

    def on_exit(self, ctx) -> None:
        """Surface the exit backlog before the final drain claims it."""
        ctx.health.records_pending_at_exit = ctx.driver.pending_records

    def health(self, ctx) -> None:
        ctx.health.records_dropped = ctx.driver.records_dropped
        ctx.health.records_lost = ctx.injector.fired["pebs.record_drop"]
        ctx.health.records_corrupted = ctx.injector.fired["pebs.record_corrupt"]
        ctx.health.records_shed = ctx.driver.records_shed
        if ctx.transport is not None:
            ctx.health.transport_partitions = ctx.transport.partitions
            ctx.health.transport_records_delayed = (
                ctx.transport.records_delayed)
