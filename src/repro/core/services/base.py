"""The service protocol of the LASER run kernel.

A *service* is one independently-lifecycled concern of a monitored run
— driver polling, detection, repair, resilience, telemetry.  The
:class:`~repro.core.services.scheduler.Scheduler` owns the run slices
and drives every service through the same explicit lifecycle:

* ``on_start`` — once, before the first machine slice.
* ``on_poll`` — every check-interval boundary, including the final
  (application-finished) one.  This is the detector's poll slice:
  supervision, driver drain, pipeline ingest and the telemetry window
  all happen here, in scheduler-defined service order.
* ``on_check_interval`` — after a *successful* poll on a non-final
  interval: repair evaluation and checkpoint cadence.
* ``on_checkpoint_save(ctx, state)`` / ``on_checkpoint_restore(ctx,
  state)`` — contribute to / reconcile against one checkpoint payload.
  ``state`` is the (json-serializable) checkpoint dict; on restore it
  is ``None`` for a checkpoint-less cold start.
* ``on_exit`` — once, after the application finishes: exit accounting,
  offline recovery and the final drain.
* ``health(ctx)`` — contribute this service's counters to the run's
  :class:`~repro.core.health.RunHealth`.

Hooks default to no-ops so a service implements only the slices it
participates in.  Services communicate through the shared
:class:`~repro.core.services.context.RunContext`; ordering between
services within a slice is the scheduler's contract, not theirs.
"""

__all__ = ["Service"]


class Service:
    """Base class: every lifecycle hook is an explicit no-op."""

    #: Display name (progress traces, test assertions).
    name = "service"

    def on_start(self, ctx) -> None:
        """Wire initial state; runs before the first machine slice."""

    def on_poll(self, ctx) -> None:
        """One check-interval poll slice (every interval, even the last)."""

    def on_check_interval(self, ctx) -> None:
        """Post-poll evaluation on a non-final, successfully-polled interval."""

    def on_checkpoint_save(self, ctx, state: dict) -> None:
        """Add this service's durable state to the checkpoint payload."""

    def on_checkpoint_restore(self, ctx, state) -> None:
        """Rebuild from a checkpoint payload (``None`` = cold start)."""

    def on_exit(self, ctx) -> None:
        """Application finished: exit accounting and final drains."""

    def health(self, ctx) -> None:
        """Contribute this service's counters to ``ctx.health``."""

    def __repr__(self):
        return "<%s %r>" % (type(self).__name__, self.name)
