"""The LASER service kernel.

``Laser.run_built`` used to be a 1000-line monolith interleaving the
PEBS poll, detection windows, repair lifecycle, supervision,
checkpointing and telemetry.  This package is its decomposition: a
:class:`RunContext` bag of shared run state, a :class:`Service`
protocol with explicit lifecycle hooks, five concrete services — one
per concern — and a slim deterministic :class:`Scheduler` that owns
the run slices and the ordering contract between them.  The paper's
own architecture has the same boundary (driver / detector / repairer
are separate processes in LASER, HPCA 2016); the kernel keeps each
policy component swappable behind a stable interface.

The decomposition is behavior-preserving by construction: cycles,
reports, trace byte streams and RunHealth are bit-identical to the
pre-kernel monolith per seed (pinned by ``tests/test_services.py``
against a recorded golden).
"""

from repro.core.services.base import Service
from repro.core.services.context import DetectorState, RunContext
from repro.core.services.control import ControlService
from repro.core.services.detection import DetectionService
from repro.core.services.driver import DriverPollService
from repro.core.services.repair import RepairService
from repro.core.services.resilience import ResilienceService
from repro.core.services.scheduler import Scheduler
from repro.core.services.telemetry import TelemetryService

__all__ = [
    "Service",
    "RunContext",
    "DetectorState",
    "Scheduler",
    "ControlService",
    "DriverPollService",
    "DetectionService",
    "RepairService",
    "ResilienceService",
    "TelemetryService",
]
