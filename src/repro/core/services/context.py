"""The shared state of one monitored run.

:class:`RunContext` is the single bag every service reads and writes:
the machine and its clock, the config, the fault plan (via its
injector), the tracer/telemetry bundle, the health tally, the wired
components (driver, PMU, pipeline, repairer, resilience runtime) and
the detector's loop state.  Per-interval scratch (``recovery``,
``poll_records``, ``polled``) is reset by the scheduler at each slice
boundary.

:class:`DetectorState` is the detector process's in-memory loop state —
everything that dies with a detector crash and is rebuilt from the last
checkpoint plus journal replay.  Keeping it in one object keeps the
crash/restore boundary honest.  The repair-attachment flags
(``plan``/``repaired``/``rolled_back``) are *not* part of the
checkpointed loop state — the resilience runtime is the durable
authority on what instrumentation is live in the machine, and restore
reconciles against it (a checkpoint can legitimately be a generation
stale; trusting its attachment flags could double-attach).
"""

from typing import List

from repro.obs.profile import NULL_PROFILER
from repro.resilience import Backoff

__all__ = ["DetectorState", "RunContext", "ssb_buffers", "ssb_totals",
           "ssb_abort_count"]


class DetectorState:
    """The detector process's in-memory loop state."""

    __slots__ = ("plan", "repaired", "rolled_back", "stalled",
                 "window_start", "backoff_remaining", "repair_backoff",
                 "attach_rate", "windows_since_attach",
                 "mark_cycle", "mark_hitm", "mark_aborts")

    def __init__(self, config):
        self.plan = None
        self.repaired = False
        self.rolled_back = False
        self.repair_backoff = Backoff(
            config.repair_backoff_intervals, config.repair_backoff_max
        )
        self.reset_loop_state()

    def reset_loop_state(self) -> None:
        """Cold-start values (a restart with no checkpoint to restore)."""
        self.stalled = False
        self.window_start = 0
        self.backoff_remaining = 0
        self.repair_backoff.reset()
        self.attach_rate = 0.0
        self.windows_since_attach = 0
        self.mark_cycle = 0
        self.mark_hitm = 0
        self.mark_aborts = 0

    def loop_state(self) -> dict:
        """Checkpoint payload for the loop-control state."""
        return {
            "window_start": self.window_start,
            "stalled": self.stalled,
            "backoff_remaining": self.backoff_remaining,
            "backoff_current": self.repair_backoff.current,
            "attach_rate": self.attach_rate,
            "windows_since_attach": self.windows_since_attach,
            "mark_cycle": self.mark_cycle,
            "mark_hitm": self.mark_hitm,
            "mark_aborts": self.mark_aborts,
        }

    def load_loop_state(self, loop: dict) -> None:
        self.window_start = loop["window_start"]
        self.stalled = loop["stalled"]
        self.backoff_remaining = loop["backoff_remaining"]
        self.repair_backoff.current = loop["backoff_current"]
        self.attach_rate = loop["attach_rate"]
        self.windows_since_attach = loop["windows_since_attach"]
        self.mark_cycle = loop["mark_cycle"]
        self.mark_hitm = loop["mark_hitm"]
        self.mark_aborts = loop["mark_aborts"]

    @property
    def repair_state(self) -> str:
        """The telemetry window's repair-phase label."""
        if self.repaired:
            return "attached"
        if self.rolled_back:
            return "rolled_back"
        return "idle"


class RunContext:
    """Everything the services of one run share."""

    __slots__ = ("config", "machine", "program", "injector", "tracer",
                 "telemetry", "health", "driver", "pmu", "pipeline",
                 "repairer", "runtime", "st", "scheduler",
                 "interval", "recovery", "poll_records", "polled",
                 "was_down", "poll_interval_cycles", "control_mode",
                 "poll_lag_cycles", "certificate", "profiler",
                 "transport")

    def __init__(self, config, machine, program, injector, tracer,
                 telemetry, health, driver, pmu, pipeline, repairer,
                 runtime, st, certificate=None, profiler=None,
                 transport=None):
        self.config = config
        self.machine = machine
        self.program = program
        self.injector = injector
        self.tracer = tracer
        self.telemetry = telemetry
        self.health = health
        self.driver = driver
        self.pmu = pmu
        self.pipeline = pipeline
        self.repairer = repairer
        #: The static :class:`~repro.static.race.SharingCertificate`
        #: for this program, or ``None`` when neither ``race_gate`` nor
        #: ``static_prefilter`` asked for one.
        self.certificate = certificate
        #: Crash-recovery runtime (``repro.resilience``), or ``None``
        #: when ``config.resilience_enabled`` is off.
        self.runtime = runtime
        #: Host-time profiler (``repro.obs.profile``); the shared
        #: NULL_PROFILER unless ``config.profile_enabled``.
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        #: Client-to-shard record transport (``repro.fleet``), or
        #: ``None`` on every single-run path.  When attached, the
        #: driver-poll service consults it before each read — the
        #: ``shard.partition`` fault site lives there.
        self.transport = transport
        self.st = st
        #: Back-reference, set by the scheduler at composition time
        #: (services fan checkpoint save/restore out through it).
        self.scheduler = None
        self.interval = 0
        # Per-interval scratch; reset by the scheduler each slice.
        self.recovery = False
        self.poll_records = None
        self.polled = False
        # Exit-time scratch.
        self.was_down = False
        #: The scheduler's *actuated* poll cadence: starts at the
        #: configured check interval and is stretched/restored by the
        #: overload controller (``repro.control``).
        self.poll_interval_cycles = config.check_interval_cycles
        #: The overload ladder mode in effect (``None`` = controller
        #: off; the telemetry window serializes control extras only
        #: when this is set).
        self.control_mode = None
        #: Age, in cycles, of the oldest record in the last non-empty
        #: poll batch — the run's live detection-latency signal.
        self.poll_lag_cycles = 0

    # ------------------------------------------------------------------
    # Clock and component views
    # ------------------------------------------------------------------

    @property
    def cycle(self) -> int:
        """The run clock: the machine's current simulated cycle."""
        return self.machine.cycle

    @property
    def detector_component(self):
        """The supervised detector, or ``None`` without resilience."""
        if self.runtime is None:
            return None
        return self.runtime.supervisor["detector"]

    @property
    def detector_up(self) -> bool:
        component = self.detector_component
        return component is None or component.running

    @property
    def detached_buffers(self):
        """Host-retained SSBs from detached plans (empty w/o runtime)."""
        return self.runtime.detached_buffers if self.runtime is not None else ()

    def begin_interval(self) -> None:
        """Reset the per-interval scratch at a slice boundary."""
        self.interval += 1
        self.recovery = False
        self.poll_records = None
        self.polled = False


# ----------------------------------------------------------------------
# SSB accounting shared by the repair and telemetry services
# ----------------------------------------------------------------------

def ssb_abort_count(machine) -> int:
    """HTM aborts across the SSBs currently attached to the machine."""
    return sum(
        core.ssb.stats.htm_aborts
        for core in machine.cores
        if core.ssb is not None
    )


def ssb_buffers(machine, plan, extra=()) -> List:
    """Attached + detached SSBs, deduplicated by identity.

    A detached buffer can be referenced both by the plan that owned it
    and by the resilience runtime's durable list (which outlives
    detector crashes); counting it twice would double its stats.
    """
    buffers = {
        id(core.ssb): core.ssb
        for core in machine.cores
        if core.ssb is not None
    }
    if plan is not None:
        for ssb in plan.detached_buffers:
            buffers[id(ssb)] = ssb
    for ssb in extra:
        buffers[id(ssb)] = ssb
    return list(buffers.values())


def ssb_totals(machine, plan, extra=()) -> tuple:
    """(flushes, htm_aborts) over attached *and* detached SSBs."""
    buffers = ssb_buffers(machine, plan, extra)
    return (
        sum(ssb.stats.flushes for ssb in buffers),
        sum(ssb.stats.htm_aborts for ssb in buffers),
    )
