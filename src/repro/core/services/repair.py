"""Online repair lifecycle, as a service.

Evaluated after each successful poll on a non-final interval
(``on_check_interval``): the Section 4.4 trigger cuts an interim
report, collects the contending PCs behind the hot FS lines, and asks
LASERREPAIR for a plan; a profitable plan attaches, a rejected or
failed evaluation backs off exponentially and is re-evaluated later —
contention character shifts at runtime, so "unprofitable now" is not
"unprofitable forever".  An attached repair is watched: if the
post-repair HITM rate shows the repair stopped paying off (or the SSB
is thrashing the HTM), the watchdog detaches the instrumentation,
restoring the original program.

Attachment is durable state.  When resilience is on, every attach and
detach is recorded with the runtime (the authority a restore
reconciles against) and checkpointed immediately, so no restore from a
stale generation can double-attach or resurrect a rolled-back repair.
"""

from typing import Optional, Set

from repro._constants import CYCLES_PER_SECOND
from repro.core.repair.manager import RepairPlan
from repro.core.services.base import Service
from repro.core.services.context import ssb_abort_count, ssb_buffers
from repro.errors import RepairError
from repro.obs.trace import NULL_TRACER
from repro.static.race import LineVerdict

__all__ = ["RepairService"]


class RepairService(Service):
    """Trigger / verify / attach / watchdog / backoff for one run."""

    name = "repair"

    def __init__(self, repairer, resilience):
        #: The LASERREPAIR mechanism (plan + attach/detach).
        self._repairer = repairer
        #: The resilience service (attach/detach-time checkpoints).
        self._resilience = resilience

    # ------------------------------------------------------------------
    # Interval evaluation
    # ------------------------------------------------------------------

    def on_check_interval(self, ctx) -> None:
        config, st, health = ctx.config, ctx.st, ctx.health
        if not (config.repair_enabled and config.detection_enabled):
            return
        if st.repaired:
            self._watchdog(ctx)
            return
        if st.rolled_back:
            return  # one rollback ends repair attempts for the run
        if ctx.runtime is not None and not ctx.runtime.repair_allowed:
            return  # degraded to detection-only: no new instrumentation
        if st.backoff_remaining > 0:
            st.backoff_remaining -= 1
            return
        try:
            if ctx.injector.fires("repair.error"):
                raise RepairError(
                    "injected repair analysis failure at cycle %d"
                    % ctx.cycle
                )
            plan = self._maybe_repair(ctx)
        except RepairError:
            health.repair_errors += 1
            st.backoff_remaining = st.repair_backoff.step()
            ctx.tracer.emit("repair.backoff", ctx.cycle,
                            reason="repair_error",
                            intervals=st.backoff_remaining)
            return
        st.plan = plan if plan is not None else st.plan
        if plan is not None and plan.profitable:
            self._attach(ctx, plan)
        elif plan is not None and plan.rejected_reason:
            # Re-evaluate later instead of bailing out permanently:
            # contention character shifts, and so does profitability.
            if plan.verifier_rejected:
                health.repair_verifier_rejections += 1
            else:
                health.repair_rejections += 1
            st.backoff_remaining = st.repair_backoff.step()
            ctx.tracer.emit("repair.backoff", ctx.cycle,
                            reason=plan.rejected_reason,
                            intervals=st.backoff_remaining)

    def _attach(self, ctx, plan) -> None:
        st, pmu = ctx.st, ctx.pmu
        self._repairer.attach(ctx.machine, plan)
        st.repaired = True
        st.windows_since_attach = 0
        st.attach_rate = (
            pmu.total_hitm_count * CYCLES_PER_SECOND / ctx.cycle
            if ctx.cycle > 0 else 0.0
        )
        st.mark_cycle = ctx.cycle
        st.mark_hitm = pmu.total_hitm_count
        st.mark_aborts = ssb_abort_count(ctx.machine)
        if ctx.runtime is not None:
            # Attachment is durable state: record the serialized plan
            # and checkpoint immediately, so a restore from any
            # retained generation reconciles correctly.
            ctx.runtime.note_attached(plan.attached_state())
            self._resilience.save_checkpoint(ctx)

    def _watchdog(self, ctx) -> None:
        """Judge the attached repair every ``watchdog_windows`` windows."""
        config, st, pmu = ctx.config, ctx.st, ctx.pmu
        st.windows_since_attach += 1
        if not (config.rollback_enabled
                and st.windows_since_attach % config.watchdog_windows == 0):
            return
        elapsed = ctx.cycle - st.mark_cycle
        post_rate = (
            (pmu.total_hitm_count - st.mark_hitm)
            * CYCLES_PER_SECOND / elapsed
            if elapsed > 0 else 0.0
        )
        aborts = ssb_abort_count(ctx.machine)
        abort_rate = (aborts - st.mark_aborts) / config.watchdog_windows
        paying = (post_rate < config.watchdog_rate_ratio * st.attach_rate
                  and abort_rate < config.watchdog_abort_rate)
        ctx.tracer.emit(
            "repair.watchdog", ctx.cycle,
            post_rate=round(post_rate, 3),
            attach_rate=round(st.attach_rate, 3),
            abort_rate=round(abort_rate, 3),
            verdict="keep" if paying else "detach",
        )
        if not paying:
            self._repairer.detach(ctx.machine, st.plan)
            ctx.health.rollbacks += 1
            st.repaired = False
            st.rolled_back = True
            if ctx.runtime is not None:
                # Detachment is durable state: record it (and the
                # host-side SSB stats) and checkpoint immediately so
                # no restore resurrects the attachment.
                ctx.runtime.note_detached(st.plan.detached_buffers)
                self._resilience.save_checkpoint(ctx)
        else:
            st.mark_cycle = ctx.cycle
            st.mark_hitm = pmu.total_hitm_count
            st.mark_aborts = aborts

    # ------------------------------------------------------------------
    # Repair trigger (Section 4.4)
    # ------------------------------------------------------------------

    def _maybe_repair(self, ctx) -> Optional[RepairPlan]:
        """Check FS rates; build a plan if they exceed the trigger."""
        config, pipeline, tracer = ctx.config, ctx.pipeline, ctx.tracer
        interim = pipeline.report(ctx.cycle, config.rate_threshold)
        fs_lines = interim.repair_candidates(
            min_total_hitm_rate=config.repair_trigger_rate
        )
        if not fs_lines:
            return None
        fs_lines = self._apply_race_gate(ctx, fs_lines)
        if not fs_lines:
            return None
        contending_pcs: Set[int] = set()
        for line in fs_lines:
            contending_pcs.update(
                pipeline.contending_pcs_for_line(line.location)
            )
        if not contending_pcs:
            return None
        if tracer is not None and tracer.enabled:
            tracer.emit(
                "repair.trigger", ctx.cycle,
                lines=[str(line.location) for line in fs_lines],
                pcs=len(contending_pcs),
            )
        return self._repairer.plan(
            ctx.program, contending_pcs,
            tracer=tracer if tracer is not None else NULL_TRACER,
            cycle=ctx.cycle,
        )

    def _apply_race_gate(self, ctx, fs_lines):
        """Quarantine trigger lines the static certifier proved racy.

        An SSB rewrite of a genuinely racy line would serialize (and so
        *hide*) the race while the monitor is attached — a correctness
        bug masked by a performance tool.  With ``race_gate`` on, any
        repair candidate whose source location certifies RACE is
        refused; the refusal is surfaced in ``RunHealth`` and the
        tracer rather than silently dropped.
        """
        config, certificate = ctx.config, ctx.certificate
        if not config.race_gate or certificate is None:
            return fs_lines
        quarantined = [
            line for line in fs_lines
            if certificate.gate_verdict_for_location(line.location)
            is LineVerdict.RACE
        ]
        if not quarantined:
            return fs_lines
        ctx.health.repairs_quarantined += len(quarantined)
        tracer = ctx.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(
                "repair.quarantine", ctx.cycle,
                lines=[str(line.location) for line in quarantined],
            )
        kept = [line for line in fs_lines if line not in quarantined]
        return kept

    # ------------------------------------------------------------------
    # Restore reconciliation and health
    # ------------------------------------------------------------------

    def on_checkpoint_restore(self, ctx, state) -> None:
        """Reconcile attachment against the runtime's durable authority.

        The runtime — not the (possibly stale, possibly fallen-back)
        checkpoint — is the authority on what instrumentation is live
        in the machine; trusting an older generation here could
        double-attach or strand an SSB.
        """
        runtime, st = ctx.runtime, ctx.st
        if runtime.attached_state is not None:
            st.plan = RepairPlan.from_attached_state(
                ctx.program, runtime.attached_state
            )
            st.repaired = True
            st.rolled_back = False
        else:
            st.plan = None
            st.repaired = False
            st.rolled_back = runtime.rolled_back

    def health(self, ctx) -> None:
        machine, health = ctx.machine, ctx.health
        health.htm_aborts = machine.htm.aborts
        health.injected_htm_aborts = ctx.injector.fired["htm.abort"]
        health.ssb_fallback_activations = sum(
            ssb.stats.fallback_activations
            for ssb in ssb_buffers(machine, ctx.st.plan,
                                   ctx.detached_buffers)
        )
