"""Run-health accounting: what one run lost, and what it survived.

:class:`RunHealth` is the degradation tally every ``Laser.run_built``
returns.  Each counter is declared exactly once, in :data:`RunHealth
.FIELDS` — a registry of :class:`HealthField` specs — and everything
else derives from it: ``__slots__``, ``as_dict``, ``__eq__``, the
``degraded`` predicate and both summaries.  A counter added to the
registry therefore *cannot* be silently omitted from equality or
serialization (the drift that previously had to be guarded by hand
whenever a PR added fields).
"""

from typing import Dict, Tuple

__all__ = ["HealthField", "RunHealth"]


class HealthField:
    """One :class:`RunHealth` counter: name plus its interpretation.

    ``info`` marks fields that are reported but are *not* degradation:
    a repair *rejection* is the healthy path (Section 5.4); undecodable
    PCs are expected PEBS skid noise (most wrong PCs are not memory
    ops); records pending at application exit are drained into the
    final report, not lost; checkpoints are *written* on every healthy
    run (recovery insurance, not degradation) — restoring one, or
    finding one corrupt, is what counts.
    """

    __slots__ = ("name", "info")

    def __init__(self, name: str, info: bool = False):
        self.name = name
        self.info = info

    def __repr__(self):
        return "<HealthField %s%s>" % (self.name, " info" if self.info else "")


class RunHealth:
    """Degradation tally for one run: what was lost, what was survived.

    All-zero counters mean the run was pristine — the graceful-
    degradation machinery observed nothing and changed nothing.
    """

    #: The single source of truth.  Every derived view below iterates
    #: this registry; adding a counter here is the whole change.
    FIELDS: Tuple[HealthField, ...] = (
        HealthField("records_dropped"),
        HealthField("records_lost"),
        HealthField("records_corrupted"),
        HealthField("detector_stalls"),
        HealthField("detector_restarts"),
        HealthField("repair_rejections", info=True),
        HealthField("repair_verifier_rejections"),
        HealthField("repair_errors"),
        HealthField("rollbacks"),
        HealthField("htm_aborts"),
        HealthField("injected_htm_aborts"),
        HealthField("ssb_fallback_activations"),
        HealthField("faults_injected"),
        HealthField("undecodable_pcs", info=True),
        HealthField("records_pending_at_exit", info=True),
        # Crash recovery (``repro.resilience``).
        HealthField("detector_crashes"),
        HealthField("detector_crash_restarts"),
        HealthField("driver_crashes"),
        HealthField("driver_crash_restarts"),
        HealthField("breaker_trips"),
        HealthField("records_replayed"),
        HealthField("records_deduped"),
        HealthField("checkpoints_written", info=True),
        HealthField("checkpoints_restored"),
        HealthField("checkpoints_corrupt"),
        # Overload control (``repro.control``).  All stay zero unless
        # the controller actually left NOMINAL: shed records are lost
        # observations, residency above NOMINAL is degraded time, and
        # the knob excursions record how far sampling/cadence strayed
        # from the configured base.
        HealthField("records_shed"),
        HealthField("control_mode_changes"),
        HealthField("control_throttled_windows"),
        HealthField("control_shedding_windows"),
        HealthField("control_passthrough_windows"),
        HealthField("control_sav_max_excess"),
        HealthField("control_poll_max_excess"),
        HealthField("control_stuck_intervals"),
        # Static race certification (``repro.static.race``).  Info
        # fields: a quarantined repair is the gate *working* (refusing
        # to mask a certified race), and statically-filtered records
        # are deliberate budget savings, not loss.
        HealthField("repairs_quarantined", info=True),
        HealthField("records_filtered_static", info=True),
        # Observability (``repro.obs``).  Info: trace events evicted
        # from the tracer's ring buffer are a capacity-sizing signal,
        # not a run degradation — the run behaves identically with or
        # without the tracer.
        HealthField("trace_events_dropped", info=True),
        # Fleet transport (``repro.fleet``).  Both stay zero on every
        # single-run path (no transport attached): a partitioned poll
        # is degraded time for that tenant's shard, while delayed
        # records are delivered late — not lost — when the link heals.
        HealthField("transport_partitions"),
        HealthField("transport_records_delayed", info=True),
    )
    #: Derived views (kept as the historical class-attribute names —
    #: they are part of the public surface; tests and harnesses iterate
    #: them).  Neither is ever written by hand again.
    _FIELDS = tuple(field.name for field in FIELDS)
    _INFO_FIELDS = frozenset(field.name for field in FIELDS if field.info)
    #: Which acceleration engines served the run (``repro.accel``), as
    #: resolved strings ("numpy"/"python", "trace"/"interp").  These
    #: are provenance, not degradation counters: they live outside the
    #: FIELDS registry so ``as_dict``/``__eq__``/``degraded`` — and the
    #: golden health pins built on them — are engine-invariant, exactly
    #: like the outputs they certify.
    _ENGINE_SLOTS = ("engine", "sim_engine")
    __slots__ = _FIELDS + _ENGINE_SLOTS

    def __init__(self, **counts: int):
        for field in self._FIELDS:
            setattr(self, field, counts.pop(field, 0))
        for slot in self._ENGINE_SLOTS:
            setattr(self, slot, counts.pop(slot, ""))
        if counts:
            raise TypeError("unknown RunHealth fields: %s" % sorted(counts))

    @property
    def degraded(self) -> bool:
        """True if anything was lost, restarted, rolled back or faulted.

        Fields marked ``info`` in the registry are reported but not
        counted here (see :class:`HealthField`).  A *verifier*
        rejection is different from a profitability rejection: the
        rewriter produced code the static TSO/SSB checker could not
        prove safe, so ``repair_verifier_rejections`` does count.
        """
        return any(
            getattr(self, field.name)
            for field in self.FIELDS
            if not field.info
        )

    def as_dict(self) -> Dict[str, int]:
        return {field: getattr(self, field) for field in self._FIELDS}

    def recovery_summary(self) -> str:
        """One line of crash-recovery accounting (quickstart prints it)."""
        return (
            "recovery: restarts detector=%d driver=%d breaker_trips=%d "
            "replayed=%d deduped=%d checkpoints=%d/%d/%d (written/restored/corrupt)"
            % (
                self.detector_crash_restarts,
                self.driver_crash_restarts,
                self.breaker_trips,
                self.records_replayed,
                self.records_deduped,
                self.checkpoints_written,
                self.checkpoints_restored,
                self.checkpoints_corrupt,
            )
        )

    def summary(self) -> str:
        """One line for operators (quickstart prints this)."""
        if not self.degraded:
            info = [
                "%s=%d" % (field.name, getattr(self, field.name))
                for field in self.FIELDS
                if field.info and getattr(self, field.name)
            ]
            base = "healthy (no drops, stalls, rollbacks or faults)"
            return base + (" [info: %s]" % " ".join(info) if info else "")
        parts = [
            "%s=%d" % (field, getattr(self, field))
            for field in self._FIELDS
            if getattr(self, field)
        ]
        return "degraded: " + " ".join(parts)

    def __eq__(self, other):
        return isinstance(other, RunHealth) and self.as_dict() == other.as_dict()

    def __repr__(self):
        return "<RunHealth %s>" % self.summary()
