"""LASER system configuration.

Defaults follow the paper's evaluation setup (Section 7): SAV 19, a
detection rate threshold of 1K HITMs/sec, and online repair triggered
when a false-sharing line's HITM rate is high enough to merit it.
"""

__all__ = ["LaserConfig"]


class LaserConfig:
    """Tunables for one LASER deployment."""

    def __init__(
        self,
        sample_after_value: int = 19,
        rate_threshold: float = 1000.0,
        repair_trigger_rate: float = 4000.0,
        check_interval_cycles: int = 50_000,
        min_stores_per_flush: float = 4.0,
        heap_shift: int = 64,
        detection_enabled: bool = True,
        repair_enabled: bool = True,
        seed: int = 0,
    ):
        if sample_after_value < 1:
            raise ValueError("SAV must be >= 1")
        if rate_threshold < 0 or repair_trigger_rate < 0:
            raise ValueError("thresholds must be non-negative")
        #: PEBS Sample-After Value; 19 is the paper's default (a prime,
        #: per the PEBS experience reports it cites).
        self.sample_after_value = sample_after_value
        #: Report threshold in HITM events per simulated second.
        self.rate_threshold = rate_threshold
        #: Combined HITM rate of FS-candidate lines that triggers repair.
        self.repair_trigger_rate = repair_trigger_rate
        #: How often the detector checks rates / considers repair.
        self.check_interval_cycles = check_interval_cycles
        #: Repair profitability floor (Section 5.4).
        self.min_stores_per_flush = min_stores_per_flush
        #: Heap-base displacement caused by the detector forking the
        #: application (environment differences shift the initial brk).
        #: 64 bytes keeps cache-line alignment identical for ordinary
        #: allocations; workloads whose layout is environment-sensitive
        #: (lu_ncb's input buffer sizing) react to the nonzero shift —
        #: the mechanism behind lu_ncb's coincidental 30% speedup.
        self.heap_shift = heap_shift
        self.detection_enabled = detection_enabled
        self.repair_enabled = repair_enabled
        self.seed = seed

    def replace(self, **kwargs) -> "LaserConfig":
        """Return a copy with some fields overridden."""
        fields = dict(
            sample_after_value=self.sample_after_value,
            rate_threshold=self.rate_threshold,
            repair_trigger_rate=self.repair_trigger_rate,
            check_interval_cycles=self.check_interval_cycles,
            min_stores_per_flush=self.min_stores_per_flush,
            heap_shift=self.heap_shift,
            detection_enabled=self.detection_enabled,
            repair_enabled=self.repair_enabled,
            seed=self.seed,
        )
        fields.update(kwargs)
        return LaserConfig(**fields)
