"""LASER system configuration.

Defaults follow the paper's evaluation setup (Section 7): SAV 19, a
detection rate threshold of 1K HITMs/sec, and online repair triggered
when a false-sharing line's HITM rate is high enough to merit it.

The degradation knobs (backoff, watchdog, outbox bound) default to
values under which a healthy run is bit-identical to a run without the
degradation machinery: the outbox bound is far above what a draining
detector accumulates, the backoff only changes *when* repair is
re-evaluated (re-evaluation is free in simulated cycles), and the
watchdog only fires when a repair demonstrably stopped paying off.
"""

from repro._constants import DRIVER_OUTBOX_CAPACITY, HTM_ABORT_FALLBACK_THRESHOLD
from repro.accel import ENGINES, SIM_ENGINES

__all__ = ["LaserConfig"]


class LaserConfig:
    """Tunables for one LASER deployment."""

    def __init__(
        self,
        sample_after_value: int = 19,
        rate_threshold: float = 1000.0,
        repair_trigger_rate: float = 4000.0,
        check_interval_cycles: int = 50_000,
        min_stores_per_flush: float = 4.0,
        heap_shift: int = 64,
        detection_enabled: bool = True,
        repair_enabled: bool = True,
        seed: int = 0,
        outbox_capacity: int = DRIVER_OUTBOX_CAPACITY,
        repair_backoff_intervals: int = 2,
        repair_backoff_max: int = 32,
        rollback_enabled: bool = True,
        watchdog_windows: int = 3,
        watchdog_rate_ratio: float = 0.5,
        watchdog_abort_rate: float = 4.0,
        htm_abort_fallback_threshold: int = HTM_ABORT_FALLBACK_THRESHOLD,
        verify_repairs: bool = True,
        trace_enabled: bool = False,
        trace_capacity: int = 65_536,
        resilience_enabled: bool = True,
        checkpoint_every_windows: int = 1,
        restart_backoff_intervals: int = 1,
        restart_backoff_max: int = 8,
        restart_jitter: float = 0.0,
        max_component_restarts: int = 3,
        control_enabled: bool = False,
        control_budget_records: int = 128,
        control_overload_ratio: float = 1.0,
        control_recover_ratio: float = 0.5,
        control_escalate_after: int = 2,
        control_recover_after: int = 3,
        control_passthrough_after: int = 6,
        control_sav_step: int = 2,
        control_poll_step: int = 2,
        control_max_sav: int = 512,
        race_gate: bool = False,
        static_prefilter: bool = False,
        profile_enabled: bool = False,
        trace_spans: bool = False,
        engine: str = "auto",
        sim_engine: str = "auto",
    ):
        if engine not in ENGINES:
            raise ValueError(
                "engine must be one of %s, got %r" % (ENGINES, engine))
        if sim_engine not in SIM_ENGINES:
            raise ValueError(
                "sim_engine must be one of %s, got %r"
                % (SIM_ENGINES, sim_engine))
        if sample_after_value < 1:
            raise ValueError("SAV must be >= 1")
        if rate_threshold < 0 or repair_trigger_rate < 0:
            raise ValueError("thresholds must be non-negative")
        if outbox_capacity < 1:
            raise ValueError("outbox capacity must be >= 1")
        if repair_backoff_intervals < 1 or repair_backoff_max < 1:
            raise ValueError("backoff intervals must be >= 1")
        if watchdog_windows < 1:
            raise ValueError("watchdog_windows must be >= 1")
        if not 0.0 <= watchdog_rate_ratio <= 1.0:
            raise ValueError("watchdog_rate_ratio must be in [0, 1]")
        if htm_abort_fallback_threshold < 1:
            raise ValueError("htm_abort_fallback_threshold must be >= 1")
        if trace_capacity < 1:
            raise ValueError("trace_capacity must be >= 1")
        if checkpoint_every_windows < 1:
            raise ValueError("checkpoint_every_windows must be >= 1")
        if restart_backoff_intervals < 1 or restart_backoff_max < 1:
            raise ValueError("restart backoff intervals must be >= 1")
        if restart_jitter < 0.0:
            raise ValueError("restart_jitter must be >= 0")
        if max_component_restarts < 0:
            raise ValueError("max_component_restarts must be >= 0")
        if control_budget_records < 1:
            raise ValueError("control_budget_records must be >= 1")
        if control_overload_ratio <= 0.0 or control_recover_ratio <= 0.0:
            raise ValueError("control ratios must be > 0")
        if control_recover_ratio >= control_overload_ratio:
            raise ValueError(
                "control_recover_ratio must be < control_overload_ratio "
                "(the gap is the hysteresis band)"
            )
        if (control_escalate_after < 1 or control_recover_after < 1
                or control_passthrough_after < 1):
            raise ValueError("control streak thresholds must be >= 1")
        if control_sav_step < 2 or control_poll_step < 2:
            raise ValueError("control knob steps must be >= 2")
        if control_max_sav < sample_after_value:
            raise ValueError("control_max_sav must be >= sample_after_value")
        #: PEBS Sample-After Value; 19 is the paper's default (a prime,
        #: per the PEBS experience reports it cites).
        self.sample_after_value = sample_after_value
        #: Report threshold in HITM events per simulated second.
        self.rate_threshold = rate_threshold
        #: Combined HITM rate of FS-candidate lines that triggers repair.
        self.repair_trigger_rate = repair_trigger_rate
        #: How often the detector checks rates / considers repair.
        self.check_interval_cycles = check_interval_cycles
        #: Repair profitability floor (Section 5.4).
        self.min_stores_per_flush = min_stores_per_flush
        #: Heap-base displacement caused by the detector forking the
        #: application (environment differences shift the initial brk).
        #: 64 bytes keeps cache-line alignment identical for ordinary
        #: allocations; workloads whose layout is environment-sensitive
        #: (lu_ncb's input buffer sizing) react to the nonzero shift —
        #: the mechanism behind lu_ncb's coincidental 30% speedup.
        self.heap_shift = heap_shift
        self.detection_enabled = detection_enabled
        self.repair_enabled = repair_enabled
        self.seed = seed
        #: Bound on the driver's detector-facing outbox; overflow drops
        #: records (with accounting) instead of growing without limit.
        self.outbox_capacity = outbox_capacity
        #: After a rejected (or failed) repair evaluation, skip this
        #: many check intervals before re-evaluating...
        self.repair_backoff_intervals = repair_backoff_intervals
        #: ...doubling the skip on every further rejection, up to this
        #: cap (exponential backoff; replaces the old permanent bail).
        self.repair_backoff_max = repair_backoff_max
        #: Whether the post-repair watchdog may detach a repair that
        #: stopped paying off.
        self.rollback_enabled = rollback_enabled
        #: Detection windows the watchdog observes after an attach
        #: before judging the repair.
        self.watchdog_windows = watchdog_windows
        #: The repair is judged worthwhile only if the post-repair HITM
        #: rate fell below this fraction of the rate at attach time.
        self.watchdog_rate_ratio = watchdog_rate_ratio
        #: SSB HTM aborts per watchdog window above which the repair is
        #: judged to be thrashing the HTM.
        self.watchdog_abort_rate = watchdog_abort_rate
        #: Consecutive HTM aborts before an SSB abandons transactional
        #: flushes for per-store writeback (see ``repro.core.repair.ssb``).
        self.htm_abort_fallback_threshold = htm_abort_fallback_threshold
        #: Gate every rewrite through the static TSO/SSB verifier
        #: (``repro.static.verify``); a rewrite it cannot prove safe is
        #: rejected and counted in ``RunHealth.repair_verifier_rejections``.
        self.verify_repairs = verify_repairs
        #: Structured event tracing (``repro.obs``).  Off by default:
        #: a disabled tracer costs one branch per instrumentation site
        #: and a traced run's *simulated* cycle counts are identical
        #: either way (tracing observes; it never charges cycles).
        self.trace_enabled = trace_enabled
        #: Ring-buffer bound on retained trace events; the tracer sheds
        #: oldest-first beyond this and counts ``events_dropped``.
        self.trace_capacity = trace_capacity
        #: Crash recovery (``repro.resilience``): write-ahead record
        #: journal, checkpoint/restore and supervised restarts.  On by
        #: default — like tracing, resilience observes and never charges
        #: simulated cycles, so a run with no crash faults is
        #: bit-identical either way.
        self.resilience_enabled = resilience_enabled
        #: Checkpoint cadence, in detection windows (check intervals).
        self.checkpoint_every_windows = checkpoint_every_windows
        #: First supervisor restart delay, in check intervals...
        self.restart_backoff_intervals = restart_backoff_intervals
        #: ...doubling per consecutive crash up to this cap.
        self.restart_backoff_max = restart_backoff_max
        #: Seeded-jitter fraction widening each restart delay (0 = none).
        self.restart_jitter = restart_jitter
        #: Restart budget per component before the circuit breaker
        #: trips and the run degrades (detection-only, then passthrough).
        self.max_component_restarts = max_component_restarts
        #: Closed-loop overload control (``repro.control``).  Off by
        #: default: a disabled controller touches no knob and a run is
        #: bit-identical to one without the control machinery at all.
        self.control_enabled = control_enabled
        #: Record admission the controller defends, per *base* check
        #: interval.  Also the reference point for the overload and
        #: recovery thresholds below.
        self.control_budget_records = control_budget_records
        #: An interval is overloaded when normalized record flow
        #: exceeds this multiple of the budget (or anything dropped).
        self.control_overload_ratio = control_overload_ratio
        #: ...and calm only when flow falls below this multiple with a
        #: clean driver; the gap between the two ratios is the
        #: hysteresis band that keeps the ladder from flapping.
        self.control_recover_ratio = control_recover_ratio
        #: Consecutive overloaded intervals before escalating one rung.
        self.control_escalate_after = control_escalate_after
        #: Consecutive calm intervals before de-escalating one rung.
        self.control_recover_after = control_recover_after
        #: Higher bar for the final SHEDDING -> PASSTHROUGH rung
        #: (parking the monitor is a last resort).
        self.control_passthrough_after = control_passthrough_after
        #: Per-rung multiplier applied to the SAV...
        self.control_sav_step = control_sav_step
        #: ...and to the poll interval.
        self.control_poll_step = control_poll_step
        #: Hard cap on the actuated SAV (sampling coarser than this
        #: stops producing a usable rate estimate at all).
        self.control_max_sav = control_max_sav
        #: Consult the static sharing certificate (``repro.static.race``)
        #: before attaching a repair: source lines certified RACE are
        #: quarantined (repair refused, counted in
        #: ``RunHealth.repairs_quarantined``) because SSB-rewriting a
        #: racy line would mask a correctness bug.  Off by default so
        #: default runs stay bit-identical to the golden pins.
        self.race_gate = race_gate
        #: Feed the certificate's shared-line set to the detector's
        #: record filter so sampling budget is spent only on lines
        #: static analysis says can be shared.  Fail-open: applied only
        #: when the certificate is complete (no clipped footprints).
        self.static_prefilter = static_prefilter
        #: Host-time profiling (``repro.obs.profile``): attribute host
        #: wall-clock per scheduler slice to each service plus the sim
        #: core and PEBS drain.  Off by default — a disabled profiler
        #: costs one branch per hook, and the profiler only *reads* the
        #: host clock, so simulated outputs are bit-identical on or off.
        self.profile_enabled = profile_enabled
        #: Causal span events (``repro.obs.spans``): emit the extra
        #: ``detect.batch`` trace events that let the span builder link
        #: record batches to the windows and repairs they caused.  Off
        #: by default because any extra emission changes the trace
        #: stream's SHA-256 golden pin.
        self.trace_spans = trace_spans
        #: Record/detection engine (``repro.accel``): ``"numpy"`` flows
        #: struct-of-arrays batches through vectorized kernels,
        #: ``"python"`` keeps the scalar per-record loops, ``"auto"``
        #: picks numpy when the ``[accel]`` extra is importable.  Every
        #: golden pin is byte-identical under either engine — the
        #: choice moves host wall-clock only.
        self.engine = engine
        #: Simulator engine: ``"trace"`` executes precompiled
        #: basic-block traces, ``"interp"`` the legacy per-instruction
        #: interpreter.  Bit-identical by construction; ``"auto"``
        #: defaults to the trace engine.
        self.sim_engine = sim_engine

    def replace(self, **kwargs) -> "LaserConfig":
        """Return a copy with some fields overridden."""
        fields = dict(
            sample_after_value=self.sample_after_value,
            rate_threshold=self.rate_threshold,
            repair_trigger_rate=self.repair_trigger_rate,
            check_interval_cycles=self.check_interval_cycles,
            min_stores_per_flush=self.min_stores_per_flush,
            heap_shift=self.heap_shift,
            detection_enabled=self.detection_enabled,
            repair_enabled=self.repair_enabled,
            seed=self.seed,
            outbox_capacity=self.outbox_capacity,
            repair_backoff_intervals=self.repair_backoff_intervals,
            repair_backoff_max=self.repair_backoff_max,
            rollback_enabled=self.rollback_enabled,
            watchdog_windows=self.watchdog_windows,
            watchdog_rate_ratio=self.watchdog_rate_ratio,
            watchdog_abort_rate=self.watchdog_abort_rate,
            htm_abort_fallback_threshold=self.htm_abort_fallback_threshold,
            verify_repairs=self.verify_repairs,
            trace_enabled=self.trace_enabled,
            trace_capacity=self.trace_capacity,
            resilience_enabled=self.resilience_enabled,
            checkpoint_every_windows=self.checkpoint_every_windows,
            restart_backoff_intervals=self.restart_backoff_intervals,
            restart_backoff_max=self.restart_backoff_max,
            restart_jitter=self.restart_jitter,
            max_component_restarts=self.max_component_restarts,
            control_enabled=self.control_enabled,
            control_budget_records=self.control_budget_records,
            control_overload_ratio=self.control_overload_ratio,
            control_recover_ratio=self.control_recover_ratio,
            control_escalate_after=self.control_escalate_after,
            control_recover_after=self.control_recover_after,
            control_passthrough_after=self.control_passthrough_after,
            control_sav_step=self.control_sav_step,
            control_poll_step=self.control_poll_step,
            control_max_sav=self.control_max_sav,
            race_gate=self.race_gate,
            static_prefilter=self.static_prefilter,
            profile_enabled=self.profile_enabled,
            trace_spans=self.trace_spans,
            engine=self.engine,
            sim_engine=self.sim_engine,
        )
        fields.update(kwargs)
        return LaserConfig(**fields)
