"""Control-flow analysis for SSB instrumentation (Section 5.3, Figure 7).

Given the PCs involved in contention:

1. find the basic blocks containing contending instructions;
2. place the flush at the nearest common post-dominator *outside* the
   contending loop, "which helps to minimize the dynamic occurrence of
   flushes" — for contention inside a loop, the loop exit;
3. instrument every memory operation in the blocks reachable from a
   contending block without crossing the flush point;
4. exempt provably(-speculatively) non-aliasing loads (``alias.py``);
5. estimate profitability (``cost.py``).
"""

from typing import Dict, Optional, Set

from repro.core.repair.alias import speculative_alias_analysis
from repro.core.repair.cost import estimate_stores_per_flush
from repro.isa.cfg import EXIT, ControlFlowGraph, build_cfg
from repro.isa.program import ThreadCode

__all__ = ["ThreadRepairAnalysis", "analyze_thread"]


class ThreadRepairAnalysis:
    """Everything the rewriter needs for one thread."""

    def __init__(
        self,
        cfg: ControlFlowGraph,
        contending_blocks: Set[int],
        region_blocks: Set[int],
        flush_block: Optional[int],
        flush_before_instructions: Set[int],
        exempt_loads: Set[int],
        alias_checks: Dict[int, int],
        stores_per_flush: float,
    ):
        self.cfg = cfg
        self.contending_blocks = contending_blocks
        self.region_blocks = region_blocks
        self.flush_block = flush_block
        self.flush_before_instructions = flush_before_instructions
        self.exempt_loads = exempt_loads
        self.alias_checks = alias_checks
        self.stores_per_flush = stores_per_flush

    @property
    def has_contention(self) -> bool:
        return bool(self.contending_blocks)

    def is_profitable(self, min_stores_per_flush: float) -> bool:
        return self.stores_per_flush >= min_stores_per_flush

    def instrumented_instruction_indices(self) -> Set[int]:
        """Memory-op indices that will be redirected through the SSB."""
        out = set()
        instructions = self.cfg.code.instructions
        for block_index in self.region_blocks:
            for i in self.cfg.blocks[block_index].instruction_indices():
                inst = instructions[i]
                if inst.is_memory_op and i not in self.exempt_loads:
                    out.add(i)
        return out


def _nearest_outside_post_dominator(
    cfg: ControlFlowGraph, contending_blocks: Set[int]
) -> Optional[int]:
    """Nearest common post-dominator not inside the contending loop."""
    candidates = cfg.common_post_dominators(contending_blocks)
    # Blocks on a cycle with a contending block would flush every trip.
    in_loop = set()
    for candidate in candidates:
        if candidate == EXIT:
            continue
        reach_fwd = cfg.reachable_from({candidate})
        if any(
            c in reach_fwd and candidate in cfg.reachable_from({c})
            for c in contending_blocks
        ):
            in_loop.add(candidate)
    usable = [
        c
        for c in candidates
        if c != EXIT and c not in in_loop and c not in contending_blocks
    ]
    if not usable:
        return None  # flush before HALT / rely on exit drains
    # Nearest to the contention = furthest from the exit = the candidate
    # post-dominated by the most blocks.
    return max(usable, key=lambda c: (len(cfg.post_dominators(c)), -c))


def analyze_thread(code: ThreadCode, contending_pcs: Set[int]) -> ThreadRepairAnalysis:
    """Run the full Section 5.3 analysis for one thread."""
    cfg = build_cfg(code)
    instructions = code.instructions

    contending_indices = [
        i for i, inst in enumerate(instructions) if inst.pc in contending_pcs
    ]
    contending_blocks = {
        cfg.block_of_instruction(i).index for i in contending_indices
    }
    if not contending_blocks:
        return ThreadRepairAnalysis(
            cfg, set(), set(), None, set(), set(), {}, 0.0
        )

    flush_block = _nearest_outside_post_dominator(cfg, contending_blocks)

    # Region: reachable from contention without crossing the flush point.
    region: Set[int] = set(contending_blocks)
    frontier = list(contending_blocks)
    while frontier:
        current = frontier.pop()
        for succ in cfg.blocks[current].successors:
            if succ == flush_block or succ in region:
                continue
            region.add(succ)
            frontier.append(succ)

    flush_before: Set[int] = set()
    if flush_block is not None:
        flush_before.add(cfg.blocks[flush_block].start)

    exempt_loads, alias_checks = speculative_alias_analysis(cfg, region)
    stores_per_flush = estimate_stores_per_flush(cfg, region)

    return ThreadRepairAnalysis(
        cfg=cfg,
        contending_blocks=contending_blocks,
        region_blocks=region,
        flush_block=flush_block,
        flush_before_instructions=flush_before,
        exempt_loads=exempt_loads,
        alias_checks=alias_checks,
        stores_per_flush=stores_per_flush,
    )
