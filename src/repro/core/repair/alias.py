"""Speculative alias analysis (Section 5.3).

"To reduce the number of loads using the SSB, we employ a simplified
form of speculative alias analysis.  Our analysis assumes loads using a
register unused by any store do not alias.  Such loads do not require
SSB modification.  To validate this speculation, an aliasing check is
inserted between the def and use of each load address."

We apply the rule per instrumentation region: collect the base registers
of every store in the region; loads whose base register is outside that
set are exempted from the SSB, guarded by a runtime ALIAS_CHECK (one per
exempted load per basic block and base register).  A failed check
flushes the SSB, after which the plain load is safe — the thread-local
recovery the paper describes.
"""

from typing import Dict, Set, Tuple

from repro.isa.cfg import ControlFlowGraph
from repro.isa.instructions import Opcode

__all__ = ["speculative_alias_analysis"]


def speculative_alias_analysis(
    cfg: ControlFlowGraph, region_blocks: Set[int]
) -> Tuple[Set[int], Dict[int, int]]:
    """Identify SSB-exempt loads in the instrumentation region.

    Returns ``(exempt_load_indices, checks)`` where ``checks`` maps an
    instruction index to the load index it guards (an ALIAS_CHECK is
    inserted immediately before each key).
    """
    instructions = cfg.code.instructions

    store_base_regs: Set[int] = set()
    region_has_store = False
    for block_index in region_blocks:
        block = cfg.blocks[block_index]
        for i in block.instruction_indices():
            inst = instructions[i]
            if inst.op in (Opcode.STORE, Opcode.ADDM, Opcode.CMPXCHG, Opcode.XADD):
                region_has_store = True
                if inst.a is not None and inst.a.is_reg:
                    store_base_regs.add(inst.a.value)
                else:
                    # A store through an absolute address: we cannot name
                    # a register, so disable speculation entirely (the
                    # conservative fallback).
                    return set(), {}

    if not region_has_store:
        # Nothing ever enters the SSB: every load is trivially exempt and
        # needs no check.
        exempt = set()
        for block_index in region_blocks:
            block = cfg.blocks[block_index]
            for i in block.instruction_indices():
                if instructions[i].op is Opcode.LOAD:
                    exempt.add(i)
        return exempt, {}

    exempt: Set[int] = set()
    checks: Dict[int, int] = {}
    for block_index in sorted(region_blocks):
        block = cfg.blocks[block_index]
        checked_regs_in_block: Set[int] = set()
        for i in block.instruction_indices():
            inst = instructions[i]
            if inst.op is not Opcode.LOAD:
                continue
            if inst.a is None or not inst.a.is_reg:
                continue  # absolute-address load: stays on the SSB path
            base = inst.a.value
            if base in store_base_regs:
                continue  # may alias: must use the SSB
            exempt.add(i)
            if base not in checked_regs_in_block:
                # "Multiple uses of the same def require only one check."
                checks[i] = i
                checked_regs_in_block.add(base)
    return exempt, checks
