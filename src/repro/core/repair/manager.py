"""LASERREPAIR orchestration.

The manager is invoked by LASERDETECT with the PCs involved in false
sharing (Section 4.4).  It analyzes each thread, checks profitability,
rewrites the code, and attaches the result to the running machine the
way Pin attaches to a running process: thread code is swapped at an
instruction boundary and each affected thread gets a software store
buffer.
"""

from typing import Dict, List, Optional, Set

from repro.core.repair.analysis import ThreadRepairAnalysis, analyze_thread
from repro.core.repair.rewrite import rewrite_thread
from repro.core.repair.ssb import SoftwareStoreBuffer
from repro.isa.program import Program, ThreadCode

__all__ = ["RepairPlan", "LaserRepair"]


class RepairPlan:
    """The outcome of repair analysis over a whole program."""

    def __init__(self, program: Program, contending_pcs: Set[int]):
        self.program = program
        self.contending_pcs = contending_pcs
        self.analyses: Dict[int, ThreadRepairAnalysis] = {}
        self.new_codes: Dict[int, ThreadCode] = {}
        self.index_maps: Dict[int, Dict[int, int]] = {}
        self.rejected_reason: Optional[str] = None

    @property
    def profitable(self) -> bool:
        return self.rejected_reason is None and bool(self.new_codes)

    @property
    def threads_instrumented(self) -> List[int]:
        return sorted(self.new_codes)

    def min_stores_per_flush(self) -> float:
        ratios = [
            a.stores_per_flush
            for a in self.analyses.values()
            if a.has_contention
        ]
        return min(ratios) if ratios else 0.0


class LaserRepair:
    """Builds and applies repair plans."""

    def __init__(self, min_stores_per_flush: float = 4.0):
        self.min_stores_per_flush = min_stores_per_flush
        self.plans_built = 0
        self.plans_applied = 0
        self.plans_rejected = 0

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def plan(self, program: Program, contending_pcs: Set[int]) -> RepairPlan:
        """Analyze and (if profitable) rewrite every contending thread."""
        plan = RepairPlan(program, set(contending_pcs))
        self.plans_built += 1
        for tid, code in enumerate(program.threads):
            analysis = analyze_thread(code, plan.contending_pcs)
            if not analysis.has_contention:
                continue
            plan.analyses[tid] = analysis
            if not analysis.is_profitable(self.min_stores_per_flush):
                plan.rejected_reason = (
                    "thread %d: estimated %.1f stores/flush below %.1f"
                    % (tid, analysis.stores_per_flush, self.min_stores_per_flush)
                )
                plan.new_codes.clear()
                plan.index_maps.clear()
                self.plans_rejected += 1
                return plan
            new_code, index_map = rewrite_thread(code, analysis)
            plan.new_codes[tid] = new_code
            plan.index_maps[tid] = index_map
        if not plan.new_codes:
            plan.rejected_reason = "no thread contains the contending PCs"
            self.plans_rejected += 1
        return plan

    # ------------------------------------------------------------------
    # Attach (the Pin-attach analog)
    # ------------------------------------------------------------------

    def attach(self, machine, plan: RepairPlan) -> List[SoftwareStoreBuffer]:
        """Swap instrumented code into the running machine."""
        if not plan.profitable:
            raise ValueError("cannot attach a rejected plan: %s" % plan.rejected_reason)
        buffers = []
        for tid in plan.threads_instrumented:
            core = machine.cores[tid]
            core.replace_code(plan.new_codes[tid].instructions, plan.index_maps[tid])
            ssb = SoftwareStoreBuffer(machine, tid)
            core.ssb = ssb
            buffers.append(ssb)
        self.plans_applied += 1
        return buffers
