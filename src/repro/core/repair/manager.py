"""LASERREPAIR orchestration.

The manager is invoked by LASERDETECT with the PCs involved in false
sharing (Section 4.4).  It analyzes each thread, checks profitability,
rewrites the code, and attaches the result to the running machine the
way Pin attaches to a running process: thread code is swapped at an
instruction boundary and each affected thread gets a software store
buffer.
"""

from typing import Dict, List, Optional, Set

from repro._constants import HTM_ABORT_FALLBACK_THRESHOLD
from repro.core.repair.analysis import ThreadRepairAnalysis, analyze_thread
from repro.core.repair.rewrite import rewrite_thread
from repro.core.repair.ssb import SoftwareStoreBuffer
from repro.isa.program import Program, ThreadCode
from repro.obs.trace import NULL_TRACER
from repro.static.verify import VerificationResult, verify_rewrite

__all__ = ["RepairPlan", "LaserRepair"]


class RepairPlan:
    """The outcome of repair analysis over a whole program."""

    def __init__(self, program: Program, contending_pcs: Set[int]):
        self.program = program
        self.contending_pcs = contending_pcs
        self.analyses: Dict[int, ThreadRepairAnalysis] = {}
        self.new_codes: Dict[int, ThreadCode] = {}
        self.index_maps: Dict[int, Dict[int, int]] = {}
        #: Instrumented-code length per thread.  Kept separately from
        #: ``new_codes`` because a plan reconstructed from serialized
        #: attached state (crash recovery) has the lengths and index
        #: maps — everything detach needs — but not the code objects.
        self.new_code_lens: Dict[int, int] = {}
        self.rejected_reason: Optional[str] = None
        #: Per-thread rewrite-verifier outcomes (``static/verify.py``);
        #: populated for every rewritten thread when verification is on.
        self.verifier_results: Dict[int, VerificationResult] = {}
        #: True when the plan was rejected *by the verifier* (as opposed
        #: to the profitability gate) — surfaced separately in RunHealth
        #: because a verifier rejection means the rewriter produced code
        #: the static checker could not prove safe, which is degradation.
        self.verifier_rejected: bool = False
        #: SSBs removed by :meth:`LaserRepair.detach` (stats survive the
        #: rollback for end-of-run health accounting).
        self.detached_buffers: List[SoftwareStoreBuffer] = []

    @property
    def profitable(self) -> bool:
        return self.rejected_reason is None and bool(self.new_codes)

    @property
    def threads_instrumented(self) -> List[int]:
        return sorted(self.index_maps)

    def new_code_len(self, tid: int) -> int:
        """Instrumented instruction count for one rewritten thread."""
        if tid in self.new_code_lens:
            return self.new_code_lens[tid]
        return len(self.new_codes[tid].instructions)

    # ------------------------------------------------------------------
    # Crash-recovery serialization (``repro.resilience``)
    # ------------------------------------------------------------------

    def attached_state(self) -> dict:
        """JSON-serializable record of an *attached* plan.

        Captures exactly what a recovered detector needs to keep
        supervising (and eventually detach) instrumentation that is
        already live in the machine: the threads, their index maps and
        instrumented code lengths.  The rewritten code itself lives in
        the machine and survives a detector crash.
        """
        return {
            "contending_pcs": sorted(self.contending_pcs),
            "threads": [
                {
                    "tid": tid,
                    "index_map": sorted(self.index_maps[tid].items()),
                    "new_len": self.new_code_len(tid),
                }
                for tid in self.threads_instrumented
            ],
        }

    @classmethod
    def from_attached_state(cls, program: Program,
                            state: dict) -> "RepairPlan":
        """Rebuild a detachable plan from serialized attached state."""
        plan = cls(program, set(state["contending_pcs"]))
        for entry in state["threads"]:
            tid = entry["tid"]
            plan.index_maps[tid] = {old: new for old, new in entry["index_map"]}
            plan.new_code_lens[tid] = entry["new_len"]
        return plan

    def min_stores_per_flush(self) -> float:
        ratios = [
            a.stores_per_flush
            for a in self.analyses.values()
            if a.has_contention
        ]
        return min(ratios) if ratios else 0.0


class LaserRepair:
    """Builds, applies and rolls back repair plans."""

    def __init__(self, min_stores_per_flush: float = 4.0,
                 abort_fallback_threshold: int = HTM_ABORT_FALLBACK_THRESHOLD,
                 verify_rewrites: bool = True):
        self.min_stores_per_flush = min_stores_per_flush
        self.abort_fallback_threshold = abort_fallback_threshold
        #: Gate every rewrite through the static verifier
        #: (``repro.static.verify``) before it may be attached.
        self.verify_rewrites = verify_rewrites
        self.plans_built = 0
        self.plans_applied = 0
        self.plans_rejected = 0
        self.plans_verifier_rejected = 0
        self.plans_detached = 0

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def plan(self, program: Program, contending_pcs: Set[int],
             tracer=None, cycle: int = 0) -> RepairPlan:
        """Analyze and (if profitable) rewrite every contending thread.

        ``tracer``/``cycle`` let the caller timestamp the plan/verify
        lifecycle events (planning has no clock of its own).
        """
        tracer = tracer if tracer is not None else NULL_TRACER
        plan = RepairPlan(program, set(contending_pcs))
        self.plans_built += 1
        if tracer.enabled:
            tracer.emit("repair.plan", cycle,
                        contending_pcs=sorted(contending_pcs))
        for tid, code in enumerate(program.threads):
            analysis = analyze_thread(code, plan.contending_pcs)
            if not analysis.has_contention:
                continue
            plan.analyses[tid] = analysis
            if not analysis.is_profitable(self.min_stores_per_flush):
                plan.rejected_reason = (
                    "thread %d: estimated %.1f stores/flush below %.1f"
                    % (tid, analysis.stores_per_flush, self.min_stores_per_flush)
                )
                plan.new_codes.clear()
                plan.index_maps.clear()
                plan.new_code_lens.clear()
                self.plans_rejected += 1
                if tracer.enabled:
                    tracer.emit("repair.plan_rejected", cycle, thread=tid,
                                reason=plan.rejected_reason)
                return plan
            new_code, index_map = rewrite_thread(code, analysis)
            if self.verify_rewrites:
                verdict = verify_rewrite(code, analysis, new_code,
                                         index_map, thread=tid)
                plan.verifier_results[tid] = verdict
                if tracer.enabled:
                    tracer.emit("repair.verify", cycle, thread=tid,
                                ok=verdict.ok, summary=verdict.summary())
                if not verdict.ok:
                    plan.rejected_reason = (
                        "thread %d: rewrite verification failed: %s"
                        % (tid, verdict.summary())
                    )
                    plan.verifier_rejected = True
                    plan.new_codes.clear()
                    plan.index_maps.clear()
                    plan.new_code_lens.clear()
                    self.plans_rejected += 1
                    self.plans_verifier_rejected += 1
                    if tracer.enabled:
                        tracer.emit("repair.plan_rejected", cycle,
                                    thread=tid,
                                    reason=plan.rejected_reason)
                    return plan
            plan.new_codes[tid] = new_code
            plan.index_maps[tid] = index_map
            plan.new_code_lens[tid] = len(new_code.instructions)
        if not plan.new_codes:
            plan.rejected_reason = "no thread contains the contending PCs"
            self.plans_rejected += 1
            if tracer.enabled:
                tracer.emit("repair.plan_rejected", cycle,
                            reason=plan.rejected_reason)
        return plan

    # ------------------------------------------------------------------
    # Attach (the Pin-attach analog)
    # ------------------------------------------------------------------

    def attach(self, machine, plan: RepairPlan) -> List[SoftwareStoreBuffer]:
        """Swap instrumented code into the running machine."""
        if not plan.profitable:
            raise ValueError("cannot attach a rejected plan: %s" % plan.rejected_reason)
        buffers = []
        for tid in plan.threads_instrumented:
            core = machine.cores[tid]
            core.replace_code(plan.new_codes[tid].instructions, plan.index_maps[tid])
            ssb = SoftwareStoreBuffer(
                machine, tid,
                abort_fallback_threshold=self.abort_fallback_threshold,
            )
            core.ssb = ssb
            buffers.append(ssb)
        self.plans_applied += 1
        if machine.tracer.enabled:
            machine.tracer.emit(
                "repair.attach", machine.cycle,
                threads=plan.threads_instrumented,
                min_stores_per_flush=round(plan.min_stores_per_flush(), 3),
            )
        return buffers

    # ------------------------------------------------------------------
    # Detach (rollback: the Pin-detach analog)
    # ------------------------------------------------------------------

    def detach(self, machine, plan: RepairPlan) -> None:
        """Roll the instrumentation back out of a running machine.

        The inverse of :meth:`attach`: each instrumented thread's SSB is
        drained (pending stores become globally visible — the flush is
        the same TSO-preserving flush the instrumented code uses), the
        buffer is detached, and the original instruction stream is
        swapped back in with the program counter translated through the
        inverse index map.  A thread paused *at* an injected flush or
        alias check resumes at the original instruction the injection
        guarded; with no SSB attached the guard is vacuous, so skipping
        it is semantically exact.
        """
        for tid in plan.threads_instrumented:
            core = machine.cores[tid]
            ssb = core.ssb
            if ssb is not None:
                if not ssb.empty():
                    ssb.flush(tid)
                    core.stats.ssb_flushes += 1
                plan.detached_buffers.append(ssb)
            core.ssb = None
            inverse = _invert_index_map(
                plan.index_maps[tid], plan.new_code_len(tid)
            )
            core.replace_code(
                plan.program.threads[tid].instructions, inverse
            )
        self.plans_detached += 1
        if machine.tracer.enabled:
            machine.tracer.emit(
                "repair.detach", machine.cycle,
                threads=plan.threads_instrumented,
            )


def _invert_index_map(index_map: Dict[int, int], new_len: int) -> Dict[int, int]:
    """Map every new-code index back to an original index.

    Indices of original instructions map to their source; indices of
    injected instructions (flushes, alias checks — always inserted
    *before* an original instruction) map to the original index of the
    instruction they guard, i.e. the next original instruction.
    """
    by_new = {new: old for old, new in index_map.items()}
    inverse: Dict[int, int] = {}
    following_old = None
    for new in range(new_len - 1, -1, -1):
        if new in by_new:
            following_old = by_new[new]
        inverse[new] = following_old
    return inverse
