"""Program rewriting: applying an analysis to produce instrumented code.

The rewriter plays the role of Pin's code cache: it emits a new
instruction stream in which region memory ops use the SSB pseudo-ops,
flushes sit at the analysis' flush points, and alias checks guard
speculatively exempted loads.  It returns an ``index_map`` from original
instruction indices to new ones so that running threads can be attached
mid-execution (``Core.replace_code``).
"""

from typing import Dict, List, Tuple

from repro.core.repair.analysis import ThreadRepairAnalysis
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import ThreadCode

__all__ = ["rewrite_thread"]


def rewrite_thread(
    code: ThreadCode, analysis: ThreadRepairAnalysis
) -> Tuple[ThreadCode, Dict[int, int]]:
    """Return (instrumented ThreadCode, old->new index map)."""
    instrumented = analysis.instrumented_instruction_indices()
    flush_before = analysis.flush_before_instructions
    checks_before = set(analysis.alias_checks)

    new_instructions: List[Instruction] = []
    index_map: Dict[int, int] = {}

    for i, inst in enumerate(code.instructions):
        index_map[i] = len(new_instructions)
        if i in flush_before:
            flush = Instruction(Opcode.SSB_FLUSH, loc=inst.loc, region=inst.region)
            new_instructions.append(flush)
        if i in checks_before:
            guard = Instruction(
                Opcode.ALIAS_CHECK,
                a=inst.a,
                offset=inst.offset,
                size=inst.size,
                loc=inst.loc,
                region=inst.region,
            )
            new_instructions.append(guard)
        copy = inst.copy()
        if i in instrumented:
            if copy.op is Opcode.LOAD:
                copy.op = Opcode.SSB_LOAD
            elif copy.op is Opcode.STORE:
                copy.op = Opcode.SSB_STORE
            elif copy.op is Opcode.ADDM:
                copy.op = Opcode.SSB_ADDM
            # CMPXCHG/XADD are fences: they drain the SSB themselves and
            # act on shared memory directly, preserving atomicity.
        new_instructions.append(copy)

    # Retarget branches through the index map.
    for inst in new_instructions:
        if inst.is_branch:
            inst.target = index_map[inst.target]

    new_labels = {name: index_map[idx] for name, idx in code.labels.items()}
    return ThreadCode(code.name, new_instructions, new_labels), index_map
