"""LASERREPAIR: online false-sharing repair via a software store buffer."""

from repro.core.repair.ssb import SoftwareStoreBuffer
from repro.core.repair.analysis import ThreadRepairAnalysis, analyze_thread
from repro.core.repair.alias import speculative_alias_analysis
from repro.core.repair.cost import estimate_stores_per_flush
from repro.core.repair.rewrite import rewrite_thread
from repro.core.repair.manager import LaserRepair, RepairPlan

__all__ = [
    "SoftwareStoreBuffer",
    "ThreadRepairAnalysis",
    "analyze_thread",
    "speculative_alias_analysis",
    "estimate_stores_per_flush",
    "rewrite_thread",
    "LaserRepair",
    "RepairPlan",
]
