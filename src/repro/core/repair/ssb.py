"""The software store buffer (Sections 5.1 and 5.5).

Stores redirected into the SSB land in a thread-private byte map instead
of shared memory, deferring cache coherence exactly as a hardware store
buffer does.  A byte-granular bitmap (here: the byte map itself) handles
unaligned accesses.  The buffer **coalesces** — one piece of storage per
memory location — which is the only practical implementation but permits
non-TSO reorderings if flushed piecemeal; therefore a flush executes as
one hardware transaction, making it strongly atomic (no remote thread
can observe a subset of the buffered stores).

If a flush nevertheless exceeds HTM capacity (the pre-emptive flush at 8
cache lines normally prevents this), the fallback splits the write set
into capacity-sized chunks committed in FIFO order — still far stronger
than per-entry writeback.

A transaction can also abort for reasons unrelated to capacity —
conflicts, interrupts — and a persistently-aborting HTM must not wedge
the flush path.  The buffer therefore keeps a FIFO log of the raw
stores alongside the coalesced byte map; after
``abort_fallback_threshold`` *consecutive* aborts it permanently stops
using the HTM and writes the log back **per store, in program order**.
That is the non-coalesced writeback the paper rejects as slow — but it
is TSO-correct without any transaction (each thread's stores become
visible in program order), which is exactly the property the graceful
degradation path must preserve.
"""

from typing import List, Tuple

from repro._constants import (
    CACHE_LINE_SIZE,
    HTM_ABORT_FALLBACK_THRESHOLD,
    L1_ASSOCIATIVITY,
)
from repro.errors import HtmAbort
from repro.sim.htm import HardwareTransactionalMemory

__all__ = ["SoftwareStoreBuffer", "SsbStats"]


class SsbStats:
    """Counters for one thread's SSB."""

    __slots__ = ("puts", "full_hits", "partial_hits", "misses", "flushes",
                 "flushed_entries", "htm_aborts", "misspeculations",
                 "fallback_activations", "fallback_stores")

    def __init__(self):
        self.puts = 0
        self.full_hits = 0
        self.partial_hits = 0
        self.misses = 0
        self.flushes = 0
        self.flushed_entries = 0
        self.htm_aborts = 0
        self.misspeculations = 0
        self.fallback_activations = 0
        self.fallback_stores = 0


class SoftwareStoreBuffer:
    """Thread-private coalescing store buffer."""

    def __init__(self, machine, core_id: int,
                 preflush_lines: int = L1_ASSOCIATIVITY,
                 abort_fallback_threshold: int = HTM_ABORT_FALLBACK_THRESHOLD):
        self.machine = machine
        self.core_id = core_id
        self.preflush_lines = preflush_lines
        self.abort_fallback_threshold = abort_fallback_threshold
        self._bytes = {}  # addr -> byte value
        self._lines = set()
        #: Program-order log of raw stores since the last flush; the
        #: source of truth for the non-coalesced fallback path.
        self._fifo: List[Tuple[int, int, int]] = []
        self.consecutive_aborts = 0
        #: Once True, every flush bypasses the HTM (per-store writeback).
        self.fallback_active = False
        self.stats = SsbStats()

    # ------------------------------------------------------------------
    # Store path (Figure 6, top)
    # ------------------------------------------------------------------

    def put(self, addr: int, value: int, size: int) -> None:
        data = self._bytes
        for i in range(size):
            byte_addr = addr + i
            data[byte_addr] = (value >> (8 * i)) & 0xFF
            self._lines.add(byte_addr // CACHE_LINE_SIZE)
        self._fifo.append((addr, value, size))
        self.stats.puts += 1

    def empty(self) -> bool:
        return not self._bytes

    def should_preflush(self) -> bool:
        """Pre-emptive flush at the L1 associativity (Section 5.5).

        Triggering *at* the bound (not one past it) keeps every
        pre-emptive flush within HTM capacity.
        """
        return len(self._lines) >= self.preflush_lines

    # ------------------------------------------------------------------
    # Load path (Figure 6, bottom)
    # ------------------------------------------------------------------

    def contains(self, addr: int, size: int) -> bool:
        """True if every byte of the access is buffered."""
        data = self._bytes
        return all((addr + i) in data for i in range(size))

    def may_alias(self, addr: int, size: int) -> bool:
        """True if any byte of the access is buffered (alias check)."""
        data = self._bytes
        return any((addr + i) in data for i in range(size))

    def load_through(self, core, inst, addr: int, size: int) -> Tuple[int, int]:
        """SSB-aware load; returns (value, memory latency).

        A fully-buffered load is served without touching shared memory —
        this is where the SSB removes coherence traffic.  Partially
        buffered loads read memory and overlay the buffered bytes.
        """
        data = self._bytes
        buffered = [data.get(addr + i) for i in range(size)]
        if all(b is not None for b in buffered):
            self.stats.full_hits += 1
            value = 0
            for i, byte in enumerate(buffered):
                value |= byte << (8 * i)
            return value, 0
        value, latency = self.machine.mem_read(core, inst, addr, size)
        if any(b is not None for b in buffered):
            self.stats.partial_hits += 1
            for i, byte in enumerate(buffered):
                if byte is not None:
                    value = (value & ~(0xFF << (8 * i))) | (byte << (8 * i))
        else:
            self.stats.misses += 1
        return value, latency

    # ------------------------------------------------------------------
    # Flush (Section 5.5)
    # ------------------------------------------------------------------

    def _coalesced_writes(self) -> List[Tuple[int, int, int]]:
        """Merge buffered bytes into (addr, value, size<=8) runs."""
        writes = []
        addresses = sorted(self._bytes)
        run_start = None
        run_bytes: List[int] = []
        previous = None
        for addr in addresses:
            if run_start is not None and addr == previous + 1 and len(run_bytes) < 8:
                run_bytes.append(self._bytes[addr])
            else:
                if run_start is not None:
                    writes.append(self._pack_run(run_start, run_bytes))
                run_start = addr
                run_bytes = [self._bytes[addr]]
            previous = addr
        if run_start is not None:
            writes.append(self._pack_run(run_start, run_bytes))
        return writes

    @staticmethod
    def _pack_run(start: int, run_bytes: List[int]) -> Tuple[int, int, int]:
        value = 0
        for i, byte in enumerate(run_bytes):
            value |= byte << (8 * i)
        return (start, value, len(run_bytes))

    def flush(self, core_id: int) -> int:
        """Write everything back; atomically when the HTM cooperates."""
        if not self._bytes:
            self._fifo.clear()
            return 0
        if self.fallback_active:
            return self._flush_per_store(core_id)
        writes = self._coalesced_writes()
        latency_model = self.machine.latency
        latency = latency_model.ssb_flush_base
        latency += latency_model.ssb_flush_entry * len(writes)
        htm: HardwareTransactionalMemory = self.machine.htm
        try:
            latency += htm.execute_atomically(core_id, writes)
            self.consecutive_aborts = 0
        except HtmAbort:
            self.stats.htm_aborts += 1
            self.consecutive_aborts += 1
            if self.consecutive_aborts >= self.abort_fallback_threshold:
                latency += self._activate_fallback()
                return latency + self._flush_per_store(core_id)
            # Capacity fallback: commit in capacity-sized FIFO chunks.
            chunks = htm.split_for_capacity(writes, htm.capacity_lines)
            for index, chunk in enumerate(chunks):
                latency += latency_model.ssb_flush_base
                try:
                    latency += htm.execute_atomically(core_id, chunk)
                except HtmAbort:
                    # The chunks abort too (an abort storm, not mere
                    # capacity).  Give up on the HTM and write this and
                    # every remaining chunk back entry by entry — the
                    # committed prefix stays FIFO-ordered.
                    self.stats.htm_aborts += 1
                    self.consecutive_aborts += 1
                    latency += self._activate_fallback()
                    for remaining in chunks[index:]:
                        latency += self._write_entries(core_id, remaining)
                    break
        self.stats.flushes += 1
        self.stats.flushed_entries += len(writes)
        self._clear()
        return latency

    def _activate_fallback(self) -> int:
        self.fallback_active = True
        self.stats.fallback_activations += 1
        return 0

    def _flush_per_store(self, core_id: int) -> int:
        """Replay the FIFO store log, one store at a time, in order.

        No transaction, no coalescing: each store becomes globally
        visible in program order, so TSO holds without the HTM.
        """
        latency = self.machine.latency.ssb_flush_base
        latency += self._write_entries(core_id, self._fifo)
        self.stats.flushes += 1
        self.stats.flushed_entries += len(self._fifo)
        self._clear()
        return latency

    def _write_entries(self, core_id: int,
                       entries: List[Tuple[int, int, int]]) -> int:
        """Write (addr, value, size) entries back directly, in order."""
        machine = self.machine
        per_entry = machine.latency.ssb_flush_entry
        latency = 0
        for addr, value, size in entries:
            result = machine.directory.access(core_id, addr, size, is_write=True)
            latency += result.latency + per_entry
            machine.memory.write(addr, value, size)
            self.stats.fallback_stores += 1
        return latency

    def _clear(self) -> None:
        self._bytes.clear()
        self._lines.clear()
        self._fifo.clear()

    def note_misspeculation(self) -> None:
        """Record that a speculative alias check failed (Section 5.3)."""
        self.stats.misspeculations += 1
