"""Repair profitability estimation (Sections 5.3 and 5.4).

"There is also an inherent tension in the placement of flush operations
... LASERREPAIR's static analysis estimates the dynamic cost of SSB
usage and does not attempt contention repair if the ratio of stores to
flushes is estimated to be low" — e.g. when a contending instruction is
wrapped inside a small critical section whose fence forces a flush every
iteration.

The estimator is static: it looks for cycles (loops) among the
instrumented blocks, counts the stores that would use the SSB per trip
and the fence-like instructions that force a drain per trip, and
projects a stores-per-flush ratio.
"""

from typing import Set

from repro.isa.cfg import ControlFlowGraph
from repro.isa.instructions import FENCE_OPS, Opcode

__all__ = ["estimate_stores_per_flush", "ASSUMED_TRIP_COUNT"]

#: Trip-count assumption for loops with no internal drain point: the
#: flush sits at the loop exit, so stores from every iteration coalesce.
ASSUMED_TRIP_COUNT = 64


def _loop_blocks(cfg: ControlFlowGraph, region_blocks: Set[int]) -> Set[int]:
    """Blocks of the region that sit on a cycle within the region."""
    loops: Set[int] = set()
    for block_index in region_blocks:
        # A block is on a cycle iff it can reach itself via region blocks.
        frontier = [
            s
            for s in cfg.blocks[block_index].successors
            if s in region_blocks
        ]
        seen = set()
        while frontier:
            current = frontier.pop()
            if current == block_index:
                loops.add(block_index)
                break
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(
                s for s in cfg.blocks[current].successors if s in region_blocks
            )
    return loops


def estimate_stores_per_flush(cfg: ControlFlowGraph,
                              region_blocks: Set[int]) -> float:
    """Projected dynamic stores-per-flush ratio for the region."""
    instructions = cfg.code.instructions
    loops = _loop_blocks(cfg, region_blocks)

    def count_in(blocks: Set[int], predicate) -> int:
        total = 0
        for block_index in blocks:
            for i in cfg.blocks[block_index].instruction_indices():
                if predicate(instructions[i]):
                    total += 1
        return total

    def is_store(inst):
        return inst.op in (Opcode.STORE, Opcode.ADDM)

    def is_drain(inst):
        return inst.op in FENCE_OPS

    if loops:
        stores_per_trip = count_in(loops, is_store)
        drains_per_trip = count_in(loops, is_drain)
        if stores_per_trip == 0:
            return 0.0
        if drains_per_trip == 0:
            # Flush only at the loop exit: the whole loop coalesces.
            return float(stores_per_trip * ASSUMED_TRIP_COUNT)
        return stores_per_trip / drains_per_trip

    stores = count_in(region_blocks, is_store)
    drains = count_in(region_blocks, is_drain)
    return stores / float(max(1, drains + 1))
