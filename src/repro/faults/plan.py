"""Declarative fault schedules.

A :class:`FaultPlan` names *which* faults should fire and *when*; the
:class:`~repro.faults.injector.FaultInjector` built from it makes the
actual per-occurrence decisions during a run.  Plans are fully
deterministic: every probabilistic decision draws from a private RNG
stream derived from the plan seed and the site name, so a plan replays
identically across runs and never perturbs the machine's own RNG
streams.  An empty plan is the degenerate case: no site ever fires and
the run is bit-identical to an uninstrumented one.

Fault sites (the complete set — specs naming anything else are
rejected):

``pebs.record_drop``
    A materialized PEBS record is lost before reaching the driver
    (the microcode assist still costs cycles, as on real hardware).
``pebs.record_corrupt``
    A record's PC and data address are scrambled before delivery,
    modelling the Section 3.1 garbage records at adversarial rates.
``driver.outbox_overflow``
    One per-core buffer drain finds the driver outbox full: the
    drained records are dropped and accounted.
``detector.stall``
    The detector misses one poll interval (``DetectorStall``); driver
    buffers back up until the next healthy poll resyncs.
``htm.abort``
    A hardware transaction aborts with a conflict even though it fits
    in capacity (an RTM conflict/interrupt abort storm).
``repair.error``
    Repair analysis raises ``RepairError`` at the evaluation point.
``detector.crash``
    The detector process dies, losing all in-memory pipeline state;
    the supervisor restores the last checkpoint and replays the
    journal suffix.  Consulted twice per poll (before the poll and
    after the read but before the ack), so both crash flavors occur.
``driver.crash``
    The kernel driver dies, wiping its volatile per-core buffers and
    outbox; journaled records are recovered at the next poll.
``checkpoint.corrupt``
    A checkpoint generation's payload is corrupted (one byte flipped)
    before its CRC check at restore time; recovery must detect it and
    fall back to the previous generation.
``load.burst``
    A record storm: the PMU counter misfires, materializing a batch of
    garbage-PC records at the current SAV.  Consulted once per real
    HITM event, so storm intensity tracks workload activity and the
    overload controller's SAV knob throttles it at the source.
``control.stuck``
    The overload controller freezes for one check interval: signals go
    unevaluated and the knobs stay wherever they were.
``tenant.crash``
    A tenant's monitored client process dies at session start
    (``repro.fleet``): the shard discards the session's in-flight
    state and the fleet supervisor restarts the tenant after backoff.
    Consulted once per session, so occurrence indices are session
    attempts.
``tenant.flood``
    A tenant's workload floods its shard's record plane: the session
    runs under the standard ``load.burst`` storm and the tenant's own
    admission budget must shed the excess.  Consulted once per
    session.
``shard.partition``
    The transport between one client and its shard stalls for a poll:
    the shard reads nothing, the backlog queues client-side (driver
    buffers + outbox) and is delivered late when the link heals.
    Consulted once per poll, only when a fleet transport is attached
    to the run.
"""

from typing import Dict, List, Optional, Sequence

from repro.errors import FaultInjectionError

__all__ = ["FAULT_SITES", "FaultSpec", "FaultPlan"]

#: Every injectable site, with a one-line description (kept in sync with
#: the module docstring above; tests assert the two agree).
FAULT_SITES: Dict[str, str] = {
    "pebs.record_drop": "PEBS record lost before reaching the driver",
    "pebs.record_corrupt": "PEBS record PC/address scrambled",
    "driver.outbox_overflow": "driver outbox full during a buffer drain",
    "detector.stall": "detector misses one poll interval",
    "htm.abort": "hardware transaction conflict abort",
    "repair.error": "repair analysis raises RepairError",
    "detector.crash": "detector process dies losing in-memory state",
    "driver.crash": "driver dies wiping volatile buffers and outbox",
    "checkpoint.corrupt": "checkpoint payload corrupted before restore",
    "load.burst": "PMU record storm floods the driver with garbage records",
    "control.stuck": "overload controller freezes for one check interval",
    "tenant.crash": "tenant client process dies at session start",
    "tenant.flood": "tenant workload floods its shard's record plane",
    "shard.partition": "client-to-shard transport stalls for a poll",
}


class FaultSpec:
    """One site's schedule: fire at fixed occurrences and/or a rate."""

    __slots__ = ("site", "probability", "at", "max_fires")

    def __init__(self, site: str, probability: float = 0.0,
                 at: Sequence[int] = (), max_fires: Optional[int] = None):
        if site not in FAULT_SITES:
            raise FaultInjectionError(
                "unknown fault site %r (have: %s)"
                % (site, ", ".join(sorted(FAULT_SITES)))
            )
        if not 0.0 <= probability <= 1.0:
            raise FaultInjectionError(
                "probability for %s must be in [0, 1], got %r"
                % (site, probability)
            )
        if max_fires is not None and max_fires < 0:
            raise FaultInjectionError("max_fires must be >= 0")
        for index in at:
            if index < 0:
                raise FaultInjectionError(
                    "occurrence indices must be >= 0, got %d" % index
                )
        self.site = site
        self.probability = probability
        self.at = frozenset(at)
        self.max_fires = max_fires

    def __repr__(self):
        parts = [self.site]
        if self.probability:
            parts.append("p=%g" % self.probability)
        if self.at:
            parts.append("at=%s" % sorted(self.at))
        if self.max_fires is not None:
            parts.append("max=%d" % self.max_fires)
        return "<FaultSpec %s>" % " ".join(parts)


class FaultPlan:
    """A seeded, deterministic schedule of faults for one run."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.specs: List[FaultSpec] = []

    def add(self, site: str, probability: float = 0.0,
            at: Sequence[int] = (), max_fires: Optional[int] = None) -> "FaultPlan":
        """Append a spec; returns ``self`` for chaining."""
        if any(spec.site == site for spec in self.specs):
            raise FaultInjectionError("duplicate spec for site %r" % site)
        self.specs.append(FaultSpec(site, probability, at, max_fires))
        return self

    @property
    def empty(self) -> bool:
        return not self.specs

    def spec_for(self, site: str) -> Optional[FaultSpec]:
        for spec in self.specs:
            if spec.site == site:
                return spec
        return None

    @classmethod
    def random(cls, seed: int, max_probability: float = 0.25,
               max_sites: Optional[int] = None) -> "FaultPlan":
        """A random adversarial schedule (for property-based sweeps).

        Picks a random subset of sites and a random firing probability
        per site, all derived from ``seed``.  Useful as the generator
        for "any fault schedule completes with a report" tests.
        """
        import random as _random

        rng = _random.Random(seed * 0x9E3779B97F4A7C15 + 0x5EED)
        sites = sorted(FAULT_SITES)
        count = rng.randint(1, max_sites or len(sites))
        plan = cls(seed=seed)
        for site in rng.sample(sites, count):
            plan.add(site, probability=rng.uniform(0.01, max_probability))
        return plan

    def describe(self) -> str:
        if self.empty:
            return "FaultPlan(empty)"
        return "FaultPlan(seed=%d, %s)" % (
            self.seed, ", ".join(repr(s) for s in self.specs)
        )

    def __repr__(self):
        return self.describe()
