"""Deterministic fault injection for the online detect/repair loop.

The LASER system must survive noisy PEBS records, full driver buffers,
stalled detectors, HTM abort storms and failed repair analyses while
the application keeps running (Sections 4-6 argue deployability; the
degradation machinery in ``repro.core.laser`` delivers it).  This
package provides the adversary: a seeded :class:`FaultPlan` schedules
faults at named sites, and a :class:`FaultInjector` replays the
schedule deterministically during a run.

The two invariants the rest of the repository tests against:

* an **empty plan is free** — a run under ``FaultPlan()`` is
  bit-identical to a run with no fault machinery at all;
* **no schedule is fatal** — under any plan the run completes and
  returns a (possibly degraded) report, with the degradation
  summarized in ``LaserRunResult.health``.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import FAULT_SITES, FaultPlan, FaultSpec

__all__ = ["FAULT_SITES", "FaultPlan", "FaultSpec", "FaultInjector"]
