"""The fault injector: per-occurrence decisions for a fault plan.

One injector instance is created per run (``Laser.run_built`` builds a
fresh one each time) and is threaded through the components that host
fault sites: the PMU, the kernel driver, the HTM, and the repair
trigger.  Each component asks ``injector.fires(site)`` at its site;
the injector counts the occurrence, consults the plan's spec for that
site, and answers deterministically.

Sites with no spec short-circuit to ``False`` without touching any
RNG, so an injector built from an empty plan is observationally free:
the surrounding run is bit-identical to one with no injector at all.
"""

import random
from typing import Dict, Optional

from repro.faults.plan import FAULT_SITES, FaultPlan
from repro.rng import derive_seed

__all__ = ["FaultInjector"]


class FaultInjector:
    """Deterministic per-site fire/no-fire decisions for one run."""

    def __init__(self, plan: Optional[FaultPlan] = None):
        self.plan = plan or FaultPlan()
        #: How many times each site was *reached* (asked).
        self.occurrences: Dict[str, int] = {site: 0 for site in FAULT_SITES}
        #: How many times each site actually fired.
        self.fired: Dict[str, int] = {site: 0 for site in FAULT_SITES}
        self._rngs: Dict[str, random.Random] = {}

    # ------------------------------------------------------------------
    # Decision point
    # ------------------------------------------------------------------

    def fires(self, site: str) -> bool:
        """Count one occurrence of ``site``; decide whether it faults."""
        index = self.occurrences[site]
        self.occurrences[site] = index + 1
        spec = self.plan.spec_for(site)
        if spec is None:
            return False
        if spec.max_fires is not None and self.fired[site] >= spec.max_fires:
            return False
        fire = index in spec.at
        if not fire and spec.probability > 0.0:
            fire = self.rng(site).random() < spec.probability
        if fire:
            self.fired[site] += 1
        return fire

    def rng(self, site: str) -> random.Random:
        """The site's private RNG stream (payload randomness lives here)."""
        if site not in self._rngs:
            self._rngs[site] = random.Random(
                derive_seed(self.plan.seed, "fault:" + site)
            )
        return self._rngs[site]

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def total_fired(self) -> int:
        return sum(self.fired.values())

    def __repr__(self):
        fired = {site: n for site, n in self.fired.items() if n}
        return "<FaultInjector fired=%s>" % (fired or "{}")
