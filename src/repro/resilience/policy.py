"""Shared retry/backoff policy.

Before this module the codebase had the beginnings of two backoff
implementations: the ad-hoc ``backoff_remaining``/``next_backoff``
counter pair in ``Laser.run_built`` (repair re-evaluation) and whatever
the supervisor would have grown for component restarts.  One
implementation, parameterized, serves both:

* :class:`Backoff` — the delay schedule: starts at ``initial``
  intervals, doubles per step, clamps at ``maximum``.  Optional
  *seeded jitter* widens each delay by a deterministic random amount so
  that restarting components do not thundering-herd onto the same
  interval; the jitter stream is private (a :class:`random.Random`
  owned by the policy), so enabling it never perturbs any other RNG in
  the run.
* :class:`RetryPolicy` — a :class:`Backoff` plus an attempt budget.
  ``next_delay`` returns ``None`` once the budget is exhausted: the
  caller's circuit breaker trips.  ``rearm`` resets both (used when the
  system degrades a level and gives the component a fresh budget).

Determinism: with ``jitter=0`` (the repair-loop configuration) the
schedule is the exact integer sequence the old inline counters
produced; with jitter the sequence is a pure function of the seed.
"""

import random
from typing import Optional

__all__ = ["Backoff", "RetryPolicy"]


class Backoff:
    """Exponential backoff with optional seeded jitter.

    ``step()`` returns the *current* delay (in whatever unit the caller
    counts — the LASER loop counts detector check intervals) and then
    doubles the stored delay, clamped at ``maximum``.  This matches the
    historical repair-backoff semantics exactly: the first delay is
    ``initial`` even if ``initial > maximum``.

    Jitter bounds: with ``jitter=j`` and a base (pre-jitter) delay
    ``d``, ``step()`` returns a value in the *inclusive* range
    ``[d, d + int(d * j)]`` — jitter only ever widens a delay, never
    shortens it, and the widening is at most ``int(d * j)`` (so the
    clamped schedule's jittered ceiling is ``maximum * (1 + j)``).
    The draw comes from the policy's private ``rng``, so the whole
    jittered schedule is a pure function of that RNG's seed: two
    Backoffs with equal knobs and equal-seeded RNGs produce identical
    delay sequences, step for step, across supervisor restarts
    (``tests/test_resilience.py`` pins this property).
    """

    __slots__ = ("initial", "maximum", "jitter", "_rng", "_current")

    def __init__(self, initial: int, maximum: int, jitter: float = 0.0,
                 rng: Optional[random.Random] = None):
        if initial < 1 or maximum < 1:
            raise ValueError("backoff intervals must be >= 1")
        if jitter < 0.0:
            raise ValueError("jitter must be >= 0")
        self.initial = initial
        self.maximum = maximum
        self.jitter = jitter
        self._rng = rng
        self._current = initial

    @property
    def current(self) -> int:
        """The delay the next ``step()`` will return (before jitter)."""
        return self._current

    @current.setter
    def current(self, value: int) -> None:
        """Restore point for checkpoint/restore of the schedule."""
        self._current = value

    def step(self) -> int:
        """Consume one delay from the schedule."""
        delay = self._current
        self._current = min(delay * 2, self.maximum)
        if self.jitter and self._rng is not None:
            delay += self._rng.randint(0, int(delay * self.jitter))
        return delay

    def reset(self) -> None:
        self._current = self.initial

    def __repr__(self):
        return "<Backoff %d..%d current=%d%s>" % (
            self.initial, self.maximum, self._current,
            " jitter=%g" % self.jitter if self.jitter else "",
        )


class RetryPolicy:
    """A backoff schedule with an attempt budget (circuit-breaker input)."""

    __slots__ = ("backoff", "max_attempts", "attempts")

    def __init__(self, initial: int = 1, maximum: int = 8,
                 jitter: float = 0.0, max_attempts: Optional[int] = None,
                 rng: Optional[random.Random] = None):
        if max_attempts is not None and max_attempts < 0:
            raise ValueError("max_attempts must be >= 0")
        self.backoff = Backoff(initial, maximum, jitter=jitter, rng=rng)
        self.max_attempts = max_attempts
        self.attempts = 0

    @property
    def exhausted(self) -> bool:
        return (self.max_attempts is not None
                and self.attempts >= self.max_attempts)

    def next_delay(self) -> Optional[int]:
        """One more attempt, or ``None`` when the budget is spent."""
        if self.exhausted:
            return None
        self.attempts += 1
        return self.backoff.step()

    def rearm(self, max_attempts: Optional[int] = None) -> None:
        """Fresh budget and schedule (after a degradation step)."""
        if max_attempts is not None:
            self.max_attempts = max_attempts
        self.attempts = 0
        self.backoff.reset()

    def __repr__(self):
        budget = ("%d/%s" % (self.attempts, self.max_attempts)
                  if self.max_attempts is not None
                  else "%d/inf" % self.attempts)
        return "<RetryPolicy attempts=%s %r>" % (budget, self.backoff)
