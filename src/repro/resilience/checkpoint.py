"""Schema-versioned, CRC-guarded detector checkpoints.

A checkpoint is the serialized state of the detector pipeline (line
aggregates, cache-line model, classification history), the loop-control
state (backoff, watchdog marks) and the repair-manager attachment —
everything a restarted detector needs besides the record journal.

Snapshots are canonical JSON (sorted keys, no whitespace variance)
guarded by a CRC-32 and a schema version:

* the CRC is computed over the payload bytes at save time and checked
  at load time; a mismatch means the snapshot is corrupt and the store
  falls back to the previous *generation* (``keep`` generations are
  retained, oldest pruned);
* the schema version is embedded in the payload; a snapshot written by
  an incompatible detector version is treated exactly like a corrupt
  one (fall back, count, trace) rather than being half-understood.

Corruption is injected through the ``checkpoint.corrupt`` fault site:
at load time the site may fire once per candidate generation, flipping
one payload byte (chosen by the site's private seeded RNG) before the
CRC check — so the *detection and fallback* path is what gets tested,
not a simulation shortcut around it.
"""

import json
import zlib
from typing import List, Optional

from repro.obs.trace import NULL_TRACER

__all__ = ["CHECKPOINT_SCHEMA", "Snapshot", "CheckpointStore", "encode_state"]

#: Bump on any incompatible change to the checkpoint payload layout.
CHECKPOINT_SCHEMA = 1


def encode_state(state: dict) -> bytes:
    """Canonical byte serialization (deterministic for a given state)."""
    return json.dumps(state, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


class Snapshot:
    """One retained checkpoint generation."""

    __slots__ = ("generation", "cycle", "payload", "crc", "schema")

    def __init__(self, generation: int, cycle: int, payload: bytes,
                 crc: int, schema: int):
        self.generation = generation
        self.cycle = cycle
        self.payload = payload
        self.crc = crc
        self.schema = schema

    def __repr__(self):
        return "<Snapshot gen=%d cycle=%d %dB crc=%08x>" % (
            self.generation, self.cycle, len(self.payload), self.crc,
        )


class CheckpointStore:
    """Bounded generations of CRC-guarded snapshots with fallback load."""

    def __init__(self, keep: int = 2, injector=None, tracer=None):
        if keep < 1:
            raise ValueError("must keep >= 1 checkpoint generations")
        self.keep = keep
        #: Optional :class:`repro.faults.FaultInjector`; hosts the
        #: ``checkpoint.corrupt`` site (consulted per candidate
        #: generation at load time).
        self.injector = injector
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._snapshots: List[Snapshot] = []
        self._next_generation = 1
        self.written = 0
        self.restored = 0
        self.corrupt_detected = 0

    # ------------------------------------------------------------------
    # Save
    # ------------------------------------------------------------------

    def save(self, state: dict, cycle: int) -> Snapshot:
        """Serialize, stamp schema + CRC, retain, prune old generations."""
        state = dict(state)
        state["schema"] = CHECKPOINT_SCHEMA
        payload = encode_state(state)
        snap = Snapshot(
            generation=self._next_generation,
            cycle=cycle,
            payload=payload,
            crc=zlib.crc32(payload) & 0xFFFFFFFF,
            schema=CHECKPOINT_SCHEMA,
        )
        self._next_generation += 1
        self._snapshots.append(snap)
        if len(self._snapshots) > self.keep:
            del self._snapshots[0]
        self.written += 1
        if self.tracer.enabled:
            self.tracer.emit("resil.checkpoint", cycle,
                             generation=snap.generation,
                             bytes=len(payload), crc=snap.crc)
        return snap

    # ------------------------------------------------------------------
    # Load (with corrupt-generation fallback)
    # ------------------------------------------------------------------

    def load(self, cycle: int = 0) -> Optional[dict]:
        """Newest valid generation's state, or ``None`` (cold start).

        Walks generations newest-first.  A generation whose payload
        fails the CRC, whose schema version mismatches, or whose JSON
        cannot be decoded is counted in ``corrupt_detected`` and
        skipped — recovery falls back to the one before it.
        """
        for snap in reversed(self._snapshots):
            payload = snap.payload
            if (self.injector is not None
                    and self.injector.fires("checkpoint.corrupt")):
                payload = self._flip_byte(payload)
            state = self._decode(snap, payload, cycle)
            if state is None:
                continue
            self.restored += 1
            if self.tracer.enabled:
                self.tracer.emit("resil.restore", cycle,
                                 generation=snap.generation,
                                 checkpoint_cycle=snap.cycle)
            return state
        return None

    def _flip_byte(self, payload: bytes) -> bytes:
        """Deterministically corrupt one byte (the injected fault)."""
        rng = self.injector.rng("checkpoint.corrupt")
        index = rng.randrange(len(payload)) if payload else 0
        corrupted = bytearray(payload or b"\x00")
        corrupted[index] ^= 0xFF
        return bytes(corrupted)

    def _decode(self, snap: Snapshot, payload: bytes,
                cycle: int) -> Optional[dict]:
        reason = None
        state = None
        if zlib.crc32(payload) & 0xFFFFFFFF != snap.crc:
            reason = "crc_mismatch"
        else:
            try:
                state = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                reason = "undecodable"
        if state is not None and state.get("schema") != CHECKPOINT_SCHEMA:
            reason = "schema_mismatch"
            state = None
        if reason is not None:
            self.corrupt_detected += 1
            if self.tracer.enabled:
                self.tracer.emit("resil.checkpoint_corrupt", cycle,
                                 generation=snap.generation, reason=reason)
            return None
        return state

    # ------------------------------------------------------------------
    # Compaction support
    # ------------------------------------------------------------------

    def min_retained(self, key: str, default: int = 0) -> int:
        """Smallest ``state[key]`` across retained generations.

        Used for journal compaction: entries at or below the *oldest*
        retained checkpoint's acked seqno can never be needed again,
        even if load falls back a generation.  Reads the stored bytes
        directly (no injector involvement — this is bookkeeping, not a
        restore).
        """
        values = []
        for snap in self._snapshots:
            try:
                state = json.loads(snap.payload.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                return default
            values.append(state.get(key, default))
        return min(values) if values else default

    @property
    def generations(self) -> int:
        return len(self._snapshots)

    @property
    def snapshots(self) -> List[Snapshot]:
        """Retained generations, oldest first."""
        return list(self._snapshots)

    def __repr__(self):
        return "<CheckpointStore %d/%d gens written=%d restored=%d corrupt=%d>" % (
            len(self._snapshots), self.keep, self.written, self.restored,
            self.corrupt_detected,
        )
