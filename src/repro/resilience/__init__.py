"""Crash recovery for the LASER monitoring pipeline.

The paper's deployment model (Section 6) splits LASER across a kernel
driver and a *separate userspace detector process*.  Separate processes
die separately: the detector can crash without taking the application
down, and an online monitor only earns its keep if losing the monitor
does not mean losing the run.  This package makes the pipeline
crash-recoverable:

* :mod:`repro.resilience.journal` — a write-ahead journal of
  sequence-numbered stripped PEBS records, appended at the driver
  boundary, with acked-seqno batch marks so a restarted detector
  replays exactly the unprocessed suffix;
* :mod:`repro.resilience.checkpoint` — schema-versioned, CRC-guarded
  snapshots of detector and repair-manager state, with corrupt-snapshot
  detection falling back to the previous generation;
* :mod:`repro.resilience.policy` — the one shared exponential-backoff
  implementation (seeded jitter, attempt budget) used by both the
  repair re-evaluation backoff and supervisor restarts;
* :mod:`repro.resilience.supervisor` — heartbeat tracking, restart
  scheduling and the max-restart circuit breaker that degrades the
  system (detection-only, then passthrough) instead of aborting it;
* :mod:`repro.resilience.runtime` — the per-run bundle wiring the four
  into ``Laser.run_built``.

Like tracing, resilience observes and records but never charges
simulated cycles: a run with no crash faults is bit-identical (cycles,
report, RNG consumption) to one with ``resilience_enabled=False``.
"""

from repro.resilience.checkpoint import CHECKPOINT_SCHEMA, CheckpointStore, Snapshot
from repro.resilience.journal import RecordJournal
from repro.resilience.policy import Backoff, RetryPolicy
from repro.resilience.runtime import DegradeMode, ResilienceRuntime
from repro.resilience.supervisor import (
    ComponentStatus,
    SupervisedComponent,
    Supervisor,
)

__all__ = [
    "Backoff",
    "RetryPolicy",
    "RecordJournal",
    "CheckpointStore",
    "Snapshot",
    "CHECKPOINT_SCHEMA",
    "Supervisor",
    "SupervisedComponent",
    "ComponentStatus",
    "ResilienceRuntime",
    "DegradeMode",
]
