"""The write-ahead record journal.

Every stripped PEBS record is appended here *at the driver boundary* —
the moment the driver accepts it from the PMU — and stamped with a
monotonically increasing sequence number.  The journal is the durable
side of the pipeline (the model of a WAL file the kernel driver keeps
next to its device node); the per-core buffers and the detector-facing
outbox are volatile.  Everything downstream can therefore be
reconstructed:

* a restarted *detector* restores its last checkpoint (acked seqno
  ``A``) and replays the suffix ``seq > A``;
* a restarted *driver* loses its volatile buffers and outbox, but the
  records in them were already journaled, so the same replay heals the
  wipe;
* duplicate delivery (a record both replayed from the journal and
  still sitting in the outbox) is detected by ``(seq, cycle, core)``
  against the acked watermark and dropped with accounting, which makes
  replay idempotent.

Batch marks record *acked seqnos*: after the detector processes one
poll's batch it marks the batch's highest seqno (and the poll cycle).
Replay re-processes the suffix split at those marks, in the same
per-batch ``(cycle, core, pc)`` order the live detector used, so a
recovered detector's line-model state converges to the fault-free
run's.  Entries past the last mark (forwarded but never acked) form
the *tail* and are replayed as one final batch.

The journal is bounded: beyond ``max_entries`` the oldest entries are
shed with accounting (an online monitor must not let its own WAL grow
without limit).  Compaction is the usual checkpoint contract —
``truncate_through(seq)`` drops everything at or below the oldest
*retained* checkpoint's acked seqno.
"""

from bisect import bisect_right
from typing import List, Tuple

from repro.pebs.batch import RecordBatch
from repro.pebs.events import StrippedRecord

__all__ = ["RecordJournal", "batch_sort_key"]

#: The detector's canonical intra-batch processing order (the driver's
#: ``read_records`` merge order); replayed batches are sorted the same
#: way so recovery reproduces live processing exactly.
def batch_sort_key(record: StrippedRecord) -> Tuple[int, int, int]:
    return (record.cycle, record.core, record.pc)


class RecordJournal:
    """Sequence-numbered WAL of stripped records with acked-batch marks."""

    def __init__(self, max_entries: int = 1 << 20):
        if max_entries < 1:
            raise ValueError("journal capacity must be >= 1")
        self.max_entries = max_entries
        self._entries: List[StrippedRecord] = []
        #: Acked batch boundaries: (last seqno of the batch, poll cycle),
        #: ascending in seq.
        self._marks: List[Tuple[int, int]] = []
        self._next_seq = 1
        self.appended = 0
        self.truncated = 0
        #: Entries shed by the capacity bound (oldest first).  A shed
        #: entry below the acked watermark costs nothing; above it, the
        #: record is unrecoverable and replay completeness is lost.
        self.overflow_dropped = 0

    # ------------------------------------------------------------------
    # Write side (the driver)
    # ------------------------------------------------------------------

    def append(self, record: StrippedRecord) -> int:
        """Journal one stripped record; stamps and returns its seqno."""
        record.seq = self._next_seq
        self._next_seq += 1
        self._entries.append(record)
        self.appended += 1
        if len(self._entries) > self.max_entries:
            del self._entries[0]
            self.overflow_dropped += 1
        return record.seq

    # ------------------------------------------------------------------
    # Ack side (the detector)
    # ------------------------------------------------------------------

    def mark_batch(self, seq: int, cycle: int) -> None:
        """Record that every entry up to ``seq`` was processed."""
        if self._marks and seq <= self._marks[-1][0]:
            return  # replays never move the watermark backwards
        self._marks.append((seq, cycle))

    @property
    def acked_seq(self) -> int:
        return self._marks[-1][0] if self._marks else 0

    @property
    def head_seq(self) -> int:
        """Highest seqno ever assigned (0 when nothing was journaled)."""
        return self._next_seq - 1

    # ------------------------------------------------------------------
    # Replay side
    # ------------------------------------------------------------------

    def entries_after(self, seq: int) -> List[StrippedRecord]:
        """All retained entries with seqno strictly above ``seq``."""
        lo = bisect_right([e.seq for e in self._entries], seq)
        return self._entries[lo:]

    def batches_after(self, seq: int):
        """The unprocessed suffix, split at acked-batch marks.

        Returns ``(batches, tail)``: ``batches`` is a list of
        ``(entries, poll_cycle)`` pairs, one per recorded mark above
        ``seq`` (entries in seqno order, unsorted — the caller applies
        :func:`batch_sort_key`); ``tail`` is the entries past the last
        mark, forwarded but never acked.
        """
        suffix = self.entries_after(seq)
        batches: List[Tuple[List[StrippedRecord], int]] = []
        start = 0
        for mark_seq, mark_cycle in self._marks:
            if mark_seq <= seq:
                continue
            end = start
            while end < len(suffix) and suffix[end].seq <= mark_seq:
                end += 1
            batches.append((suffix[start:end], mark_cycle))
            start = end
        return batches, suffix[start:]

    @staticmethod
    def dedup(records, acked_seq: int):
        """Split delivered records into (fresh, duplicates).

        A record whose ``(seq, cycle, core)`` falls at or below the
        acked watermark was already applied (via replay or a previous
        read) — re-delivering it must be a no-op.  A
        :class:`~repro.pebs.batch.RecordBatch` stays a batch: the split
        runs on its seq column and the fresh records flow on in
        struct-of-arrays form.
        """
        if isinstance(records, RecordBatch):
            return records.dedup_after(acked_seq)
        fresh = [r for r in records if r.seq > acked_seq]
        return fresh, len(records) - len(fresh)

    # ------------------------------------------------------------------
    # Compaction (checkpoint contract)
    # ------------------------------------------------------------------

    def truncate_through(self, seq: int) -> int:
        """Drop entries (and marks) at or below ``seq``; returns count."""
        lo = bisect_right([e.seq for e in self._entries], seq)
        dropped = lo
        if dropped:
            del self._entries[:lo]
            self.truncated += dropped
        self._marks = [(s, c) for s, c in self._marks if s > seq]
        return dropped

    def __len__(self):
        return len(self._entries)

    def __repr__(self):
        return "<RecordJournal %d entries seq<=%d acked=%d marks=%d>" % (
            len(self._entries), self.head_seq, self.acked_seq,
            len(self._marks),
        )
