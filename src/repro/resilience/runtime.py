"""Per-run resilience bundle.

:class:`ResilienceRuntime` is what ``Laser.run_built`` actually holds:
the write-ahead journal, the checkpoint store, the supervisor with one
:class:`~repro.resilience.policy.RetryPolicy` per component (seeded
jitter derived from the run seed, so restart schedules are
reproducible), and the degrade ladder the circuit breaker walks:

    NORMAL → DETECTION_ONLY → PASSTHROUGH

* **NORMAL** — full pipeline, repair allowed.
* **DETECTION_ONLY** — a component exhausted its restart budget once;
  repair is disabled (no more code patching from a flaky monitor) but
  detection continues, and the component gets one fresh budget.
* **PASSTHROUGH** — the budget was exhausted again; monitoring stands
  down entirely and the application runs unobserved.  The run is never
  aborted — the final report is recovered offline from the journal.

The runtime is also the *durable authority on repair attachment*.  A
checkpoint can be a generation stale; restoring one from before an
attach (or detach) and trusting it would double-attach or leak
instrumentation.  ``note_attached``/``note_detached`` record the truth
at the moment it changes, and restore reconciles against it.

Like tracing, the runtime observes and records but never charges
simulated cycles.
"""

import random
from typing import List, Optional

from repro.obs.trace import NULL_TRACER
from repro.resilience.checkpoint import CheckpointStore
from repro.resilience.journal import RecordJournal
from repro.resilience.policy import RetryPolicy
from repro.resilience.supervisor import Supervisor
from repro.rng import derive_seed

__all__ = ["DegradeMode", "ResilienceRuntime"]


class DegradeMode:
    """The circuit breaker's degrade ladder (json-serializable)."""

    NORMAL = "normal"
    DETECTION_ONLY = "detection_only"
    PASSTHROUGH = "passthrough"

    #: Ladder order, best to worst.
    LADDER = (NORMAL, DETECTION_ONLY, PASSTHROUGH)


class ResilienceRuntime:
    """Journal + checkpoints + supervisor + degrade state for one run."""

    COMPONENTS = ("driver", "detector")

    def __init__(self, config, seed: int, injector=None, tracer=None):
        self.config = config
        self.seed = seed
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.journal = RecordJournal()
        self.checkpoints = CheckpointStore(
            keep=2, injector=injector, tracer=self.tracer)
        self.supervisor = Supervisor(tracer=self.tracer)
        for name in self.COMPONENTS:
            self.supervisor.register(name, self._policy(name))
        self.mode = DegradeMode.NORMAL
        self.records_replayed = 0
        self.records_deduped = 0
        #: Serialized state of the plan currently attached to the
        #: machine (``RepairPlan.attached_state()``), or None.  Updated
        #: at attach/detach time — authoritative over any checkpoint.
        self.attached_state: Optional[dict] = None
        #: True once a repair has been rolled back; like the attachment
        #: state, durable across detector crashes (one rollback ends
        #: repair attempts for the run).
        self.rolled_back = False
        #: Host-retained store buffers from detached plans; their stats
        #: must survive detector crashes (the machine no longer holds
        #: them once the plan detaches).
        self.detached_buffers: List = []

    def _policy(self, name: str) -> RetryPolicy:
        config = self.config
        rng = random.Random(derive_seed(self.seed, "supervisor:" + name))
        return RetryPolicy(
            initial=config.restart_backoff_intervals,
            maximum=config.restart_backoff_max,
            jitter=config.restart_jitter,
            max_attempts=config.max_component_restarts,
            rng=rng,
        )

    # ------------------------------------------------------------------
    # Degrade ladder
    # ------------------------------------------------------------------

    @property
    def repair_allowed(self) -> bool:
        return self.mode == DegradeMode.NORMAL

    @property
    def monitoring_active(self) -> bool:
        return self.mode != DegradeMode.PASSTHROUGH

    def degrade(self, interval: int, cycle: int) -> str:
        """Step one rung down the ladder; returns the new mode."""
        ladder = DegradeMode.LADDER
        index = ladder.index(self.mode)
        if index < len(ladder) - 1:
            self.mode = ladder[index + 1]
            if self.tracer.enabled:
                self.tracer.emit("resil.degrade", cycle, mode=self.mode,
                                 interval=interval)
        return self.mode

    # ------------------------------------------------------------------
    # Repair-attachment authority
    # ------------------------------------------------------------------

    def note_attached(self, state: dict) -> None:
        self.attached_state = state

    def note_detached(self, buffers) -> None:
        self.attached_state = None
        self.rolled_back = True
        self.detached_buffers.extend(buffers)

    # ------------------------------------------------------------------
    # Replay accounting
    # ------------------------------------------------------------------

    def count_replayed(self, n: int) -> None:
        self.records_replayed += n

    def count_deduped(self, n: int) -> None:
        self.records_deduped += n

    def __repr__(self):
        return "<ResilienceRuntime mode=%s journal=%d acked=%d replayed=%d>" % (
            self.mode, len(self.journal), self.journal.acked_seq,
            self.records_replayed,
        )
