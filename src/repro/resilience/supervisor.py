"""Component lifecycle supervision.

The supervisor owns the crash/restart state machine for the two
monitoring components (``driver`` and ``detector``):

* components **beat** while healthy (every supervised loop iteration);
* a **crash** marks the component DOWN and consults its
  :class:`~repro.resilience.policy.RetryPolicy` for a restart delay
  (exponential backoff with seeded jitter, measured in detector check
  intervals);
* when the policy's attempt budget is exhausted the **circuit breaker**
  trips: the component is HALTED and the caller is told to degrade
  (detection-only, then passthrough) — supervision never aborts the
  monitored application;
* ``rearm`` hands a halted component a fresh budget after a degrade
  step (the degrade ladder in :mod:`repro.resilience.runtime`).

Every transition emits a ``resil.*`` trace event, so a recovery is a
readable story in the Perfetto export: crash → (backoff) → restart, or
crash → breaker_trip → degrade.
"""

from typing import Dict, Optional

from repro.obs.trace import NULL_TRACER
from repro.resilience.policy import RetryPolicy

__all__ = ["ComponentStatus", "SupervisedComponent", "Supervisor"]


class ComponentStatus:
    """Lifecycle states (plain constants; json-serializable)."""

    RUNNING = "running"
    DOWN = "down"        # crashed, restart pending
    HALTED = "halted"    # circuit breaker tripped


class SupervisedComponent:
    """One supervised component's lifecycle record."""

    __slots__ = ("name", "policy", "status", "last_beat", "restart_at",
                 "crashes", "restarts", "breaker_trips")

    def __init__(self, name: str, policy: RetryPolicy):
        self.name = name
        self.policy = policy
        self.status = ComponentStatus.RUNNING
        self.last_beat = 0
        #: Interval index at which the pending restart fires (DOWN only).
        self.restart_at: Optional[int] = None
        self.crashes = 0
        self.restarts = 0
        self.breaker_trips = 0

    @property
    def running(self) -> bool:
        return self.status == ComponentStatus.RUNNING

    def __repr__(self):
        return "<SupervisedComponent %s %s crashes=%d restarts=%d>" % (
            self.name, self.status, self.crashes, self.restarts,
        )


class Supervisor:
    """Heartbeats, backoff-scheduled restarts and the circuit breaker.

    Time is counted in *detector check intervals* (the granularity at
    which ``Laser.run_built`` services the monitoring pipeline); the
    caller passes the current interval index to every method.
    """

    def __init__(self, tracer=None):
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._components: Dict[str, SupervisedComponent] = {}

    def register(self, name: str, policy: RetryPolicy) -> SupervisedComponent:
        if name in self._components:
            raise ValueError("component %r already registered" % name)
        component = SupervisedComponent(name, policy)
        self._components[name] = component
        return component

    def __getitem__(self, name: str) -> SupervisedComponent:
        return self._components[name]

    def __contains__(self, name: str) -> bool:
        return name in self._components

    @property
    def components(self):
        return list(self._components.values())

    # ------------------------------------------------------------------
    # Heartbeats and crashes
    # ------------------------------------------------------------------

    def beat(self, name: str, interval: int) -> None:
        """A healthy liveness signal from a RUNNING component."""
        component = self._components[name]
        if component.running:
            component.last_beat = interval

    def crash(self, name: str, interval: int, cycle: int) -> bool:
        """Component died.  Returns True if a restart was scheduled,
        False if the circuit breaker tripped (component HALTED)."""
        component = self._components[name]
        component.crashes += 1
        if self.tracer.enabled:
            self.tracer.emit("resil.crash", cycle, component=name,
                             interval=interval, crashes=component.crashes)
        delay = component.policy.next_delay()
        if delay is None:
            component.status = ComponentStatus.HALTED
            component.restart_at = None
            component.breaker_trips += 1
            if self.tracer.enabled:
                self.tracer.emit("resil.breaker_trip", cycle, component=name,
                                 attempts=component.policy.attempts)
            return False
        component.status = ComponentStatus.DOWN
        component.restart_at = interval + delay
        if self.tracer.enabled:
            self.tracer.emit("resil.restart_scheduled", cycle, component=name,
                             delay=delay, restart_at=component.restart_at)
        return True

    # ------------------------------------------------------------------
    # Restarts
    # ------------------------------------------------------------------

    def due(self, name: str, interval: int) -> bool:
        """Is a scheduled restart ready to fire at this interval?"""
        component = self._components[name]
        return (component.status == ComponentStatus.DOWN
                and component.restart_at is not None
                and interval >= component.restart_at)

    def restart(self, name: str, interval: int, cycle: int) -> None:
        """Bring a DOWN component back to RUNNING."""
        component = self._components[name]
        component.status = ComponentStatus.RUNNING
        component.restart_at = None
        component.last_beat = interval
        component.restarts += 1
        if self.tracer.enabled:
            self.tracer.emit("resil.restart", cycle, component=name,
                             interval=interval, restarts=component.restarts)

    def rearm(self, name: str, interval: int, cycle: int,
              max_attempts: Optional[int] = None,
              immediate: bool = True) -> None:
        """Fresh budget for a HALTED component (after a degrade step).

        With ``immediate`` the component comes back RUNNING right away —
        the degrade already paid the price; making it serve another
        backoff delay would only lose more records.  A stateful
        component (the detector, whose restart runs the restore path)
        instead passes ``immediate=False``: it is marked DOWN with a
        restart due next interval, so the revival flows through the
        caller's normal ``due``/``restart`` sequence.
        """
        component = self._components[name]
        component.policy.rearm(max_attempts)
        if immediate:
            component.status = ComponentStatus.RUNNING
            component.restart_at = None
            component.last_beat = interval
            component.restarts += 1
        else:
            component.status = ComponentStatus.DOWN
            component.restart_at = interval + 1
        if self.tracer.enabled:
            self.tracer.emit("resil.rearm", cycle, component=name,
                             interval=interval, immediate=immediate)

    def __repr__(self):
        return "<Supervisor %s>" % (
            ", ".join("%s=%s" % (c.name, c.status)
                      for c in self._components.values()) or "empty",
        )
