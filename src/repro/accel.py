"""Acceleration engine selection (the ``[accel]`` extra).

Two independent engines make the hot paths fast while numpy stays
optional:

* the **record/detection engine** (``"numpy"`` or ``"python"``) decides
  whether the PEBS record plane and the detection pipeline flow
  struct-of-arrays batches through vectorized kernels or scalar
  per-record loops;
* the **simulator engine** (``"trace"`` or ``"interp"``) decides whether
  the machine executes precompiled basic-block traces or the legacy
  per-instruction interpreter.

Both selections are *observationally invisible*: every golden pin
(cycles, reports, trace/window SHA-256, health dicts) is byte-identical
under any engine combination — the engines change host wall-clock only.
``resolve_engine("auto")`` picks numpy when it imports, pure Python
otherwise; the ``LASER_ENGINE`` / ``LASER_SIM_ENGINE`` environment
variables override the ``auto`` choice (the CI engines matrix uses them
to force each combination without touching configs).
"""

import os
from typing import Optional

__all__ = [
    "get_numpy",
    "numpy_available",
    "resolve_engine",
    "resolve_sim_engine",
    "ENGINES",
    "SIM_ENGINES",
]

#: Valid record/detection engine names (``auto`` resolves to one of the
#: concrete two).
ENGINES = ("auto", "numpy", "python")

#: Valid simulator engine names.
SIM_ENGINES = ("auto", "trace", "interp")

_NUMPY_CACHE: Optional[tuple] = None


def get_numpy():
    """The numpy module, or ``None`` when it is not installed.

    Cached after the first probe so engine checks on hot paths cost a
    tuple unpack, not an import-machinery round trip.
    """
    global _NUMPY_CACHE
    if _NUMPY_CACHE is None:
        try:
            import numpy
        except ImportError:  # pragma: no cover - depends on install
            numpy = None
        _NUMPY_CACHE = (numpy,)
    return _NUMPY_CACHE[0]


def numpy_available() -> bool:
    return get_numpy() is not None


def resolve_engine(requested: str = "auto") -> str:
    """Resolve a record/detection engine name to ``numpy``/``python``.

    Explicit requests win.  ``auto`` honors the ``LASER_ENGINE``
    environment variable when set, then falls back to numpy-if-
    importable.  Requesting ``numpy`` without numpy installed is an
    error — a silent fallback would misreport which engine ran.
    """
    if requested not in ENGINES:
        raise ValueError(
            "unknown engine %r (expected one of %s)" % (requested, ENGINES)
        )
    if requested == "auto":
        env = os.environ.get("LASER_ENGINE", "").strip().lower()
        if env:
            if env not in ("numpy", "python"):
                raise ValueError("LASER_ENGINE must be 'numpy' or 'python'")
            requested = env
        else:
            requested = "numpy" if numpy_available() else "python"
    if requested == "numpy" and not numpy_available():
        raise RuntimeError(
            "engine 'numpy' requested but numpy is not installed "
            "(pip install repro[accel], or use engine='auto')"
        )
    return requested


def resolve_sim_engine(requested: str = "auto") -> str:
    """Resolve a simulator engine name to ``trace``/``interp``.

    ``auto`` honors ``LASER_SIM_ENGINE`` when set and otherwise picks
    the precompiled-trace engine (pure Python, no dependency — it is the
    default because it is bit-identical and strictly faster).
    """
    if requested not in SIM_ENGINES:
        raise ValueError(
            "unknown sim engine %r (expected one of %s)"
            % (requested, SIM_ENGINES)
        )
    if requested == "auto":
        env = os.environ.get("LASER_SIM_ENGINE", "").strip().lower()
        if env:
            if env not in ("trace", "interp"):
                raise ValueError(
                    "LASER_SIM_ENGINE must be 'trace' or 'interp'")
            requested = env
        else:
            requested = "trace"
    return requested
