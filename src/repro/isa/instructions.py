"""Instruction definitions for the mini-ISA.

Instructions are small mutable objects (``__slots__`` for speed: the
simulator interprets millions of them per experiment).  Operands are
either registers or immediates, wrapped in :class:`Operand` so a single
``value_of`` call resolves them against a register file.

The opcode set mirrors the subset of x86 that matters to LASER:

* data movement and ALU ops,
* byte-granular ``LOAD``/``STORE`` (1, 2, 4 or 8 bytes),
* atomic read-modify-writes (``CMPXCHG``, ``XADD``) that double as
  fences under TSO,
* ``FENCE`` (mfence),
* conditional branches and ``JMP``,
* ``PAUSE`` (spin-wait hint) and ``HALT``,
* the SSB pseudo-ops that LASERREPAIR's rewriter injects:
  ``SSB_LOAD``/``SSB_STORE``/``SSB_FLUSH``/``ALIAS_CHECK``.
"""

import enum
from typing import Optional

__all__ = ["Opcode", "Operand", "Instruction", "reg", "imm", "NUM_REGISTERS"]

#: Number of general-purpose registers per core (x86-64 has 16).
NUM_REGISTERS = 16

#: Mask applied after arithmetic so registers behave as 64-bit values.
WORD_MASK = 0xFFFFFFFFFFFFFFFF


class Opcode(enum.Enum):
    """All operations the interpreter understands."""

    MOV = "mov"
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    LOAD = "load"
    STORE = "store"
    ADDM = "addm"
    CMPXCHG = "cmpxchg"
    XADD = "xadd"
    FENCE = "fence"
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    JMP = "jmp"
    PAUSE = "pause"
    NOP = "nop"
    HALT = "halt"
    # --- pseudo-ops injected by LASERREPAIR's rewriter ---
    SSB_LOAD = "ssb_load"
    SSB_STORE = "ssb_store"
    SSB_ADDM = "ssb_addm"
    SSB_FLUSH = "ssb_flush"
    ALIAS_CHECK = "alias_check"


#: Opcodes that read program memory.
LOAD_OPS = frozenset(
    {Opcode.LOAD, Opcode.SSB_LOAD, Opcode.ADDM, Opcode.SSB_ADDM,
     Opcode.CMPXCHG, Opcode.XADD}
)

#: Opcodes that write program memory.
STORE_OPS = frozenset(
    {Opcode.STORE, Opcode.SSB_STORE, Opcode.ADDM, Opcode.SSB_ADDM,
     Opcode.CMPXCHG, Opcode.XADD}
)

#: Opcodes that are both loads and stores (x86 RMW; Section 4.3 notes
#: these are a potential source of detector inaccuracy).  ADDM is the
#: un-locked memory-destination add (`addq $1, (%reg)`), the idiom
#: counter increments compile to.
RMW_OPS = frozenset({Opcode.ADDM, Opcode.CMPXCHG, Opcode.XADD})

#: Opcodes that order memory like an mfence under TSO.
FENCE_OPS = frozenset({Opcode.FENCE, Opcode.CMPXCHG, Opcode.XADD})

#: Opcodes that may transfer control.
BRANCH_OPS = frozenset({Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.JMP})

#: Conditional subset of BRANCH_OPS.
COND_BRANCH_OPS = frozenset({Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE})


class Operand:
    """A register or immediate operand."""

    __slots__ = ("is_reg", "value")

    def __init__(self, is_reg: bool, value: int):
        self.is_reg = is_reg
        self.value = value

    def value_of(self, registers) -> int:
        """Resolve this operand against a register file (a list of ints)."""
        if self.is_reg:
            return registers[self.value]
        return self.value

    def __eq__(self, other):
        return (
            isinstance(other, Operand)
            and self.is_reg == other.is_reg
            and self.value == other.value
        )

    def __hash__(self):
        return hash((self.is_reg, self.value))

    def __repr__(self):
        if self.is_reg:
            return "r%d" % self.value
        return "$%d" % self.value


def reg(index: int) -> Operand:
    """Build a register operand ``r<index>``."""
    if not 0 <= index < NUM_REGISTERS:
        raise ValueError("register index out of range: %d" % index)
    return Operand(True, index)


def imm(value: int) -> Operand:
    """Build an immediate operand."""
    return Operand(False, int(value))


class Instruction:
    """One decoded instruction.

    Field usage by opcode family:

    * ALU / MOV: ``rd``, ``a``, ``b`` (``b`` unused by MOV).
    * LOAD: ``rd`` destination, address = ``a`` + ``offset``, ``size``.
    * STORE: value = ``b``, address = ``a`` + ``offset``, ``size``.
    * CMPXCHG: ``rd`` gets the old value; compares against ``b``, writes
      ``c`` on success; address = ``a`` + ``offset``.
    * XADD: ``rd`` gets the old value; adds ``b``; address = ``a`` +
      ``offset``.
    * Branches: compare ``a`` with ``b``, jump to ``target`` (an
      instruction index after assembly; a label string before).
    * ALIAS_CHECK: compares address ``a`` + ``offset`` against the store
      address set captured by the repair runtime.

    ``pc`` is the virtual address of the instruction in the simulated
    binary; ``loc`` is its debug-info source location.
    """

    __slots__ = (
        "op",
        "rd",
        "a",
        "b",
        "c",
        "offset",
        "size",
        "target",
        "pc",
        "loc",
        "region",
    )

    def __init__(
        self,
        op: Opcode,
        rd: Optional[int] = None,
        a: Optional[Operand] = None,
        b: Optional[Operand] = None,
        c: Optional[Operand] = None,
        offset: int = 0,
        size: int = 8,
        target=None,
        loc=None,
        region: str = "app",
    ):
        self.op = op
        self.rd = rd
        self.a = a
        self.b = b
        self.c = c
        self.offset = offset
        self.size = size
        self.target = target
        self.pc = -1
        self.loc = loc
        self.region = region

    @property
    def is_load(self) -> bool:
        return self.op in LOAD_OPS

    @property
    def is_store(self) -> bool:
        return self.op in STORE_OPS

    @property
    def is_memory_op(self) -> bool:
        return self.op in LOAD_OPS or self.op in STORE_OPS

    @property
    def is_fence(self) -> bool:
        return self.op in FENCE_OPS

    @property
    def is_branch(self) -> bool:
        return self.op in BRANCH_OPS

    def copy(self) -> "Instruction":
        """Return a field-for-field copy (used by the rewriter)."""
        inst = Instruction(
            self.op,
            rd=self.rd,
            a=self.a,
            b=self.b,
            c=self.c,
            offset=self.offset,
            size=self.size,
            target=self.target,
            loc=self.loc,
            region=self.region,
        )
        inst.pc = self.pc
        return inst

    def __repr__(self):
        parts = [self.op.value]
        if self.rd is not None:
            parts.append("r%d" % self.rd)
        for operand in (self.a, self.b, self.c):
            if operand is not None:
                parts.append(repr(operand))
        if self.is_memory_op:
            parts.append("off=%d" % self.offset)
            parts.append("sz=%d" % self.size)
        if self.target is not None:
            parts.append("-> %s" % (self.target,))
        return "<%s>" % " ".join(parts)
