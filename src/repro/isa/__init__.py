"""Mini-ISA substrate: instructions, programs, assembler and CFG analysis.

The reproduction interprets workloads written in a small x86-flavoured
instruction set.  The ISA is deliberately minimal but keeps the features
LASER's analyses depend on: byte-granular loads and stores of 1-8 bytes,
atomic read-modify-writes, fences, and branches (so control-flow analysis
and flush placement are non-trivial).
"""

from repro.isa.instructions import (
    Instruction,
    Opcode,
    Operand,
    imm,
    reg,
    NUM_REGISTERS,
)
from repro.isa.program import Program, SourceLocation, ThreadCode
from repro.isa.assembler import Assembler
from repro.isa.cfg import BasicBlock, ControlFlowGraph, build_cfg

__all__ = [
    "Instruction",
    "Opcode",
    "Operand",
    "imm",
    "reg",
    "NUM_REGISTERS",
    "Program",
    "SourceLocation",
    "ThreadCode",
    "Assembler",
    "BasicBlock",
    "ControlFlowGraph",
    "build_cfg",
]
