"""A small assembler DSL for building thread code.

Workloads construct per-thread instruction streams through this builder.
Operands may be written as ``"r3"`` strings, :class:`Operand` objects, or
plain Python ints (immediates).  Branch targets are labels, resolved to
instruction indices by :meth:`Assembler.build`.

Example::

    asm = Assembler("worker")
    asm.at("lreg.c", 88)
    asm.mov("r1", args_base)
    asm.label("loop")
    asm.load("r2", "r1", offset=24, size=8)   # load SX
    asm.add("r2", "r2", 1)
    asm.store("r1", "r2", offset=24, size=8)  # store SX
    asm.sub("r0", "r0", 1)
    asm.bne("r0", 0, "loop")
    asm.halt()
    code = asm.build()
"""

from typing import Dict, List, Optional, Union

from repro.errors import AssemblyError
from repro.isa.instructions import Instruction, Opcode, Operand, imm, reg
from repro.isa.program import SourceLocation, ThreadCode

__all__ = ["Assembler"]

OperandLike = Union[Operand, int, str]


def _as_operand(value: OperandLike) -> Operand:
    """Coerce ``value`` to an Operand (str "rN" -> register, int -> imm)."""
    if isinstance(value, Operand):
        return value
    if isinstance(value, str):
        if value.startswith("r") and value[1:].isdigit():
            return reg(int(value[1:]))
        raise AssemblyError("bad operand string: %r" % value)
    if isinstance(value, int):
        return imm(value)
    raise AssemblyError("bad operand: %r" % (value,))


def _as_reg_index(value: Union[int, str, Operand]) -> int:
    """Coerce ``value`` to a destination register index."""
    if isinstance(value, Operand):
        if not value.is_reg:
            raise AssemblyError("destination must be a register: %r" % value)
        return value.value
    if isinstance(value, str) and value.startswith("r") and value[1:].isdigit():
        return int(value[1:])
    if isinstance(value, int):
        return value
    raise AssemblyError("bad destination register: %r" % (value,))


class Assembler:
    """Incrementally builds a :class:`ThreadCode`."""

    def __init__(self, name: str = "thread"):
        self.name = name
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._loc: Optional[SourceLocation] = None
        self._region = "app"

    # ------------------------------------------------------------------
    # Context: source locations and code regions
    # ------------------------------------------------------------------

    def at(self, file: str, line: int) -> "Assembler":
        """Set the source location attached to subsequent instructions."""
        self._loc = SourceLocation(file, line)
        return self

    def in_region(self, region: str) -> "Assembler":
        """Mark subsequent instructions as app/lib code (for the memory map)."""
        if region not in ("app", "lib"):
            raise AssemblyError("unknown code region: %r" % region)
        self._region = region
        return self

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------

    def _emit(self, inst: Instruction) -> Instruction:
        inst.loc = self._loc
        inst.region = self._region
        self._instructions.append(inst)
        return inst

    def label(self, name: str) -> "Assembler":
        """Define a branch target at the next instruction."""
        if name in self._labels:
            raise AssemblyError("duplicate label: %r" % name)
        self._labels[name] = len(self._instructions)
        return self

    # --- ALU ---

    def mov(self, rd, src) -> Instruction:
        return self._emit(
            Instruction(Opcode.MOV, rd=_as_reg_index(rd), a=_as_operand(src))
        )

    def _alu(self, op: Opcode, rd, a, b) -> Instruction:
        return self._emit(
            Instruction(op, rd=_as_reg_index(rd), a=_as_operand(a), b=_as_operand(b))
        )

    def add(self, rd, a, b) -> Instruction:
        return self._alu(Opcode.ADD, rd, a, b)

    def sub(self, rd, a, b) -> Instruction:
        return self._alu(Opcode.SUB, rd, a, b)

    def mul(self, rd, a, b) -> Instruction:
        return self._alu(Opcode.MUL, rd, a, b)

    def div(self, rd, a, b) -> Instruction:
        return self._alu(Opcode.DIV, rd, a, b)

    def and_(self, rd, a, b) -> Instruction:
        return self._alu(Opcode.AND, rd, a, b)

    def or_(self, rd, a, b) -> Instruction:
        return self._alu(Opcode.OR, rd, a, b)

    def xor(self, rd, a, b) -> Instruction:
        return self._alu(Opcode.XOR, rd, a, b)

    def shl(self, rd, a, b) -> Instruction:
        return self._alu(Opcode.SHL, rd, a, b)

    def shr(self, rd, a, b) -> Instruction:
        return self._alu(Opcode.SHR, rd, a, b)

    # --- memory ---

    def load(self, rd, addr, offset: int = 0, size: int = 8) -> Instruction:
        return self._emit(
            Instruction(
                Opcode.LOAD,
                rd=_as_reg_index(rd),
                a=_as_operand(addr),
                offset=offset,
                size=size,
            )
        )

    def store(self, addr, src, offset: int = 0, size: int = 8) -> Instruction:
        return self._emit(
            Instruction(
                Opcode.STORE,
                a=_as_operand(addr),
                b=_as_operand(src),
                offset=offset,
                size=size,
            )
        )

    def addm(self, addr, src, offset: int = 0, size: int = 8) -> Instruction:
        """Memory-destination add (`add src, (addr)`): non-atomic RMW."""
        return self._emit(
            Instruction(
                Opcode.ADDM,
                a=_as_operand(addr),
                b=_as_operand(src),
                offset=offset,
                size=size,
            )
        )

    def cmpxchg(self, rd, addr, expected, desired, offset: int = 0, size: int = 8) -> Instruction:
        """Atomic compare-and-swap; ``rd`` receives the old value."""
        return self._emit(
            Instruction(
                Opcode.CMPXCHG,
                rd=_as_reg_index(rd),
                a=_as_operand(addr),
                b=_as_operand(expected),
                c=_as_operand(desired),
                offset=offset,
                size=size,
            )
        )

    def xadd(self, rd, addr, src, offset: int = 0, size: int = 8) -> Instruction:
        """Atomic fetch-and-add; ``rd`` receives the old value."""
        return self._emit(
            Instruction(
                Opcode.XADD,
                rd=_as_reg_index(rd),
                a=_as_operand(addr),
                b=_as_operand(src),
                offset=offset,
                size=size,
            )
        )

    def fence(self) -> Instruction:
        return self._emit(Instruction(Opcode.FENCE))

    # --- control ---

    def _branch(self, op: Opcode, a, b, target: str) -> Instruction:
        return self._emit(
            Instruction(op, a=_as_operand(a), b=_as_operand(b), target=target)
        )

    def beq(self, a, b, target: str) -> Instruction:
        return self._branch(Opcode.BEQ, a, b, target)

    def bne(self, a, b, target: str) -> Instruction:
        return self._branch(Opcode.BNE, a, b, target)

    def blt(self, a, b, target: str) -> Instruction:
        return self._branch(Opcode.BLT, a, b, target)

    def bge(self, a, b, target: str) -> Instruction:
        return self._branch(Opcode.BGE, a, b, target)

    def jmp(self, target: str) -> Instruction:
        return self._emit(Instruction(Opcode.JMP, target=target))

    # --- misc ---

    def pause(self) -> Instruction:
        return self._emit(Instruction(Opcode.PAUSE))

    def nop(self) -> Instruction:
        return self._emit(Instruction(Opcode.NOP))

    def halt(self) -> Instruction:
        return self._emit(Instruction(Opcode.HALT))

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------

    def build(self) -> ThreadCode:
        """Resolve labels and return the finished :class:`ThreadCode`."""
        if not self._instructions:
            raise AssemblyError("empty thread code: %s" % self.name)
        for inst in self._instructions:
            if inst.is_branch:
                if inst.target not in self._labels:
                    raise AssemblyError(
                        "undefined label %r in %s" % (inst.target, self.name)
                    )
                inst.target = self._labels[inst.target]
        return ThreadCode(self.name, self._instructions, dict(self._labels))
