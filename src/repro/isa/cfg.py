"""Control-flow graph construction and dominance analysis.

LASERREPAIR's static analysis (Section 5.3) needs basic blocks, forward
reachability and post-dominators to decide which memory operations to
redirect through the SSB and where to place flush operations.  This
module provides those facilities over a :class:`ThreadCode`.
"""

from typing import Dict, FrozenSet, List, Optional, Set

from repro.isa.instructions import Opcode
from repro.isa.program import ThreadCode

__all__ = ["BasicBlock", "ControlFlowGraph", "build_cfg"]

#: Virtual exit node id used for post-dominance.
EXIT = -1


class BasicBlock:
    """A maximal straight-line instruction range ``[start, end)``."""

    __slots__ = ("index", "start", "end", "successors", "predecessors")

    def __init__(self, index: int, start: int, end: int):
        self.index = index
        self.start = start
        self.end = end
        self.successors: List[int] = []
        self.predecessors: List[int] = []

    def instruction_indices(self):
        return range(self.start, self.end)

    def __repr__(self):
        return "<BB%d [%d,%d) -> %s>" % (
            self.index,
            self.start,
            self.end,
            self.successors,
        )


class ControlFlowGraph:
    """CFG of one thread's code, with dominance queries."""

    def __init__(self, code: ThreadCode, blocks: List[BasicBlock]):
        self.code = code
        self.blocks = blocks
        self._block_of_inst: Dict[int, int] = {}
        for block in blocks:
            for i in block.instruction_indices():
                self._block_of_inst[i] = block.index
        self._postdom: Optional[Dict[int, FrozenSet[int]]] = None
        self._dom: Optional[Dict[int, FrozenSet[int]]] = None

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    def block_of_instruction(self, inst_index: int) -> BasicBlock:
        return self.blocks[self._block_of_inst[inst_index]]

    def exit_blocks(self) -> List[BasicBlock]:
        """Blocks with no successors (they end in HALT or fall off)."""
        return [b for b in self.blocks if not b.successors]

    def reachable_from(self, block_indices: Set[int]) -> Set[int]:
        """Forward-reachable block set, including the seeds."""
        seen = set(block_indices)
        work = list(block_indices)
        while work:
            current = work.pop()
            for succ in self.blocks[current].successors:
                if succ not in seen:
                    seen.add(succ)
                    work.append(succ)
        return seen

    # ------------------------------------------------------------------
    # Dominance
    # ------------------------------------------------------------------

    def _solve_dominance(self, forward: bool) -> Dict[int, FrozenSet[int]]:
        """Iterative dominator solve.

        ``forward=True`` computes dominators from the entry block;
        ``forward=False`` computes post-dominators toward a virtual exit
        node that succeeds every exit block.
        """
        node_ids = [b.index for b in self.blocks]
        if forward:
            roots = {0}
            preds = {b.index: list(b.predecessors) for b in self.blocks}
        else:
            node_ids = node_ids + [EXIT]
            roots = {EXIT}
            # Reverse edges; exit blocks flow from the virtual exit.
            preds = {b.index: list(b.successors) for b in self.blocks}
            preds[EXIT] = []
            for block in self.exit_blocks():
                preds[block.index].append(EXIT)

        universe = frozenset(node_ids)
        dom: Dict[int, FrozenSet[int]] = {}
        for node in node_ids:
            dom[node] = frozenset({node}) if node in roots else universe

        changed = True
        while changed:
            changed = False
            for node in node_ids:
                if node in roots:
                    continue
                pred_sets = [dom[p] for p in preds[node]]
                if pred_sets:
                    meet = frozenset.intersection(*pred_sets)
                else:
                    # Unreachable in this direction: dominated by everything.
                    meet = universe
                new = meet | {node}
                if new != dom[node]:
                    dom[node] = new
                    changed = True
        return dom

    def dominators(self, block_index: int) -> FrozenSet[int]:
        """The set of blocks dominating ``block_index`` (inclusive)."""
        if self._dom is None:
            self._dom = self._solve_dominance(forward=True)
        return self._dom[block_index]

    def post_dominators(self, block_index: int) -> FrozenSet[int]:
        """Blocks post-dominating ``block_index`` (inclusive, may contain EXIT)."""
        if self._postdom is None:
            self._postdom = self._solve_dominance(forward=False)
        return self._postdom[block_index]

    def common_post_dominators(self, block_indices: Set[int]) -> FrozenSet[int]:
        """Blocks that post-dominate every block in ``block_indices``."""
        sets = [self.post_dominators(i) for i in block_indices]
        if not sets:
            return frozenset()
        return frozenset.intersection(*sets)


def build_cfg(code: ThreadCode) -> ControlFlowGraph:
    """Partition ``code`` into basic blocks and wire the edges."""
    instructions = code.instructions
    n = len(instructions)

    leaders = {0}
    for i, inst in enumerate(instructions):
        if inst.is_branch:
            leaders.add(inst.target)
            if i + 1 < n:
                leaders.add(i + 1)
        elif inst.op is Opcode.HALT and i + 1 < n:
            leaders.add(i + 1)

    starts = sorted(leaders)
    blocks: List[BasicBlock] = []
    for bi, start in enumerate(starts):
        end = starts[bi + 1] if bi + 1 < len(starts) else n
        blocks.append(BasicBlock(bi, start, end))

    start_to_block = {b.start: b.index for b in blocks}
    for block in blocks:
        last = instructions[block.end - 1]
        if last.op is Opcode.HALT:
            continue
        if last.is_branch:
            block.successors.append(start_to_block[last.target])
            if last.op is not Opcode.JMP and block.end < n:
                block.successors.append(start_to_block[block.end])
        elif block.end < n:
            block.successors.append(start_to_block[block.end])
        # De-dup (a conditional branch to the fallthrough).
        block.successors = sorted(set(block.successors))

    for block in blocks:
        for succ in block.successors:
            blocks[succ].predecessors.append(block.index)

    return ControlFlowGraph(code, blocks)
