"""Programs: per-thread instruction lists plus debug information.

A :class:`Program` is the unit the machine executes and LASERREPAIR
rewrites.  It owns one :class:`ThreadCode` per simulated thread; after
assembly each instruction has a virtual PC inside the simulated binary's
code region, and a :class:`SourceLocation` acting as debug info (the
analog of DWARF line tables that LASERDETECT uses to aggregate HITM
records per source line, Section 4.2).
"""

from typing import Dict, Iterable, List, Optional

from repro.errors import AssemblyError
from repro.isa.instructions import Instruction

__all__ = ["SourceLocation", "ThreadCode", "Program", "PC_STRIDE"]

#: Virtual-address stride between consecutive instructions.  Using 4
#: rather than 1 lets the imprecision model produce "adjacent PC" errors
#: that are distinct addresses, as on real hardware.
PC_STRIDE = 4


class SourceLocation:
    """A (file, line) pair, the granularity of LASERDETECT's reports."""

    __slots__ = ("file", "line")

    def __init__(self, file: str, line: int):
        self.file = file
        self.line = line

    def __eq__(self, other):
        return (
            isinstance(other, SourceLocation)
            and self.file == other.file
            and self.line == other.line
        )

    def __lt__(self, other):
        return (self.file, self.line) < (other.file, other.line)

    def __hash__(self):
        return hash((self.file, self.line))

    def __repr__(self):
        return "%s:%d" % (self.file, self.line)


class ThreadCode:
    """The instruction stream of one thread."""

    def __init__(self, name: str, instructions: List[Instruction], labels: Dict[str, int]):
        self.name = name
        self.instructions = instructions
        self.labels = labels

    def __len__(self):
        return len(self.instructions)


class Program:
    """A whole multithreaded program.

    Attributes:
        name: program name (the benchmark name).
        threads: one :class:`ThreadCode` per thread, in thread-id order.
        code_base: virtual base address of the app code region.
    """

    def __init__(self, name: str, threads: List[ThreadCode], code_base: int = 0x400000):
        self.name = name
        self.threads = threads
        self.code_base = code_base
        self._pc_map: Dict[int, Instruction] = {}
        self._assign_pcs()

    # ------------------------------------------------------------------
    # PC assignment / lookup
    # ------------------------------------------------------------------

    def _assign_pcs(self) -> None:
        pc = self.code_base
        self._pc_map.clear()
        for thread in self.threads:
            for inst in thread.instructions:
                inst.pc = pc
                self._pc_map[pc] = inst
                pc += PC_STRIDE
        self._code_end = pc

    @property
    def code_end(self) -> int:
        """One past the last instruction's virtual address."""
        return self._code_end

    def instruction_at(self, pc: int) -> Optional[Instruction]:
        """Return the instruction at virtual address ``pc``, or None."""
        return self._pc_map.get(pc)

    def all_instructions(self) -> Iterable[Instruction]:
        for thread in self.threads:
            for inst in thread.instructions:
                yield inst

    def all_pcs(self) -> List[int]:
        return sorted(self._pc_map)

    # ------------------------------------------------------------------
    # Debug info
    # ------------------------------------------------------------------

    def location_of_pc(self, pc: int) -> Optional[SourceLocation]:
        """Map a PC to its source location (debug-info lookup)."""
        inst = self._pc_map.get(pc)
        if inst is None:
            return None
        return inst.loc

    def pcs_for_location(self, loc: SourceLocation) -> List[int]:
        """All PCs whose debug info maps to ``loc``."""
        return [pc for pc, inst in self._pc_map.items() if inst.loc == loc]

    def locations(self) -> List[SourceLocation]:
        """Every distinct source location in the program."""
        seen = set()
        for inst in self.all_instructions():
            if inst.loc is not None:
                seen.add(inst.loc)
        return sorted(seen)

    # ------------------------------------------------------------------
    # Rewriting support
    # ------------------------------------------------------------------

    def with_thread_code(self, thread_index: int, code: ThreadCode) -> "Program":
        """Return a new Program with one thread's code replaced.

        Used by LASERREPAIR: the rewritten program gets fresh PCs, like a
        Pin code cache.
        """
        if not 0 <= thread_index < len(self.threads):
            raise AssemblyError("no thread %d in %s" % (thread_index, self.name))
        threads = list(self.threads)
        threads[thread_index] = code
        return Program(self.name, threads, code_base=self.code_base)

    def replace_threads(self, new_threads: List[ThreadCode]) -> "Program":
        """Return a new Program with all thread code replaced."""
        if len(new_threads) != len(self.threads):
            raise AssemblyError("thread count mismatch in %s" % self.name)
        return Program(self.name, new_threads, code_base=self.code_base)

    @property
    def num_threads(self) -> int:
        return len(self.threads)

    def __repr__(self):
        return "<Program %s threads=%d insns=%d>" % (
            self.name,
            len(self.threads),
            sum(len(t) for t in self.threads),
        )
