"""Fleet-level health: per-tenant states and the contention table.

:class:`FleetHealth` is the fleet analog of
:class:`~repro.core.health.RunHealth`: it aggregates every tenant's
run-health dict, classifies each tenant into a
:class:`TenantState`, and builds the *cross-tenant contention table* —
which (source line, TS/FS verdict) diagnoses recur across tenants.  A
line that contends the same way in several tenants' reports is a
shared-library or allocator-layout problem worth one fleet-wide fix; a
line seen by one tenant is that tenant's bug.  That roll-up is the
fleet operator's first screen, which is why :meth:`render` leads with
it.

Isolation makes the aggregation honest: every counter summed here was
tallied inside exactly one tenant's shard, so a column moving for one
tenant cannot move any other tenant's row (the blast-radius invariant
``tests/test_fleet.py`` asserts).
"""

from typing import Dict, List, Sequence, Tuple

__all__ = ["TenantState", "FleetHealth"]


class TenantState:
    """Terminal state of one tenant's shard (string constants)."""

    #: Completed with a pristine RunHealth and no session restarts.
    NOMINAL = "NOMINAL"
    #: Completed, but something was lost, restarted, shed or degraded
    #: along the way (the shard's own ladder handled it).
    DEGRADED = "DEGRADED"
    #: Session-restart budget exhausted: the shard stopped without a
    #: report.  The fleet keeps running.
    EVICTED = "EVICTED"

    ALL = (NOMINAL, DEGRADED, EVICTED)


class FleetHealth:
    """Roll-up over one fleet run's :class:`TenantOutcome` list."""

    def __init__(self, outcomes: Sequence):
        #: Outcomes in tenant (plan) order — the order is part of the
        #: fleet's determinism contract.
        self.outcomes = list(outcomes)

    # ------------------------------------------------------------------
    # Per-tenant views
    # ------------------------------------------------------------------

    def tenant(self, name: str):
        for outcome in self.outcomes:
            if outcome.tenant == name:
                return outcome
        raise KeyError("no outcome for tenant %r" % name)

    def states(self) -> Dict[str, str]:
        return {outcome.tenant: outcome.state for outcome in self.outcomes}

    def by_state(self, state: str) -> List:
        return [o for o in self.outcomes if o.state == state]

    @property
    def evicted(self) -> List[str]:
        return [o.tenant for o in self.outcomes
                if o.state == TenantState.EVICTED]

    # ------------------------------------------------------------------
    # Fleet-wide tallies
    # ------------------------------------------------------------------

    def total(self, field: str) -> int:
        """Sum one RunHealth counter over every reporting tenant."""
        return sum(
            outcome.health.get(field, 0)
            for outcome in self.outcomes
            if outcome.health is not None
        )

    @property
    def total_restarts(self) -> int:
        return sum(outcome.restarts for outcome in self.outcomes)

    @property
    def total_shed(self) -> int:
        return sum(outcome.records_shed for outcome in self.outcomes)

    @property
    def degraded(self) -> bool:
        """True if any tenant left NOMINAL."""
        return any(
            outcome.state != TenantState.NOMINAL
            for outcome in self.outcomes
        )

    # ------------------------------------------------------------------
    # Cross-tenant contention
    # ------------------------------------------------------------------

    def contention_table(self) -> Dict[Tuple[str, str], List[str]]:
        """(location, verdict) -> tenant names whose report carries it.

        Built from each tenant's report signature (the same
        line+dominant-verdict digest the chaos soak compares), so the
        table inherits the signature's crash-invariance: a tenant that
        crashed and recovered contributes the same rows it would have
        fault-free.
        """
        table: Dict[Tuple[str, str], List[str]] = {}
        for outcome in self.outcomes:
            for entry in sorted(outcome.signature):
                table.setdefault(entry, []).append(outcome.tenant)
        return table

    def recurring(self, min_tenants: int = 2) -> Dict[Tuple[str, str], List[str]]:
        """The fleet-wide rows: diagnoses shared by >= ``min_tenants``."""
        return {
            entry: tenants
            for entry, tenants in self.contention_table().items()
            if len(tenants) >= min_tenants
        }

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def summary(self) -> str:
        states = self.states().values()
        counts = {
            state: sum(1 for s in states if s == state)
            for state in TenantState.ALL
        }
        return ("fleet: %d tenants (%d nominal, %d degraded, %d evicted), "
                "restarts=%d shed=%d partitions=%d" % (
                    len(self.outcomes), counts[TenantState.NOMINAL],
                    counts[TenantState.DEGRADED], counts[TenantState.EVICTED],
                    self.total_restarts, self.total_shed,
                    sum(o.transport_partitions for o in self.outcomes)))

    def render(self) -> str:
        """Operator view: the per-tenant table plus recurring rows."""
        lines = [self.summary(), "", "%-24s %-18s %-9s %8s %6s %10s %6s" % (
            "tenant", "workload", "state", "restarts", "shed",
            "partitions", "lines")]
        for outcome in self.outcomes:
            lines.append("%-24s %-18s %-9s %8d %6d %10d %6d" % (
                outcome.tenant, outcome.workload, outcome.state,
                outcome.restarts, outcome.records_shed,
                outcome.transport_partitions, len(outcome.signature)))
        recurring = self.recurring()
        if recurring:
            lines.append("")
            lines.append("recurring contention (shared by >=2 tenants):")
            for (location, verdict), tenants in sorted(recurring.items()):
                lines.append("  %-40s %-3s %s" % (
                    location, verdict, ", ".join(tenants)))
        return "\n".join(lines)

    def __repr__(self):
        return "<FleetHealth %s>" % self.summary()
