"""Fleet planning: tenants, arrival model, per-tenant budgets.

A *tenant* is one monitored client workload with its own detection
shard.  :func:`plan_fleet` materializes N tenants from a single fleet
seed: workloads are drawn from :data:`FLEET_WORKLOADS` under a seeded
rotation (so a 6-tenant fleet is a mixed fleet, not six copies of one
benchmark), arrival cycles follow seeded inter-arrival draws, and
every per-tenant seed is derived with :func:`repro.rng.derive_seed` —
the whole fleet is a pure function of ``(n, seed)``.

Per-tenant budgets (the fleet completion of ROADMAP item 3): the
fleet's total record-admission budget is split evenly across tenants
and baked into each tenant's :class:`~repro.core.config.LaserConfig`
as ``control_budget_records``, with the overload controller enabled.
A tenant that floods therefore sheds against *its own* budget inside
*its own* shard; no other tenant's admission window moves.

Everything here is a small picklable value object — tenant specs cross
the :class:`~repro.experiments.runner.SweepRunner` process boundary,
and the heavy machinery (machines, drivers, pipelines) is built inside
the shard worker.
"""

import random
from typing import Dict, List, Optional, Sequence

from repro.core.config import LaserConfig
from repro.faults import FaultPlan
from repro.rng import derive_seed

__all__ = ["FLEET_WORKLOADS", "TenantSpec", "FleetSpec", "plan_fleet"]

#: The default fleet mix: registry workloads small enough for soak
#: grids, spanning both primed (known-false-sharing) and clean
#: benchmarks so the cross-tenant contention table has something real
#: to correlate.
FLEET_WORKLOADS: Sequence[str] = (
    "histogram'",
    "histogram",
    "linear_regression",
    "word_count",
    "string_match",
    "matrix_multiply",
)


class TenantSpec:
    """One tenant: a workload, a seed, an arrival, a budget share."""

    __slots__ = ("name", "workload", "seed", "arrival_cycle",
                 "budget_records", "config")

    def __init__(self, name: str, workload: str, seed: int,
                 arrival_cycle: int, budget_records: int,
                 config: LaserConfig):
        self.name = name
        self.workload = workload
        #: Derived per-tenant seed; also baked into ``config.seed``.
        self.seed = seed
        #: When this tenant joined the fleet (modeled arrival clock;
        #: shards are independent, so this orders reports and restarts
        #: without coupling machines).
        self.arrival_cycle = arrival_cycle
        #: This tenant's share of the fleet admission budget
        #: (records per check interval; see ``repro.control``).
        self.budget_records = budget_records
        #: The shard's run config: the base config with this tenant's
        #: seed and budget applied.
        self.config = config

    def __repr__(self):
        return "<TenantSpec %s workload=%s seed=%d budget=%d>" % (
            self.name, self.workload, self.seed, self.budget_records,
        )


class FleetSpec:
    """The whole fleet: tenants plus fault schedules and restart knobs."""

    __slots__ = ("tenants", "seed", "faults", "max_restarts",
                 "restart_initial", "restart_max", "restart_jitter")

    def __init__(self, tenants: List[TenantSpec], seed: int,
                 faults: Optional[Dict[str, FaultPlan]] = None,
                 max_restarts: int = 3, restart_initial: int = 1,
                 restart_max: int = 8, restart_jitter: float = 0.5):
        self.tenants = tenants
        self.seed = seed
        #: Per-tenant fault schedules (tenant name -> plan).  A plan
        #: may mix tenant-level sites (``tenant.crash``,
        #: ``tenant.flood``) with run-level sites; the shard splits
        #: them (see :mod:`repro.fleet.shard`).  Tenants absent from
        #: the dict run fault-free.
        self.faults = dict(faults or {})
        #: Session restart budget per tenant; exhaustion *evicts* the
        #: tenant (its shard stops, the fleet keeps running).
        self.max_restarts = max_restarts
        #: Restart backoff schedule (intervals), with seeded jitter so
        #: restarting tenants do not thundering-herd (see
        #: :class:`~repro.resilience.Backoff`).
        self.restart_initial = restart_initial
        self.restart_max = restart_max
        self.restart_jitter = restart_jitter

    def tenant(self, name: str) -> TenantSpec:
        for tenant in self.tenants:
            if tenant.name == name:
                return tenant
        raise KeyError("no tenant %r in fleet (have: %s)" % (
            name, ", ".join(t.name for t in self.tenants)))

    def fault_plan_for(self, name: str) -> Optional[FaultPlan]:
        return self.faults.get(name)

    def describe(self) -> str:
        lines = ["FleetSpec(seed=%d, %d tenants, max_restarts=%d)" % (
            self.seed, len(self.tenants), self.max_restarts)]
        for tenant in self.tenants:
            plan = self.faults.get(tenant.name)
            lines.append("  %-24s %-18s arrival=%-7d budget=%-5d %s" % (
                tenant.name, tenant.workload, tenant.arrival_cycle,
                tenant.budget_records,
                plan.describe() if plan is not None else "fault-free"))
        return "\n".join(lines)

    def __repr__(self):
        return "<FleetSpec seed=%d tenants=%d faulted=%d>" % (
            self.seed, len(self.tenants), len(self.faults))


def plan_fleet(n: int = 4, seed: int = 0,
               base_config: Optional[LaserConfig] = None,
               workload_pool: Sequence[str] = FLEET_WORKLOADS,
               total_budget_records: Optional[int] = None,
               control: bool = True,
               faults: Optional[Dict[str, FaultPlan]] = None,
               max_restarts: int = 3) -> FleetSpec:
    """Materialize a seeded N-tenant fleet.

    The plan is deterministic: same ``(n, seed, knobs)`` gives the
    same tenants, same names, same seeds, same arrivals, same budget
    split, regardless of host or worker count.

    ``total_budget_records=None`` gives each tenant the base config's
    own ``control_budget_records`` (the single-run default); passing a
    total splits it evenly, floored at one record per tenant — the
    fleet-wide budget the ISSUE's per-tenant overload story divides.
    """
    if n < 1:
        raise ValueError("a fleet needs at least one tenant")
    if not workload_pool:
        raise ValueError("workload_pool must not be empty")
    base = base_config or LaserConfig()
    rng = random.Random(derive_seed(seed, "fleet.plan"))
    rotation = rng.randrange(len(workload_pool))
    if total_budget_records is None:
        share = base.control_budget_records
    else:
        share = max(1, total_budget_records // n)
    tenants: List[TenantSpec] = []
    arrival = 0
    for index in range(n):
        workload = workload_pool[(index + rotation) % len(workload_pool)]
        name = "t%02d-%s" % (index, workload)
        tenant_seed = derive_seed(seed, "fleet.tenant:" + name)
        arrival += rng.randint(1_000, 20_000)
        # Shard controllers run the responsive tuning the burst soak
        # pins (escalate/recover after one window): a resident shard
        # must shed a flood within a window, not ride it out.
        config = base.replace(
            seed=tenant_seed,
            control_enabled=control,
            control_budget_records=share,
            control_escalate_after=1,
            control_recover_after=1,
        )
        tenants.append(TenantSpec(
            name=name, workload=workload, seed=tenant_seed,
            arrival_cycle=arrival, budget_records=share, config=config,
        ))
    return FleetSpec(tenants, seed=seed, faults=faults,
                     max_restarts=max_restarts)
