"""The client-to-shard record transport.

In the deployed LASER fleet each monitored client streams PEBS records
to its detection shard over a transport link.  In the simulator the
link is a thin stateful gate in front of the shard's driver poll:
healthy, it is invisible (the poll proceeds exactly as on the
single-run path); partitioned, the poll reads nothing and the backlog
queues *client-side* — in the per-core PEBS buffers and the driver
outbox, which is precisely where a real kernel module would buffer
records it cannot ship.

The ``shard.partition`` fault site lives here.  It is consulted once
per poll (only when a transport is attached, so single-run occurrence
counts never move), and a fired partition blocks exactly one poll: the
next consultation that does not fire heals the link and the regular
drain delivers the backlog late.  ``records_delayed`` counts what was
sitting client-side at each heal — delivered late, never lost — and
feeds the ``transport_records_delayed`` info health field, while
``partitions`` feeds the degradation-counting ``transport_partitions``
field.
"""

__all__ = ["ShardTransport"]


class ShardTransport:
    """One tenant's record link: partition gate + late-delivery tally.

    Transports are stateful across polls (a partition set at one poll
    is observed healed at the next), so the fleet attaches a *fresh*
    transport per detector session — state never leaks across a tenant
    restart, let alone across tenants.
    """

    __slots__ = ("partitions", "heals", "records_delayed", "_partitioned")

    def __init__(self):
        #: Polls blocked by a fired ``shard.partition``.
        self.partitions = 0
        #: Partition→healthy transitions observed.
        self.heals = 0
        #: Records found queued client-side at heal time (delivered
        #: late by the next healthy drain, not lost).
        self.records_delayed = 0
        self._partitioned = False

    @property
    def partitioned(self) -> bool:
        """True between a fired partition and the next healthy poll."""
        return self._partitioned

    def blocks_poll(self, ctx) -> bool:
        """Consult the link before one driver read.

        Returns True to block this poll (link down).  The injector is
        consulted exactly once per call, so a schedule's occurrence
        indices are poll indices.
        """
        if ctx.injector.fires("shard.partition"):
            self.partitions += 1
            self._partitioned = True
            ctx.tracer.emit("fleet.partition", ctx.cycle,
                            backlog=ctx.driver.pending_records)
            return True
        if self._partitioned:
            self._partitioned = False
            self.heals += 1
            delayed = ctx.driver.pending_records
            self.records_delayed += delayed
            ctx.tracer.emit("fleet.heal", ctx.cycle, delivered_late=delayed)
        return False

    def __repr__(self):
        return "<ShardTransport partitions=%d heals=%d delayed=%d%s>" % (
            self.partitions, self.heals, self.records_delayed,
            " DOWN" if self._partitioned else "",
        )
