"""One tenant's detection shard: supervised sessions with eviction.

A shard is the unit of blast radius: one tenant's detector sessions,
each a full :meth:`~repro.core.laser.Laser.run_workload` with its own
service kernel, journal/checkpoint stack, degrade ladder, admission
budget and a fresh :class:`~repro.fleet.transport.ShardTransport`.
Nothing in a shard is shared with any other tenant, so the worst a
misbehaving tenant can do is burn its own shard down — the containment
the fleet chaos soak pins.

Fault plans are split at the shard boundary:

* **tenant-level sites** (:data:`TENANT_SITES`) are consulted by a
  *fleet-level* injector once per session attempt, in fixed order
  (crash, then flood), so occurrence indices are session attempts.
  A fired ``tenant.crash`` kills the session before the machine is
  even built — the client process died, the shard's in-flight state
  for it is worthless — and charges a deterministic number of wasted
  intervals from the site's private RNG.  A fired ``tenant.flood``
  runs the session under the standard ``load.burst`` record storm
  (probability 0.5, max 1200 fires — the same storm the overload
  chaos suite uses) so the tenant's own admission budget must shed it.
* **run-level sites** (everything else: ``detector.crash``,
  ``shard.partition``, ``checkpoint.corrupt``, …) are copied into a
  per-session plan and handled by the session's own resilience stack,
  exactly as on the single-run path.

Supervision: crashed sessions restart under a
:class:`~repro.resilience.RetryPolicy` with seeded-jitter backoff
(the jitter stream is derived from the fleet seed and tenant name, so
restart schedules are deterministic per fleet and decorrelated across
tenants).  When the restart budget is exhausted the tenant is
**evicted** — its shard stops and reports :data:`TenantState.EVICTED`
— rather than aborting the fleet.
"""

import random
from typing import List, Optional

from repro.core.laser import Laser, LaserRunResult
from repro.experiments.chaos import report_signature
from repro.faults import FaultInjector, FaultPlan
from repro.fleet.health import TenantState
from repro.fleet.tenants import FleetSpec, TenantSpec
from repro.fleet.transport import ShardTransport
from repro.resilience import RetryPolicy
from repro.rng import derive_seed
from repro.workloads import get_workload

__all__ = ["TENANT_SITES", "TenantOutcome", "run_shard"]

#: Fault sites decided at the fleet level, once per session attempt.
TENANT_SITES = frozenset({"tenant.crash", "tenant.flood"})

#: The standard record storm a flooding tenant runs under (matches the
#: overload chaos suite's ``load.burst`` schedule).
FLOOD_PROBABILITY = 0.5
FLOOD_MAX_FIRES = 1200


class TenantOutcome:
    """Everything one shard reports back to the fleet (picklable)."""

    __slots__ = ("tenant", "workload", "seed", "arrival_cycle",
                 "budget_records", "state", "sessions", "restarts",
                 "evicted", "report_render", "signature", "health",
                 "cycles", "records_shed", "transport_partitions",
                 "transport_heals", "transport_records_delayed",
                 "recovery_events")

    def __init__(self, tenant: TenantSpec, state: str,
                 sessions: List[dict],
                 result: Optional[LaserRunResult] = None,
                 transport: Optional[ShardTransport] = None):
        self.tenant = tenant.name
        self.workload = tenant.workload
        self.seed = tenant.seed
        self.arrival_cycle = tenant.arrival_cycle
        self.budget_records = tenant.budget_records
        #: Final :class:`~repro.fleet.health.TenantState` value.
        self.state = state
        #: Session-attempt log, in attempt order (crashes + completion).
        self.sessions = sessions
        self.restarts = sum(
            1 for session in sessions if session["state"] == "crashed")
        self.evicted = state == TenantState.EVICTED
        # Result-derived views (None/empty for an evicted tenant —
        # eviction means the fleet has *no* report for it, which is the
        # honest answer).
        if result is not None:
            self.report_render = result.report.render()
            self.signature = report_signature(result)
            self.health = result.health.as_dict()
            self.cycles = result.cycles
            self.records_shed = result.health.records_shed
            self.recovery_events = [
                {"cycle": event.cycle, "name": event.name,
                 "args": dict(event.args or {})}
                for prefix in ("resil.", "fleet.")
                for event in result.telemetry.tracer.events_named(prefix)
            ]
        else:
            self.report_render = None
            self.signature = frozenset()
            self.health = None
            self.cycles = 0
            self.records_shed = 0
            self.recovery_events = []
        if transport is not None:
            self.transport_partitions = transport.partitions
            self.transport_heals = transport.heals
            self.transport_records_delayed = transport.records_delayed
        else:
            self.transport_partitions = 0
            self.transport_heals = 0
            self.transport_records_delayed = 0

    @property
    def wasted_intervals(self) -> int:
        """Modeled intervals burned by crashed session attempts."""
        return sum(
            session.get("wasted_intervals", 0) for session in self.sessions)

    def as_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "workload": self.workload,
            "seed": self.seed,
            "arrival_cycle": self.arrival_cycle,
            "budget_records": self.budget_records,
            "state": self.state,
            "sessions": self.sessions,
            "restarts": self.restarts,
            "evicted": self.evicted,
            "report_render": self.report_render,
            "signature": sorted(self.signature),
            "health": self.health,
            "cycles": self.cycles,
            "records_shed": self.records_shed,
            "transport_partitions": self.transport_partitions,
            "transport_heals": self.transport_heals,
            "transport_records_delayed": self.transport_records_delayed,
            "recovery_events": self.recovery_events,
        }

    def __repr__(self):
        return "<TenantOutcome %s %s restarts=%d shed=%d>" % (
            self.tenant, self.state, self.restarts, self.records_shed,
        )


def split_plan(plan: Optional[FaultPlan]):
    """(fleet-level plan, session-level plan) halves of one schedule.

    Both halves keep the original plan seed, so a site's private RNG
    stream is unchanged by the split.
    """
    fleet_plan = FaultPlan(seed=plan.seed if plan is not None else 0)
    session_plan = FaultPlan(seed=plan.seed if plan is not None else 0)
    if plan is not None:
        for spec in plan.specs:
            target = fleet_plan if spec.site in TENANT_SITES else session_plan
            target.add(spec.site, probability=spec.probability,
                       at=spec.at, max_fires=spec.max_fires)
    return fleet_plan, session_plan


def _session_plan(base: FaultPlan, flooded: bool) -> FaultPlan:
    """A fresh per-session plan; a flooded session gains the storm."""
    plan = FaultPlan(seed=base.seed)
    for spec in base.specs:
        plan.add(spec.site, probability=spec.probability,
                 at=spec.at, max_fires=spec.max_fires)
    if flooded and plan.spec_for("load.burst") is None:
        plan.add("load.burst", probability=FLOOD_PROBABILITY,
                 max_fires=FLOOD_MAX_FIRES)
    return plan


def run_shard(tenant: TenantSpec, fleet: FleetSpec) -> TenantOutcome:
    """Run one tenant's shard to completion or eviction.

    Deterministic per ``(tenant, fleet)``: the fleet-level injector,
    the restart jitter stream and every session are seeded from the
    specs alone.
    """
    fleet_plan, base_session_plan = split_plan(
        fleet.fault_plan_for(tenant.name))
    fleet_injector = FaultInjector(fleet_plan)
    policy = RetryPolicy(
        initial=fleet.restart_initial, maximum=fleet.restart_max,
        jitter=fleet.restart_jitter, max_attempts=fleet.max_restarts,
        rng=random.Random(
            derive_seed(fleet.seed, "fleet.restart:" + tenant.name)),
    )
    workload = get_workload(tenant.workload)
    sessions: List[dict] = []
    while True:
        attempt = len(sessions)
        # Fixed consultation order per attempt: crash, then flood.
        crashed = fleet_injector.fires("tenant.crash")
        flooded = fleet_injector.fires("tenant.flood")
        if crashed:
            # The client died at session start: the shard discards the
            # attempt and charges a deterministic number of wasted
            # check intervals from the site's private payload stream.
            wasted = fleet_injector.rng("tenant.crash").randint(1, 8)
            delay = policy.next_delay()
            sessions.append({
                "attempt": attempt,
                "state": "crashed",
                "wasted_intervals": wasted,
                "restart_delay": delay,
            })
            if delay is None:
                # Restart budget spent: evict, never abort the fleet.
                return TenantOutcome(tenant, TenantState.EVICTED, sessions)
            continue
        transport = ShardTransport()
        laser = Laser(tenant.config,
                      faults=_session_plan(base_session_plan, flooded),
                      transport=transport)
        result = laser.run_workload(workload)
        sessions.append({
            "attempt": attempt,
            "state": "completed",
            "flooded": flooded,
        })
        degraded = result.health.degraded or any(
            session["state"] == "crashed" for session in sessions)
        state = TenantState.DEGRADED if degraded else TenantState.NOMINAL
        return TenantOutcome(tenant, state, sessions, result=result,
                             transport=transport)
