"""Fleet-resilient detection service (`repro.fleet`).

LASER's deployability argument (Section 6) is that detection is cheap
enough to leave *on* in production.  At fleet scale that only holds if
one monitored process's misbehavior cannot take detection down for the
others.  This package promotes the single-run service kernel
(:mod:`repro.core.services`) into a resident multi-tenant detection
service:

* **tenants** (:mod:`repro.fleet.tenants`) — N simulated client
  workloads drawn from the registry under a seeded arrival/restart
  model, each with its *own* share of the fleet's record-admission
  budget (the per-tenant completion of ROADMAP item 3);
* **transport** (:mod:`repro.fleet.transport`) — the client-to-shard
  record channel, hosting the ``shard.partition`` fault site;
* **shards** (:mod:`repro.fleet.shard`) — one supervised detector
  session per tenant, running the full PR 5 service kernel with its
  own journal/checkpoint/degrade stack; the fleet supervisor restarts
  crashed sessions with seeded-jitter backoff and *evicts* (never
  aborts) a tenant whose restart budget is exhausted;
* **pool** (:mod:`repro.fleet.pool`) — shards fan out over
  :class:`~repro.experiments.runner.SweepRunner`, merged in tenant
  order so fleet results are byte-identical at any worker count;
* **health** (:mod:`repro.fleet.health`) — the :class:`FleetHealth`
  roll-up: per-tenant :class:`~repro.core.health.RunHealth` plus the
  cross-tenant contention table of recurring (line, TS/FS) verdicts.

The isolation contract, pinned by ``experiments/fleet_chaos.py``:
under any schedule of tenant crashes, floods and shard partitions
aimed at one tenant, every *other* tenant's final report is
byte-for-byte identical to its fault-free single-run report and no
cross-tenant health field moves.  All fleet machinery is off by
default — a run without a transport takes the exact pre-fleet code
path.
"""

from repro.fleet.health import FleetHealth, TenantState
from repro.fleet.pool import FleetPool, FleetResult
from repro.fleet.shard import TenantOutcome, run_shard
from repro.fleet.tenants import (
    FLEET_WORKLOADS,
    FleetSpec,
    TenantSpec,
    plan_fleet,
)
from repro.fleet.transport import ShardTransport

__all__ = [
    "FLEET_WORKLOADS",
    "FleetHealth",
    "FleetPool",
    "FleetResult",
    "FleetSpec",
    "ShardTransport",
    "TenantOutcome",
    "TenantSpec",
    "TenantState",
    "plan_fleet",
    "run_shard",
]
