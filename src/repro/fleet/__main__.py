"""Fleet quickstart CLI.

Run a seeded multi-tenant fleet, optionally aiming faults at one
tenant, and print the operator roll-up::

    PYTHONPATH=src python -m repro.fleet --tenants 4 --flood 0

floods tenant 0's shard with the standard record storm: its own
admission budget sheds the excess (its row shows ``shed`` > 0 and
state DEGRADED) while every other tenant stays NOMINAL —
blast-radius containment, live.
"""

import argparse
import json
from typing import List, Optional

from repro.faults import FaultPlan
from repro.fleet.pool import FleetPool
from repro.fleet.tenants import plan_fleet

__all__ = ["main"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description=__doc__.splitlines()[0])
    parser.add_argument("--tenants", type=int, default=4,
                        help="fleet size (default 4)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--budget", type=int, default=None,
                        help="total admission budget split across "
                             "tenants (default: per-tenant single-run "
                             "default)")
    parser.add_argument("--workers", type=int, default=None,
                        help="shard-pool width (default: host cores; "
                             "1 = serial)")
    parser.add_argument("--crash", type=int, default=None, metavar="TENANT",
                        help="crash this tenant's client at every "
                             "session start (drives it to eviction)")
    parser.add_argument("--flood", type=int, default=None, metavar="TENANT",
                        help="flood this tenant's shard with the "
                             "standard record storm")
    parser.add_argument("--partition", type=int, default=None,
                        metavar="TENANT",
                        help="partition this tenant's transport at "
                             "polls 2 and 5")
    parser.add_argument("--out", default=None,
                        help="write the fleet result as JSON here")
    args = parser.parse_args(argv)

    spec = plan_fleet(n=args.tenants, seed=args.seed,
                      total_budget_records=args.budget)
    for index, flag, build in (
        (args.crash, "--crash",
         lambda s: FaultPlan(seed=s).add(
             "tenant.crash", probability=1.0)),
        (args.flood, "--flood",
         lambda s: FaultPlan(seed=s).add("tenant.flood", at=(0,))),
        (args.partition, "--partition",
         lambda s: FaultPlan(seed=s).add("shard.partition", at=(2, 5))),
    ):
        if index is None:
            continue
        if not 0 <= index < len(spec.tenants):
            parser.error("%s index out of range (fleet has %d tenants)"
                         % (flag, len(spec.tenants)))
        tenant = spec.tenants[index]
        existing = spec.faults.get(tenant.name)
        plan = build(args.seed)
        if existing is not None:
            for fault_spec in plan.specs:
                existing.add(fault_spec.site,
                             probability=fault_spec.probability,
                             at=fault_spec.at,
                             max_fires=fault_spec.max_fires)
        else:
            spec.faults[tenant.name] = plan

    print(spec.describe())
    print()
    pool = FleetPool(spec, workers=args.workers)
    result = pool.run()
    print(result.render())
    print()
    print(pool.cost_summary())
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(result.as_dict(), fh, indent=2, sort_keys=True)
        print("wrote %s" % args.out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
