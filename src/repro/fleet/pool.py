"""The shard pool: fleet fan-out over the experiment runner.

:class:`FleetPool` is the resident service's process plane.  Shards
are independent by construction (a tenant spec is a small picklable
value; every heavy object is built inside the shard), so the pool is
nothing more exotic than :class:`~repro.experiments.runner.SweepRunner`
— the same order-preserving fan-out every experiment harness uses,
with the same guarantees: results merge in tenant order, byte-identical
at any worker count, serial fallback where subprocess pools are
unavailable.  One runner can be shared across many fleet runs (the
fleet chaos soak does), keeping pool construction off the per-schedule
cost.
"""

from typing import List, Optional

from repro.experiments.runner import SweepRunner
from repro.fleet.health import FleetHealth
from repro.fleet.shard import TenantOutcome, run_shard
from repro.fleet.tenants import FleetSpec, TenantSpec

__all__ = ["FleetPool", "FleetResult"]


class FleetResult:
    """One fleet run: outcomes in tenant order plus the health roll-up."""

    __slots__ = ("spec", "outcomes", "health")

    def __init__(self, spec: FleetSpec, outcomes: List[TenantOutcome]):
        self.spec = spec
        self.outcomes = outcomes
        self.health = FleetHealth(outcomes)

    def tenant(self, name: str) -> TenantOutcome:
        return self.health.tenant(name)

    def as_dict(self) -> dict:
        return {
            "seed": self.spec.seed,
            "tenants": [outcome.as_dict() for outcome in self.outcomes],
            "summary": self.health.summary(),
        }

    def render(self) -> str:
        return self.health.render()

    def __repr__(self):
        return "<FleetResult %s>" % self.health.summary()


def _shard_cell(tenant: TenantSpec, fleet: FleetSpec) -> TenantOutcome:
    """One shard, shaped for pool workers (module-level, picklable)."""
    return run_shard(tenant, fleet)


class FleetPool:
    """Run every tenant's shard and merge outcomes in tenant order."""

    def __init__(self, spec: FleetSpec, workers: Optional[int] = None,
                 runner: Optional[SweepRunner] = None):
        self.spec = spec
        #: The fan-out runner; pass one in to share it (and its cost
        #: accounting) across fleet runs.
        self.runner = runner if runner is not None else SweepRunner(workers)

    def run(self) -> FleetResult:
        cells = [(tenant, self.spec) for tenant in self.spec.tenants]
        outcomes = self.runner.starmap(_shard_cell, cells)
        return FleetResult(self.spec, outcomes)

    def cost_summary(self) -> str:
        return self.runner.cost_summary()

    def __repr__(self):
        return "<FleetPool tenants=%d workers=%d>" % (
            len(self.spec.tenants), self.runner.workers)
