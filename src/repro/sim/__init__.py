"""Multicore machine substrate.

This package provides the simulated Haswell machine that stands in for
the paper's i7-4770K testbed: a flat byte-addressable memory, a virtual
memory map (the ``/proc/<pid>/maps`` analog), a bump allocator whose
layout decisions create false sharing exactly as glibc malloc does, a
MESI coherence directory that generates HITM events, an HTM model, and
the multicore interpreter itself.
"""

from repro.sim.memory import Memory
from repro.sim.vmmap import Region, RegionKind, VirtualMemoryMap, default_memory_map
from repro.sim.allocator import Allocator
from repro.sim.cache import LineState
from repro.sim.coherence import AccessResult, CoherenceDirectory
from repro.sim.timing import LatencyModel
from repro.sim.htm import HardwareTransactionalMemory
from repro.sim.machine import Machine, RunResult
from repro.sim.core import Core, CoreState

__all__ = [
    "Memory",
    "Region",
    "RegionKind",
    "VirtualMemoryMap",
    "default_memory_map",
    "Allocator",
    "LineState",
    "AccessResult",
    "CoherenceDirectory",
    "LatencyModel",
    "HardwareTransactionalMemory",
    "Machine",
    "RunResult",
    "Core",
    "CoreState",
]
