"""Per-core interpreter.

Each simulated core executes one thread's instruction stream.  Memory
operations are routed through the machine (which applies the coherence
protocol, charges latency and notifies the PMU).  The SSB pseudo-ops
injected by LASERREPAIR are interpreted here against the core's attached
software store buffer.

Register conventions used by the workloads:

* ``r14`` — thread id (set before the program starts),
* ``r15`` — a pointer into the thread's private stack region.
"""

import enum
from typing import List

from repro.errors import SimulationError
from repro.isa.instructions import NUM_REGISTERS, Instruction, Opcode

__all__ = ["Core", "CoreState", "CoreStats"]

WORD_MASK = 0xFFFFFFFFFFFFFFFF


class CoreState(enum.Enum):
    RUNNING = "running"
    HALTED = "halted"


class CoreStats:
    """Execution counters for one core."""

    __slots__ = (
        "instructions",
        "loads",
        "stores",
        "atomics",
        "fences",
        "pauses",
        "local_hitm_events",
        "ssb_stores",
        "ssb_loads",
        "ssb_flushes",
        "alias_checks",
        "alias_misspeculations",
        "busy_cycles",
        "pmu_stall_cycles",
    )

    def __init__(self):
        self.instructions = 0
        self.loads = 0
        self.stores = 0
        self.atomics = 0
        self.fences = 0
        self.pauses = 0
        self.local_hitm_events = 0
        self.ssb_stores = 0
        self.ssb_loads = 0
        self.ssb_flushes = 0
        self.alias_checks = 0
        self.alias_misspeculations = 0
        self.busy_cycles = 0
        self.pmu_stall_cycles = 0

    @property
    def memory_ops(self) -> int:
        return self.loads + self.stores + self.atomics


class Core:
    """One simulated core running one thread."""

    def __init__(self, core_id: int, machine, instructions: List[Instruction]):
        self.core_id = core_id
        self.machine = machine
        self.instructions = instructions
        self.registers: List[int] = [0] * NUM_REGISTERS
        self.pc_index = 0
        self.state = CoreState.RUNNING
        self.stats = CoreStats()
        #: Attached software store buffer (set by LASERREPAIR's runtime).
        self.ssb = None
        #: Compiled-trace caches for the trace engine (one per pin-tax
        #: variant); built lazily by the machine, invalidated whenever
        #: the instruction stream is swapped.
        self._trace = None
        self._trace_taxed = None

    # ------------------------------------------------------------------
    # Dynamic rewriting support (the Pin attach analog)
    # ------------------------------------------------------------------

    def replace_code(self, instructions: List[Instruction], index_map) -> None:
        """Swap this core's instruction stream mid-run.

        ``index_map`` maps old instruction indices to their positions in
        the new stream; the core's program counter is translated through
        it, so the attach can happen at any instruction boundary —
        exactly how a dynamic binary instrumentation framework redirects
        a running thread into its code cache.
        """
        if self.state is CoreState.RUNNING:
            if self.pc_index not in index_map:
                raise SimulationError(
                    "cannot remap pc %d on core %d" % (self.pc_index, self.core_id)
                )
            self.pc_index = index_map[self.pc_index]
        self.instructions = instructions
        self._trace = None
        self._trace_taxed = None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> int:
        """Execute one instruction; returns its latency in cycles."""
        if self.state is not CoreState.RUNNING:
            raise SimulationError("step() on halted core %d" % self.core_id)
        inst = self.instructions[self.pc_index]
        self.stats.instructions += 1
        latency = self._execute(inst)
        if self.ssb is not None:
            # This thread runs inside the DBI framework's code cache.
            latency += self.machine.latency.pin_tax
        self.stats.busy_cycles += latency
        return latency

    def _execute(self, inst: Instruction) -> int:
        op = inst.op
        regs = self.registers
        lat = self.machine.latency
        next_pc = self.pc_index + 1

        if op is Opcode.LOAD:
            addr = inst.a.value_of(regs) + inst.offset
            value, latency = self.machine.mem_read(self, inst, addr, inst.size)
            regs[inst.rd] = value
            self.stats.loads += 1
        elif op is Opcode.STORE:
            addr = inst.a.value_of(regs) + inst.offset
            value = inst.b.value_of(regs)
            latency = self.machine.mem_write(self, inst, addr, value, inst.size)
            self.stats.stores += 1
        elif op is Opcode.MOV:
            regs[inst.rd] = inst.a.value_of(regs) & WORD_MASK
            latency = lat.alu
        elif op in _ALU_FUNCS:
            a = inst.a.value_of(regs)
            b = inst.b.value_of(regs)
            regs[inst.rd] = _ALU_FUNCS[op](a, b) & WORD_MASK
            latency = lat.alu
        elif op is Opcode.BEQ or op is Opcode.BNE or op is Opcode.BLT or op is Opcode.BGE:
            a = inst.a.value_of(regs)
            b = inst.b.value_of(regs)
            taken = (
                (op is Opcode.BEQ and a == b)
                or (op is Opcode.BNE and a != b)
                or (op is Opcode.BLT and a < b)
                or (op is Opcode.BGE and a >= b)
            )
            if taken:
                next_pc = inst.target
            latency = lat.alu
        elif op is Opcode.JMP:
            next_pc = inst.target
            latency = lat.alu
        elif op is Opcode.ADDM:
            # Non-atomic memory-destination add: a plain load + store pair
            # at one PC (no fence semantics, unlike the locked RMWs).
            addr = inst.a.value_of(regs) + inst.offset
            old, lat_read = self.machine.mem_read(self, inst, addr, inst.size)
            new = (old + inst.b.value_of(regs)) & WORD_MASK
            lat_write = self.machine.mem_write(self, inst, addr, new, inst.size)
            latency = lat_read + lat_write + lat.alu
            self.stats.loads += 1
            self.stats.stores += 1
        elif op is Opcode.SSB_ADDM:
            addr = inst.a.value_of(regs) + inst.offset
            old, mem_latency = self.ssb.load_through(self, inst, addr, inst.size)
            new = (old + inst.b.value_of(regs)) & WORD_MASK
            self.ssb.put(addr, new, inst.size)
            self.stats.ssb_loads += 1
            self.stats.ssb_stores += 1
            self.stats.loads += 1
            self.stats.stores += 1
            latency = lat.ssb_load + lat.ssb_store + mem_latency + lat.alu
            if self.ssb.should_preflush():
                latency += self.ssb.flush(self.core_id)
                self.stats.ssb_flushes += 1
        elif op is Opcode.CMPXCHG:
            latency = self._exec_cmpxchg(inst)
            self.stats.atomics += 1
        elif op is Opcode.XADD:
            latency = self._exec_xadd(inst)
            self.stats.atomics += 1
        elif op is Opcode.FENCE:
            latency = lat.fence + self._drain_ssb_if_active()
            latency += self.machine.fence_extra(self)
            self.stats.fences += 1
        elif op is Opcode.PAUSE:
            latency = lat.pause
            self.stats.pauses += 1
        elif op is Opcode.NOP:
            latency = lat.alu
        elif op is Opcode.HALT:
            # Thread exit is a synchronization point (pthread_exit).
            latency = lat.alu + self._drain_ssb_if_active()
            latency += self.machine.fence_extra(self)
            self.state = CoreState.HALTED
        elif op is Opcode.SSB_STORE:
            addr = inst.a.value_of(regs) + inst.offset
            value = inst.b.value_of(regs)
            self.ssb.put(addr, value, inst.size)
            self.stats.ssb_stores += 1
            self.stats.stores += 1
            latency = lat.ssb_store
            if self.ssb.should_preflush():
                latency += self.ssb.flush(self.core_id)
                self.stats.ssb_flushes += 1
        elif op is Opcode.SSB_LOAD:
            addr = inst.a.value_of(regs) + inst.offset
            value, mem_latency = self.ssb.load_through(
                self, inst, addr, inst.size
            )
            regs[inst.rd] = value
            self.stats.ssb_loads += 1
            self.stats.loads += 1
            latency = lat.ssb_load + mem_latency
        elif op is Opcode.SSB_FLUSH:
            latency = self.ssb.flush(self.core_id)
            self.stats.ssb_flushes += 1
        elif op is Opcode.ALIAS_CHECK:
            addr = inst.a.value_of(regs) + inst.offset
            latency = lat.alias_check
            self.stats.alias_checks += 1
            if self.ssb is not None and self.ssb.may_alias(addr, inst.size):
                self.stats.alias_misspeculations += 1
                latency += self.ssb.flush(self.core_id)
                self.ssb.note_misspeculation()
        else:  # pragma: no cover - all opcodes handled above
            raise SimulationError("unknown opcode %r" % op)

        self.pc_index = next_pc
        return latency

    def _exec_cmpxchg(self, inst: Instruction) -> int:
        """lock cmpxchg: rd <- old; write desired if old == expected."""
        regs = self.registers
        addr = inst.a.value_of(regs) + inst.offset
        expected = inst.b.value_of(regs)
        desired = inst.c.value_of(regs)
        drain = self._drain_ssb_if_active() + self.machine.fence_extra(self)
        old, latency = self.machine.mem_read(self, inst, addr, inst.size)
        if old == expected:
            latency += self.machine.mem_write(self, inst, addr, desired, inst.size)
        regs[inst.rd] = old
        return latency + self.machine.latency.atomic_extra + drain

    def _exec_xadd(self, inst: Instruction) -> int:
        """lock xadd: rd <- old; memory <- old + src."""
        regs = self.registers
        addr = inst.a.value_of(regs) + inst.offset
        increment = inst.b.value_of(regs)
        drain = self._drain_ssb_if_active() + self.machine.fence_extra(self)
        old, latency = self.machine.mem_read(self, inst, addr, inst.size)
        latency += self.machine.mem_write(
            self, inst, addr, (old + increment) & WORD_MASK, inst.size
        )
        regs[inst.rd] = old
        return latency + self.machine.latency.atomic_extra + drain

    def _drain_ssb_if_active(self) -> int:
        """Fences (and fence-like atomics) must flush the SSB (Section 5.4)."""
        if self.ssb is not None and not self.ssb.empty():
            self.stats.ssb_flushes += 1
            return self.ssb.flush(self.core_id)
        return 0

    def __repr__(self):
        return "<Core %d %s pc=%d>" % (self.core_id, self.state.value, self.pc_index)


def _div(a: int, b: int) -> int:
    if b == 0:
        raise SimulationError("division by zero")
    return a // b


_ALU_FUNCS = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.DIV: _div,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SHL: lambda a, b: a << (b & 63),
    Opcode.SHR: lambda a, b: a >> (b & 63),
}
