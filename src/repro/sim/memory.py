"""Flat byte-addressable memory.

Backed by 4 KiB pages allocated lazily, so sparse address spaces (code
at 0x400000, heap at 0x10000000, stacks near the top of the canonical
range) cost nothing.  Values are little-endian unsigned integers of
1-8 bytes, matching the ISA's access sizes.
"""

from typing import Dict

__all__ = ["Memory", "PAGE_SIZE"]

PAGE_SIZE = 4096


class Memory:
    """Sparse simulated RAM."""

    def __init__(self):
        self._pages: Dict[int, bytearray] = {}

    def _page(self, page_index: int) -> bytearray:
        page = self._pages.get(page_index)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[page_index] = page
        return page

    def read(self, addr: int, size: int) -> int:
        """Read ``size`` bytes at ``addr`` as a little-endian unsigned int."""
        page_index, offset = divmod(addr, PAGE_SIZE)
        if offset + size <= PAGE_SIZE:
            page = self._pages.get(page_index)
            if page is None:
                return 0
            return int.from_bytes(page[offset : offset + size], "little")
        # Straddles a page boundary: assemble byte by byte.
        value = 0
        for i in range(size):
            p, o = divmod(addr + i, PAGE_SIZE)
            page = self._pages.get(p)
            byte = page[o] if page is not None else 0
            value |= byte << (8 * i)
        return value

    def write(self, addr: int, value: int, size: int) -> None:
        """Write ``size`` low bytes of ``value`` at ``addr`` (little-endian)."""
        value &= (1 << (8 * size)) - 1
        page_index, offset = divmod(addr, PAGE_SIZE)
        if offset + size <= PAGE_SIZE:
            self._page(page_index)[offset : offset + size] = value.to_bytes(
                size, "little"
            )
            return
        for i in range(size):
            p, o = divmod(addr + i, PAGE_SIZE)
            self._page(p)[o] = (value >> (8 * i)) & 0xFF

    def read_bytes(self, addr: int, size: int) -> bytes:
        """Read a raw byte string (used by tests and checksum helpers)."""
        return bytes(
            self.read(addr + i, 1) for i in range(size)
        )

    def write_bytes(self, addr: int, data: bytes) -> None:
        for i, byte in enumerate(data):
            self.write(addr + i, byte, 1)

    def touched_pages(self) -> int:
        """Number of pages that have been materialized."""
        return len(self._pages)
