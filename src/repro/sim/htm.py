"""Hardware transactional memory model (Intel RTM analog).

LASERREPAIR flushes its coalescing software store buffer inside one
hardware transaction so that the flush is **strongly atomic**: no remote
thread can observe a subset of the buffered stores, which is what makes
a coalescing SSB TSO-compliant (Section 5.5).

The model executes a whole transaction in a single machine step, so
conflicts with concurrent accesses cannot arise mid-transaction by
construction; the remaining abort cause is **capacity** — a transaction
touching more distinct cache lines than the L1 associativity allows
aborts, exactly the overflow the paper's pre-emptive 8-entry flush
avoids.
"""

from typing import Iterable, List, Tuple

from repro._constants import CACHE_LINE_SIZE, L1_ASSOCIATIVITY
from repro.errors import HtmAbort
from repro.obs.trace import NULL_TRACER
from repro.sim.coherence import CoherenceDirectory
from repro.sim.memory import Memory

__all__ = ["HardwareTransactionalMemory"]

#: A write set entry: (address, value, size).
WriteEntry = Tuple[int, int, int]


class HardwareTransactionalMemory:
    """Executes atomic write sets against memory + coherence."""

    def __init__(self, memory: Memory, directory: CoherenceDirectory,
                 capacity_lines: int = L1_ASSOCIATIVITY, injector=None,
                 tracer=None, clock=None):
        self.memory = memory
        self.directory = directory
        self.capacity_lines = capacity_lines
        #: Optional :class:`repro.faults.FaultInjector`; hosts the
        #: ``htm.abort`` site (conflict abort storms).
        self.injector = injector
        #: Event tracer + cycle source for the begin/commit/abort
        #: events (the machine wires its own clock in).
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.clock = clock or (lambda: self.directory.now)
        self.commits = 0
        self.aborts = 0

    def execute_atomically(self, core: int, writes: Iterable[WriteEntry]) -> int:
        """Commit ``writes`` as one transaction; returns cycle cost.

        Raises :class:`HtmAbort` on capacity overflow (or an injected
        conflict), leaving memory untouched (aborted transactions roll
        back completely).
        """
        writes = list(writes)
        tracer = self.tracer
        traced = tracer.enabled
        lines = set()
        for addr, _value, size in writes:
            first = addr // CACHE_LINE_SIZE
            last = (addr + size - 1) // CACHE_LINE_SIZE
            lines.update(range(first, last + 1))
        if traced:
            tracer.emit("htm.begin", self.clock(), core=core,
                        writes=len(writes), lines=len(lines))
        if len(lines) > self.capacity_lines:
            self.aborts += 1
            if traced:
                tracer.emit("htm.abort", self.clock(), core=core,
                            reason="capacity", lines=len(lines))
            raise HtmAbort(
                "capacity: %d lines > %d ways" % (len(lines), self.capacity_lines),
                conflict_line=max(lines) if lines else None,
                abort_count=self.aborts,
            )
        if self.injector is not None and self.injector.fires("htm.abort"):
            self.aborts += 1
            if traced:
                tracer.emit("htm.abort", self.clock(), core=core,
                            reason="conflict", lines=len(lines))
            raise HtmAbort(
                "conflict: injected remote access to the write set",
                conflict_line=min(lines) if lines else None,
                abort_count=self.aborts,
            )
        latency = 0
        for addr, value, size in writes:
            result = self.directory.access(core, addr, size, is_write=True)
            latency += result.latency
            self.memory.write(addr, value, size)
        self.commits += 1
        if traced:
            tracer.emit("htm.commit", self.clock(), core=core,
                        writes=len(writes), lines=len(lines),
                        latency=latency)
        return latency

    @staticmethod
    def split_for_capacity(writes: List[WriteEntry], capacity_lines: int) -> List[List[WriteEntry]]:
        """Partition a write set into chunks that each fit in capacity.

        Used by the SSB's fallback path when a flush grew beyond the HTM
        capacity despite the pre-emptive flush policy (can happen if a
        single basic block stores to many lines before any flush point).
        The chunks preserve insertion order so the fallback is still
        FIFO at chunk granularity.
        """
        chunks: List[List[WriteEntry]] = []
        current: List[WriteEntry] = []
        current_lines = set()
        for entry in writes:
            addr, _value, size = entry
            first = addr // CACHE_LINE_SIZE
            last = (addr + size - 1) // CACHE_LINE_SIZE
            entry_lines = set(range(first, last + 1))
            if current and len(current_lines | entry_lines) > capacity_lines:
                chunks.append(current)
                current = []
                current_lines = set()
            current.append(entry)
            current_lines |= entry_lines
        if current:
            chunks.append(current)
        return chunks
