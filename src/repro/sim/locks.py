"""Synchronization idioms emitted as ISA code.

Workloads build their locks out of real atomic instructions so that the
contention the paper describes arises naturally: a naive spin lock is "a
single atomic compare-and-swap in a loop" and performs poorly under
contention, while a test-and-test-and-set lock "allows potential
acquirers to check the lock without trying to update it" (Section 2).

Each emitter needs a unique ``tag`` to keep labels distinct within one
thread's code, and two scratch registers that it may clobber.
"""

from repro.isa.assembler import Assembler

__all__ = [
    "emit_naive_lock_acquire",
    "emit_ttas_lock_acquire",
    "emit_lock_release",
    "emit_barrier_wait",
]


def emit_naive_lock_acquire(asm: Assembler, lock_addr_reg, tag: str,
                            scratch: str = "r10") -> None:
    """Naive spin lock: cmpxchg in a tight loop (high true sharing)."""
    retry = "lock_retry_%s" % tag
    done = "lock_done_%s" % tag
    asm.label(retry)
    asm.cmpxchg(scratch, lock_addr_reg, 0, 1, size=8)
    asm.beq(scratch, 0, done)
    asm.pause()
    asm.jmp(retry)
    asm.label(done)


def emit_ttas_lock_acquire(asm: Assembler, lock_addr_reg, tag: str,
                           scratch: str = "r10") -> None:
    """Test-and-test-and-set lock: read-share the lock word while held."""
    retry = "ttas_retry_%s" % tag
    attempt = "ttas_attempt_%s" % tag
    done = "ttas_done_%s" % tag
    asm.label(retry)
    asm.load(scratch, lock_addr_reg, size=8)
    asm.beq(scratch, 0, attempt)
    asm.pause()
    asm.jmp(retry)
    asm.label(attempt)
    asm.cmpxchg(scratch, lock_addr_reg, 0, 1, size=8)
    asm.beq(scratch, 0, done)
    asm.jmp(retry)
    asm.label(done)


def emit_lock_release(asm: Assembler, lock_addr_reg) -> None:
    """Release: a plain store of 0 (x86 stores have release semantics)."""
    asm.store(lock_addr_reg, 0, size=8)


def emit_barrier_wait(asm: Assembler, barrier_addr_reg, num_threads: int,
                      tag: str, scratch: str = "r10") -> None:
    """Single-use sense-free barrier: xadd then spin until all arrive."""
    spin = "barrier_spin_%s" % tag
    done = "barrier_done_%s" % tag
    asm.xadd(scratch, barrier_addr_reg, 1, size=8)
    asm.label(spin)
    asm.load(scratch, barrier_addr_reg, size=8)
    asm.bge(scratch, num_threads, done)
    asm.pause()
    asm.jmp(spin)
    asm.label(done)
