"""Virtual memory map: the ``/proc/<pid>/maps`` analog.

LASERDETECT's first pipeline stage (Section 4.1) classifies each HITM
record's PC as application / library / other code by parsing the
process's memory map, and drops records whose data address falls on a
thread stack.  This module provides that map for simulated processes.
"""

import enum
from typing import List, Optional

__all__ = [
    "RegionKind",
    "Region",
    "VirtualMemoryMap",
    "default_memory_map",
    "APP_CODE_BASE",
    "LIB_CODE_BASE",
    "GLOBALS_BASE",
    "HEAP_BASE",
    "STACK_TOP",
    "STACK_SIZE",
    "KERNEL_BASE",
]


class RegionKind(enum.Enum):
    APP_CODE = "app_code"
    LIB_CODE = "lib_code"
    GLOBALS = "globals"
    HEAP = "heap"
    STACK = "stack"
    KERNEL = "kernel"


# Canonical layout of a simulated 64-bit process.
APP_CODE_BASE = 0x0000_0000_0040_0000
LIB_CODE_BASE = 0x0000_7F00_0000_0000
GLOBALS_BASE = 0x0000_0000_0060_0000
HEAP_BASE = 0x0000_0000_1000_0000
STACK_TOP = 0x0000_7FFF_FF00_0000
STACK_SIZE = 0x0010_0000  # 1 MiB per thread
KERNEL_BASE = 0xFFFF_8000_0000_0000


class Region:
    """One mapped address range ``[start, end)``."""

    __slots__ = ("name", "start", "end", "kind")

    def __init__(self, name: str, start: int, end: int, kind: RegionKind):
        if end <= start:
            raise ValueError("empty region %r" % name)
        self.name = name
        self.start = start
        self.end = end
        self.kind = kind

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end

    def __repr__(self):
        return "<Region %s %#x-%#x %s>" % (
            self.name,
            self.start,
            self.end,
            self.kind.value,
        )


class VirtualMemoryMap:
    """An ordered collection of regions with classification queries."""

    def __init__(self, regions: Optional[List[Region]] = None):
        self._regions: List[Region] = []
        for region in regions or []:
            self.add_region(region)

    def add_region(self, region: Region) -> None:
        for existing in self._regions:
            if region.start < existing.end and existing.start < region.end:
                raise ValueError(
                    "region %r overlaps %r" % (region.name, existing.name)
                )
        self._regions.append(region)
        self._regions.sort(key=lambda r: r.start)

    def regions(self) -> List[Region]:
        return list(self._regions)

    def find(self, addr: int) -> Optional[Region]:
        """The region containing ``addr``, or None if unmapped."""
        # Linear scan: the map holds only a handful of regions.
        for region in self._regions:
            if region.contains(addr):
                return region
        return None

    def is_mapped(self, addr: int) -> bool:
        return self.find(addr) is not None

    def classify(self, addr: int) -> Optional[RegionKind]:
        region = self.find(addr)
        return region.kind if region else None

    def is_application_or_library_code(self, pc: int) -> bool:
        """True if ``pc`` lies in the app binary or a loaded library."""
        kind = self.classify(pc)
        return kind in (RegionKind.APP_CODE, RegionKind.LIB_CODE)

    def is_stack_address(self, addr: int) -> bool:
        return self.classify(addr) is RegionKind.STACK

    def stack_region_of_thread(self, thread_id: int) -> Optional[Region]:
        name = "stack:%d" % thread_id
        for region in self._regions:
            if region.name == name:
                return region
        return None


#: Minimum extent of the app text region.  Real binaries are far larger
#: than their contention hot spots; the imprecision model scatters wrong
#: PCs across the whole text region, so this span controls how diluted
#: that noise is (a tiny region would concentrate noise onto hot lines).
MIN_APP_TEXT_SPAN = 0x0002_0000


def default_memory_map(
    num_threads: int,
    app_code_end: int,
    heap_size: int = 0x0100_0000,
    globals_size: int = 0x0010_0000,
    lib_code_size: int = 0x0010_0000,
) -> VirtualMemoryMap:
    """Build the standard simulated process layout.

    Each thread gets a dedicated 1 MiB stack below ``STACK_TOP``.
    """
    vmmap = VirtualMemoryMap()
    app_end = max(app_code_end, APP_CODE_BASE + MIN_APP_TEXT_SPAN)
    vmmap.add_region(Region("app", APP_CODE_BASE, app_end, RegionKind.APP_CODE))
    vmmap.add_region(Region("libc", LIB_CODE_BASE, LIB_CODE_BASE + lib_code_size, RegionKind.LIB_CODE))
    vmmap.add_region(Region("globals", GLOBALS_BASE, GLOBALS_BASE + globals_size, RegionKind.GLOBALS))
    vmmap.add_region(Region("heap", HEAP_BASE, HEAP_BASE + heap_size, RegionKind.HEAP))
    vmmap.add_region(Region("kernel", KERNEL_BASE, KERNEL_BASE + 0x1000_0000, RegionKind.KERNEL))
    for tid in range(num_threads):
        top = STACK_TOP - tid * 2 * STACK_SIZE
        vmmap.add_region(Region("stack:%d" % tid, top - STACK_SIZE, top, RegionKind.STACK))
    return vmmap
