"""Cache-line state definitions.

The coherence directory (``repro.sim.coherence``) tracks every cached
line's per-core state with the three essential states the paper's
Section 2 identifies: Modified, Shared and Invalid (we add Exclusive for
fidelity to MESI; E behaves like S for HITM purposes since an E line is
clean).
"""

import enum

from repro._constants import CACHE_LINE_SIZE

__all__ = ["LineState", "line_of", "line_base"]


class LineState(enum.Enum):
    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


def line_of(addr: int) -> int:
    """Cache line index of a byte address."""
    return addr // CACHE_LINE_SIZE


def line_base(addr: int) -> int:
    """Base byte address of the cache line containing ``addr``."""
    return addr - (addr % CACHE_LINE_SIZE)
