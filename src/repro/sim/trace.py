"""Precompiled-trace execution engine for the simulator hot path.

The legacy interpreter (`Core.step` driven by `Machine._run_slice`) pays
full Python dispatch per instruction: an enum compare chain, operand
``value_of`` calls, a dict lookup for ALU lambdas, and a ``randrange``
call for interleave jitter.  At ~4 µs/instruction that made ``sim.core``
95–99% of host self-time on every workload (BENCH_core.json).

This module compiles each *entry index* of a core's instruction stream
into a straight-line Python function covering the extended basic block
starting there.  The generated code:

* resolves operands at compile time (register indices and folded
  immediates become literals),
* charges latency with compile-time constants (pin-tax variants are
  separate traces, selected by whether an SSB is attached),
* draws interleave jitter inline — ``r = gb(2); while r >= 2: r =
  gb(2)`` is state-identical to ``Random.randrange(0, 2)`` (CPython's
  ``_randbelow_with_getrandbits`` with ``n.bit_length() == 2``), so the
  shared jitter stream advances exactly as under the interpreter,
* executes L1-hit loads/stores/ADDMs inline against the coherence
  directory's state dicts and the sparse page table, **bailing to the
  interpreter before executing** whenever the access could do anything
  beyond an L1 hit (line miss, straddle, remote state, a registered
  ``on_memory_op`` hook, or a Machine subclass that overrides memory
  routing),
* returns ``(next_pc, time)`` whenever the burst bound ``lb`` is
  reached, so the machine's event loop re-enters the ready heap at
  exactly the cycle the legacy loop would have.

Everything the block *cannot* prove cheap — DIV (may raise), fences,
atomics, HALT, SSB pseudo-ops, ALIAS_CHECK — is left to the legacy
interpreter: the block ends before the slow instruction and the
machine's trampoline performs a single ``core.step()`` for it.  The
result is bit-identical simulation state (registers, memory, MESI
states, stats, RNG stream, event order) at a fraction of the host time.

Compiled blocks are cached globally, keyed by the instruction window's
content signature plus the latency/jitter/tax parameters, so repeated
runs (sweeps, benches, fleets) and identical thread bodies share the
compilation cost.
"""

from typing import List, Optional

from repro.isa.instructions import Instruction, Opcode
from repro.sim.cache import LineState

__all__ = ["CompiledTrace", "_LAZY"]

#: Sentinel marking a table entry whose block has not been compiled yet.
_LAZY = object()

#: Bit layout of a micro function's return value: ``(time << 25) |
#: (jitter << 24) | (op_class << 21) | next_pc``.  Micro functions (one
#: instruction, minimal calling convention) serve the short-horizon
#: bursts of lock-step parallel phases, where block functions would pay
#: their full prologue/epilogue for a single instruction; 21 bits of pc
#: bound the program size the micro path supports (larger streams fall
#: back to blocks + interpreter).
_MICRO_PC_BITS = 21
_MICRO_PC_MASK = (1 << _MICRO_PC_BITS) - 1
#: op_class values reported to the scheduler's deferred stat counters.
_CLS_LOAD, _CLS_STORE, _CLS_LOADSTORE, _CLS_PAUSE = 1, 2, 3, 4
#: op_class 7 marks a *self-accounted* step: the micro function ran the
#: instruction through ``core.step()`` (which updates CoreStats itself),
#: so the scheduler must not add deferred counters for it.
_CLS_SELF = 7
_SELF_TAG = _CLS_SELF << _MICRO_PC_BITS

#: Maximum instructions included in one compiled block.  Kept small:
#: per-entry windows overlap (entry e and e+1 compile nearly the same
#: run), so the cap bounds total compile cost, and the machine's
#: trampoline chains consecutive blocks within a burst so a small cap
#: costs almost nothing at execution time.
BLOCK_CAP = 16

#: Global (block-signature -> function) cache shared across traces,
#: machines and processes' lifetimes; cleared wholesale if it ever grows
#: past the cap (programs are a few hundred instructions, so in practice
#: it never does).
_BLOCK_CACHE: dict = {}
_CACHE_MAX = 8192

_WORD_MASK = 0xFFFFFFFFFFFFFFFF

_ALU_BINOPS = {
    Opcode.ADD: "+",
    Opcode.SUB: "-",
    Opcode.MUL: "*",
    Opcode.AND: "&",
    Opcode.OR: "|",
    Opcode.XOR: "^",
}

_BRANCH_CMPS = {
    Opcode.BEQ: "==",
    Opcode.BNE: "!=",
    Opcode.BLT: "<",
    Opcode.BGE: ">=",
}

_FAST_MEM_OPS = frozenset({Opcode.LOAD, Opcode.STORE, Opcode.ADDM})


def _includable(inst: Instruction, fast_mem: bool) -> bool:
    """Can this instruction be compiled into a fast block?"""
    op = inst.op
    if op is Opcode.MOV:
        return inst.a is not None and inst.rd is not None
    if op in _ALU_BINOPS or op is Opcode.SHL or op is Opcode.SHR:
        return inst.a is not None and inst.b is not None and inst.rd is not None
    if op in _BRANCH_CMPS:
        return (inst.a is not None and inst.b is not None
                and isinstance(inst.target, int))
    if op is Opcode.JMP:
        return isinstance(inst.target, int)
    if op is Opcode.PAUSE or op is Opcode.NOP:
        return True
    if fast_mem and op in _FAST_MEM_OPS:
        if not isinstance(inst.size, int) or not 1 <= inst.size <= 8:
            return False
        if op is Opcode.LOAD:
            return inst.a is not None and inst.rd is not None
        return inst.a is not None and inst.b is not None
    return False


def _scan_window(insts: List[Instruction], entry: int, fast_mem: bool):
    """Indices of the extended basic block starting at ``entry``.

    The window extends through conditional branches (fallthrough stays
    in the block) and ends at an unconditional JMP (inclusive), a slow
    instruction (exclusive), the block cap, or the end of the stream.
    """
    out = []
    i = entry
    n = len(insts)
    while i < n and len(out) < BLOCK_CAP:
        inst = insts[i]
        if not _includable(inst, fast_mem):
            break
        out.append(i)
        if inst.op is Opcode.JMP:
            break
        i += 1
    return out


def _operand_sig(operand) -> Optional[tuple]:
    if operand is None:
        return None
    return (operand.is_reg, operand.value)


def _inst_sig(inst: Instruction) -> tuple:
    return (
        inst.op,
        inst.rd,
        _operand_sig(inst.a),
        _operand_sig(inst.b),
        inst.offset,
        inst.size,
        inst.target if isinstance(inst.target, int) else None,
    )


def _val_expr(operand) -> str:
    """Source for ``operand.value_of(regs)`` (raw, unmasked)."""
    if operand.is_reg:
        return "regs[%d]" % operand.value
    return repr(operand.value)


def _addr_expr(inst: Instruction) -> str:
    """Source for ``inst.a.value_of(regs) + inst.offset``."""
    if inst.a.is_reg:
        if inst.offset:
            return "(regs[%d] + %d)" % (inst.a.value, inst.offset)
        return "regs[%d]" % inst.a.value
    return repr(inst.a.value + inst.offset)


def _gen_source(insts: List[Instruction], entry: int, window: List[int],
                lat_alu: int, lat_l1: int, lat_pause: int, tax: int,
                use_jitter: bool) -> str:
    """Generate the block function's Python source.

    The function signature is ``_f(core, regs, t, lb, gb, dl, pages,
    mach)`` — core, its register list, the current cycle, the burst
    bound, the jitter stream's ``getrandbits``, the coherence
    directory's line->states dict, the sparse page dict, and the machine
    (consulted for the dynamic ``on_memory_op`` hook and to stamp
    ``directory.now`` on inline hits).  It returns
    ``(next_pc_index, time)``.

    The body is a single ``while True`` with one exit: every stop
    condition sets ``ret`` (the interpreter pc to resume at) and
    ``break``s to a shared stats-flush epilogue.  Branches whose target
    is the entry itself compile to ``continue`` — tight loops spin
    inside the function until the burst bound.  Keeping the per-exit
    code to two statements (instead of a full flush) is what makes the
    generated sources small enough to compile cheaply.
    """
    has_load = any(insts[i].op in (Opcode.LOAD, Opcode.ADDM) for i in window)
    has_store = any(insts[i].op in (Opcode.STORE, Opcode.ADDM) for i in window)
    has_pause = any(insts[i].op is Opcode.PAUSE for i in window)
    has_mem = has_load or has_store

    lines = ["def _f(core, regs, t, lb, gb, dl, pages, mach):"]
    emit = lines.append
    emit("    st = core.stats")
    if has_mem:
        emit("    cid = core.core_id")
    init = "    n = 0; bc = 0"
    if has_load:
        init += "; nl = 0"
    if has_store:
        init += "; ns = 0"
    if has_pause:
        init += "; npa = 0"
    emit(init)
    emit("    while True:")
    ind = "        "

    def stop(pc: int) -> str:
        return "ret = %d; break" % pc

    def charge(lat: int) -> List[str]:
        if use_jitter:
            return [
                "r = gb(2)",
                "while r >= 2: r = gb(2)",
                "t += %d + r; bc += %d; n += 1" % (lat, lat),
            ]
        return ["t += %d; bc += %d; n += 1" % (lat, lat)]

    def emit_mem_guard(inst: Instruction, i: int) -> None:
        """Bail-to-interpreter checks shared by LOAD/STORE/ADDM."""
        emit(ind + "a0 = %s" % _addr_expr(inst))
        if inst.size > 1:
            emit(ind + "if (a0 & 63) > %d or mach.on_memory_op is not None: %s"
                 % (64 - inst.size, stop(i)))
        else:
            emit(ind + "if mach.on_memory_op is not None: " + stop(i))

    def emit_write_state(i: int) -> None:
        """Require M (no-op) or E (upgrade to M) in our cache, else bail."""
        emit(ind + "_s = dl.get(a0 >> 6)")
        emit(ind + "_w = _s.get(cid) if _s is not None else None")
        emit(ind + "if _w is not _M:")
        emit(ind + "    if _w is not _E: " + stop(i))
        emit(ind + "    _s[cid] = _M")
        # The interpreter's mem_write stamps directory.now on every
        # access, hits included; serialization stalls charged to later
        # transitions (e.g. an SSB flush) read it.
        emit(ind + "mach.directory.now = t")

    def emit_page_create() -> None:
        emit(ind + "_pi = a0 >> 12")
        emit(ind + "_pg = pages.get(_pi)")
        emit(ind + "if _pg is None:")
        emit(ind + "    _pg = bytearray(4096)")
        emit(ind + "    pages[_pi] = _pg")

    jmp_terminated = False
    for i in window:
        inst = insts[i]
        op = inst.op
        # Execute instruction i only if its scheduled time is within the
        # burst bound — the same `time > limit` gate the event loop
        # applies before each step.
        emit(ind + "if t > lb: " + stop(i))

        if op is Opcode.MOV:
            if inst.a.is_reg:
                emit(ind + "regs[%d] = regs[%d] & %d"
                     % (inst.rd, inst.a.value, _WORD_MASK))
            else:
                emit(ind + "regs[%d] = %d"
                     % (inst.rd, inst.a.value & _WORD_MASK))
            for ln in charge(lat_alu + tax):
                emit(ind + ln)
        elif op in _ALU_BINOPS:
            emit(ind + "regs[%d] = (%s %s %s) & %d"
                 % (inst.rd, _val_expr(inst.a), _ALU_BINOPS[op],
                    _val_expr(inst.b), _WORD_MASK))
            for ln in charge(lat_alu + tax):
                emit(ind + ln)
        elif op is Opcode.SHL or op is Opcode.SHR:
            shift = "<<" if op is Opcode.SHL else ">>"
            if inst.b.is_reg:
                count = "(regs[%d] & 63)" % inst.b.value
            else:
                count = "%d" % (inst.b.value & 63)
            emit(ind + "regs[%d] = ((%s %s %s)) & %d"
                 % (inst.rd, _val_expr(inst.a), shift, count, _WORD_MASK))
            for ln in charge(lat_alu + tax):
                emit(ind + ln)
        elif op in _BRANCH_CMPS:
            for ln in charge(lat_alu + tax):
                emit(ind + ln)
            cond = "%s %s %s" % (
                _val_expr(inst.a), _BRANCH_CMPS[op], _val_expr(inst.b))
            if inst.target == entry:
                emit(ind + "if %s: continue" % cond)
            else:
                emit(ind + "if %s: %s" % (cond, stop(inst.target)))
        elif op is Opcode.JMP:
            for ln in charge(lat_alu + tax):
                emit(ind + ln)
            if inst.target == entry:
                emit(ind + "continue")
            else:
                emit(ind + stop(inst.target))
            jmp_terminated = True
        elif op is Opcode.PAUSE:
            for ln in charge(lat_pause + tax):
                emit(ind + ln)
            emit(ind + "npa += 1")
        elif op is Opcode.NOP:
            for ln in charge(lat_alu + tax):
                emit(ind + ln)
        elif op is Opcode.LOAD:
            emit_mem_guard(inst, i)
            # Read hit requires any non-Invalid state in our cache; the
            # directory never stores Invalid explicitly, so membership
            # is the whole test.  Hits cause no MESI transition.
            emit(ind + "_s = dl.get(a0 >> 6)")
            emit(ind + "if _s is None or cid not in _s: " + stop(i))
            emit(ind + "mach.directory.now = t")
            emit(ind + "_pg = pages.get(a0 >> 12)")
            emit(ind + "o = a0 & 4095")
            emit(ind + "regs[%d] = 0 if _pg is None else "
                       "fb(_pg[o:o + %d], 'little')" % (inst.rd, inst.size))
            for ln in charge(lat_l1 + tax):
                emit(ind + ln)
            emit(ind + "nl += 1")
        elif op is Opcode.STORE:
            emit_mem_guard(inst, i)
            emit_write_state(i)
            emit_page_create()
            emit(ind + "o = a0 & 4095")
            size_mask = (1 << (8 * inst.size)) - 1
            if inst.b.is_reg:
                emit(ind + "_pg[o:o + %d] = (regs[%d] & %d)"
                           ".to_bytes(%d, 'little')"
                     % (inst.size, inst.b.value, size_mask, inst.size))
            else:
                payload = (inst.b.value & size_mask).to_bytes(
                    inst.size, "little")
                emit(ind + "_pg[o:o + %d] = %r" % (inst.size, payload))
            for ln in charge(lat_l1 + tax):
                emit(ind + ln)
            emit(ind + "ns += 1")
        elif op is Opcode.ADDM:
            # Plain load+store pair at one PC: the read is an L1 hit in
            # M or E, the write upgrades E->M — both l1_hit latency.
            emit_mem_guard(inst, i)
            emit_write_state(i)
            emit_page_create()
            emit(ind + "o = a0 & 4095")
            size_mask = (1 << (8 * inst.size)) - 1
            emit(ind + "_pg[o:o + %d] = ((fb(_pg[o:o + %d], 'little') + %s)"
                       " & %d).to_bytes(%d, 'little')"
                 % (inst.size, inst.size, _val_expr(inst.b), size_mask,
                    inst.size))
            for ln in charge(2 * lat_l1 + lat_alu + tax):
                emit(ind + ln)
            emit(ind + "nl += 1")
            emit(ind + "ns += 1")
        else:  # pragma: no cover - scan admits only the ops above
            raise AssertionError("unexpected op in fast window: %r" % op)

    if not jmp_terminated:
        emit(ind + stop(window[-1] + 1))
    flush = "    st.instructions += n; st.busy_cycles += bc"
    if has_load:
        flush += "; st.loads += nl"
    if has_store:
        flush += "; st.stores += ns"
    if has_pause:
        flush += "; st.pauses += npa"
    emit(flush)
    emit("    return ret, t")
    return "\n".join(lines)


def _emit_step_tail(emit, i: int, use_jitter: bool, ind: str) -> None:
    """Emit the exact-interpreter fallback: one ``core.step()``.

    Reproduces the legacy pop bit-for-bit: the machine clock is set to
    the instruction's scheduled time (the coherence directory and PMU
    hooks read it), the core's pc is synced (``step`` fetches through
    it, and sampling observes it), the interleave jitter is drawn
    *after* the step from the same stream position, and the advance is
    ``max(1, latency)``.  ``core.step()`` updates CoreStats itself, so
    the return is tagged ``_CLS_SELF`` to skip the deferred counters.
    """
    emit(ind + "core.pc_index = %d" % i)
    emit(ind + "m = core.machine")
    emit(ind + "m.cycle = t")
    emit(ind + "L = core.step()")
    if use_jitter:
        emit(ind + "r = gb(2)")
        emit(ind + "while r >= 2: r = gb(2)")
        emit(ind + "L = L + r")
        emit(ind + "return ((t + (L if L > 0 else 1)) << 25) | (r << 24)"
             " | %d | core.pc_index" % _SELF_TAG)
    else:
        emit(ind + "return ((t + (L if L > 0 else 1)) << 25)"
             " | %d | core.pc_index" % _SELF_TAG)


def _gen_step_micro_source(i: int, use_jitter: bool) -> str:
    """Micro function that simply runs instruction ``i`` on the
    interpreter (exact semantics for atomics, fences, SSB pseudo-ops,
    DIV, ALIAS_CHECK — anything without an inline fast path)."""
    lines = ["def _m(regs, t, gb, core, dl, pages):"]
    _emit_step_tail(lines.append, i, use_jitter, "    ")
    return "\n".join(lines)


def _gen_micro_source(insts: List[Instruction], i: int, lat_alu: int,
                      lat_l1: int, lat_pause: int, tax: int,
                      use_jitter: bool) -> str:
    """Generate the single-instruction micro function at index ``i``.

    Signature ``_m(regs, t, gb, core, dl, pages)``; returns the encoded
    ``(time << 25) | (jitter << 24) | (op_class << 21) | next_pc``.
    Memory operations take an inline L1-hit fast path when legal
    (resident line, no straddle, no ``on_memory_op`` hook) and otherwise
    fall back to one exact ``core.step()`` (see ``_emit_step_tail``) —
    they never bail to the caller.  Unlike block functions there is no
    loop, no burst-bound check and no stats flush: the caller guarantees
    the instruction's time is within the burst bound and accumulates
    stats itself from the op class, so a one-instruction step costs a
    fraction of a block call.
    """
    inst = insts[i]
    op = inst.op
    lines = ["def _m(regs, t, gb, core, dl, pages):"]
    emit = lines.append

    def tail(lat: int, cls: int, nxt: int, ind: str) -> None:
        tag = (cls << _MICRO_PC_BITS) | nxt
        if use_jitter:
            emit(ind + "r = gb(2)")
            emit(ind + "while r >= 2: r = gb(2)")
            emit(ind + "return ((t + %d + r) << 25) | (r << 24) | %d"
                 % (lat, tag))
        else:
            emit(ind + "return ((t + %d) << 25) | %d" % (lat, tag))

    nxt = i + 1
    if op is Opcode.MOV:
        if inst.a.is_reg:
            emit("    regs[%d] = regs[%d] & %d"
                 % (inst.rd, inst.a.value, _WORD_MASK))
        else:
            emit("    regs[%d] = %d" % (inst.rd, inst.a.value & _WORD_MASK))
        tail(lat_alu + tax, 0, nxt, "    ")
    elif op in _ALU_BINOPS:
        emit("    regs[%d] = (%s %s %s) & %d"
             % (inst.rd, _val_expr(inst.a), _ALU_BINOPS[op],
                _val_expr(inst.b), _WORD_MASK))
        tail(lat_alu + tax, 0, nxt, "    ")
    elif op is Opcode.SHL or op is Opcode.SHR:
        shift = "<<" if op is Opcode.SHL else ">>"
        if inst.b.is_reg:
            count = "(regs[%d] & 63)" % inst.b.value
        else:
            count = "%d" % (inst.b.value & 63)
        emit("    regs[%d] = ((%s %s %s)) & %d"
             % (inst.rd, _val_expr(inst.a), shift, count, _WORD_MASK))
        tail(lat_alu + tax, 0, nxt, "    ")
    elif op in _BRANCH_CMPS:
        emit("    if %s %s %s:"
             % (_val_expr(inst.a), _BRANCH_CMPS[op], _val_expr(inst.b)))
        tail(lat_alu + tax, 0, inst.target, "        ")
        tail(lat_alu + tax, 0, nxt, "    ")
    elif op is Opcode.JMP:
        tail(lat_alu + tax, 0, inst.target, "    ")
    elif op is Opcode.PAUSE:
        tail(lat_pause + tax, _CLS_PAUSE, nxt, "    ")
    elif op is Opcode.NOP:
        tail(lat_alu + tax, 0, nxt, "    ")
    else:  # LOAD / STORE / ADDM (scan admits nothing else)
        # Fast path guards nest (hook, straddle, residency/state); any
        # failure falls through to the exact interpreter step below,
        # before any state is mutated or jitter drawn.
        emit("    if core.machine.on_memory_op is None:")
        emit("        cid = core.core_id")
        emit("        a0 = %s" % _addr_expr(inst))
        ind = "        "
        if inst.size > 1:
            emit("        if (a0 & 63) <= %d:" % (64 - inst.size))
            ind = "            "
        if op is Opcode.LOAD:
            emit(ind + "_s = dl.get(a0 >> 6)")
            emit(ind + "if _s is not None and cid in _s:")
            ind2 = ind + "    "
            # The interpreter's mem_read stamps directory.now on every
            # access, hits included; serialization stalls charged to
            # later transitions (e.g. an SSB flush) read it.
            emit(ind2 + "core.machine.directory.now = t")
            emit(ind2 + "_pg = pages.get(a0 >> 12)")
            emit(ind2 + "o = a0 & 4095")
            emit(ind2 + "regs[%d] = 0 if _pg is None else "
                 "fb(_pg[o:o + %d], 'little')" % (inst.rd, inst.size))
            tail(lat_l1 + tax, _CLS_LOAD, nxt, ind2)
        else:
            emit(ind + "_s = dl.get(a0 >> 6)")
            emit(ind + "_w = _s.get(cid) if _s is not None else None")
            emit(ind + "if _w is _M or _w is _E:")
            ind2 = ind + "    "
            emit(ind2 + "core.machine.directory.now = t")
            emit(ind2 + "if _w is not _M: _s[cid] = _M")
            emit(ind2 + "_pi = a0 >> 12")
            emit(ind2 + "_pg = pages.get(_pi)")
            emit(ind2 + "if _pg is None:")
            emit(ind2 + "    _pg = bytearray(4096)")
            emit(ind2 + "    pages[_pi] = _pg")
            emit(ind2 + "o = a0 & 4095")
            size_mask = (1 << (8 * inst.size)) - 1
            if op is Opcode.STORE:
                if inst.b.is_reg:
                    emit(ind2 + "_pg[o:o + %d] = (regs[%d] & %d)"
                         ".to_bytes(%d, 'little')"
                         % (inst.size, inst.b.value, size_mask, inst.size))
                else:
                    payload = (inst.b.value & size_mask).to_bytes(
                        inst.size, "little")
                    emit(ind2 + "_pg[o:o + %d] = %r" % (inst.size, payload))
                tail(lat_l1 + tax, _CLS_STORE, nxt, ind2)
            else:  # ADDM
                emit(ind2 + "_pg[o:o + %d] = ((fb(_pg[o:o + %d], 'little')"
                     " + %s) & %d).to_bytes(%d, 'little')"
                     % (inst.size, inst.size, _val_expr(inst.b), size_mask,
                        inst.size))
                tail(2 * lat_l1 + lat_alu + tax, _CLS_LOADSTORE, nxt, ind2)
        _emit_step_tail(emit, i, use_jitter, "    ")
    return "\n".join(lines)


def _exec_namespace() -> dict:
    return {
        "_M": LineState.MODIFIED,
        "_E": LineState.EXCLUSIVE,
        "fb": int.from_bytes,
    }


def _compile_window(insts: List[Instruction], entry: int, window: List[int],
                    lat_alu: int, lat_l1: int, lat_pause: int, tax: int,
                    use_jitter: bool):
    key = (
        entry,
        tax,
        use_jitter,
        lat_alu,
        lat_l1,
        lat_pause,
        tuple(_inst_sig(insts[i]) for i in window),
    )
    fn = _BLOCK_CACHE.get(key)
    if fn is None:
        source = _gen_source(insts, entry, window, lat_alu, lat_l1,
                             lat_pause, tax, use_jitter)
        namespace = _exec_namespace()
        exec(compile(source, "<trace-block>", "exec"), namespace)
        fn = namespace["_f"]
        if len(_BLOCK_CACHE) >= _CACHE_MAX:
            _BLOCK_CACHE.clear()
        _BLOCK_CACHE[key] = fn
    return fn


class CompiledTrace:
    """Lazy per-entry-index compilation table for one instruction list.

    ``table[i]`` is the compiled block function for entry index ``i``,
    ``None`` when instruction ``i`` must run on the legacy interpreter,
    or the ``_LAZY`` sentinel before first use.  Entries compile on
    demand because mid-block re-entry (after an interleave or a bail) is
    the common case in parallel phases, not the exception.
    """

    __slots__ = ("insts", "table", "micro", "leaders", "_lat_alu",
                 "_lat_l1", "_lat_pause", "_tax", "_use_jitter",
                 "_fast_mem")

    def __init__(self, insts: List[Instruction], latency, taxed: bool,
                 use_jitter: bool, fast_mem: bool):
        self.insts = insts
        self.table: List = [_LAZY] * len(insts)
        # Micro table: per-pc single-instruction functions for the
        # short-horizon scheduler path.  Streams too long for the pc
        # field of the encoded return value get no micro path (blocks
        # and the interpreter still cover them).
        if len(insts) <= _MICRO_PC_MASK:
            self.micro: List = [_LAZY] * len(insts)
        else:  # pragma: no cover - programs are a few hundred insns
            self.micro = [None] * len(insts)
        self._lat_alu = latency.alu
        self._lat_l1 = latency.l1_hit
        self._lat_pause = latency.pause
        self._tax = latency.pin_tax if taxed else 0
        self._use_jitter = use_jitter
        self._fast_mem = fast_mem
        # Basic-block leaders: the only entries worth a block function.
        # Compiling a block per *arbitrary* entry means every mid-block
        # re-entry (interleave, bail resume, slice pause) compiles its
        # own overlapping suffix window — quadratic compile cost per
        # basic block, which dominated short runs.  Non-leader entries
        # run micro steps until the next leader instead.
        flags = bytearray(len(insts) + 1)
        if insts:
            flags[0] = 1
        n = len(insts)
        for i, inst in enumerate(insts):
            op = inst.op
            if op in _BRANCH_CMPS or op is Opcode.JMP:
                if isinstance(inst.target, int) and 0 <= inst.target <= n:
                    flags[inst.target] = 1
            if not _includable(inst, fast_mem) and i + 1 <= n:
                # Resume point after an interpreter-executed slow op.
                flags[i + 1] = 1
        self.leaders = flags

    def resolve(self, entry: int):
        """Compile (or reject) the block at ``entry``; memoized."""
        if not self.leaders[entry]:
            self.table[entry] = None
            return None
        window = _scan_window(self.insts, entry, self._fast_mem)
        if not window:
            fn = None
        else:
            fn = _compile_window(
                self.insts, entry, window, self._lat_alu, self._lat_l1,
                self._lat_pause, self._tax, self._use_jitter,
            )
        self.table[entry] = fn
        return fn

    def resolve_micro(self, i: int):
        """Compile the micro function at ``i``; memoized.

        Every instruction gets a micro function except HALT (the
        scheduler's legacy pop handles the ready-queue removal): inline
        ops compile to fast bodies, everything else to an exact
        ``core.step()`` call — so micro chains flow through slow
        instructions without returning to the scheduler.
        """
        inst = self.insts[i]
        if inst.op is Opcode.HALT:
            fn = None
        elif _includable(inst, self._fast_mem):
            key = ("m", i, self._tax, self._use_jitter, self._lat_alu,
                   self._lat_l1, self._lat_pause, _inst_sig(inst))
            fn = _BLOCK_CACHE.get(key)
            if fn is None:
                source = _gen_micro_source(
                    self.insts, i, self._lat_alu, self._lat_l1,
                    self._lat_pause, self._tax, self._use_jitter,
                )
                namespace = _exec_namespace()
                exec(compile(source, "<trace-micro>", "exec"), namespace)
                fn = namespace["_m"]
                if len(_BLOCK_CACHE) >= _CACHE_MAX:
                    _BLOCK_CACHE.clear()
                _BLOCK_CACHE[key] = fn
        else:
            # Interpreter-exact micro: the source depends only on the
            # index and jitter flag, so one cache entry serves every
            # slow opcode at this index across traces and tax variants.
            key = ("ms", i, self._use_jitter)
            fn = _BLOCK_CACHE.get(key)
            if fn is None:
                source = _gen_step_micro_source(i, self._use_jitter)
                namespace = _exec_namespace()
                exec(compile(source, "<trace-micro>", "exec"), namespace)
                fn = namespace["_m"]
                if len(_BLOCK_CACHE) >= _CACHE_MAX:
                    _BLOCK_CACHE.clear()
                _BLOCK_CACHE[key] = fn
        self.micro[i] = fn
        return fn
