"""The multicore machine: event loop, memory routing, PMU hooks.

The machine binds together memory, the coherence directory, the HTM and
one :class:`Core` per program thread, and advances them with a simple
discrete-event loop: the core with the earliest ready-time executes its
next instruction, whose latency (coherence stalls included) pushes its
ready-time forward.  HITM events observed by the coherence model are
forwarded to an ``on_hitm`` hook — this is where the PMU (or a
VTune-style profiler) taps in, and the hook's return value is charged to
the triggering core as extra stall cycles, which is how profiling
overhead becomes visible in simulated runtime.
"""

import heapq
from typing import Callable, List, Optional

from repro._constants import NUM_CORES
from repro.accel import resolve_sim_engine
from repro.errors import SimulationError
from repro.isa.program import Program
from repro.obs.profile import NULL_PROFILER
from repro.obs.trace import NULL_TRACER
from repro.rng import RngStreams
from repro.sim.allocator import Allocator
from repro.sim.coherence import CoherenceDirectory
from repro.sim.core import Core, CoreState
from repro.sim.htm import HardwareTransactionalMemory
from repro.sim.memory import Memory
from repro.sim.timing import LatencyModel
from repro.sim.trace import _LAZY, CompiledTrace
from repro.sim.vmmap import STACK_SIZE, STACK_TOP, default_memory_map

__all__ = ["Machine", "RunResult"]

#: Signature of the HITM hook: (core_id, inst, addr, is_write, cycle) -> extra cycles.
HitmHook = Callable[[int, object, int, bool, int], int]

#: Signature of the memory-op hook used by heavyweight profilers.
MemOpHook = Callable[[int, object, int], int]


class RunResult:
    """Outcome of a machine run (or a resumable slice of one)."""

    def __init__(self, machine: "Machine", cycles: int, finished: bool):
        self.cycles = cycles
        self.finished = finished
        self.core_stats = [core.stats for core in machine.cores]
        self.registers = [list(core.registers) for core in machine.cores]
        self.hitm_count = machine.directory.hitm_count
        self.load_hitm_count = machine.directory.load_hitm_count
        self.store_hitm_count = machine.directory.store_hitm_count
        self.instructions = sum(s.instructions for s in self.core_stats)

    @property
    def hitm_rate_per_second(self) -> float:
        """HITMs per simulated second (see CYCLES_PER_SECOND)."""
        from repro._constants import CYCLES_PER_SECOND

        if self.cycles == 0:
            return 0.0
        return self.hitm_count * CYCLES_PER_SECOND / self.cycles

    def __repr__(self):
        return "<RunResult cycles=%d insns=%d hitms=%d%s>" % (
            self.cycles,
            self.instructions,
            self.hitm_count,
            "" if self.finished else " PAUSED",
        )


class Machine:
    """A simulated multicore executing one multithreaded program."""

    def __init__(
        self,
        program: Program,
        latency: Optional[LatencyModel] = None,
        seed: int = 0,
        heap_offset: int = 0,
        num_cores: int = NUM_CORES,
        jitter: bool = True,
        allocator: Optional[Allocator] = None,
        fault_injector=None,
        tracer=None,
        profiler=None,
        engine: str = "auto",
    ):
        if program.num_threads > num_cores:
            raise SimulationError(
                "program %s needs %d threads but machine has %d cores"
                % (program.name, program.num_threads, num_cores)
            )
        self.program = program
        self.latency = latency or LatencyModel()
        self.rng = RngStreams(seed)
        self.memory = Memory()
        self.vmmap = default_memory_map(program.num_threads, program.code_end)
        self.allocator = allocator or Allocator(base_offset=heap_offset)
        self.directory = CoherenceDirectory(self.latency, num_cores=num_cores)
        #: Optional :class:`repro.faults.FaultInjector` shared by the
        #: fault-hosting components of this machine (currently the HTM).
        self.fault_injector = fault_injector
        #: Structured event tracer (``repro.obs.trace``); the shared
        #: NULL_TRACER when observability is off, so instrumentation
        #: sites can test ``tracer.enabled`` unconditionally.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Host-time profiler (``repro.obs.profile``); NULL_PROFILER
        #: when profiling is off.  Charges the event loop's host time to
        #: ``sim.core`` — it never touches the simulated clock.
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self.htm = HardwareTransactionalMemory(
            self.memory, self.directory, injector=fault_injector,
            tracer=self.tracer, clock=lambda: self.cycle,
        )
        self.cores: List[Core] = []
        for tid, thread in enumerate(program.threads):
            core = Core(tid, self, thread.instructions)
            core.registers[14] = tid
            core.registers[15] = STACK_TOP - tid * 2 * STACK_SIZE - 4096
            self.cores.append(core)
        self.cycle = 0
        self.jitter = jitter
        self._jitter_rng = self.rng.stream("interleave")
        #: Simulator engine: "trace" runs precompiled basic-block
        #: traces with interpreter fallback at every slow/interaction
        #: point; "interp" is the legacy per-instruction loop.  Both are
        #: bit-identical in every observable (golden-pinned).
        self.engine = resolve_sim_engine(engine)
        # The trace engine may inline L1-hit loads/stores only when
        # memory routing is the base machine's: execution-model
        # baselines (e.g. Sheriff's diff-and-merge) override mem_read /
        # mem_write, and every access must go through their overlays.
        self._fast_mem_ok = (
            type(self).mem_read is Machine.mem_read
            and type(self).mem_write is Machine.mem_write
        )
        #: PMU / profiler hooks (None = free execution).
        self.on_hitm: Optional[HitmHook] = None
        self.on_memory_op: Optional[MemOpHook] = None
        #: Cycles injected into cores by hooks, for overhead accounting.
        self.injected_stall_cycles = 0

    # ------------------------------------------------------------------
    # Initial state helpers (used by workload setup code)
    # ------------------------------------------------------------------

    def set_register(self, thread_id: int, register: int, value: int) -> None:
        self.cores[thread_id].registers[register] = value

    def fence_extra(self, core: Core) -> int:
        """Hook: extra cycles charged at fences / atomics / thread exit.

        The base machine charges nothing; execution-model baselines
        (Sheriff's threads-as-processes diff-and-merge) override this.
        """
        return 0

    # ------------------------------------------------------------------
    # Memory routing (called by cores)
    # ------------------------------------------------------------------

    def mem_read(self, core: Core, inst, addr: int, size: int):
        """Coherent read; returns (value, latency)."""
        self.directory.now = self.cycle
        result = self.directory.access(core.core_id, addr, size, is_write=False)
        latency = result.latency
        if result.hitm:
            core.stats.local_hitm_events += 1
            latency += self._fire_hitm(core, inst, addr, is_write=False)
        if self.on_memory_op is not None:
            latency += self._fire_memop(core, inst)
        value = self.memory.read(addr, size)
        return value, latency

    def mem_write(self, core: Core, inst, addr: int, value: int, size: int) -> int:
        """Coherent write; returns latency."""
        self.directory.now = self.cycle
        result = self.directory.access(core.core_id, addr, size, is_write=True)
        latency = result.latency
        if result.hitm:
            core.stats.local_hitm_events += 1
            latency += self._fire_hitm(core, inst, addr, is_write=True)
        if self.on_memory_op is not None:
            latency += self._fire_memop(core, inst)
        self.memory.write(addr, value, size)
        return latency

    def _fire_hitm(self, core: Core, inst, addr: int, is_write: bool) -> int:
        if self.on_hitm is None:
            return 0
        extra = self.on_hitm(core.core_id, inst, addr, is_write, self.cycle)
        if extra:
            self.injected_stall_cycles += extra
            core.stats.pmu_stall_cycles += extra
        return extra

    def _fire_memop(self, core: Core, inst) -> int:
        extra = self.on_memory_op(core.core_id, inst, self.cycle)
        if extra:
            self.injected_stall_cycles += extra
            core.stats.pmu_stall_cycles += extra
        return extra

    # ------------------------------------------------------------------
    # Event loop (resumable: LASERREPAIR attaches mid-run, like Pin)
    # ------------------------------------------------------------------

    def _init_ready_heap(self) -> None:
        self._ready: List = []  # (ready_time, core_id)
        self._finish_time = 0
        for core in self.cores:
            if core.state is CoreState.RUNNING:
                heapq.heappush(self._ready, (0, core.core_id))

    def run(self, until_cycle: Optional[int] = None,
            max_cycles: int = 200_000_000) -> RunResult:
        """Advance the machine; resumable.

        With ``until_cycle`` set, execution pauses once the global clock
        passes it (state is retained; call ``run`` again to resume) —
        this is the window mechanism the LASER system uses for periodic
        detection checks and online repair attach.  ``max_cycles`` is a
        livelock backstop.
        """
        run_slice = (
            self._run_slice_traced if self.engine == "trace"
            else self._run_slice
        )
        profiler = self.profiler
        if not profiler.enabled:
            return run_slice(until_cycle, max_cycles)
        profiler.begin("sim.core")
        try:
            return run_slice(until_cycle, max_cycles)
        finally:
            profiler.end()

    def _run_slice(self, until_cycle: Optional[int],
                   max_cycles: int) -> RunResult:
        if not hasattr(self, "_ready"):
            self._init_ready_heap()
        ready = self._ready
        jitter_rng = self._jitter_rng
        use_jitter = self.jitter
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit("machine.slice", self.cycle, ph="B",
                        until=until_cycle)
        limit = min(until_cycle, max_cycles) if until_cycle is not None else max_cycles
        while ready:
            time = ready[0][0]
            if time > limit:
                self.cycle = time
                if until_cycle is not None and time <= max_cycles:
                    if tracer.enabled:
                        tracer.emit("machine.slice", time, ph="E")
                    return RunResult(self, time, finished=False)
                raise SimulationError(
                    "machine exceeded max_cycles=%d (livelock?)" % max_cycles
                )
            time, core_id = heapq.heappop(ready)
            self.cycle = time
            core = self.cores[core_id]
            latency = core.step()
            if use_jitter:
                latency += jitter_rng.randrange(0, 2)
            next_time = time + max(1, latency)
            if core.state is CoreState.RUNNING:
                heapq.heappush(ready, (next_time, core_id))
            else:
                self._finish_time = max(self._finish_time, next_time)
        self.cycle = max(self.cycle, self._finish_time)
        if tracer.enabled:
            tracer.emit("machine.slice", self.cycle, ph="E", finished=True)
        return RunResult(self, self.cycle, finished=True)

    def _trace_for(self, core: Core) -> CompiledTrace:
        """The compiled trace matching the core's current code + tax.

        Two variants per core (with / without the DBI pin tax baked into
        the latency literals); both are invalidated by ``replace_code``
        and additionally re-checked by identity here, so a repair attach
        or detach mid-run can never execute a stale block.
        """
        taxed = core.ssb is not None
        trace = core._trace_taxed if taxed else core._trace
        if trace is None or trace.insts is not core.instructions:
            trace = CompiledTrace(
                core.instructions, self.latency, taxed, self.jitter,
                self._fast_mem_ok,
            )
            if taxed:
                core._trace_taxed = trace
            else:
                core._trace = trace
        return trace

    def _run_slice_traced(self, until_cycle: Optional[int],
                          max_cycles: int) -> RunResult:
        """Event loop backed by the precompiled-trace engine.

        Identical event semantics to ``_run_slice``: the scheduling
        order, jitter stream consumption, latency charging and
        pause/livelock checks are all preserved.  Two things differ in
        implementation only:

        * Ready cores are tracked as encoded integers ``(time <<
          shift) | core_id`` in a small list instead of a tuple heap —
          integer comparison gives exactly the heap's ``(time,
          core_id)`` lexicographic order, and a linear min/second-min
          scan beats heap churn at machine core counts.  The tuple heap
          is materialized on pause/finish so resume and ``finished``
          keep their contract.
        * After selecting a core, it executes a *burst* of compiled
          instructions while its local time ``t`` stays within ``lb`` —
          the largest time at which ``(t, core_id)`` would still win the
          next selection (strictly before the runner-up, or tied with a
          lower core id).  Cross-core effects are impossible inside a
          burst (compiled blocks touch only local state and L1 hits), so
          the other cores' ready times stay valid throughout.
        * Bursts pick one of two compiled shapes by horizon: block
          functions amortize their prologue/stats-flush over long
          straight-line runs (serial phases), while single-instruction
          *micro* functions with a minimal calling convention serve the
          1–2 instruction horizons of lock-step parallel phases, with
          their stats deferred into per-core counters flushed at slice
          boundaries (sums commute, and nothing reads core stats inside
          a slice).
        """
        if not hasattr(self, "_ready"):
            self._init_ready_heap()
        jitter_rng = self._jitter_rng
        use_jitter = self.jitter
        gb = jitter_rng.getrandbits
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit("machine.slice", self.cycle, ph="B",
                        until=until_cycle)
        limit = min(until_cycle, max_cycles) if until_cycle is not None else max_cycles
        cores = self.cores
        ncores = len(cores)
        dl = self.directory._lines
        pages = self.memory._pages
        shift = max(3, (ncores - 1).bit_length())
        cid_mask = (1 << shift) - 1
        #: Ready queue as encoded ints; order identical to the heap's.
        active = [(t << shift) | cid for t, cid in self._ready]
        huge = (max_cycles + 16) << shift
        # Deferred micro-step stats (flushed into CoreStats before any
        # observer can read them: slice pause/finish and error unwind).
        cnt = [0] * ncores
        busy = [0] * ncores
        nld = [0] * ncores
        nst = [0] * ncores
        npa = [0] * ncores
        # Per-core dispatch state, hoisted for the slice: (table, micro,
        # leader flags, len, registers, trace).  Safe to cache because
        # code swaps and SSB attach/detach (``replace_code``) only
        # happen from services, which run between slices.
        tstate: List = [None] * ncores

        def flush_stats():
            for c in cores:
                i = c.core_id
                if cnt[i]:
                    st = c.stats
                    st.instructions += cnt[i]
                    st.busy_cycles += busy[i]
                    st.loads += nld[i]
                    st.stores += nst[i]
                    st.pauses += npa[i]
                    cnt[i] = busy[i] = nld[i] = nst[i] = npa[i] = 0

        def to_heap():
            self._ready = sorted(
                (e >> shift, e & cid_mask) for e in active)

        try:
            while active:
                # Linear min / second-min scan (the "pop" and the
                # runner-up that bounds the winner's burst).
                m1 = m2 = huge
                for e in active:
                    if e < m1:
                        m2 = m1
                        m1 = e
                    elif e < m2:
                        m2 = e
                time = m1 >> shift
                if time > limit:
                    self.cycle = time
                    flush_stats()
                    to_heap()
                    if until_cycle is not None and time <= max_cycles:
                        if tracer.enabled:
                            tracer.emit("machine.slice", time, ph="E")
                        return RunResult(self, time, finished=False)
                    raise SimulationError(
                        "machine exceeded max_cycles=%d (livelock?)"
                        % max_cycles
                    )
                core_id = m1 & cid_mask
                core = cores[core_id]
                ts = tstate[core_id]
                if ts is None:
                    trace = (core._trace_taxed if core.ssb is not None
                             else core._trace)
                    if trace is None or trace.insts is not core.instructions:
                        trace = self._trace_for(core)
                    ts = (trace.table, trace.micro, trace.leaders,
                          len(trace.micro), core.registers, trace)
                    tstate[core_id] = ts
                table, micro, lflags, nlen, regs, trace = ts
                pc2 = core.pc_index
                # Largest t with ((t << shift) | core_id) < m2.
                lb = (m2 - core_id - 1) >> shift
                if lb > limit:
                    lb = limit
                # Burst: execute while this core's time still wins the
                # next selection (t2 <= lb holds at each loop head).
                # Long horizons at a basic-block leader run a block
                # function; everything else takes one micro step (inline
                # fast body, or an interpreter-exact ``core.step()``
                # inside the micro function for slow ops) — so the burst
                # flows through memory misses, atomics and SSB ops
                # without returning to the scheduler.
                t2 = time
                while True:
                    if pc2 < nlen and lflags[pc2] and lb - t2 >= 4:
                        fn = table[pc2]
                        if fn is _LAZY:
                            fn = trace.resolve(pc2)
                        if fn is not None:
                            pc3, t3 = fn(core, regs, t2, lb, gb, dl,
                                         pages, self)
                            if t3 != t2:
                                pc2, t2 = pc3, t3
                                if t2 > lb:
                                    break
                                continue
                            # Entry bail (memory op needing the full
                            # coherence path): fall through to the
                            # micro step, which handles it exactly.
                    if pc2 >= nlen:
                        break
                    mfn = micro[pc2]
                    if mfn is _LAZY:
                        mfn = trace.resolve_micro(pc2)
                    if mfn is None:
                        break  # HALT: the legacy pop below retires it.
                    v = mfn(regs, t2, gb, core, dl, pages)
                    if v < 0:
                        break
                    t3 = v >> 25
                    cls = v & 0xE00000
                    if cls != 0xE00000:
                        cnt[core_id] += 1
                        busy[core_id] += t3 - t2 - ((v >> 24) & 1)
                        if cls:
                            if cls == 0x200000:
                                nld[core_id] += 1
                            elif cls == 0x400000:
                                nst[core_id] += 1
                            elif cls == 0x600000:
                                nld[core_id] += 1
                                nst[core_id] += 1
                            else:
                                npa[core_id] += 1
                    pc2 = v & 0x1FFFFF
                    t2 = t3
                    if t2 > lb:
                        break
                if t2 != time:
                    # Progress: requeue at the burst's end time.  (Every
                    # executed instruction advances time — latencies are
                    # >= 1 — so no-progress means nothing ran.)
                    core.pc_index = pc2
                    active[active.index(m1)] = (t2 << shift) | core_id
                    continue
                self.cycle = time
                latency = core.step()
                if use_jitter:
                    latency += jitter_rng.randrange(0, 2)
                next_time = time + max(1, latency)
                if core.state is CoreState.RUNNING:
                    active[active.index(m1)] = (next_time << shift) | core_id
                else:
                    active.remove(m1)
                    self._finish_time = max(self._finish_time, next_time)
        except BaseException:
            flush_stats()
            raise
        self._ready = []
        flush_stats()
        self.cycle = max(self.cycle, self._finish_time)
        if tracer.enabled:
            tracer.emit("machine.slice", self.cycle, ph="E", finished=True)
        return RunResult(self, self.cycle, finished=True)

    @property
    def finished(self) -> bool:
        return hasattr(self, "_ready") and not self._ready
