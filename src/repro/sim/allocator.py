"""Simulated heap allocator.

Cache contention "can even arise invisibly in the program due to the
opaque decisions of the memory allocator" (Section 1).  This allocator
reproduces the relevant glibc behaviour: a bump allocator whose chunks
carry a 16-byte header and whose user pointers are 16-byte aligned by
default — so a 64-byte struct array is generally *not* 64-byte aligned
and may straddle cache lines (the `lreg_args` situation of Figure 2).

``base_offset`` shifts the whole heap by a small amount; the LASER
detector's fork of the application perturbs the environment and hence
the heap start, which is how the paper explains ``lu_ncb`` getting 30%
faster under LASER "due to a coincidental change in memory layout".
"""

from typing import Dict, List, Tuple

from repro.errors import AllocationError
from repro.sim.vmmap import HEAP_BASE

__all__ = ["Allocator", "CHUNK_HEADER_SIZE", "DEFAULT_ALIGNMENT"]

#: glibc malloc chunk header (size + flags on 64-bit).
CHUNK_HEADER_SIZE = 16

#: Default alignment of returned user pointers.
DEFAULT_ALIGNMENT = 16


class Allocator:
    """Bump allocator over the simulated heap region."""

    def __init__(self, heap_base: int = HEAP_BASE, heap_size: int = 0x0100_0000,
                 base_offset: int = 0):
        if base_offset < 0 or base_offset >= 4096:
            raise AllocationError("base_offset must be in [0, 4096)")
        self.heap_base = heap_base
        self.heap_end = heap_base + heap_size
        self._next = heap_base + base_offset + CHUNK_HEADER_SIZE
        self._live: Dict[int, int] = {}  # addr -> size
        self._labels: Dict[int, str] = {}

    def malloc(self, size: int, align: int = DEFAULT_ALIGNMENT, label: str = "") -> int:
        """Allocate ``size`` bytes; returns the user address.

        ``align`` defaults to 16 as in glibc; pass 64 to model
        ``posix_memalign`` / the manual cache-line-alignment fixes from
        the paper's case studies.
        """
        if size <= 0:
            raise AllocationError("malloc size must be positive: %d" % size)
        if align <= 0 or (align & (align - 1)) != 0:
            raise AllocationError("alignment must be a power of two: %d" % align)
        addr = self._next
        if addr % align:
            addr += align - (addr % align)
        if addr + size > self.heap_end:
            raise AllocationError(
                "out of simulated heap allocating %d bytes" % size
            )
        self._next = addr + size + CHUNK_HEADER_SIZE
        self._live[addr] = size
        if label:
            self._labels[addr] = label
        return addr

    def free(self, addr: int) -> None:
        """Release an allocation (bump allocator: bookkeeping only)."""
        if addr not in self._live:
            raise AllocationError("free of unallocated address %#x" % addr)
        del self._live[addr]
        self._labels.pop(addr, None)

    def live_allocations(self) -> List[Tuple[int, int]]:
        """Sorted list of live (addr, size) pairs."""
        return sorted(self._live.items())

    def label_of(self, addr: int) -> str:
        """Allocation-site label covering ``addr``, or '' if none."""
        for base, size in self._live.items():
            if base <= addr < base + size:
                return self._labels.get(base, "")
        return ""

    def bytes_in_use(self) -> int:
        return sum(self._live.values())
