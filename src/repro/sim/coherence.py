"""MESI coherence directory and HITM event generation.

The directory tracks, for each cache line any core has touched, the
per-core MESI state.  Caches are modelled as infinite (no capacity
evictions): contention behaviour — the subject of the paper — is driven
by coherence state transitions, not capacity, and infinite caches keep
the model deterministic and fast.

A **HITM event** occurs when a core's access finds the line Modified in
a *remote* cache (Figure 1a for loads, Figure 1c for stores).  The
directory reports these to the machine, which forwards them to the PMU.
"""

from typing import Dict, List, Optional

from repro._constants import CACHE_LINE_SIZE, NUM_CORES
from repro.sim.cache import LineState
from repro.sim.timing import LatencyModel

__all__ = ["AccessResult", "CoherenceDirectory"]


class AccessResult:
    """Outcome of one memory access through the coherence model."""

    __slots__ = ("latency", "hitm", "hitm_remote_core", "lines_touched")

    def __init__(self, latency: int, hitm: bool, hitm_remote_core: Optional[int],
                 lines_touched: int):
        self.latency = latency
        self.hitm = hitm
        self.hitm_remote_core = hitm_remote_core
        self.lines_touched = lines_touched


class CoherenceDirectory:
    """Per-line MESI state across all cores."""

    def __init__(self, latency: LatencyModel, num_cores: int = NUM_CORES):
        self.latency = latency
        self.num_cores = num_cores
        # line index -> {core: LineState}; absent core means Invalid.
        self._lines: Dict[int, Dict[int, LineState]] = {}
        # line index -> cycle until which the line's coherence transition
        # machinery is busy.  Contending accesses to one line serialize —
        # "the cache line constantly undergoes expensive and serialized
        # state transitions" (Section 2) — which is what makes intense
        # contention superlinearly painful on real hardware.
        self._line_busy_until: Dict[int, int] = {}
        #: Current global cycle; the machine updates this before accesses.
        self.now = 0
        self.hitm_count = 0
        self.load_hitm_count = 0
        self.store_hitm_count = 0
        self.serialization_stall_cycles = 0

    # ------------------------------------------------------------------
    # Access protocol
    # ------------------------------------------------------------------

    def access(self, core: int, addr: int, size: int, is_write: bool) -> AccessResult:
        """Perform a coherent access; returns latency and HITM info.

        Accesses that straddle a cache-line boundary touch each line in
        turn (as split accesses do on x86).
        """
        first_line = addr // CACHE_LINE_SIZE
        last_line = (addr + size - 1) // CACHE_LINE_SIZE
        total_latency = 0
        hitm = False
        hitm_remote = None
        for line in range(first_line, last_line + 1):
            latency, remote = self._access_line(core, line, is_write)
            if latency > self.latency.l1_hit:
                # A coherence transition: serialize behind any transition
                # already in flight on this line.
                busy_until = self._line_busy_until.get(line, 0)
                if busy_until > self.now:
                    stall = busy_until - self.now
                    latency += stall
                    self.serialization_stall_cycles += stall
                self._line_busy_until[line] = self.now + latency
            total_latency += latency
            if remote is not None:
                hitm = True
                hitm_remote = remote
        if hitm:
            self.hitm_count += 1
            if is_write:
                self.store_hitm_count += 1
            else:
                self.load_hitm_count += 1
        return AccessResult(total_latency, hitm, hitm_remote,
                            last_line - first_line + 1)

    def _access_line(self, core: int, line: int, is_write: bool):
        """MESI transition for one line; returns (latency, hitm_remote_core)."""
        states = self._lines.get(line)
        if states is None:
            states = {}
            self._lines[line] = states
        mine = states.get(core, LineState.INVALID)
        lat = self.latency

        if not is_write:
            if mine is not LineState.INVALID:
                return lat.l1_hit, None
            modified_owner = self._modified_holder(states, exclude=core)
            if modified_owner is not None:
                # HITM: remote M line is written back and both end Shared.
                states[modified_owner] = LineState.SHARED
                states[core] = LineState.SHARED
                return lat.hitm, modified_owner
            if states:
                # Clean copy supplied by a sharer; E holders downgrade.
                for holder, st in list(states.items()):
                    if st is LineState.EXCLUSIVE:
                        states[holder] = LineState.SHARED
                states[core] = LineState.SHARED
                return lat.shared_fill, None
            states[core] = LineState.EXCLUSIVE
            return lat.memory, None

        # Write path.
        if mine is LineState.MODIFIED:
            return lat.l1_hit, None
        if mine is LineState.EXCLUSIVE:
            states[core] = LineState.MODIFIED
            return lat.l1_hit, None
        modified_owner = self._modified_holder(states, exclude=core)
        if modified_owner is not None:
            # HITM: dirty line transferred and remote copy invalidated.
            del states[modified_owner]
            states.clear()
            states[core] = LineState.MODIFIED
            return lat.hitm, modified_owner
        if mine is LineState.SHARED or states:
            # Upgrade / invalidation round over the sharers.
            states.clear()
            states[core] = LineState.MODIFIED
            return lat.upgrade, None
        states[core] = LineState.MODIFIED
        return lat.memory, None

    @staticmethod
    def _modified_holder(states: Dict[int, LineState], exclude: int) -> Optional[int]:
        for holder, st in states.items():
            if holder != exclude and st is LineState.MODIFIED:
                return holder
        return None

    # ------------------------------------------------------------------
    # Introspection (for tests and invariants)
    # ------------------------------------------------------------------

    def state_of(self, core: int, addr: int) -> LineState:
        states = self._lines.get(addr // CACHE_LINE_SIZE)
        if not states:
            return LineState.INVALID
        return states.get(core, LineState.INVALID)

    def holders_of_line(self, line: int) -> Dict[int, LineState]:
        return dict(self._lines.get(line, {}))

    def check_invariants(self) -> List[str]:
        """Return a list of MESI invariant violations (empty if healthy)."""
        problems = []
        for line, states in self._lines.items():
            m_holders = [c for c, s in states.items() if s is LineState.MODIFIED]
            e_holders = [c for c, s in states.items() if s is LineState.EXCLUSIVE]
            s_holders = [c for c, s in states.items() if s is LineState.SHARED]
            if len(m_holders) > 1:
                problems.append("line %d has %d M holders" % (line, len(m_holders)))
            if m_holders and (e_holders or s_holders):
                problems.append("line %d mixes M with E/S" % line)
            if len(e_holders) > 1:
                problems.append("line %d has %d E holders" % (line, len(e_holders)))
            if e_holders and s_holders:
                problems.append("line %d mixes E with S" % line)
        return problems
