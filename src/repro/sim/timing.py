"""Latency model for the simulated machine.

All values are core cycles.  The defaults come from ``repro._constants``
and can be overridden per-experiment (e.g. to study sensitivity of
repair profitability to the HITM/hit cost ratio).
"""

from repro import _constants as C

__all__ = ["LatencyModel"]


class LatencyModel:
    """Bag of latencies consulted by the interpreter and coherence model."""

    def __init__(
        self,
        alu: int = C.ALU_LATENCY,
        l1_hit: int = C.L1_HIT_LATENCY,
        shared_fill: int = 30,
        upgrade: int = C.UPGRADE_LATENCY,
        hitm: int = C.HITM_LATENCY,
        memory: int = C.MEMORY_LATENCY,
        atomic_extra: int = C.ATOMIC_EXTRA_LATENCY,
        fence: int = C.FENCE_LATENCY,
        pause: int = 8,
        ssb_store: int = C.SSB_STORE_LATENCY,
        ssb_load: int = C.SSB_LOAD_LATENCY,
        ssb_flush_base: int = C.SSB_FLUSH_BASE_LATENCY,
        ssb_flush_entry: int = C.SSB_FLUSH_ENTRY_LATENCY,
        alias_check: int = C.ALIAS_CHECK_LATENCY,
        pin_tax: int = C.PIN_TAX_LATENCY,
    ):
        self.alu = alu
        self.l1_hit = l1_hit
        self.shared_fill = shared_fill
        self.upgrade = upgrade
        self.hitm = hitm
        self.memory = memory
        self.atomic_extra = atomic_extra
        self.fence = fence
        self.pause = pause
        self.ssb_store = ssb_store
        self.ssb_load = ssb_load
        self.ssb_flush_base = ssb_flush_base
        self.ssb_flush_entry = ssb_flush_entry
        self.alias_check = alias_check
        self.pin_tax = pin_tax
