"""Global machine constants shared by the simulator, PMU and LASER.

The numbers model the paper's evaluation platform: a 4-core Intel Core
i7-4770K (Haswell) with 64-byte cache lines and 8-way L1 data caches.
Latencies are expressed in core cycles and are deliberately round: the
reproduction targets the *shape* of the paper's results, not absolute
nanoseconds.
"""

#: Cache line size in bytes (Section 2: "typically 64 bytes").
CACHE_LINE_SIZE = 64

#: Number of cores on the evaluation machine (Section 7).
NUM_CORES = 4

#: L1 data cache associativity; LASERREPAIR pre-emptively flushes the SSB
#: beyond this many entries to avoid HTM capacity aborts (Section 5.5).
L1_ASSOCIATIVITY = 8

#: Simulated clock: cycles per simulated second.  Rate thresholds in the
#: paper are HITMs per wall-clock second on a 3.4 GHz part; our simulated
#: programs are far shorter than the paper's >1 minute runs, so we define
#: a proportionally smaller simulated second.  All HITMs/sec thresholds in
#: this repository are measured against this clock.
CYCLES_PER_SECOND = 1_000_000

# ---------------------------------------------------------------------------
# Timing model (cycles).  Ratios follow published Haswell figures: an L1
# hit costs ~4 cycles while a cross-core cache-to-cache transfer of a
# Modified line (a HITM) costs ~60-70 cycles.
# ---------------------------------------------------------------------------

#: Cost of an arithmetic / move / branch instruction.
ALU_LATENCY = 1

#: Load/store hitting the local L1 in a usable state.
L1_HIT_LATENCY = 2

#: Upgrade of a locally Shared line to Modified (invalidation round).
UPGRADE_LATENCY = 30

#: Cache-to-cache transfer of a line Modified in a remote cache (a HITM).
HITM_LATENCY = 90

#: Miss served from memory (no cache holds the line).
MEMORY_LATENCY = 120

#: Extra cost of an atomic read-modify-write beyond its memory access.
ATOMIC_EXTRA_LATENCY = 10

#: Cost of a memory fence.
FENCE_LATENCY = 5

# ---------------------------------------------------------------------------
# Software store buffer costs (Section 5.5): the SSB trades per-access
# *software* latency (a hash-table operation inside Pin-instrumented
# code) for the elimination of coherence stalls.  "The SSB has higher
# latency, but better space-efficiency, than hardware store buffers" —
# these costs are deliberately close to the HITM latency they displace,
# which is why automatic repair wins modestly (Figure 11: 1.16x-1.19x)
# while manual source fixes win hugely (5.8x-16.9x).
# ---------------------------------------------------------------------------

#: Cycles for a store redirected into the SSB (hash-table insert in
#: instrumented code).
SSB_STORE_LATENCY = 42

#: Cycles for a load that must consult the SSB.
SSB_LOAD_LATENCY = 34

#: Fixed cost of an SSB flush (HTM begin/commit plus table walk).
SSB_FLUSH_BASE_LATENCY = 150

#: Per-entry cost of writing back one SSB entry during a flush.
SSB_FLUSH_ENTRY_LATENCY = 10

#: Cost of a speculative-alias check inserted between a load address def
#: and its use (Section 5.3).
ALIAS_CHECK_LATENCY = 8

#: Per-instruction tax on threads running inside the dynamic binary
#: instrumentation framework's code cache (Pin JIT overhead).
PIN_TAX_LATENCY = 2

# ---------------------------------------------------------------------------
# PMU / driver costs (Section 6, Section 7.2).
# ---------------------------------------------------------------------------

#: Microcode-assist cost charged to the triggering core for materializing
#: one PEBS record.
PEBS_RECORD_COST = 250

#: Cost of the driver's buffer-full interrupt (drain + reconfigure).
DRIVER_INTERRUPT_COST = 4_000

#: Number of PEBS records in a per-core buffer before the driver takes an
#: interrupt to drain it.
PEBS_BUFFER_RECORDS = 64

#: Cost charged per HITM event by a profiler that interrupts on *every*
#: event (the VTune configuration described in Section 7.1).
PER_EVENT_INTERRUPT_COST = 2_500

#: Capacity of the driver's detector-facing outbox (the kernel device's
#: internal buffer), in stripped records.  A healthy detector drains the
#: outbox every check interval, which leaves it far below this bound;
#: the bound matters when the detector stalls — the driver then drops
#: new records (with accounting) instead of growing without limit.
DRIVER_OUTBOX_CAPACITY = 65_536

#: Consecutive HTM aborts a software store buffer tolerates before it
#: abandons transactional coalesced flushes and falls back to
#: non-coalesced per-store writeback in program order (TSO-preserving,
#: just slower) — the RTM idiom of retrying a few times and then taking
#: the fallback path.
HTM_ABORT_FALLBACK_THRESHOLD = 3

#: Detector-side processing cost per record, in cycles; the detector runs
#: on a spare core so this only contributes to LASER CPU-time accounting,
#: not application slowdown (Figure 12).
DETECTOR_RECORD_COST = 120
