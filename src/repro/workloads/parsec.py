"""PARSEC 3.0 benchmark analogs.

Contention characters follow the paper's findings:

* ``bodytrack`` — significant true sharing in
  ``TicketDispenser::getTicket()``: an atomic fetch-add distributing
  work tickets, "fundamental to load-balancing" (Section 7.4.2) and so
  not manually fixable without restructuring.
* ``dedup`` — the novel true-sharing bug: every pipeline stage is
  separated by a concurrent queue "protected with a single lock,
  preventing enqueue and dequeue operations from proceeding in
  parallel"; the fix replaces it with a lock-free queue (+16%).  Its
  lock-word HITM rate sits between LASER's 1K/s threshold and VTune's
  2K/s threshold — which is why VTune misses the bug (Table 1) — and
  dedup is the SAV-sensitivity benchmark of Figure 13.
* ``streamcluster`` — false sharing on the already-but-insufficiently
  padded ``work_mem`` array; fixing it cuts HITM events 3x without
  changing runtime (Section 7.4.3).
* ``x264`` / ``ferret`` / ``vips`` — pipeline codes with frequent small
  hand-offs: sizable HITM volume, no individual hot line (x264 is one
  of the three highest-overhead benchmarks in Figure 12).
* the rest — data-parallel or barrier codes with diffuse, benign
  sharing.

Sheriff compatibility verdicts come from Section 7.3: dedup, ferret(!),
raytrace, vips and x264 "use pthreads constructs that Sheriff does not
currently support like spin locks", freqmine "requires OpenMP support",
and most others "encounter runtime errors".
"""

from typing import List

from repro.core.detect.report import ContentionClass
from repro.isa.assembler import Assembler
from repro.isa.program import Program, SourceLocation
from repro.sim.allocator import Allocator
from repro.sim.locks import (
    emit_lock_release,
    emit_naive_lock_acquire,
    emit_ttas_lock_acquire,
)
from repro.workloads.base import (
    BugRecord,
    BuiltWorkload,
    SheriffSupport,
    Workload,
    iterations,
)
from repro.workloads.templates import (
    emit_handoff_read,
    emit_private_stream,
    emit_startup_handoff_writes,
)

__all__ = ["PARSEC_WORKLOADS"]


class Blackscholes(Workload):
    """Embarrassingly parallel option pricing: no sharing to speak of."""

    name = "blackscholes"
    suite = "parsec"
    FILE = "blackscholes.c"
    bugs: List[BugRecord] = []
    sheriff_support = SheriffSupport.OK

    def build(self, heap_offset: int = 0, seed: int = 0,
              scale: float = 1.0) -> BuiltWorkload:
        allocator = Allocator(base_offset=heap_offset)
        options = [
            allocator.malloc(8 * 4096, align=64, label="options[%d]" % tid)
            for tid in range(self.num_threads)
        ]
        n = iterations(1800, scale)
        threads = []
        for tid in range(self.num_threads):
            asm = Assembler("bs_worker_%d" % tid)
            asm.at(self.FILE, 230)
            emit_private_stream(asm, options[tid], n, "price", alu_ops=6,
                                do_store=True)
            asm.halt()
            threads.append(asm.build())
        return BuiltWorkload(Program(self.name, threads), allocator)


class Bodytrack(Workload):
    """True sharing in TicketDispenser::getTicket() (Section 7.4.2)."""

    name = "bodytrack"
    suite = "parsec"
    FILE = "TicketDispenser.h"
    TICKET_LINE = 64
    bugs = [
        BugRecord(
            [SourceLocation("TicketDispenser.h", 64)],
            ContentionClass.TRUE_SHARING,
            "getTicket(): atomic fetch-add distributing unique counter "
            "values to threads; fundamental communication, not fixable "
            "without restructuring",
            significant=True,
            sheriff_detects=False,
        )
    ]
    sheriff_support = SheriffSupport.CRASH

    def build(self, heap_offset: int = 0, seed: int = 0,
              scale: float = 1.0) -> BuiltWorkload:
        allocator = Allocator(base_offset=heap_offset)
        ticket = allocator.malloc(8, align=64, label="ticket_counter")
        frames = [
            allocator.malloc(8 * 4096, label="particles[%d]" % tid)
            for tid in range(self.num_threads)
        ]
        tickets = iterations(420, scale)
        threads = []
        for tid in range(self.num_threads):
            asm = Assembler("bt_worker_%d" % tid)
            asm.at(self.FILE, 60)
            asm.mov("r0", tickets)
            asm.mov("r3", frames[tid])
            asm.label("tickets")
            # The contended ticket dispenser (an xadd: RMW, so its HITM
            # records carry load-grade precision -> clean TS verdict).
            asm.at(self.FILE, self.TICKET_LINE)
            asm.mov("r1", ticket)
            asm.xadd("r2", "r1", 1, size=8)
            # Per-ticket particle filtering work (private).
            asm.at("TrackingModel.cpp", 310)
            asm.mov("r4", 22)
            asm.label("particle")
            asm.load("r5", "r3", size=8)
            asm.add("r5", "r5", "r2")
            asm.add("r3", "r3", 8)
            asm.sub("r4", "r4", 1)
            asm.bne("r4", 0, "particle")
            asm.at(self.FILE, 70)
            asm.sub("r0", "r0", 1)
            asm.bne("r0", 0, "tickets")
            asm.halt()
            threads.append(asm.build())
        return BuiltWorkload(Program(self.name, threads), allocator)


class Canneal(Workload):
    """Random element swaps with atomic CAS: diffuse, benign contention."""

    name = "canneal"
    suite = "parsec"
    FILE = "annealer_thread.cpp"
    bugs: List[BugRecord] = []
    sheriff_support = SheriffSupport.CRASH

    def build(self, heap_offset: int = 0, seed: int = 0,
              scale: float = 1.0) -> BuiltWorkload:
        allocator = Allocator(base_offset=heap_offset)
        elements = allocator.malloc(64 * 1024, align=64, label="netlist")
        n = iterations(350, scale)
        threads = []
        for tid in range(self.num_threads):
            asm = Assembler("canneal_worker_%d" % tid)
            asm.at(self.FILE, 120)
            asm.mov("r0", n)
            # Each thread walks the netlist with a different stride so
            # swaps collide only occasionally (diffuse HITMs).
            asm.mov("r1", elements + tid * 256)
            asm.label("swap")
            asm.at(self.FILE, 128)
            asm.cmpxchg("r2", "r1", 0, 1, size=8)
            asm.at(self.FILE, 133)
            asm.mov("r4", 45)
            asm.label("evaluate")
            asm.add("r5", "r5", 3)
            asm.sub("r4", "r4", 1)
            asm.bne("r4", 0, "evaluate")
            asm.add("r1", "r1", 64 * (tid + 3))
            asm.at(self.FILE, 140)
            asm.sub("r0", "r0", 1)
            asm.bne("r0", 0, "swap")
            asm.halt()
            threads.append(asm.build())
        return BuiltWorkload(Program(self.name, threads), allocator)


class Dedup(Workload):
    """Pipeline stages separated by a single-lock concurrent queue."""

    name = "dedup"
    suite = "parsec"
    FILE = "queue.c"
    LOCK_LINE = 88     # enqueue/dequeue lock acquisition
    bugs = [
        BugRecord(
            [SourceLocation("queue.c", 88), SourceLocation("queue.c", 95)],
            ContentionClass.TRUE_SHARING,
            "each pipeline queue is protected by a single lock, so "
            "enqueues and dequeues serialize; fixed with a lock-free "
            "queue for a 16% speedup",
            significant=True,
            sheriff_detects=False,
            vtune_detects=False,  # the bug VTune misses (Table 1)
        )
    ]
    sheriff_support = SheriffSupport.INCOMPATIBLE  # spin locks

    #: Items flowing through the pipeline per consumer.
    def build(self, heap_offset: int = 0, seed: int = 0, scale: float = 1.0,
              lockfree: bool = False) -> BuiltWorkload:
        allocator = Allocator(base_offset=heap_offset)
        lock = allocator.malloc(8, align=64, label="queue_lock")
        head = allocator.malloc(8, align=64, label="queue_head")
        tail = allocator.malloc(8, align=64, label="queue_tail")
        ring = allocator.malloc(8 * 4096, align=64, label="queue_ring")
        chunks = [
            allocator.malloc(8 * 4096, label="chunks[%d]" % tid)
            for tid in range(self.num_threads)
        ]
        items = iterations(75, scale)
        consumers = self.num_threads - 1
        threads = [self._producer(lock, tail, ring, chunks[0],
                                  items * consumers, lockfree)]
        for w in range(consumers):
            threads.append(
                self._consumer(w, lock, head, tail, ring, chunks[w + 1],
                               items, lockfree)
            )
        return BuiltWorkload(Program(self.name, threads), allocator)

    def build_fixed(self, heap_offset: int = 0, seed: int = 0,
                    scale: float = 1.0) -> BuiltWorkload:
        """The Boost-lockfree-queue replacement (Section 7.4.2)."""
        return self.build(heap_offset, seed, scale, lockfree=True)

    def _producer(self, lock, tail, ring, chunk, total, lockfree):
        asm = Assembler("dedup_producer")
        asm.at("encoder.c", 40)
        asm.mov("r0", total)
        asm.label("produce")
        asm.mov("r3", chunk)
        # Chunking/fingerprinting work (private).
        asm.at("encoder.c", 52)
        asm.mov("r4", 60)
        asm.label("fingerprint")
        asm.load("r5", "r3", size=8)
        asm.add("r3", "r3", 8)
        asm.sub("r4", "r4", 1)
        asm.bne("r4", 0, "fingerprint")
        if lockfree:
            # Lock-free enqueue: reserve a slot with one atomic.
            asm.at(self.FILE, 210)
            asm.mov("r1", tail)
            asm.xadd("r2", "r1", 1, size=8)
            asm.and_("r2", "r2", 4095)
            asm.shl("r2", "r2", 3)
            asm.add("r2", "r2", ring)
            asm.store("r2", 7, size=8)
        else:
            asm.at(self.FILE, self.LOCK_LINE)
            asm.mov("r1", lock)
            emit_naive_lock_acquire(asm, "r1", "enq")
            asm.at(self.FILE, 95)
            asm.mov("r2", tail)
            asm.load("r5", "r2", size=8)
            asm.add("r6", "r5", 1)
            asm.store("r2", "r6", size=8)
            asm.and_("r5", "r5", 4095)
            asm.shl("r5", "r5", 3)
            asm.add("r5", "r5", ring)
            asm.store("r5", 7, size=8)
            asm.mov("r1", lock)
            emit_lock_release(asm, "r1")
        asm.at("encoder.c", 60)
        asm.sub("r0", "r0", 1)
        asm.bne("r0", 0, "produce")
        asm.halt()
        return asm.build()

    def _consumer(self, w, lock, head, tail, ring, chunk, items, lockfree):
        asm = Assembler("dedup_consumer_%d" % w)
        asm.at("encoder.c", 80)
        asm.mov("r0", items)
        asm.label("consume")
        asm.mov("r3", chunk)
        if lockfree:
            asm.at(self.FILE, 230)
            asm.mov("r1", head)
            asm.xadd("r2", "r1", 1, size=8)
            asm.and_("r2", "r2", 4095)
            asm.shl("r2", "r2", 3)
            asm.add("r2", "r2", ring)
            asm.load("r5", "r2", size=8)
        else:
            asm.at(self.FILE, self.LOCK_LINE)
            asm.mov("r1", lock)
            emit_naive_lock_acquire(asm, "r1", "deq")
            asm.at(self.FILE, 95)
            asm.mov("r2", head)
            asm.load("r5", "r2", size=8)
            asm.add("r6", "r5", 1)
            asm.store("r2", "r6", size=8)
            asm.and_("r5", "r5", 4095)
            asm.shl("r5", "r5", 3)
            asm.add("r5", "r5", ring)
            asm.load("r7", "r5", size=8)
            asm.mov("r1", lock)
            emit_lock_release(asm, "r1")
        # Compression work on the dequeued chunk (private).
        asm.at("encoder.c", 96)
        asm.mov("r4", 300)
        asm.label("compress")
        asm.load("r5", "r3", size=8)
        asm.add("r5", "r5", 1)
        asm.store("r3", "r5", size=8)
        asm.add("r3", "r3", 8)
        asm.sub("r4", "r4", 1)
        asm.bne("r4", 0, "compress")
        asm.at("encoder.c", 104)
        asm.sub("r0", "r0", 1)
        asm.bne("r0", 0, "consume")
        asm.halt()
        return asm.build()


class Facesim(Workload):
    """Barrier-separated physics phases; private meshes."""

    name = "facesim"
    suite = "parsec"
    FILE = "facesim.cpp"
    bugs: List[BugRecord] = []
    sheriff_support = SheriffSupport.CRASH

    def build(self, heap_offset: int = 0, seed: int = 0,
              scale: float = 1.0) -> BuiltWorkload:
        allocator = Allocator(base_offset=heap_offset)
        mesh = [
            allocator.malloc(8 * 4096, align=64, label="mesh[%d]" % tid)
            for tid in range(self.num_threads)
        ]
        barriers = allocator.malloc(64 * 6, align=64, label="barriers")
        phase_iters = iterations(420, scale)
        threads = []
        for tid in range(self.num_threads):
            asm = Assembler("facesim_worker_%d" % tid)
            for phase in range(3):
                asm.at(self.FILE, 200 + 20 * phase)
                emit_private_stream(asm, mesh[tid], phase_iters,
                                    "phase%d" % phase, alu_ops=4,
                                    do_store=True)
                asm.at(self.FILE, 212 + 20 * phase)
                asm.mov("r9", barriers + 64 * phase)
                self._barrier(asm, "r9", phase)
            asm.halt()
            threads.append(asm.build())
        return BuiltWorkload(Program(self.name, threads), allocator)

    def _barrier(self, asm: Assembler, addr_reg: str, phase: int) -> None:
        from repro.sim.locks import emit_barrier_wait

        emit_barrier_wait(asm, addr_reg, self.num_threads, "p%d" % phase)


class Ferret(Workload):
    """Similarity-search pipeline with TTAS-locked queues (benign)."""

    name = "ferret"
    suite = "parsec"
    FILE = "ferret-pipeline.c"
    bugs: List[BugRecord] = []
    sheriff_support = SheriffSupport.OK
    #: Sheriff-Detect's spurious allocation-site reports (Table 1: 2 FPs).
    sheriff_fp_sites = ["malloc-wrapper: cass_table.c",
                        "malloc-wrapper: ferret-pipeline.c"]

    def build(self, heap_offset: int = 0, seed: int = 0,
              scale: float = 1.0) -> BuiltWorkload:
        allocator = Allocator(base_offset=heap_offset)
        lock = allocator.malloc(8, align=64, label="stage_lock")
        counter = allocator.malloc(8, align=64, label="stage_counter")
        tables = [
            allocator.malloc(8 * 4096, label="rank[%d]" % tid)
            for tid in range(self.num_threads)
        ]
        n = iterations(180, scale)
        threads = []
        for tid in range(self.num_threads):
            asm = Assembler("ferret_worker_%d" % tid)
            asm.at(self.FILE, 60)
            asm.mov("r0", n)
            asm.mov("r3", tables[tid])
            asm.label("item")
            asm.at(self.FILE, 66)
            asm.mov("r1", lock)
            emit_ttas_lock_acquire(asm, "r1", "stage")
            asm.at(self.FILE, 70)
            asm.mov("r2", counter)
            asm.addm("r2", 1, size=8)
            asm.mov("r1", lock)
            emit_lock_release(asm, "r1")
            # Ranking work (private).
            asm.at(self.FILE, 81)
            asm.mov("r4", 36)
            asm.label("rank")
            asm.load("r5", "r3", size=8)
            asm.add("r5", "r5", 5)
            asm.add("r3", "r3", 8)
            asm.sub("r4", "r4", 1)
            asm.bne("r4", 0, "rank")
            asm.at(self.FILE, 90)
            asm.sub("r0", "r0", 1)
            asm.bne("r0", 0, "item")
            asm.halt()
            threads.append(asm.build())
        return BuiltWorkload(Program(self.name, threads), allocator)


class Fluidanimate(Workload):
    """Fine-grained per-cell locks: many diffuse, cold lock words."""

    name = "fluidanimate"
    suite = "parsec"
    FILE = "pthreads.cpp"
    bugs: List[BugRecord] = []
    sheriff_support = SheriffSupport.CRASH

    def build(self, heap_offset: int = 0, seed: int = 0,
              scale: float = 1.0) -> BuiltWorkload:
        allocator = Allocator(base_offset=heap_offset)
        cell_locks = allocator.malloc(64 * 256, align=64, label="cell_locks")
        cells = allocator.malloc(64 * 256, align=64, label="cells")
        n = iterations(240, scale)
        threads = []
        for tid in range(self.num_threads):
            asm = Assembler("fluid_worker_%d" % tid)
            asm.at(self.FILE, 500)
            asm.mov("r0", n)
            asm.label("cell")
            # Pick a neighbour cell: threads overlap on boundaries only.
            asm.mov("r6", n)
            asm.sub("r6", "r6", "r0")
            asm.mul("r6", "r6", 7)
            asm.add("r6", "r6", tid * 61)
            asm.and_("r6", "r6", 255)
            asm.shl("r6", "r6", 6)
            asm.at(self.FILE, 508 + tid)
            asm.mov("r1", cell_locks)
            asm.add("r1", "r1", "r6")
            emit_ttas_lock_acquire(asm, "r1", "cell")
            asm.mov("r2", cells)
            asm.add("r2", "r2", "r6")
            asm.addm("r2", 1, size=8)
            emit_lock_release(asm, "r1")
            asm.at(self.FILE, 520)
            asm.mov("r4", 24)
            asm.label("density")
            asm.add("r5", "r5", 3)
            asm.sub("r4", "r4", 1)
            asm.bne("r4", 0, "density")
            asm.sub("r0", "r0", 1)
            asm.bne("r0", 0, "cell")
            asm.halt()
            threads.append(asm.build())
        return BuiltWorkload(Program(self.name, threads), allocator)


class Freqmine(Workload):
    """FP-growth mining; an occasionally-bumped shared header table."""

    name = "freqmine"
    suite = "parsec"
    FILE = "fp_tree.cpp"
    bugs: List[BugRecord] = []
    sheriff_support = SheriffSupport.INCOMPATIBLE  # OpenMP

    def build(self, heap_offset: int = 0, seed: int = 0,
              scale: float = 1.0) -> BuiltWorkload:
        allocator = Allocator(base_offset=heap_offset)
        header = allocator.malloc(8 * 8, align=64, label="header_table")
        trees = [
            allocator.malloc(8 * 4096, label="fp_tree[%d]" % tid)
            for tid in range(self.num_threads)
        ]
        n = iterations(340, scale)
        threads = []
        for tid in range(self.num_threads):
            asm = Assembler("freqmine_worker_%d" % tid)
            asm.at(self.FILE, 700)
            asm.mov("r0", n)
            asm.label("mine")
            asm.mov("r3", trees[tid])
            asm.at(self.FILE, 710)
            asm.mov("r4", 18)
            asm.label("grow")
            asm.load("r5", "r3", size=8)
            asm.add("r5", "r5", 1)
            asm.store("r3", "r5", size=8)
            asm.add("r3", "r3", 8)
            asm.sub("r4", "r4", 1)
            asm.bne("r4", 0, "grow")
            # Shared header-table counter: real but mild contention, a
            # LASER false positive in Table 1 (freqmine has no perf bug).
            asm.at(self.FILE, 724)
            asm.mov("r2", header)
            asm.addm("r2", 1, size=8)
            asm.at(self.FILE, 730)
            asm.sub("r0", "r0", 1)
            asm.bne("r0", 0, "mine")
            asm.halt()
            threads.append(asm.build())
        return BuiltWorkload(Program(self.name, threads), allocator)


class RaytraceParsec(Workload):
    """Private ray bundles over a read-shared BVH."""

    name = "raytrace.parsec"
    suite = "parsec"
    FILE = "rt-parsec.cpp"
    bugs: List[BugRecord] = []
    sheriff_support = SheriffSupport.INCOMPATIBLE

    def build(self, heap_offset: int = 0, seed: int = 0,
              scale: float = 1.0) -> BuiltWorkload:
        allocator = Allocator(base_offset=heap_offset)
        bvh = allocator.malloc(64 * 1200, align=64, label="bvh")
        rays = [
            allocator.malloc(8 * 4096, label="rays[%d]" % tid)
            for tid in range(self.num_threads)
        ]
        bvh_lines = iterations(200, scale)
        n = iterations(2200, scale)
        threads = []
        for tid in range(self.num_threads):
            asm = Assembler("rtp_worker_%d" % tid)
            if tid == 0:
                asm.at(self.FILE, 50)
                emit_startup_handoff_writes(asm, bvh, bvh_lines, "bvh")
            asm.at(self.FILE, 61 + tid)
            emit_handoff_read(asm, bvh, bvh_lines, "walk")
            asm.at(self.FILE, 75)
            emit_private_stream(asm, rays[tid], n, "trace", alu_ops=5)
            asm.halt()
            threads.append(asm.build())
        return BuiltWorkload(Program(self.name, threads), allocator)


class Streamcluster(Workload):
    """Insufficient padding on work_mem (Section 7.4.3)."""

    name = "streamcluster"
    suite = "parsec"
    FILE = "streamcluster.cpp"
    WORK_MEM_LINE = 985
    bugs = [
        BugRecord(
            [SourceLocation("streamcluster.cpp", 985)],
            ContentionClass.FALSE_SHARING,
            "work_mem is padded for 32-byte lines but not for 64-byte "
            "lines; extra padding cuts HITMs 3x without changing runtime",
            significant=True,
            sheriff_detects=False,
        )
    ]
    sheriff_support = SheriffSupport.CRASH

    def build(self, heap_offset: int = 0, seed: int = 0, scale: float = 1.0,
              extra_padding: bool = False) -> BuiltWorkload:
        allocator = Allocator(base_offset=heap_offset)
        stride = 64 if extra_padding else 32  # the insufficient padding
        work_mem = allocator.malloc(self.num_threads * stride, align=64,
                                    label="work_mem")
        points = [
            allocator.malloc(8 * 4096, label="points[%d]" % tid)
            for tid in range(self.num_threads)
        ]
        n = iterations(340, scale)
        threads = []
        for tid in range(self.num_threads):
            asm = Assembler("sc_worker_%d" % tid)
            asm.at(self.FILE, 970)
            asm.mov("r0", n)
            asm.mov("r3", points[tid])
            asm.label("gain")
            asm.at(self.FILE, 975)
            # Slightly different per-thread point counts (as in the real
            # partitioning) keep the threads from phase-locking.
            asm.mov("r4", 40 + 4 * tid)
            asm.label("dist")
            asm.load("r5", "r3", size=8)
            asm.add("r5", "r5", 2)
            asm.add("r3", "r3", 8)
            asm.sub("r4", "r4", 1)
            asm.bne("r4", 0, "dist")
            asm.at(self.FILE, self.WORK_MEM_LINE)
            asm.mov("r2", work_mem + tid * stride)
            asm.addm("r2", 1, size=8)
            asm.at(self.FILE, 992)
            asm.sub("r0", "r0", 1)
            asm.bne("r0", 0, "gain")
            asm.halt()
            threads.append(asm.build())
        return BuiltWorkload(Program(self.name, threads), allocator)

    def build_fixed(self, heap_offset: int = 0, seed: int = 0,
                    scale: float = 1.0) -> BuiltWorkload:
        return self.build(heap_offset, seed, scale, extra_padding=True)


class Swaptions(Workload):
    """HJM Monte-Carlo: pure private compute."""

    name = "swaptions"
    suite = "parsec"
    FILE = "HJM_Securities.cpp"
    bugs: List[BugRecord] = []
    sheriff_support = SheriffSupport.OK

    def build(self, heap_offset: int = 0, seed: int = 0,
              scale: float = 1.0) -> BuiltWorkload:
        allocator = Allocator(base_offset=heap_offset)
        paths = [
            allocator.malloc(8 * 4096, align=64, label="paths[%d]" % tid)
            for tid in range(self.num_threads)
        ]
        n = iterations(1400, scale)
        threads = []
        for tid in range(self.num_threads):
            asm = Assembler("swaptions_worker_%d" % tid)
            asm.at(self.FILE, 150)
            emit_private_stream(asm, paths[tid], n, "sim", alu_ops=8,
                                do_store=True)
            asm.halt()
            threads.append(asm.build())
        return BuiltWorkload(Program(self.name, threads), allocator)


class Vips(Workload):
    """Image pipeline: region hand-offs between stages."""

    name = "vips"
    suite = "parsec"
    FILE = "im_generate.c"
    bugs: List[BugRecord] = []
    sheriff_support = SheriffSupport.INCOMPATIBLE

    def build(self, heap_offset: int = 0, seed: int = 0,
              scale: float = 1.0) -> BuiltWorkload:
        allocator = Allocator(base_offset=heap_offset)
        regions = allocator.malloc(64 * 600, align=64, label="regions")
        outputs = [
            allocator.malloc(8 * 4096, align=64, label="out[%d]" % tid)
            for tid in range(self.num_threads)
        ]
        region_lines = iterations(90, scale)
        n = iterations(1500, scale)
        threads = []
        for tid in range(self.num_threads):
            asm = Assembler("vips_worker_%d" % tid)
            if tid == 0:
                asm.at(self.FILE, 90)
                emit_startup_handoff_writes(asm, regions, region_lines, "gen")
            asm.at(self.FILE, 101 + tid)
            emit_handoff_read(asm, regions, region_lines, "region")
            asm.at(self.FILE, 120)
            emit_private_stream(asm, outputs[tid], n, "convolve", alu_ops=4,
                                do_store=True)
            asm.halt()
            threads.append(asm.build())
        return BuiltWorkload(Program(self.name, threads), allocator)


class X264(Workload):
    """Row-synchronized encoding: frequent small hand-offs (Figure 12)."""

    name = "x264"
    suite = "parsec"
    FILE = "frame.c"
    bugs: List[BugRecord] = []
    sheriff_support = SheriffSupport.INCOMPATIBLE

    def build(self, heap_offset: int = 0, seed: int = 0,
              scale: float = 1.0) -> BuiltWorkload:
        allocator = Allocator(base_offset=heap_offset)
        # One row-progress word per thread, deliberately line-separated
        # (this is communication, not false sharing).
        progress = allocator.malloc(64 * self.num_threads, align=64,
                                    label="row_progress")
        macroblocks = [
            allocator.malloc(8 * 4096, label="mb[%d]" % tid)
            for tid in range(self.num_threads)
        ]
        rows = iterations(360, scale)
        threads = []
        for tid in range(self.num_threads):
            pred = (tid - 1) % self.num_threads
            asm = Assembler("x264_worker_%d" % tid)
            asm.at(self.FILE, 40)
            asm.mov("r0", 0)
            asm.mov("r3", macroblocks[tid])
            asm.label("row")
            if tid != 0:
                # Wait for the reference row from the previous thread.
                asm.at(self.FILE, 48 + tid)
                asm.mov("r1", progress + 64 * pred)
                asm.label("wait")
                asm.load("r2", "r1", size=8)
                asm.bge("r2", "r0", "go")
                asm.pause()
                asm.jmp("wait")
                asm.label("go")
            # Motion estimation against the reference (reads the line the
            # predecessor just wrote) plus private encoding work.
            # Encoding work spread across the inlined macroblock helpers
            # (several distinct source lines, none individually hot).
            for part in range(4):
                asm.at(self.FILE, 58 + 2 * part)
                asm.mov("r4", 9)
                asm.label("encode%d" % part)
                asm.load("r5", "r3", size=8)
                asm.add("r5", "r5", 7)
                asm.store("r3", "r5", size=8)
                asm.add("r3", "r3", 8)
                asm.sub("r4", "r4", 1)
                asm.bne("r4", 0, "encode%d" % part)
            asm.at(self.FILE, 66)
            asm.mov("r1", progress + 64 * tid)
            asm.add("r2", "r0", 1)
            asm.store("r1", "r2", size=8)
            asm.add("r0", "r0", 1)
            asm.blt("r0", rows, "row")
            asm.halt()
            threads.append(asm.build())
        return BuiltWorkload(Program(self.name, threads), allocator)


PARSEC_WORKLOADS = [
    Blackscholes,
    Bodytrack,
    Canneal,
    Dedup,
    Facesim,
    Ferret,
    Fluidanimate,
    Freqmine,
    RaytraceParsec,
    Streamcluster,
    Swaptions,
    Vips,
    X264,
]
