"""Phoenix 1.0 benchmark analogs (Section 7's workload suite).

Each class reproduces the sharing character the paper documents for its
namesake:

* ``linear_regression`` — intense write-write false sharing on the
  unaligned 64-byte ``lreg_args`` structs (Figure 2); the compiler's
  register caching of the fields removes the loads, leaving blind
  stores at the end of every loop iteration (Section 7.4.1).
* ``histogram`` / ``histogram'`` — input-dependent false sharing on
  adjacent thread-private counter arrays.
* ``kmeans`` — no false sharing at all, but two kinds of true sharing:
  a repeatedly-set global ``modified`` flag, and migratory read-write
  sharing on short-lived ``sum`` heap objects handed from the main
  thread to workers (Section 7.4.2).
* ``reverse_index`` / ``word_count`` — false sharing on the ``use_len``
  array (minor for reverse_index; fixing word_count's does not move
  performance at all, so it is *not* in the bug database and LASER's
  correct report of it counts as a false positive, as in Table 1).
* ``matrix_multiply`` / ``pca`` / ``string_match`` — no contention
  bugs; string_match's large read-only dictionary is written by the
  main thread and then scanned by workers, producing a high *volume* of
  one-shot HITM events spread thinly over many lines — harmless, but
  deadly for an interrupt-per-event profiler (the VTune 7x case).
"""

from typing import List

from repro.core.detect.report import ContentionClass
from repro.isa.assembler import Assembler
from repro.isa.program import Program, SourceLocation
from repro.rng import RngStreams
from repro.sim.allocator import Allocator
from repro.workloads.base import (
    BugRecord,
    BuiltWorkload,
    SheriffSupport,
    Workload,
    iterations,
)
from repro.workloads.templates import (
    emit_counter_increment,
    emit_handoff_read,
    emit_private_stream,
    emit_startup_handoff_writes,
)

__all__ = [
    "LinearRegression",
    "Histogram",
    "HistogramPrime",
    "Kmeans",
    "MatrixMultiply",
    "Pca",
    "ReverseIndex",
    "StringMatch",
    "WordCount",
    "PHOENIX_WORKLOADS",
]


class LinearRegression(Workload):
    """False sharing on the ``lreg_args`` array (Figure 2)."""

    name = "linear_regression"
    suite = "phoenix"
    FILE = "linear_regression.c"
    # The compiler emits the five field write-backs as two fused store
    # groups (one statement block in the source).
    STORE_LINES = [118, 118, 118, 119, 119]
    bugs = [
        BugRecord(
            [
                SourceLocation("linear_regression.c", 118),
                SourceLocation("linear_regression.c", 119),
            ],
            ContentionClass.FALSE_SHARING,
            "lreg_args structs for two threads share a cache line; the "
            "compiler caches SX..SXY in registers but stores them every "
            "iteration (write-write false sharing)",
            significant=True,
            sheriff_detects=False,  # Sheriff-Detect misses it (Table 1)
        )
    ]
    sheriff_support = SheriffSupport.OK

    def build(self, heap_offset: int = 0, seed: int = 0, scale: float = 1.0,
              align_args: bool = False) -> BuiltWorkload:
        allocator = Allocator(base_offset=heap_offset)
        iters = iterations(1200, scale)
        points = [
            allocator.malloc(iters * 16, label="points[%d]" % tid)
            for tid in range(self.num_threads)
        ]
        # One 64-byte struct per thread; 16-byte default alignment means
        # the array generally straddles cache lines (the bug).  The
        # manual fix aligns it to a line boundary.
        args = allocator.malloc(
            self.num_threads * 64,
            align=64 if align_args else 16,
            label="lreg_args",
        )
        threads = [
            self._worker(tid, points[tid], args + tid * 64, iters)
            for tid in range(self.num_threads)
        ]
        rng = RngStreams(seed).stream("lreg-points")
        init_writes = []
        for tid in range(self.num_threads):
            for i in range(0, iters, 7):  # sparse nonzero data is enough
                init_writes.append((points[tid] + i * 16, rng.randrange(100), 8))
                init_writes.append((points[tid] + i * 16 + 8, rng.randrange(100), 8))
        program = Program(self.name, threads)
        return BuiltWorkload(program, allocator, init_writes)

    def build_fixed(self, heap_offset: int = 0, seed: int = 0,
                    scale: float = 1.0) -> BuiltWorkload:
        return self.build(heap_offset, seed, scale, align_args=True)

    def _worker(self, tid: int, points: int, my_args: int, iters: int):
        asm = Assembler("lreg_worker_%d" % tid)
        asm.at(self.FILE, 100)
        asm.mov("r1", points)       # point cursor
        asm.mov("r0", iters)
        # SX..SXY cached in r3..r7 (the -O3 register caching).
        for reg in ("r3", "r4", "r5", "r6", "r7"):
            asm.mov(reg, 0)
        asm.label("loop")
        asm.at(self.FILE, 110)
        asm.load("r8", "r1", size=8)            # x
        asm.load("r9", "r1", offset=8, size=8)  # y
        asm.at(self.FILE, 112)
        asm.add("r3", "r3", "r8")               # SX += x
        asm.add("r4", "r4", "r9")               # SY += y
        asm.mul("r10", "r8", "r9")
        asm.add("r5", "r5", "r8")               # SXX (strength-reduced)
        asm.add("r6", "r6", "r9")               # SYY (strength-reduced)
        asm.add("r7", "r7", "r10")              # SXY += x*y
        # The write-back of every field, each iteration (the bug).
        asm.mov("r2", my_args)
        for i, (line, reg) in enumerate(
            zip(self.STORE_LINES, ("r3", "r4", "r5", "r6", "r7"))
        ):
            asm.at(self.FILE, line)
            asm.store("r2", reg, offset=24 + 8 * i, size=8)
        asm.at(self.FILE, 125)
        asm.add("r1", "r1", 16)
        asm.sub("r0", "r0", 1)
        asm.bne("r0", 0, "loop")
        asm.halt()
        return asm.build()


class _HistogramBase(Workload):
    """Shared implementation for histogram and histogram'."""

    suite = "phoenix"
    FILE = "histogram.c"
    INC_LINE = 77

    #: Whether the input drives threads into the boundary buckets.
    accentuate_false_sharing = False

    def build(self, heap_offset: int = 0, seed: int = 0, scale: float = 1.0,
              align_bins: bool = False) -> BuiltWorkload:
        allocator = Allocator(base_offset=heap_offset)
        pixels_per_thread = iterations(1400, scale)
        num_buckets = 64  # 64 x 4B counters = 256 B per thread
        pixel_arrays = [
            allocator.malloc(pixels_per_thread, label="pixels[%d]" % tid)
            for tid in range(self.num_threads)
        ]
        bins = allocator.malloc(
            self.num_threads * num_buckets * 4,
            align=64 if align_bins else 16,
            label="histogram_bins",
        )
        rng = RngStreams(seed).stream("histogram-pixels")
        init_writes = []
        for tid in range(self.num_threads):
            for i in range(pixels_per_thread):
                if self.accentuate_false_sharing:
                    # Dark/bright image: even threads hit their top
                    # buckets, odd threads their bottom buckets, so all
                    # traffic lands on the lines straddling adjacent
                    # per-thread arrays.
                    if rng.random() < 0.5:
                        value = 8 + rng.randrange(num_buckets - 16)
                    elif tid % 2 == 0:
                        value = num_buckets - 1 - rng.randrange(3)
                    else:
                        value = rng.randrange(3)
                else:
                    # The standard image's values land in mid-range
                    # buckets, away from the array-boundary lines — on
                    # our layout the default input exhibits no false
                    # sharing, as the paper observes.
                    value = 8 + rng.randrange(num_buckets - 16)
                init_writes.append((pixel_arrays[tid] + i, value, 1))
        threads = [
            self._worker(tid, pixel_arrays[tid],
                         bins + tid * num_buckets * 4, pixels_per_thread)
            for tid in range(self.num_threads)
        ]
        program = Program(self.name, threads)
        return BuiltWorkload(program, allocator, init_writes)

    def _worker(self, tid: int, pixels: int, my_bins: int, count: int):
        asm = Assembler("hist_worker_%d" % tid)
        asm.at(self.FILE, 70)
        asm.mov("r1", pixels)
        asm.mov("r0", count)
        asm.label("loop")
        asm.at(self.FILE, 74)
        asm.load("r2", "r1", size=1)        # pixel value = bucket
        asm.at(self.FILE, 75)
        asm.shl("r2", "r2", 2)              # bucket * 4
        asm.add("r2", "r2", my_bins)        # &bins[tid][bucket]
        asm.at(self.FILE, self.INC_LINE)
        emit_counter_increment(asm, "r2", size=4)
        asm.at(self.FILE, 79)
        asm.add("r1", "r1", 1)
        asm.sub("r0", "r0", 1)
        asm.bne("r0", 0, "loop")
        asm.halt()
        return asm.build()


class Histogram(_HistogramBase):
    """Standard input: no false sharing manifests on our layout."""

    name = "histogram"
    bugs: List[BugRecord] = []
    sheriff_support = SheriffSupport.OK


class HistogramPrime(_HistogramBase):
    """Alternative input accentuating the latent false sharing."""

    name = "histogram'"
    accentuate_false_sharing = True
    bugs = [
        BugRecord(
            [SourceLocation(_HistogramBase.FILE, _HistogramBase.INC_LINE)],
            ContentionClass.FALSE_SHARING,
            "unpadded thread-private histogram counters share the cache "
            "lines straddling adjacent per-thread arrays",
            significant=True,
            sheriff_detects=False,  # Sheriff-Detect reports nothing (Table 1)
        )
    ]
    sheriff_support = SheriffSupport.OK

    def build_fixed(self, heap_offset: int = 0, seed: int = 0,
                    scale: float = 1.0) -> BuiltWorkload:
        # Manual fix: pad/align each thread's counters to a line boundary.
        return self.build(heap_offset, seed, scale, align_bins=True)


class Kmeans(Workload):
    """Migratory true sharing; no false sharing at all (Section 7.4.2)."""

    name = "kmeans"
    suite = "phoenix"
    FILE = "kmeans.c"
    FLAG_LINE = 193       # "threads repeatedly ... set the global modified flag"
    SUM_READ_LINE = 210   # workers read main-thread-written sum objects
    SUM_WRITE_LINE = 214
    MAIN_REDUCE_LINE = 165

    bugs = [
        BugRecord(
            [
                SourceLocation(FILE, FLAG_LINE),
                SourceLocation(FILE, SUM_READ_LINE),
                SourceLocation(FILE, SUM_WRITE_LINE),
            ],
            ContentionClass.TRUE_SHARING,
            "two new true-sharing sources found by LASER: the global "
            "`modified` flag redundantly updated by every worker "
            "iteration, and migratory read-write sharing on sum heap "
            "objects allocated on the main thread and instantly handed "
            "off to workers (ill-suited to sampling-based detectors)",
            significant=True,
            sheriff_detects=False,
        ),
    ]
    sheriff_support = SheriffSupport.CRASH

    def build(self, heap_offset: int = 0, seed: int = 0, scale: float = 1.0,
              fixed: bool = False) -> BuiltWorkload:
        allocator = Allocator(base_offset=heap_offset)
        batches = iterations(120, scale)
        workers = self.num_threads - 1
        # One line-aligned sum object per (batch, worker): fresh
        # addresses all run long (the migratory pattern).  Objects are
        # 64 bytes apart: kmeans has *no* false sharing (Section 7.4.2).
        objects = allocator.malloc(batches * workers * 64, align=64,
                                   label="sum_objects")
        flags = allocator.malloc(64 * workers * 2, align=64, label="flags")
        modified_flag = allocator.malloc(8, align=64, label="modified")
        ready = [flags + 128 * w for w in range(workers)]
        done = [flags + 128 * w + 64 for w in range(workers)]
        threads = [self._main(objects, ready, done, modified_flag,
                              batches, workers, fixed)]
        for w in range(workers):
            threads.append(
                self._worker(w, objects, ready[w], done[w], modified_flag,
                             batches, workers, fixed)
            )
        program = Program(self.name, threads)
        return BuiltWorkload(program, allocator, [])

    def build_fixed(self, heap_offset: int = 0, seed: int = 0,
                    scale: float = 1.0) -> BuiltWorkload:
        """The paper's manual fix: sum objects on each worker's stack.

        The `modified`-flag true sharing is left in place — Section 7.4.2
        attributes the 5% improvement to the stack allocation of the sum
        objects alone.
        """
        return self.build(heap_offset, seed, scale, fixed=True)

    def _obj_addr(self, objects: int, batch: int, worker: int,
                  workers: int) -> int:
        return objects + (batch * workers + worker) * 64

    def _main(self, objects: int, ready: List[int], done: List[int],
              modified_flag: int, batches: int, workers: int, fixed: bool):
        asm = Assembler("kmeans_main")
        asm.at(self.FILE, 140)
        asm.mov("r0", 0)  # batch counter
        asm.label("batch")
        # Allocate-and-initialize this batch's sum objects, then publish.
        for w in range(workers):
            asm.at(self.FILE, 150)
            asm.mov("r1", 0)  # placeholder; address computed per batch
            # obj = objects + (batch*workers + w) * 64
            asm.mov("r2", workers)
            asm.mul("r1", "r0", "r2")
            asm.add("r1", "r1", w)
            asm.shl("r1", "r1", 6)
            asm.add("r1", "r1", objects)
            asm.at(self.FILE, 152)
            if not fixed:
                asm.store("r1", 11, offset=0, size=8)
                asm.store("r1", 22, offset=8, size=8)
                asm.store("r1", 33, offset=16, size=8)
        for w in range(workers):
            asm.at(self.FILE, 156)
            asm.mov("r3", ready[w])
            asm.add("r4", "r0", 1)
            asm.store("r3", "r4", size=8)
        # Wait for all workers to finish the batch.
        for w in range(workers):
            asm.at(self.FILE, 160)
            asm.mov("r3", done[w])
            asm.add("r4", "r0", 1)
            asm.label("wait_%d" % w)
            asm.load("r5", "r3", size=8)
            asm.bge("r5", "r4", "ready_%d" % w)
            asm.pause()
            asm.jmp("wait_%d" % w)
            asm.label("ready_%d" % w)
        # Reduce the workers' results (reads lines they modified).
        asm.mov("r6", 0)
        for w in range(workers):
            asm.at(self.FILE, self.MAIN_REDUCE_LINE)
            asm.mov("r2", workers)
            asm.mul("r1", "r0", "r2")
            asm.add("r1", "r1", w)
            asm.shl("r1", "r1", 6)
            asm.add("r1", "r1", objects)
            asm.load("r7", "r1", offset=24, size=8)
            asm.add("r6", "r6", "r7")
        asm.at(self.FILE, 170)
        asm.add("r0", "r0", 1)
        asm.blt("r0", batches, "batch")
        asm.halt()
        return asm.build()

    def _worker(self, w: int, objects: int, ready: int, done: int,
                modified_flag: int, batches: int, workers: int, fixed: bool):
        asm = Assembler("kmeans_worker_%d" % w)
        asm.at(self.FILE, 200)
        asm.mov("r0", 0)  # batch counter
        asm.label("batch")
        asm.mov("r3", ready)
        asm.add("r4", "r0", 1)
        asm.label("wait")
        asm.at(self.FILE, 204)
        asm.load("r5", "r3", size=8)
        asm.bge("r5", "r4", "go")
        asm.pause()
        asm.jmp("wait")
        asm.label("go")
        # obj = objects + (batch*workers + w) * 64
        asm.mov("r2", workers)
        asm.mul("r1", "r0", "r2")
        asm.add("r1", "r1", w)
        asm.shl("r1", "r1", 6)
        asm.add("r1", "r1", objects)
        asm.at(self.FILE, self.SUM_READ_LINE)
        if fixed:
            # Fix: sums start on the worker's own stack; no reads of
            # main-thread-written heap objects.
            asm.load("r6", "r15", offset=-32, size=8)
            asm.load("r7", "r15", offset=-24, size=8)
            asm.load("r8", "r15", offset=-16, size=8)
        else:
            asm.load("r6", "r1", offset=0, size=8)   # HITM: main wrote these
            asm.load("r7", "r1", offset=8, size=8)
            asm.load("r8", "r1", offset=16, size=8)
        asm.add("r6", "r6", "r7")
        asm.add("r6", "r6", "r8")
        asm.at(self.FILE, self.SUM_WRITE_LINE)
        asm.addm("r1", "r6", offset=24, size=8)   # obj->sum += local (RMW)
        # Private clustering work between hand-offs, with the redundant
        # flag update repeated mid-batch ("threads repeatedly and
        # redundantly set the global modified flag to true").  The flag
        # update is modelled as `or $1, (modified)` — a memory-
        # destination RMW rather than a blind store — so the detector's
        # evidence volume matches the real system's statistics at our
        # much shorter simulated runs (see DESIGN.md calibration notes).
        # The flag bug stays even in the "fixed" variant: the paper's
        # 5% manual fix is the sum-object stack allocation only
        # (Section 7.4.2).
        asm.mov("r9", modified_flag)
        asm.mov("r10", 12)
        asm.label("work")
        asm.mul("r6", "r6", 3)
        asm.at(self.FILE, self.FLAG_LINE)
        asm.addm("r9", 0, size=8)
        asm.at(self.FILE, 218)
        asm.sub("r10", "r10", 1)
        asm.bne("r10", 0, "work")
        if fixed and w == 0:
            # The fix: one flag write per batch by a single thread.
            asm.at(self.FILE, self.FLAG_LINE)
            asm.mov("r9", modified_flag)
            asm.store("r9", 1, size=8)
        asm.at(self.FILE, 220)
        asm.mov("r3", done)
        asm.add("r4", "r0", 1)
        asm.store("r3", "r4", size=8)
        asm.add("r0", "r0", 1)
        asm.blt("r0", batches, "batch")
        asm.halt()
        return asm.build()


class MatrixMultiply(Workload):
    """Row-partitioned matmul: read-shared inputs, private outputs."""

    name = "matrix_multiply"
    suite = "phoenix"
    FILE = "matrix_multiply.c"
    bugs: List[BugRecord] = []
    sheriff_support = SheriffSupport.OK

    def build(self, heap_offset: int = 0, seed: int = 0,
              scale: float = 1.0) -> BuiltWorkload:
        allocator = Allocator(base_offset=heap_offset)
        shared_b = allocator.malloc(64 * 400, label="matrix_b")
        outputs = [
            allocator.malloc(8 * 2048, align=64, label="c_rows[%d]" % tid)
            for tid in range(self.num_threads)
        ]
        n = iterations(2600, scale)
        handoff_lines = iterations(120, scale)
        threads = []
        for tid in range(self.num_threads):
            asm = Assembler("mm_worker_%d" % tid)
            asm.at(self.FILE, 50)
            if tid == 0:
                emit_startup_handoff_writes(asm, shared_b, handoff_lines, "b")
            asm.at(self.FILE, 60 + tid)
            # Everyone reads B (one-shot HITMs from t0's writes, then
            # read-shared), accumulating into private C rows.
            emit_handoff_read(asm, shared_b, handoff_lines, "readb")
            asm.at(self.FILE, 72)
            emit_private_stream(asm, outputs[tid], n, "crow",
                                alu_ops=3, do_store=True)
            asm.halt()
            threads.append(asm.build())
        program = Program(self.name, threads)
        return BuiltWorkload(program, allocator, [])


class Pca(Workload):
    """Covariance over row-partitioned data: essentially no sharing."""

    name = "pca"
    suite = "phoenix"
    FILE = "pca.c"
    bugs: List[BugRecord] = []
    sheriff_support = SheriffSupport.OK

    def build(self, heap_offset: int = 0, seed: int = 0,
              scale: float = 1.0) -> BuiltWorkload:
        allocator = Allocator(base_offset=heap_offset)
        rows = [
            allocator.malloc(8 * 4096, align=64, label="rows[%d]" % tid)
            for tid in range(self.num_threads)
        ]
        n = iterations(2400, scale)
        threads = []
        for tid in range(self.num_threads):
            asm = Assembler("pca_worker_%d" % tid)
            asm.at(self.FILE, 90)
            emit_private_stream(asm, rows[tid], n, "mean", alu_ops=2)
            asm.at(self.FILE, 104)
            emit_private_stream(asm, rows[tid], n // 2, "cov", alu_ops=4,
                                do_store=True)
            asm.halt()
            threads.append(asm.build())
        program = Program(self.name, threads)
        return BuiltWorkload(program, allocator, [])


class _UseLenBase(Workload):
    """Shared shape for reverse_index / word_count: the use_len FS idiom."""

    suite = "phoenix"
    FILE = "stddefines.h"
    INC_LINE = 0          # set by subclasses
    inner_private_work = 55
    outer_iters_base = 290

    def build(self, heap_offset: int = 0, seed: int = 0, scale: float = 1.0,
              pad_use_len: bool = False) -> BuiltWorkload:
        allocator = Allocator(base_offset=heap_offset)
        stride = 64 if pad_use_len else 8
        use_len = allocator.malloc(
            self.num_threads * stride, align=64 if pad_use_len else 16,
            label="use_len",
        )
        links = [
            allocator.malloc(8 * 4096, label="links[%d]" % tid)
            for tid in range(self.num_threads)
        ]
        outer = iterations(self.outer_iters_base, scale)
        threads = []
        for tid in range(self.num_threads):
            asm = Assembler("%s_worker_%d" % (self.name, tid))
            asm.at(self.FILE, 40)
            asm.mov("r0", outer)
            asm.mov("r3", links[tid])
            asm.label("outer")
            # Private parsing work between counter updates.
            asm.at(self.FILE, 44)
            asm.mov("r4", self.inner_private_work)
            asm.label("inner")
            asm.load("r5", "r3", size=8)
            asm.add("r5", "r5", 1)
            asm.add("r3", "r3", 8)
            asm.sub("r4", "r4", 1)
            asm.bne("r4", 0, "inner")
            # The falsely-shared counter increment.
            asm.at(self.FILE, self.INC_LINE)
            asm.mov("r2", use_len + tid * stride)
            emit_counter_increment(asm, "r2", size=8)
            asm.at(self.FILE, 52)
            asm.sub("r0", "r0", 1)
            asm.bne("r0", 0, "outer")
            asm.halt()
            threads.append(asm.build())
        program = Program(self.name, threads)
        return BuiltWorkload(program, allocator, [])

    def build_fixed(self, heap_offset: int = 0, seed: int = 0,
                    scale: float = 1.0) -> BuiltWorkload:
        return self.build(heap_offset, seed, scale, pad_use_len=True)


class ReverseIndex(_UseLenBase):
    """Minor false sharing on use_len[]; found but not worth auto-repair."""

    name = "reverse_index"
    FILE = "reverse_index.c"
    INC_LINE = 88
    bugs = [
        BugRecord(
            [SourceLocation(FILE, INC_LINE)],
            ContentionClass.FALSE_SHARING,
            "per-thread use_len counters share one cache line; minor "
            "(manual padding buys ~4%)",
            significant=True,
            # Sheriff sees the data but attributes it to the malloc
            # wrapper allocation site, not these lines (Section 7.1) —
            # so the site report is an FP and the bug still an FN.
            sheriff_detects=True,
        )
    ]
    sheriff_support = SheriffSupport.OK


class WordCount(_UseLenBase):
    """Same idiom, but fixing it does not change performance at all.

    Hence there is no entry in the performance-bug database and LASER's
    (correct) report of this line is scored as a false positive, exactly
    as in Table 1.
    """

    name = "word_count"
    FILE = "word_count.c"
    INC_LINE = 61
    inner_private_work = 54
    outer_iters_base = 230
    bugs: List[BugRecord] = []
    sheriff_support = SheriffSupport.CRASH


class StringMatch(Workload):
    """No bugs; huge one-shot HITM volume from the dictionary handoff."""

    name = "string_match"
    suite = "phoenix"
    FILE = "string_match.c"
    bugs: List[BugRecord] = []
    sheriff_support = SheriffSupport.OK

    def build(self, heap_offset: int = 0, seed: int = 0,
              scale: float = 1.0) -> BuiltWorkload:
        allocator = Allocator(base_offset=heap_offset)
        dictionary = allocator.malloc(64 * 2600, align=64, label="dictionary")
        keys = [
            allocator.malloc(8 * 4096, label="keys[%d]" % tid)
            for tid in range(self.num_threads)
        ]
        dict_lines = iterations(400, scale)
        compare_iters = iterations(2600, scale)
        threads = []
        for tid in range(self.num_threads):
            asm = Assembler("sm_worker_%d" % tid)
            asm.at(self.FILE, 30)
            if tid == 0:
                # Main thread "encrypts" the dictionary in place.
                emit_startup_handoff_writes(asm, dictionary, dict_lines, "dict")
            # Every worker scans the whole dictionary: line after line
            # of one-shot HITMs against thread 0's modified lines.  The
            # scan is spread across many source lines (the inlined
            # compare helpers of the real benchmark), so no single line
            # accumulates a reportable HITM rate — high HITM *volume*
            # with no performance bug, the worst case for an
            # interrupt-per-event profiler.
            chunk = dict_lines // 10
            for part in range(10):
                asm.at(self.FILE, 40 + part)
                emit_handoff_read(
                    asm,
                    dictionary + part * chunk * 64,
                    chunk,
                    "scan%d" % part,
                )
            # The encrypted-compare loop: nearly one load per cycle,
            # which is what makes an interrupt-per-sample profiler
            # catastrophic here (Figure 10's 7x VTune outlier).
            asm.at(self.FILE, 55)
            asm.mov("r1", keys[tid])
            asm.mov("r0", compare_iters)
            asm.label("cmp")
            asm.load("r5", "r1", size=8)
            asm.load("r6", "r1", offset=8, size=8)
            asm.load("r7", "r1", offset=16, size=8)
            asm.load("r8", "r1", offset=24, size=8)
            asm.load("r9", "r1", offset=32, size=8)
            asm.load("r10", "r1", offset=40, size=8)
            asm.add("r1", "r1", 48)
            asm.sub("r0", "r0", 1)
            asm.bne("r0", 0, "cmp")
            asm.halt()
            threads.append(asm.build())
        program = Program(self.name, threads)
        return BuiltWorkload(program, allocator, [])


PHOENIX_WORKLOADS = [
    Histogram,
    HistogramPrime,
    Kmeans,
    LinearRegression,
    MatrixMultiply,
    Pca,
    ReverseIndex,
    StringMatch,
    WordCount,
]
