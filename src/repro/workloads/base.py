"""Workload definitions: programs plus ground-truth metadata.

A :class:`Workload` builds an ISA :class:`Program` and the heap layout
it runs against.  Because address-layout decisions are part of the bug
being studied (false sharing "can even arise invisibly ... due to the
opaque decisions of the memory allocator"), the workload allocates its
data through a real :class:`Allocator` instance whose ``heap_offset``
models environment-dependent layout shifts, and bakes the resulting
addresses into the program it emits.

Ground truth for the accuracy experiments lives here too: each workload
lists its known performance bugs (source location + actual contention
type), whether the bug is significant enough to merit automatic repair,
and the workload's compatibility with Sheriff (Table 1's ``x`` and ``i``
entries).
"""

import enum
from typing import List, Optional, Tuple

from repro.core.detect.report import ContentionClass
from repro.isa.program import Program, SourceLocation
from repro.sim.allocator import Allocator

__all__ = ["BugRecord", "BuiltWorkload", "SheriffSupport", "Workload"]


class SheriffSupport(enum.Enum):
    """How a workload fares under Sheriff (Section 7.3)."""

    OK = "ok"
    CRASH = "crash"              # "The remaining workloads encounter runtime errors"
    INCOMPATIBLE = "incompatible"  # spin locks / OpenMP etc.


class BugRecord:
    """One known performance bug (an entry of the paper's database).

    A bug may span several source lines (e.g. the five field updates of
    ``linear_regression``'s inner loop): a detector "finds" the bug if it
    reports any of them, and reported lines inside the set are never
    false positives.
    """

    def __init__(
        self,
        locations: List[SourceLocation],
        kind: ContentionClass,
        description: str,
        significant: bool = False,
        sheriff_detects: bool = False,
        vtune_detects: bool = True,
    ):
        if not locations:
            raise ValueError("a bug needs at least one source location")
        self.locations = list(locations)
        self.kind = kind
        self.description = description
        #: Whether fixing it yields a measurable speedup (Section 7.4.3
        #: bugs exist but fixing them does not move runtime).
        self.significant = significant
        #: Whether Sheriff-Detect's mechanism can see it at all.
        self.sheriff_detects = sheriff_detects
        #: Whether a HITM-location profiler (VTune) reports the line.
        self.vtune_detects = vtune_detects

    @property
    def primary_location(self) -> SourceLocation:
        return self.locations[0]

    def covers(self, location: SourceLocation) -> bool:
        return location in self.locations

    def __repr__(self):
        return "<Bug %s %s%s>" % (
            self.primary_location,
            self.kind.value,
            " significant" if self.significant else "",
        )


class BuiltWorkload:
    """A concrete program + heap layout, ready to run."""

    def __init__(self, program: Program, allocator: Allocator,
                 init_writes: Optional[List[Tuple[int, int, int]]] = None):
        self.program = program
        self.allocator = allocator
        #: (addr, value, size) initial memory image, applied before run
        #: (static data / pre-main initialization; no coherence traffic).
        self.init_writes = init_writes or []

    def apply_init(self, machine) -> None:
        for addr, value, size in self.init_writes:
            machine.memory.write(addr, value, size)


class Workload:
    """Base class: subclasses override :meth:`build` (and metadata)."""

    #: Benchmark name as it appears in the paper's tables.
    name: str = "abstract"
    #: Suite: "phoenix", "parsec" or "splash2x".
    suite: str = "none"
    #: Number of threads (== cores used).
    num_threads: int = 4
    #: Known performance bugs (empty for clean benchmarks).
    bugs: List[BugRecord] = []
    #: Sheriff compatibility verdict (Table 1), for the native input.
    sheriff_support: SheriffSupport = SheriffSupport.OK
    #: Whether Sheriff runs with the reduced (simlarge) input even though
    #: it crashes on the native one — the "*" benchmarks of Figure 14.
    sheriff_reduced_input_ok: bool = False
    #: Relative nominal size; the experiments scale iteration counts by
    #: this to keep suite-wide sweeps fast.
    default_scale: float = 1.0

    def build(self, heap_offset: int = 0, seed: int = 0,
              scale: float = 1.0) -> BuiltWorkload:
        """Construct the program against a heap shifted by ``heap_offset``."""
        raise NotImplementedError

    def build_fixed(self, heap_offset: int = 0, seed: int = 0,
                    scale: float = 1.0) -> Optional[BuiltWorkload]:
        """The manually-fixed variant from the paper's case studies.

        Returns None when no manual fix exists for this workload.
        """
        return None

    @property
    def has_significant_bug(self) -> bool:
        return any(bug.significant for bug in self.bugs)

    def bug_locations(self) -> List[SourceLocation]:
        out = []
        for bug in self.bugs:
            out.extend(bug.locations)
        return out

    def __repr__(self):
        return "<Workload %s/%s bugs=%d>" % (self.suite, self.name, len(self.bugs))


def iterations(base: int, scale: float, minimum: int = 8) -> int:
    """Scale an iteration count, keeping it a usable size."""
    return max(minimum, int(base * scale))
