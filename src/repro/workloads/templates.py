"""Shared program-building templates for the benchmark analogs.

Each template emits a common parallel-programming idiom into a thread's
assembler.  Combining a few of these with workload-specific data layouts
reproduces the sharing character of each benchmark:

* ``emit_private_stream`` — the contention-free bulk of data-parallel
  code (each thread streams over its own slice).
* ``emit_handoff_read`` — reading a large array the main thread wrote
  (one-shot, diffuse HITMs: the pattern that makes interrupt-per-event
  profilers slow without constituting a performance bug).
* ``emit_locked_update`` — a lock-protected shared accumulator
  (bounded true-sharing noise).
* ``emit_counter_increment`` — the classic read-modify-write of a
  shared or falsely-shared counter (the histogram/reverse_index/
  word_count pattern).

Register budget used by the templates: r0-r9 free for the caller,
r10-r13 scratch, r14 thread id, r15 stack pointer (reserved).
"""

from typing import List

from repro.core.detect.report import ContentionClass
from repro.isa.assembler import Assembler
from repro.isa.program import Program, SourceLocation
from repro.sim.allocator import Allocator
from repro.sim.locks import (
    emit_lock_release,
    emit_naive_lock_acquire,
    emit_ttas_lock_acquire,
)
from repro.workloads.base import (
    BugRecord,
    BuiltWorkload,
    SheriffSupport,
    Workload,
    iterations,
)

__all__ = [
    "emit_private_stream",
    "emit_handoff_read",
    "emit_locked_update",
    "emit_counter_increment",
    "emit_startup_handoff_writes",
    "RacyCounter",
    "RacyHandoff",
    "VARIANT_WORKLOADS",
]


def emit_private_stream(
    asm: Assembler,
    base_addr: int,
    iters: int,
    tag: str,
    stride: int = 8,
    alu_ops: int = 2,
    do_store: bool = False,
    counter_reg: str = "r0",
    addr_reg: str = "r1",
    value_reg: str = "r2",
) -> None:
    """Stream over a thread-private buffer: load, compute, maybe store."""
    loop = "stream_loop_%s" % tag
    asm.mov(addr_reg, base_addr)
    asm.mov(counter_reg, iters)
    asm.label(loop)
    asm.load(value_reg, addr_reg, size=8)
    for _ in range(alu_ops):
        asm.add(value_reg, value_reg, 3)
    if do_store:
        asm.store(addr_reg, value_reg, size=8)
    asm.add(addr_reg, addr_reg, stride)
    asm.sub(counter_reg, counter_reg, 1)
    asm.bne(counter_reg, 0, loop)


def emit_handoff_read(
    asm: Assembler,
    base_addr: int,
    num_words: int,
    tag: str,
    stride: int = 64,
    counter_reg: str = "r0",
    addr_reg: str = "r1",
    value_reg: str = "r2",
    acc_reg: str = "r3",
) -> None:
    """Read a main-thread-initialized array once (diffuse one-shot HITMs).

    With ``stride=64`` each iteration touches a fresh cache line, so a
    worker reading N words generates up to N HITM events spread over N
    distinct lines — high HITM *volume*, negligible per-line *rate*.
    """
    loop = "handoff_loop_%s" % tag
    asm.mov(addr_reg, base_addr)
    asm.mov(counter_reg, num_words)
    asm.label(loop)
    asm.load(value_reg, addr_reg, size=8)
    asm.add(acc_reg, acc_reg, value_reg)
    asm.add(addr_reg, addr_reg, stride)
    asm.sub(counter_reg, counter_reg, 1)
    asm.bne(counter_reg, 0, loop)


def emit_startup_handoff_writes(
    asm: Assembler,
    base_addr: int,
    num_words: int,
    tag: str,
    stride: int = 64,
    counter_reg: str = "r0",
    addr_reg: str = "r1",
) -> None:
    """Main thread writes an array that workers will read (handoff)."""
    loop = "handoff_init_%s" % tag
    asm.mov(addr_reg, base_addr)
    asm.mov(counter_reg, num_words)
    asm.label(loop)
    asm.store(addr_reg, 7, size=8)
    asm.add(addr_reg, addr_reg, stride)
    asm.sub(counter_reg, counter_reg, 1)
    asm.bne(counter_reg, 0, loop)


def emit_locked_update(
    asm: Assembler,
    lock_addr: int,
    shared_addr: int,
    tag: str,
    naive: bool = True,
    addr_reg: str = "r11",
    value_reg: str = "r12",
) -> None:
    """Acquire a lock, bump a shared accumulator, release."""
    asm.mov(addr_reg, lock_addr)
    if naive:
        emit_naive_lock_acquire(asm, addr_reg, tag)
    else:
        emit_ttas_lock_acquire(asm, addr_reg, tag)
    asm.mov(value_reg, shared_addr)
    asm.addm(value_reg, 1, size=8)
    asm.mov(addr_reg, lock_addr)
    emit_lock_release(asm, addr_reg)


def emit_counter_increment(
    asm: Assembler,
    addr_reg: str,
    size: int = 8,
) -> None:
    """The canonical contended idiom: `add $1, (addr)`.

    Compilers emit counter increments as a single memory-destination RMW
    instruction, which matters to LASERDETECT: the instruction's PC is in
    both the load and store sets, and its load-triggered HITM records
    carry load-grade (i.e. usable) data addresses.
    """
    asm.addm(addr_reg, 1, size=size)


# ----------------------------------------------------------------------
# Intentionally-racy workload variants (race-certifier positive controls)
# ----------------------------------------------------------------------
#
# These are NOT in the registry that ``all_workloads()`` serves — the
# accuracy experiments and the paper's tables are pinned to the 35
# benchmark analogs.  They are resolved by name through
# ``registry.get_workload`` / ``registry.variant_workloads`` and exist
# so the race certifier (``static/race.py``) always has known-unsafe
# programs to classify: CI fails if either ever certifies safe.


class RacyCounter(Workload):
    """False sharing that repair must NOT fix: the hot line is racy.

    One 64-byte line carries a shared result word (bytes 0-7) *and* the
    four per-thread counters (bytes 8+8*tid).  The counters produce the
    classic high-rate disjoint-write false sharing LASERREPAIR exists
    for — but thread 0 also plain-stores the result word before its
    loop and every worker plain-loads it after, with no flag, lock or
    barrier ordering the handoff.  That write-read pair is a data race
    on the same cache line, so the line's certificate verdict is RACE
    and a `race_gate` run must quarantine the repair instead of
    attaching an SSB.
    """

    name = "racy_counter"
    suite = "variant"
    FILE = "racy_counter.c"
    STORE_LINE = 21
    INC_LINE = 33
    LOAD_LINE = 41
    bugs = [
        BugRecord(
            [SourceLocation("racy_counter.c", INC_LINE)],
            ContentionClass.FALSE_SHARING,
            "per-thread counters packed into one (racy) line",
            significant=True,
            sheriff_detects=True,
        )
    ]
    sheriff_support = SheriffSupport.OK
    #: Ground truth for experiments/race_cmp.py: locations whose line
    #: carries an actual data race.
    race_locations = [
        SourceLocation(FILE, STORE_LINE),
        SourceLocation(FILE, LOAD_LINE),
    ]

    def build(self, heap_offset: int = 0, seed: int = 0,
              scale: float = 1.0) -> BuiltWorkload:
        allocator = Allocator(base_offset=heap_offset)
        hot = allocator.malloc(64, align=64, label="hot_line")
        n = iterations(6000, scale)
        threads = []
        for tid in range(self.num_threads):
            asm = Assembler("racy_counter_%d" % tid)
            if tid == 0:
                # Unsynchronized publish: no flag, no fence, no join.
                asm.at(self.FILE, self.STORE_LINE)
                asm.mov("r3", hot)
                asm.store("r3", 1, size=8)
            asm.at(self.FILE, 30)
            asm.mov("r1", hot + 8 + 8 * tid)
            asm.mov("r0", n)
            asm.label("bump")
            asm.at(self.FILE, self.INC_LINE)
            emit_counter_increment(asm, "r1", size=8)
            asm.at(self.FILE, 35)
            asm.sub("r0", "r0", 1)
            asm.bne("r0", 0, "bump")
            if tid != 0:
                # Unsynchronized consume of thread 0's publish.
                asm.at(self.FILE, self.LOAD_LINE)
                asm.mov("r3", hot)
                asm.load("r2", "r3", size=8)
            asm.halt()
            threads.append(asm.build())
        return BuiltWorkload(Program(self.name, threads), allocator)


class RacyHandoff(Workload):
    """A write->read array handoff with the synchronization deleted.

    Thread 0 fills a 24-line array; workers immediately scan it.  The
    safe version of this idiom (``fft``'s transpose, ``string_match``'s
    dictionary) at least *intends* a startup ordering — here there is
    provably none, and every handoff line certifies RACE.
    """

    name = "racy_handoff"
    suite = "variant"
    FILE = "racy_handoff.c"
    WRITE_LINE = 12
    READ_LINE = 25
    HANDOFF_LINES = 24
    bugs: List[BugRecord] = []
    sheriff_support = SheriffSupport.CRASH
    race_locations = [
        SourceLocation(FILE, WRITE_LINE),
        SourceLocation(FILE, READ_LINE),
    ]

    def build(self, heap_offset: int = 0, seed: int = 0,
              scale: float = 1.0) -> BuiltWorkload:
        allocator = Allocator(base_offset=heap_offset)
        shared = allocator.malloc(64 * self.HANDOFF_LINES, align=64,
                                  label="shared")
        scratch = [
            allocator.malloc(8 * 512, align=64, label="scratch[%d]" % tid)
            for tid in range(self.num_threads)
        ]
        n = iterations(320, scale)
        threads = []
        for tid in range(self.num_threads):
            asm = Assembler("racy_handoff_%d" % tid)
            if tid == 0:
                asm.at(self.FILE, self.WRITE_LINE)
                emit_startup_handoff_writes(asm, shared, self.HANDOFF_LINES,
                                            "publish")
            else:
                asm.at(self.FILE, self.READ_LINE)
                emit_handoff_read(asm, shared, self.HANDOFF_LINES, "consume")
            asm.at(self.FILE, 40)
            emit_private_stream(asm, scratch[tid], n, "work", do_store=True)
            asm.halt()
            threads.append(asm.build())
        return BuiltWorkload(Program(self.name, threads), allocator)


#: Positive-control variants, resolved by ``registry.get_workload`` but
#: never part of ``all_workloads()``.
VARIANT_WORKLOADS = [RacyCounter, RacyHandoff]
