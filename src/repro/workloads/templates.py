"""Shared program-building templates for the benchmark analogs.

Each template emits a common parallel-programming idiom into a thread's
assembler.  Combining a few of these with workload-specific data layouts
reproduces the sharing character of each benchmark:

* ``emit_private_stream`` — the contention-free bulk of data-parallel
  code (each thread streams over its own slice).
* ``emit_handoff_read`` — reading a large array the main thread wrote
  (one-shot, diffuse HITMs: the pattern that makes interrupt-per-event
  profilers slow without constituting a performance bug).
* ``emit_locked_update`` — a lock-protected shared accumulator
  (bounded true-sharing noise).
* ``emit_counter_increment`` — the classic read-modify-write of a
  shared or falsely-shared counter (the histogram/reverse_index/
  word_count pattern).

Register budget used by the templates: r0-r9 free for the caller,
r10-r13 scratch, r14 thread id, r15 stack pointer (reserved).
"""

from repro.isa.assembler import Assembler
from repro.sim.locks import (
    emit_lock_release,
    emit_naive_lock_acquire,
    emit_ttas_lock_acquire,
)

__all__ = [
    "emit_private_stream",
    "emit_handoff_read",
    "emit_locked_update",
    "emit_counter_increment",
    "emit_startup_handoff_writes",
]


def emit_private_stream(
    asm: Assembler,
    base_addr: int,
    iters: int,
    tag: str,
    stride: int = 8,
    alu_ops: int = 2,
    do_store: bool = False,
    counter_reg: str = "r0",
    addr_reg: str = "r1",
    value_reg: str = "r2",
) -> None:
    """Stream over a thread-private buffer: load, compute, maybe store."""
    loop = "stream_loop_%s" % tag
    asm.mov(addr_reg, base_addr)
    asm.mov(counter_reg, iters)
    asm.label(loop)
    asm.load(value_reg, addr_reg, size=8)
    for _ in range(alu_ops):
        asm.add(value_reg, value_reg, 3)
    if do_store:
        asm.store(addr_reg, value_reg, size=8)
    asm.add(addr_reg, addr_reg, stride)
    asm.sub(counter_reg, counter_reg, 1)
    asm.bne(counter_reg, 0, loop)


def emit_handoff_read(
    asm: Assembler,
    base_addr: int,
    num_words: int,
    tag: str,
    stride: int = 64,
    counter_reg: str = "r0",
    addr_reg: str = "r1",
    value_reg: str = "r2",
    acc_reg: str = "r3",
) -> None:
    """Read a main-thread-initialized array once (diffuse one-shot HITMs).

    With ``stride=64`` each iteration touches a fresh cache line, so a
    worker reading N words generates up to N HITM events spread over N
    distinct lines — high HITM *volume*, negligible per-line *rate*.
    """
    loop = "handoff_loop_%s" % tag
    asm.mov(addr_reg, base_addr)
    asm.mov(counter_reg, num_words)
    asm.label(loop)
    asm.load(value_reg, addr_reg, size=8)
    asm.add(acc_reg, acc_reg, value_reg)
    asm.add(addr_reg, addr_reg, stride)
    asm.sub(counter_reg, counter_reg, 1)
    asm.bne(counter_reg, 0, loop)


def emit_startup_handoff_writes(
    asm: Assembler,
    base_addr: int,
    num_words: int,
    tag: str,
    stride: int = 64,
    counter_reg: str = "r0",
    addr_reg: str = "r1",
) -> None:
    """Main thread writes an array that workers will read (handoff)."""
    loop = "handoff_init_%s" % tag
    asm.mov(addr_reg, base_addr)
    asm.mov(counter_reg, num_words)
    asm.label(loop)
    asm.store(addr_reg, 7, size=8)
    asm.add(addr_reg, addr_reg, stride)
    asm.sub(counter_reg, counter_reg, 1)
    asm.bne(counter_reg, 0, loop)


def emit_locked_update(
    asm: Assembler,
    lock_addr: int,
    shared_addr: int,
    tag: str,
    naive: bool = True,
    addr_reg: str = "r11",
    value_reg: str = "r12",
) -> None:
    """Acquire a lock, bump a shared accumulator, release."""
    asm.mov(addr_reg, lock_addr)
    if naive:
        emit_naive_lock_acquire(asm, addr_reg, tag)
    else:
        emit_ttas_lock_acquire(asm, addr_reg, tag)
    asm.mov(value_reg, shared_addr)
    asm.addm(value_reg, 1, size=8)
    asm.mov(addr_reg, lock_addr)
    emit_lock_release(asm, addr_reg)


def emit_counter_increment(
    asm: Assembler,
    addr_reg: str,
    size: int = 8,
) -> None:
    """The canonical contended idiom: `add $1, (addr)`.

    Compilers emit counter increments as a single memory-destination RMW
    instruction, which matters to LASERDETECT: the instruction's PC is in
    both the load and store sets, and its load-triggered HITM records
    carry load-grade (i.e. usable) data addresses.
    """
    asm.addm(addr_reg, 1, size=size)
