"""Splash2x benchmark analogs.

The headline finding here is ``lu_ncb`` (Section 7.4.2): LASERDETECT
uncovered a *novel* false-sharing bug on the ``a`` array, lu_ncb's main
data structure.  Three properties are reproduced:

* the bug is significant — aligning ``a`` to a cache-line boundary by
  hand gives a ~36% speedup;
* LASERREPAIR declines to repair it online: the hot loop contains a
  barrier-style fence, so the estimated stores-per-flush ratio falls
  below the profitability threshold ("lu_ncb's sophisticated code
  structure is difficult for LASERREPAIR to analyze precisely, and the
  estimated impact of the SSB instrumentation is beyond the threshold
  deemed profitable");
* lu_ncb is nevertheless ~30% faster under LASER "due to a coincidental
  change in memory layout caused by LASER": the array's alignment is
  environment-sensitive (an input-staging buffer sized off the
  environment block precedes it), and the detector's fork perturbs the
  environment.  We model that by keying the staging buffer's size off
  the heap shift the fork produces.

``volrend`` carries the novel true-sharing find on the lock protecting
the ``Global->Queue`` counter (fixing it cuts HITMs an order of
magnitude without changing runtime, Section 7.4.3), and
``water_nsquared`` is the canonical synchronization-heavy workload that
makes Sheriff's threads-as-processes execution model collapse
(Figure 14) while costing LASER almost nothing.
"""

from typing import List

from repro.core.detect.report import ContentionClass
from repro.isa.assembler import Assembler
from repro.isa.program import Program, SourceLocation
from repro.sim.allocator import Allocator
from repro.sim.locks import (
    emit_barrier_wait,
    emit_lock_release,
    emit_naive_lock_acquire,
    emit_ttas_lock_acquire,
)
from repro.workloads.base import (
    BugRecord,
    BuiltWorkload,
    SheriffSupport,
    Workload,
    iterations,
)
from repro.workloads.templates import (
    emit_handoff_read,
    emit_private_stream,
    emit_startup_handoff_writes,
)

__all__ = ["SPLASH2X_WORKLOADS"]


class _BarrierPhases(Workload):
    """Generic barrier-separated data-parallel shape (several analogs)."""

    suite = "splash2x"
    FILE = "generic.c"
    phases = 3
    phase_iters = 420
    alu_ops = 4
    handoff_lines = 0

    def build(self, heap_offset: int = 0, seed: int = 0,
              scale: float = 1.0) -> BuiltWorkload:
        allocator = Allocator(base_offset=heap_offset)
        data = [
            allocator.malloc(8 * 4096, align=64, label="data[%d]" % tid)
            for tid in range(self.num_threads)
        ]
        shared = allocator.malloc(64 * max(1, self.handoff_lines), align=64,
                                  label="shared")
        barriers = allocator.malloc(64 * (self.phases + 1), align=64,
                                    label="barriers")
        per_phase = iterations(self.phase_iters, scale)
        handoff = iterations(self.handoff_lines, scale) if self.handoff_lines else 0
        threads = []
        for tid in range(self.num_threads):
            asm = Assembler("%s_worker_%d" % (self.name, tid))
            if handoff and tid == 0:
                asm.at(self.FILE, 30)
                emit_startup_handoff_writes(asm, shared, handoff, "init")
            if handoff:
                asm.at(self.FILE, 44 + tid)
                emit_handoff_read(asm, shared, handoff, "readshared")
            for phase in range(self.phases):
                asm.at(self.FILE, 100 + 30 * phase)
                emit_private_stream(asm, data[tid], per_phase,
                                    "phase%d" % phase,
                                    alu_ops=self.alu_ops, do_store=True)
                asm.at(self.FILE, 118 + 30 * phase)
                asm.mov("r9", barriers + 64 * phase)
                emit_barrier_wait(asm, "r9", self.num_threads,
                                  "bar%d" % phase)
            asm.halt()
            threads.append(asm.build())
        return BuiltWorkload(Program(self.name, threads), allocator)


class Barnes(_BarrierPhases):
    name = "barnes"
    FILE = "grav.c"
    phases = 3
    phase_iters = 520
    bugs: List[BugRecord] = []
    sheriff_support = SheriffSupport.CRASH


class Fft(_BarrierPhases):
    """Transpose phases: all-to-all hand-off reads between barriers."""

    name = "fft"
    FILE = "fft.c"
    phases = 2
    phase_iters = 760
    handoff_lines = 60
    bugs: List[BugRecord] = []
    sheriff_support = SheriffSupport.CRASH


class Fmm(_BarrierPhases):
    name = "fmm"
    FILE = "interactions.c"
    phases = 4
    phase_iters = 330
    bugs: List[BugRecord] = []
    sheriff_support = SheriffSupport.CRASH


class _LuBase(Workload):
    """LU factorization skeleton; subclasses pick the block layout."""

    suite = "splash2x"
    FILE = "lu.c"
    UPDATE_LINE = 0
    #: Bytes between consecutive per-thread chunks of the `a` array.
    #: lu_ncb uses 64-byte chunks on an unaligned base, so every chunk
    #: straddles two lines and shares each boundary line with a
    #: neighbouring thread; lu_cb's contiguous 128-byte blocks keep
    #: threads apart regardless of alignment.
    chunk_stride = 64
    env_sensitive_alignment = False
    #: Whether `a`'s 64-byte per-thread chunks sit on an unaligned base,
    #: so every chunk straddles two lines and shares the boundary line
    #: with the neighbouring thread (the lu_ncb bug).
    a_misaligned = False

    def build(self, heap_offset: int = 0, seed: int = 0, scale: float = 1.0,
              align_a: bool = False) -> BuiltWorkload:
        allocator = Allocator(base_offset=heap_offset)
        global_struct = None
        if self.env_sensitive_alignment:
            # An input-staging buffer sized off the environment block
            # precedes the Global bookkeeping struct.  Natively (48
            # bytes) Global's per-thread slots straddle cache lines;
            # under the detector's fork the environment grows, the
            # staging shrinks to 32 bytes, and Global lands on a line
            # boundary — the "coincidental change in memory layout
            # caused by LASER" worth ~30%, independent of the `a` bug.
            staging = 32 if heap_offset else 48
            allocator.malloc(staging, label="input_staging")
            global_struct = allocator.malloc(
                self.num_threads * 64 + 64, align=16, label="Global"
            )
        a_align = 64 if (align_a or not self.a_misaligned) else 16
        blocks = iterations(170, scale)
        a = allocator.malloc(
            self.num_threads * self.chunk_stride + 64, align=a_align,
            label="a",
        )
        barriers = allocator.malloc(64 * 2, align=64, label="barriers")
        private = [
            allocator.malloc(8 * 4096, label="pivot[%d]" % tid)
            for tid in range(self.num_threads)
        ]
        threads = []
        for tid in range(self.num_threads):
            asm = Assembler("%s_worker_%d" % (self.name, tid))
            asm.at(self.FILE, 300)
            asm.mov("r0", blocks)
            asm.mov("r3", private[tid])
            asm.label("block")
            # Pivot computation (private).
            asm.at(self.FILE, 310)
            asm.mov("r4", 14)
            asm.label("pivot")
            asm.load("r5", "r3", size=8)
            asm.add("r5", "r5", 3)
            asm.add("r3", "r3", 8)
            asm.sub("r4", "r4", 1)
            asm.bne("r4", 0, "pivot")
            # Update this thread's chunk of `a`: writes at both ends of
            # the 64-byte chunk, so a misaligned base makes every chunk
            # share its boundary line with a neighbour.
            asm.at(self.FILE, self.UPDATE_LINE)
            asm.mov("r1", a + tid * self.chunk_stride)
            asm.addm("r1", 1, offset=0, size=8)
            asm.addm("r1", 1, offset=24, size=8)
            asm.addm("r1", 1, offset=48, size=8)
            if global_struct is not None:
                # Per-thread Global bookkeeping slots (the structure the
                # fork's layout shift accidentally fixes), guarded by the
                # daemon's acquire fence — lu_ncb's "sophisticated code
                # structure": synchronization interleaved with the data
                # updates, which caps the SSB's stores-per-flush ratio.
                asm.at(self.FILE, 336)
                asm.fence()
                asm.at(self.FILE, 338)
                asm.mov("r2", global_struct + tid * 64)
                asm.addm("r2", 1, offset=0, size=8)
                asm.addm("r2", 1, offset=48, size=8)
            # The daemon/barrier synchronization inside the block loop:
            # this is the fence that makes SSB repair unprofitable.
            asm.at(self.FILE, 345)
            asm.fence()
            asm.at(self.FILE, 350)
            asm.sub("r0", "r0", 1)
            asm.bne("r0", 0, "block")
            asm.mov("r9", barriers)
            emit_barrier_wait(asm, "r9", self.num_threads, "done")
            asm.halt()
            threads.append(asm.build())
        return BuiltWorkload(Program(self.name, threads), allocator)


class LuCb(_LuBase):
    """Contiguous blocks: each thread's data is line-aligned (clean)."""

    name = "lu_cb"
    UPDATE_LINE = 332
    chunk_stride = 128
    bugs: List[BugRecord] = []
    sheriff_support = SheriffSupport.CRASH  # native input; ok with simlarge
    sheriff_reduced_input_ok = True


class LuNcb(_LuBase):
    """Non-contiguous blocks: the novel false-sharing bug on `a`."""

    name = "lu_ncb"
    UPDATE_LINE = 332
    chunk_stride = 64
    env_sensitive_alignment = True
    a_misaligned = True
    bugs = [
        BugRecord(
            [SourceLocation("lu.c", 332)],
            ContentionClass.FALSE_SHARING,
            "non-contiguous block allocation interleaves two threads' "
            "chunks of the `a` array within single cache lines; manual "
            "line-alignment of `a` yields ~36%",
            significant=True,
            sheriff_detects=False,
        )
    ]
    sheriff_support = SheriffSupport.CRASH
    sheriff_reduced_input_ok = True

    def build_fixed(self, heap_offset: int = 0, seed: int = 0,
                    scale: float = 1.0) -> BuiltWorkload:
        built = self.build(heap_offset, seed, scale, align_a=True)
        return built


class OceanCp(_BarrierPhases):
    """Stencil over a partitioned grid; boundary rows read-shared."""

    name = "ocean_cp"
    FILE = "slave1.c"
    phases = 3
    phase_iters = 560
    handoff_lines = 55
    bugs: List[BugRecord] = []
    sheriff_support = SheriffSupport.CRASH


class OceanNcp(_BarrierPhases):
    name = "ocean_ncp"
    FILE = "slave2.c"
    phases = 3
    phase_iters = 600
    handoff_lines = 65
    bugs: List[BugRecord] = []
    sheriff_support = SheriffSupport.CRASH


class Radiosity(Workload):
    """Task queue with per-queue locks: diffuse lock contention."""

    name = "radiosity"
    suite = "splash2x"
    FILE = "taskman.c"
    bugs: List[BugRecord] = []
    sheriff_support = SheriffSupport.CRASH

    def build(self, heap_offset: int = 0, seed: int = 0,
              scale: float = 1.0) -> BuiltWorkload:
        allocator = Allocator(base_offset=heap_offset)
        queue_locks = allocator.malloc(64 * self.num_threads, align=64,
                                       label="queue_locks")
        queues = allocator.malloc(64 * self.num_threads, align=64,
                                  label="task_queues")
        patches = [
            allocator.malloc(8 * 4096, label="patches[%d]" % tid)
            for tid in range(self.num_threads)
        ]
        tasks = iterations(260, scale)
        threads = []
        for tid in range(self.num_threads):
            victim = (tid + 1) % self.num_threads
            asm = Assembler("radiosity_worker_%d" % tid)
            asm.at(self.FILE, 402)
            asm.mov("r0", tasks)
            asm.mov("r3", patches[tid])
            asm.label("task")
            # Mostly own queue; occasionally steal from the neighbour.
            asm.at(self.FILE, 410 + (tid % 2))
            asm.and_("r6", "r0", 7)
            asm.mov("r1", queue_locks + 64 * tid)
            asm.bne("r6", 0, "own")
            asm.mov("r1", queue_locks + 64 * victim)
            asm.label("own")
            emit_ttas_lock_acquire(asm, "r1", "queue")
            asm.mov("r2", queues + 64 * tid)
            asm.addm("r2", 1, size=8)
            emit_lock_release(asm, "r1")
            asm.at(self.FILE, 430)
            asm.mov("r4", 20)
            asm.label("shade")
            asm.load("r5", "r3", size=8)
            asm.add("r5", "r5", 3)
            asm.add("r3", "r3", 8)
            asm.sub("r4", "r4", 1)
            asm.bne("r4", 0, "shade")
            asm.sub("r0", "r0", 1)
            asm.bne("r0", 0, "task")
            asm.halt()
            threads.append(asm.build())
        return BuiltWorkload(Program(self.name, threads), allocator)


class Radix(Workload):
    """Parallel radix sort: rank phase bumps a shared histogram."""

    name = "radix"
    suite = "splash2x"
    FILE = "radix.c"
    bugs: List[BugRecord] = []
    sheriff_support = SheriffSupport.CRASH
    sheriff_reduced_input_ok = True

    def build(self, heap_offset: int = 0, seed: int = 0,
              scale: float = 1.0) -> BuiltWorkload:
        allocator = Allocator(base_offset=heap_offset)
        global_hist = allocator.malloc(8 * 32, align=64, label="global_hist")
        keys = [
            allocator.malloc(8 * 4096, label="keys[%d]" % tid)
            for tid in range(self.num_threads)
        ]
        barriers = allocator.malloc(64 * 2, align=64, label="barriers")
        n = iterations(900, scale)
        threads = []
        for tid in range(self.num_threads):
            asm = Assembler("radix_worker_%d" % tid)
            asm.at(self.FILE, 540)
            emit_private_stream(asm, keys[tid], n, "countlocal", alu_ops=3)
            # Merge the local histogram into the shared one: a burst of
            # contended RMWs once per phase (real, mild contention — the
            # LASER false positive Table 1 charges to radix).
            asm.at(self.FILE, 560)
            asm.mov("r1", global_hist)
            asm.mov("r0", 32)
            asm.label("merge")
            asm.addm("r1", 1, size=8)
            asm.add("r1", "r1", 8)
            asm.sub("r0", "r0", 1)
            asm.bne("r0", 0, "merge")
            asm.at(self.FILE, 570)
            asm.mov("r9", barriers)
            emit_barrier_wait(asm, "r9", self.num_threads, "rank")
            asm.at(self.FILE, 580)
            emit_private_stream(asm, keys[tid], n // 2, "permute",
                                alu_ops=2, do_store=True)
            asm.halt()
            threads.append(asm.build())
        return BuiltWorkload(Program(self.name, threads), allocator)


class RaytraceSplash2x(Workload):
    """Ray tracing with a shared job counter (benign TS noise)."""

    name = "raytrace.splash2x"
    suite = "splash2x"
    FILE = "raytrace-splash.c"
    bugs: List[BugRecord] = []
    sheriff_support = SheriffSupport.OK
    #: Sheriff-Detect's spurious allocation-site report (Table 1: 1 FP).
    sheriff_fp_sites = ["malloc-wrapper: workpool.c"]

    def build(self, heap_offset: int = 0, seed: int = 0,
              scale: float = 1.0) -> BuiltWorkload:
        allocator = Allocator(base_offset=heap_offset)
        job_counter = allocator.malloc(8, align=64, label="job_counter")
        rays = [
            allocator.malloc(8 * 4096, label="rays[%d]" % tid)
            for tid in range(self.num_threads)
        ]
        jobs = iterations(230, scale)
        threads = []
        for tid in range(self.num_threads):
            asm = Assembler("rts_worker_%d" % tid)
            asm.at(self.FILE, 210)
            asm.mov("r0", jobs)
            asm.mov("r3", rays[tid])
            asm.label("job")
            asm.at(self.FILE, 216)
            asm.mov("r1", job_counter)
            asm.xadd("r2", "r1", 1, size=8)
            asm.at(self.FILE, 224)
            asm.mov("r4", 30)
            asm.label("trace")
            asm.load("r5", "r3", size=8)
            asm.add("r5", "r5", "r2")
            asm.add("r3", "r3", 8)
            asm.sub("r4", "r4", 1)
            asm.bne("r4", 0, "trace")
            asm.sub("r0", "r0", 1)
            asm.bne("r0", 0, "job")
            asm.halt()
            threads.append(asm.build())
        return BuiltWorkload(Program(self.name, threads), allocator)


class Volrend(Workload):
    """Novel true sharing on the lock guarding Global->Queue."""

    name = "volrend"
    suite = "splash2x"
    FILE = "adaptive.c"
    QUEUE_LINE = 277
    bugs = [
        BugRecord(
            [SourceLocation("adaptive.c", 277)],
            ContentionClass.TRUE_SHARING,
            "lock protecting the Global->Queue counter; batched atomic "
            "increments cut HITMs 10x without changing runtime",
            significant=True,
            sheriff_detects=False,
        )
    ]
    sheriff_support = SheriffSupport.CRASH

    def build(self, heap_offset: int = 0, seed: int = 0, scale: float = 1.0,
              batched: bool = False) -> BuiltWorkload:
        allocator = Allocator(base_offset=heap_offset)
        lock = allocator.malloc(8, align=64, label="queue_lock")
        queue_counter = allocator.malloc(8, align=64, label="queue_counter")
        octree = [
            allocator.malloc(8 * 4096, label="octree[%d]" % tid)
            for tid in range(self.num_threads)
        ]
        n = iterations(240, scale)
        batch = 8 if batched else 1
        threads = []
        for tid in range(self.num_threads):
            asm = Assembler("volrend_worker_%d" % tid)
            asm.at(self.FILE, 260)
            asm.mov("r0", n // batch)
            asm.mov("r3", octree[tid])
            asm.label("rays")
            asm.at(self.FILE, self.QUEUE_LINE)
            if batched:
                # The fix: one atomic add claims a batch of work items.
                asm.mov("r1", queue_counter)
                asm.xadd("r2", "r1", batch, size=8)
            else:
                asm.mov("r1", lock)
                emit_naive_lock_acquire(asm, "r1", "queue")
                asm.mov("r2", queue_counter)
                asm.addm("r2", 1, size=8)
                asm.mov("r1", lock)
                emit_lock_release(asm, "r1")
            asm.at(self.FILE, 290)
            asm.mov("r4", 24 * batch)
            asm.label("render")
            asm.load("r5", "r3", size=8)
            asm.add("r5", "r5", 1)
            asm.add("r3", "r3", 8)
            asm.sub("r4", "r4", 1)
            asm.bne("r4", 0, "render")
            asm.sub("r0", "r0", 1)
            asm.bne("r0", 0, "rays")
            asm.halt()
            threads.append(asm.build())
        return BuiltWorkload(Program(self.name, threads), allocator)

    def build_fixed(self, heap_offset: int = 0, seed: int = 0,
                    scale: float = 1.0) -> BuiltWorkload:
        return self.build(heap_offset, seed, scale, batched=True)


class WaterNsquared(Workload):
    """Per-molecule locks everywhere: the Sheriff worst case.

    The acquire/update/release sequences are inlined at many call sites
    (distinct source lines), so although the total HITM volume is large
    enough to put water_nsquared among the three highest-overhead
    benchmarks under LASER (Figure 12), no single line crosses the
    report threshold — no false positives, exactly as in Table 1.
    """

    name = "water_nsquared"
    suite = "splash2x"
    FILE = "interf.c"
    bugs: List[BugRecord] = []
    sheriff_support = SheriffSupport.OK

    def build(self, heap_offset: int = 0, seed: int = 0,
              scale: float = 1.0) -> BuiltWorkload:
        allocator = Allocator(base_offset=heap_offset)
        mol_locks = allocator.malloc(64 * 64, align=64, label="mol_locks")
        forces = allocator.malloc(64 * 64, align=64, label="forces")
        private = [
            allocator.malloc(8 * 4096, label="positions[%d]" % tid)
            for tid in range(self.num_threads)
        ]
        pairs = iterations(40, scale)
        sites = 8  # inlined interaction sites -> 8 distinct source lines
        threads = []
        for tid in range(self.num_threads):
            asm = Assembler("water_worker_%d" % tid)
            asm.mov("r0", pairs)
            asm.at(self.FILE, 90)
            asm.mov("r3", private[tid])
            asm.label("pair")
            for site in range(sites):
                # Lock the molecule, update its force, unlock.
                asm.at(self.FILE, 100 + 12 * site)
                asm.mov("r6", tid * 17 + site * 23)
                asm.add("r6", "r6", "r0")
                asm.and_("r6", "r6", 63)
                asm.shl("r6", "r6", 6)
                asm.mov("r1", mol_locks)
                asm.add("r1", "r1", "r6")
                emit_ttas_lock_acquire(asm, "r1", "mol%d" % site)
                asm.at(self.FILE, 104 + 12 * site)
                asm.mov("r2", forces)
                asm.add("r2", "r2", "r6")
                asm.addm("r2", 1, size=8)
                emit_lock_release(asm, "r1")
                # Private force math between sites.
                asm.mov("r4", 10)
                asm.label("math%d" % site)
                asm.load("r5", "r3", size=8)
                asm.add("r5", "r5", 3)
                asm.add("r3", "r3", 8)
                asm.sub("r4", "r4", 1)
                asm.bne("r4", 0, "math%d" % site)
            asm.sub("r0", "r0", 1)
            asm.bne("r0", 0, "pair")
            asm.halt()
            threads.append(asm.build())
        return BuiltWorkload(Program(self.name, threads), allocator)


class WaterSpatial(_BarrierPhases):
    """Cell-partitioned water: mostly private with a few barriers."""

    name = "water_spatial"
    FILE = "water-spatial.c"
    phases = 2
    phase_iters = 480
    bugs: List[BugRecord] = []
    sheriff_support = SheriffSupport.CRASH
    sheriff_reduced_input_ok = True


SPLASH2X_WORKLOADS = [
    Barnes,
    Fft,
    Fmm,
    LuCb,
    LuNcb,
    OceanCp,
    OceanNcp,
    Radiosity,
    Radix,
    RaytraceSplash2x,
    Volrend,
    WaterNsquared,
    WaterSpatial,
]
