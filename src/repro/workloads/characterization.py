"""The Section 3.1 characterization test cases.

"We undertook a detailed characterization of HITM event support in
Haswell with over 160 test cases coded in assembly.  These test cases
each involve two threads engaged in true or false sharing, with either
write-read/read-write or write-write sharing.  Each thread performs the
same operation repeatedly in an infinite loop, where the loop body
varies across tests from a single memory operation to hundreds of
branch, jump, arithmetic and memory instructions."

We generate the same grid: {TS, FS} x {RW, WW} x 10 filler sizes x 4
filler kinds = 160 cases (finite loops stand in for the infinite ones).
"""

from typing import List

from repro.isa.assembler import Assembler
from repro.isa.program import Program
from repro.sim.allocator import Allocator
from repro.workloads.base import BuiltWorkload

__all__ = ["CharacterizationCase", "generate_cases",
           "FILLER_COUNTS", "FILLER_KINDS"]

FILLER_COUNTS = [0, 1, 2, 4, 6, 8, 12, 24, 48, 96]
FILLER_KINDS = ["alu", "branch", "memory", "mixed"]


class CharacterizationCase:
    """One two-thread sharing test."""

    def __init__(self, sharing: str, mode: str, filler_kind: str,
                 filler_count: int, iters: int = 400):
        if sharing not in ("TS", "FS"):
            raise ValueError("sharing must be TS or FS")
        if mode not in ("RW", "WW"):
            raise ValueError("mode must be RW or WW")
        if filler_kind not in FILLER_KINDS:
            raise ValueError("unknown filler kind %r" % filler_kind)
        self.sharing = sharing
        self.mode = mode
        self.filler_kind = filler_kind
        self.filler_count = filler_count
        self.iters = iters

    @property
    def group(self) -> str:
        """The Figure 3 grouping key: TSRW / FSRW / TSWW / FSWW."""
        return self.sharing + self.mode

    @property
    def name(self) -> str:
        return "%s_%s_%d" % (self.group, self.filler_kind, self.filler_count)

    # ------------------------------------------------------------------
    # Program construction
    # ------------------------------------------------------------------

    def _emit_filler(self, asm: Assembler, private_base: int) -> None:
        kind = self.filler_kind
        for i in range(self.filler_count):
            if kind == "alu" or (kind == "mixed" and i % 3 == 0):
                asm.add("r5", "r5", 3)
            elif kind == "branch" or (kind == "mixed" and i % 3 == 1):
                skip = "skip_%d" % i
                asm.bne("r5", 0xFFFFFFFF, skip)
                asm.nop()
                asm.label(skip)
            else:  # private memory traffic
                asm.load("r6", "r1", offset=(i % 32) * 8, size=8)

    def build(self, heap_offset: int = 0, seed: int = 0,
              scale: float = 1.0) -> BuiltWorkload:
        allocator = Allocator(base_offset=heap_offset)
        shared = allocator.malloc(64, align=64, label="shared_line")
        privates = [
            allocator.malloc(8 * 64, label="private[%d]" % tid)
            for tid in range(2)
        ]
        iters = max(16, int(self.iters * scale))
        threads = []

        # Thread 0 always writes the first word of the line.
        writer = Assembler("char_writer")
        writer.at("testcase.s", 10)
        writer.mov("r1", privates[0])
        writer.mov("r0", iters)
        writer.label("loop")
        writer.at("testcase.s", 14)
        writer.store(shared, "r0", size=8)
        writer.at("testcase.s", 16)
        self._emit_filler(writer, privates[0])
        writer.at("testcase.s", 18)
        writer.sub("r0", "r0", 1)
        writer.bne("r0", 0, "loop")
        writer.halt()
        threads.append(writer.build())

        # Thread 1: reads (RW) or writes (WW), same word (TS) or a
        # different word of the same line (FS).
        offset = 0 if self.sharing == "TS" else 8
        other = Assembler("char_other")
        other.at("testcase.s", 30)
        other.mov("r1", privates[1])
        other.mov("r0", iters)
        other.label("loop")
        other.at("testcase.s", 34)
        if self.mode == "RW":
            other.load("r7", shared + offset, size=8)
        else:
            other.store(shared + offset, "r0", size=8)
        other.at("testcase.s", 36)
        self._emit_filler(other, privates[1])
        other.at("testcase.s", 38)
        other.sub("r0", "r0", 1)
        other.bne("r0", 0, "loop")
        other.halt()
        threads.append(other.build())

        return BuiltWorkload(Program("char_" + self.name, threads), allocator)

    def __repr__(self):
        return "<CharacterizationCase %s>" % self.name


def generate_cases() -> List[CharacterizationCase]:
    """The full 160-case grid of Section 3.1."""
    cases = []
    for sharing in ("TS", "FS"):
        for mode in ("RW", "WW"):
            for kind in FILLER_KINDS:
                for count in FILLER_COUNTS:
                    cases.append(
                        CharacterizationCase(sharing, mode, kind, count)
                    )
    return cases
