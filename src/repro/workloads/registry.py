"""Workload registry: name -> workload instance, suite listings."""

from typing import Dict, List

from repro.errors import WorkloadError
from repro.workloads.base import Workload
from repro.workloads.phoenix import PHOENIX_WORKLOADS

__all__ = ["all_workloads", "get_workload", "workload_names", "suite_workloads"]


def _build_registry() -> Dict[str, Workload]:
    registry: Dict[str, Workload] = {}
    classes = list(PHOENIX_WORKLOADS)
    try:
        from repro.workloads.parsec import PARSEC_WORKLOADS

        classes.extend(PARSEC_WORKLOADS)
    except ImportError:  # pragma: no cover - during bootstrap only
        pass
    try:
        from repro.workloads.splash2x import SPLASH2X_WORKLOADS

        classes.extend(SPLASH2X_WORKLOADS)
    except ImportError:  # pragma: no cover - during bootstrap only
        pass
    for cls in classes:
        instance = cls()
        if instance.name in registry:
            raise WorkloadError("duplicate workload name %r" % instance.name)
        registry[instance.name] = instance
    return registry


_REGISTRY = None


def _registry() -> Dict[str, Workload]:
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = _build_registry()
    return _REGISTRY


def all_workloads() -> List[Workload]:
    """Every workload, in the paper's (alphabetical) table order."""
    return [w for _name, w in sorted(_registry().items())]


def workload_names() -> List[str]:
    return sorted(_registry())


def get_workload(name: str) -> Workload:
    registry = _registry()
    if name not in registry:
        raise WorkloadError(
            "unknown workload %r (have: %s)" % (name, ", ".join(sorted(registry)))
        )
    return registry[name]


def suite_workloads(suite: str) -> List[Workload]:
    return [w for w in all_workloads() if w.suite == suite]
