"""Workload registry: name -> workload instance, suite listings."""

from typing import Dict, List

from repro.errors import WorkloadError
from repro.workloads.base import Workload
from repro.workloads.phoenix import PHOENIX_WORKLOADS

__all__ = [
    "all_workloads",
    "get_workload",
    "workload_names",
    "suite_workloads",
    "variant_workloads",
]


def _build_registry() -> Dict[str, Workload]:
    registry: Dict[str, Workload] = {}
    classes = list(PHOENIX_WORKLOADS)
    try:
        from repro.workloads.parsec import PARSEC_WORKLOADS

        classes.extend(PARSEC_WORKLOADS)
    except ImportError:  # pragma: no cover - during bootstrap only
        pass
    try:
        from repro.workloads.splash2x import SPLASH2X_WORKLOADS

        classes.extend(SPLASH2X_WORKLOADS)
    except ImportError:  # pragma: no cover - during bootstrap only
        pass
    for cls in classes:
        instance = cls()
        if instance.name in registry:
            raise WorkloadError("duplicate workload name %r" % instance.name)
        registry[instance.name] = instance
    return registry


def _build_variants() -> Dict[str, Workload]:
    """Off-registry variants (race-certifier positive controls etc.).

    Kept out of :func:`all_workloads` on purpose: the paper's tables and
    the accuracy experiments are pinned to the 35 benchmark analogs.
    """
    from repro.workloads.templates import VARIANT_WORKLOADS

    variants: Dict[str, Workload] = {}
    for cls in VARIANT_WORKLOADS:
        instance = cls()
        if instance.name in variants:
            raise WorkloadError("duplicate variant name %r" % instance.name)
        variants[instance.name] = instance
    return variants


_REGISTRY = None
_VARIANTS = None


def _registry() -> Dict[str, Workload]:
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = _build_registry()
    return _REGISTRY


def _variants() -> Dict[str, Workload]:
    global _VARIANTS
    if _VARIANTS is None:
        _VARIANTS = _build_variants()
        overlap = set(_VARIANTS) & set(_registry())
        if overlap:
            raise WorkloadError(
                "variant names shadow registry workloads: %s"
                % ", ".join(sorted(overlap)))
    return _VARIANTS


def all_workloads() -> List[Workload]:
    """Every workload, in the paper's (alphabetical) table order."""
    return [w for _name, w in sorted(_registry().items())]


def workload_names() -> List[str]:
    return sorted(_registry())


def variant_workloads() -> List[Workload]:
    """Off-registry variants, by name (e.g. the racy positive controls)."""
    return [w for _name, w in sorted(_variants().items())]


def get_workload(name: str) -> Workload:
    registry = _registry()
    if name in registry:
        return registry[name]
    variants = _variants()
    if name in variants:
        return variants[name]
    raise WorkloadError(
        "unknown workload %r (have: %s)"
        % (name, ", ".join(sorted(registry) + sorted(variants)))
    )


def suite_workloads(suite: str) -> List[Workload]:
    return [w for w in all_workloads() if w.suite == suite]
