"""Benchmark analogs of the Phoenix, Parsec and Splash2x suites.

Each workload is an ISA program reproducing the documented sharing
behaviour of its namesake (Sections 2 and 7.4): the false sharing of
``linear_regression``'s unaligned structs, ``kmeans``' migratory true
sharing, ``dedup``'s single-lock queue, and so on.  Workloads carry
their ground-truth performance-bug metadata (the paper's Table 1/2
database) and their Sheriff compatibility verdicts.
"""

from repro.workloads.base import (
    BugRecord,
    BuiltWorkload,
    SheriffSupport,
    Workload,
)
from repro.workloads.registry import all_workloads, get_workload, workload_names

__all__ = [
    "BugRecord",
    "BuiltWorkload",
    "SheriffSupport",
    "Workload",
    "all_workloads",
    "get_workload",
    "workload_names",
]
