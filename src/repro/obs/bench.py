"""Perf snapshot writer: the machine-readable trajectory behind PRs.

Runs a suite of workloads native and under LASER and emits a
schema-versioned ``BENCH_obs.json`` capturing, per workload:

* **simulated cycle overhead** (LASER-on / native, trimmed mean over
  seeds — the paper's averaging discipline, see ``experiments.runner``)
  — the *primary* metric: seed-deterministic, so drift is always a real
  behavior change.  Note it can legitimately sit *below* 1.0 — online
  repair genuinely speeds up the workloads it fixes (histogram' runs
  ~10% faster repaired), so a sub-unity geomean is repair paying for
  the monitor, not measurement noise;
* wall-clock seconds for both modes and the wall-clock overhead ratio
  (``wall_overhead``) — host-dependent, *informational only*: never
  gated, never equality-checked (host jitter can push it either side of
  1.0 regardless of what the simulated cycles say);
* detector record throughput (records/sec of wall clock);
* HITM volume and whether online repair engaged.

The point is longitudinal: every future PR can regenerate the snapshot
and diff it against the committed one, so "made the hot path faster"
and "regressed overhead 3x" are both machine-checkable claims instead
of folklore.  The drift gate (``max_drift_pct``) reads only the
simulated-cycle fields for exactly this reason.

Usage::

    python -m repro.obs.bench --out BENCH_obs.json [--runs N]
        [--scale F] [--workloads a,b,c] [--workers W]
"""

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

from repro.core.config import LaserConfig
from repro.experiments.runner import (
    SweepRunner,
    run_laser_on,
    run_native,
    trimmed_mean,
)
from repro.experiments.tables import geomean

__all__ = ["BENCH_SCHEMA", "DEFAULT_BENCH_WORKLOADS", "collect_bench",
           "write_bench", "diff_bench"]

#: Bump on any backwards-incompatible change to the JSON layout.
BENCH_SCHEMA = "laser-obs-bench/v1"

#: Fast-but-representative slice of the suite: the two workloads online
#: repair accelerates, a detector-heavy one, and three contention
#: shapes (TS-dominant, FS-dominant, mixed).  All complete in seconds.
DEFAULT_BENCH_WORKLOADS = [
    "histogram",
    "histogram'",
    "kmeans",
    "linear_regression",
    "matrix_multiply",
    "string_match",
    "word_count",
]

#: Seed-count for the trimmed mean.  5 (middle-3 average) rather than
#: the minimal 3: the informational wall-clock fields are pure host
#: measurement, and the wider trim keeps them from whipsawing between
#: regenerations on a noisy host.
DEFAULT_BENCH_RUNS = 5


def _bench_one(name: str, runs: int, scale: float,
               config: Optional[LaserConfig]) -> Dict:
    from repro.workloads.registry import get_workload

    workload = get_workload(name)
    native_cycles: List[float] = []
    t0 = time.perf_counter()
    for seed in range(runs):
        native_cycles.append(
            float(run_native(workload, seed=seed, scale=scale).cycles)
        )
    native_wall = time.perf_counter() - t0

    laser_cycles: List[float] = []
    records_seen = 0
    hitm_events = 0
    repaired = False
    rolled_back = False
    t0 = time.perf_counter()
    laser_results = [
        run_laser_on(workload, seed=seed, scale=scale, config=config)
        for seed in range(runs)
    ]
    laser_wall = time.perf_counter() - t0
    for result in laser_results:
        laser_cycles.append(float(result.cycles))
        records_seen += result.pipeline.stats.records_seen
        hitm_events += result.pmu.total_hitm_count
        repaired = repaired or result.repaired
        rolled_back = rolled_back or result.rolled_back

    native = trimmed_mean(native_cycles)
    laser = trimmed_mean(laser_cycles)
    return {
        # Primary (seed-deterministic): simulated-cycle overhead.
        "native_cycles": native,
        "laser_cycles": laser,
        "overhead": laser / native if native else 0.0,
        # Informational (host-dependent): wall clock.  Excluded from
        # the drift gate and every equality check.
        "native_wall_s": round(native_wall, 4),
        "laser_wall_s": round(laser_wall, 4),
        "wall_overhead": round(laser_wall / native_wall, 4)
        if native_wall > 0 else 0.0,
        "records_seen": records_seen,
        "records_per_sec": round(records_seen / laser_wall, 1)
        if laser_wall > 0 else 0.0,
        "hitm_events": hitm_events,
        "repaired": repaired,
        "rolled_back": rolled_back,
    }


def collect_bench(workload_names: Optional[List[str]] = None,
                  runs: int = DEFAULT_BENCH_RUNS, scale: float = 1.0,
                  config: Optional[LaserConfig] = None,
                  workers: Optional[int] = None,
                  runner: Optional[SweepRunner] = None) -> Dict:
    """Measure the suite; returns the ``BENCH_obs.json`` document.

    Workloads shard over the :class:`SweepRunner` process pool; the
    simulated-cycle fields are seed-deterministic and merge in name
    order, so they are identical at any worker count (wall-clock
    fields are host-dependent either way, and already excluded from
    equality checks).  Pass ``runner`` to reuse a caller's runner (its
    ``cost_summary`` then covers this sweep).
    """
    names = workload_names or DEFAULT_BENCH_WORKLOADS
    cells = [(name, runs, scale, config) for name in names]
    if runner is None:
        runner = SweepRunner(workers)
    measured = runner.starmap(_bench_one, cells)
    workloads: Dict[str, Dict] = dict(zip(names, measured))
    overheads = [w["overhead"] for w in workloads.values() if w["overhead"]]
    return {
        "schema": BENCH_SCHEMA,
        "config": {
            "runs": runs,
            "scale": scale,
            "seeds": list(range(runs)),
            "averaging": "trimmed mean (drop min and max)",
            "note": "overhead is simulated-cycle based (primary, "
                    "deterministic; <1.0 = online repair sped the "
                    "workload up); wall_* fields are host-dependent "
                    "and informational only",
        },
        "workloads": workloads,
        "geomean_overhead": geomean(overheads) if overheads else 0.0,
    }


def write_bench(path: str, bench: Optional[Dict] = None, **collect_kwargs) -> Dict:
    """Collect (unless given) and write the snapshot; returns it."""
    if bench is None:
        bench = collect_bench(**collect_kwargs)
    with open(path, "w") as fh:
        json.dump(bench, fh, sort_keys=True, indent=1)
        fh.write("\n")
    return bench


def render_bench(bench: Dict) -> str:
    """Human-readable summary of one snapshot.

    ``overhead`` (simulated cycles, deterministic) is the primary
    column; ``wall`` is the informational host-clock ratio.
    """
    rows = ["%-20s %9s %9s %8s %7s %10s %s"
            % ("workload", "native", "laser", "overhead", "wall",
               "recs/s", "repaired")]
    for name in sorted(bench["workloads"]):
        w = bench["workloads"][name]
        wall = w.get("wall_overhead", 0.0)
        rows.append(
            "%-20s %9.0f %9.0f %7.3fx %6.2fx %10.0f %s"
            % (name, w["native_cycles"], w["laser_cycles"], w["overhead"],
               wall, w["records_per_sec"], "yes" if w["repaired"] else "")
        )
    rows.append("geomean overhead: %.3fx (simulated cycles; <1.0 = "
                "online repair net speedup)" % bench["geomean_overhead"])
    return "\n".join(rows)


def max_drift_pct(old: Dict, new: Dict) -> float:
    """Largest absolute simulated-cycle drift (percent) vs a baseline.

    Scans ``native_cycles`` and ``laser_cycles`` for every workload
    present in both snapshots.  This is the number the CI drift gate
    thresholds: with the overload controller off, a run must stay
    within the gate of the committed snapshot — the controller has to
    be a free feature until it is asked for.
    """
    worst = 0.0
    for name, entry in new.get("workloads", {}).items():
        base = old.get("workloads", {}).get(name)
        if base is None:
            continue
        for field in ("native_cycles", "laser_cycles"):
            if base[field]:
                drift = 100.0 * abs(entry[field] - base[field]) / base[field]
                worst = max(worst, drift)
    return worst


def diff_bench(old: Dict, new: Dict) -> str:
    """Simulated-cycle drift between two snapshots (wall-clock ignored).

    Simulated fields are seed-deterministic, so any drift here is a
    real behavior change, not host noise.
    """
    rows = []
    for name in sorted(new["workloads"]):
        entry = new["workloads"][name]
        base = old.get("workloads", {}).get(name)
        if base is None:
            rows.append("%-20s (not in baseline)" % name)
            continue
        for field in ("native_cycles", "laser_cycles"):
            if entry[field] != base[field]:
                rows.append(
                    "%-20s %s: %.0f -> %.0f (%+.2f%%)"
                    % (name, field, base[field], entry[field],
                       100.0 * (entry[field] - base[field]) / base[field])
                )
    if not rows:
        return "no simulated-cycle drift vs baseline"
    return "\n".join(rows)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.bench",
        description="Write the BENCH_obs.json perf snapshot.",
    )
    parser.add_argument("--out", default="BENCH_obs.json",
                        help="output path (default: %(default)s)")
    parser.add_argument("--runs", type=int, default=DEFAULT_BENCH_RUNS,
                        help="seeds per workload (default: %(default)s)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale factor (default: %(default)s)")
    parser.add_argument("--workloads", default=None,
                        help="comma-separated workload names "
                             "(default: the bench suite)")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool width (default: host cores; "
                             "1 = serial)")
    parser.add_argument("--against", metavar="BASELINE",
                        help="also print simulated-cycle drift vs a "
                             "committed baseline snapshot")
    parser.add_argument("--max-drift-pct", type=float, default=None,
                        metavar="PCT",
                        help="with --against: exit 1 if any workload's "
                             "simulated cycles drift more than PCT%% "
                             "from the baseline")
    args = parser.parse_args(argv)
    names = args.workloads.split(",") if args.workloads else None
    runner = SweepRunner(args.workers)
    bench = write_bench(args.out, workload_names=names, runs=args.runs,
                        scale=args.scale, runner=runner)
    print(render_bench(bench))
    print(runner.cost_summary())
    print("wrote %s (%d workloads)" % (args.out, len(bench["workloads"])))
    if args.against:
        with open(args.against) as fh:
            baseline = json.load(fh)
        print("\n-- drift vs %s" % args.against)
        print(diff_bench(baseline, bench))
        if args.max_drift_pct is not None:
            worst = max_drift_pct(baseline, bench)
            if worst > args.max_drift_pct:
                print("DRIFT GATE FAILED: %.2f%% > %.2f%% allowed"
                      % (worst, args.max_drift_pct))
                return 1
            print("drift gate ok: %.2f%% <= %.2f%% allowed"
                  % (worst, args.max_drift_pct))
    elif args.max_drift_pct is not None:
        parser.error("--max-drift-pct requires --against")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
