"""The per-run telemetry bundle exposed on ``LaserRunResult.telemetry``.

Three views of one run:

* ``windows`` — a typed time series: one :class:`WindowStats` per
  detector check interval, carrying the window's HITM rate, record
  flow, component cycle shares and repair state.  This is the
  time-dimension the ad-hoc end-of-run counters never had: *when* the
  detector triggered repair, how the HITM rate evolved, where cycles
  went.
* ``snapshots`` — the raw metrics-registry snapshot taken at each
  window close (generic, name-keyed; survives schema drift).
* ``tracer`` — the structured event stream (see :mod:`repro.obs.trace`).

``render_timeline`` is the operator view: an ASCII phase timeline used
by ``python -m repro.obs`` and the quickstart example.
"""

import json
from typing import Dict, List, Optional

from repro._constants import CYCLES_PER_SECOND
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, EventTracer

__all__ = ["WindowStats", "RunTelemetry"]

_WINDOW_FIELDS = (
    "index",
    "start_cycle",
    "end_cycle",
    "stalled",
    "repair_state",
    "hitm_events",
    "hitm_rate",
    "records_seen",
    "records_admitted",
    "records_dropped",
    "detector_cycles",
    "driver_cycles",
    "ssb_flushes",
    "ssb_htm_aborts",
)

#: Overload-control extras (``repro.control``).  Optional at
#: construction and serialized only when ``control_mode`` is set, so
#: the windows-JSONL byte stream of a controller-off run is unchanged
#: from the pre-control pin.
_CONTROL_FIELDS = (
    "records_offered",
    "records_shed",
    "outbox_pending",
    "detect_latency",
    "control_mode",
    "sav",
    "admit_budget",
)

_CONTROL_DEFAULTS = {
    "records_offered": 0,
    "records_shed": 0,
    "outbox_pending": 0,
    "detect_latency": 0,
    "control_mode": None,
    "sav": 0,
    "admit_budget": None,
}


class WindowStats:
    """Deltas observed across one detector check interval."""

    __slots__ = _WINDOW_FIELDS + _CONTROL_FIELDS

    def __init__(self, **fields):
        for name in _WINDOW_FIELDS:
            setattr(self, name, fields.pop(name))
        for name in _CONTROL_FIELDS:
            setattr(self, name, fields.pop(name, _CONTROL_DEFAULTS[name]))
        if fields:
            raise TypeError("unknown WindowStats fields: %s" % sorted(fields))

    @property
    def duration_cycles(self) -> int:
        return self.end_cycle - self.start_cycle

    @property
    def drop_rate(self) -> float:
        """Driver outbox drops per simulated second, this window.

        The cumulative ``records_dropped`` count says a run lost
        records; the per-window rate says *when* — which is what the
        overload controller (and an operator reading the timeline)
        actually acts on.
        """
        if self.duration_cycles <= 0:
            return 0.0
        return self.records_dropped * CYCLES_PER_SECOND / self.duration_cycles

    def as_dict(self) -> Dict:
        out = {name: getattr(self, name) for name in _WINDOW_FIELDS}
        if self.control_mode is not None:
            for name in _CONTROL_FIELDS:
                out[name] = getattr(self, name)
        return out

    def __repr__(self):
        return "<WindowStats #%d [%d,%d) hitm/s=%.0f %s%s>" % (
            self.index, self.start_cycle, self.end_cycle, self.hitm_rate,
            self.repair_state, " STALLED" if self.stalled else "",
        )


#: Glyphs for the timeline's state column.
_STATE_GLYPHS = {
    "idle": " ",
    "attached": "R",
    "rolled_back": "X",
}

#: Overload-ladder rung per mode (numeric view for the metrics gauge).
_CONTROL_MODE_INDEX = {
    "nominal": 0,
    "throttled": 1,
    "shedding": 2,
    "passthrough": 3,
}

#: Glyphs for the timeline's control-mode column.
_CONTROL_GLYPHS = {
    "nominal": "-",
    "throttled": "T",
    "shedding": "S",
    "passthrough": "P",
}


class RunTelemetry:
    """Tracer + metrics registry + windowed time series for one run."""

    def __init__(self, tracer: Optional[EventTracer] = None,
                 metrics: Optional[MetricsRegistry] = None):
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.windows: List[WindowStats] = []
        self.snapshots: List[Dict] = []

    # ------------------------------------------------------------------
    # Recording (called by the LASER loop at each check interval)
    # ------------------------------------------------------------------

    def record_window(self, window: WindowStats) -> None:
        """Append one closed window and snapshot the registry."""
        self.windows.append(window)
        snapshot = {"cycle": window.end_cycle}
        snapshot.update(self.metrics.snapshot())
        self.snapshots.append(snapshot)

    def close_window(self, window: WindowStats) -> None:
        """Fold one closed window into the metrics registry and record it.

        The registry update order is part of the snapshot byte stream
        (snapshots serialize name-keyed but first-registration order
        shapes histograms/gauges creation), so it lives here, next to
        the snapshot it feeds.
        """
        metrics = self.metrics
        metrics.counter("hitm.events").inc(window.hitm_events)
        metrics.counter("records.seen").inc(window.records_seen)
        metrics.counter("records.admitted").inc(window.records_admitted)
        metrics.counter("records.dropped").inc(window.records_dropped)
        metrics.counter("detector.cycles").inc(window.detector_cycles)
        metrics.counter("driver.cycles").inc(window.driver_cycles)
        metrics.counter("ssb.flushes").inc(window.ssb_flushes)
        metrics.counter("ssb.htm_aborts").inc(window.ssb_htm_aborts)
        metrics.counter("detector.stalled_windows").inc(
            1 if window.stalled else 0
        )
        metrics.gauge("window.hitm_rate").set(round(window.hitm_rate, 6))
        metrics.gauge("repair.attached").set(
            1 if window.repair_state == "attached" else 0
        )
        metrics.histogram("window.hitm_rate_hist").observe(
            round(window.hitm_rate, 6)
        )
        if window.control_mode is not None:
            # Controller-on runs grow the registry; registration order
            # matters for snapshot bytes, so the block is appended
            # after every legacy metric and is all-or-nothing.
            metrics.counter("records.offered").inc(window.records_offered)
            metrics.counter("records.shed").inc(window.records_shed)
            metrics.gauge("control.sav").set(window.sav)
            metrics.gauge("control.mode").set(
                _CONTROL_MODE_INDEX.get(window.control_mode, -1)
            )
            metrics.gauge("window.drop_rate").set(round(window.drop_rate, 6))
        self.record_window(window)

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------

    @property
    def window_count(self) -> int:
        return len(self.windows)

    def series(self, field: str) -> List:
        """The per-window time series of one :class:`WindowStats` field."""
        if field not in _WINDOW_FIELDS and field not in _CONTROL_FIELDS:
            raise KeyError(
                "unknown window field %r (have: %s)"
                % (field, ", ".join(_WINDOW_FIELDS + _CONTROL_FIELDS))
            )
        return [getattr(w, field) for w in self.windows]

    def totals(self) -> Dict:
        """Whole-run sums of the additive window fields."""
        additive = ("hitm_events", "records_seen", "records_admitted",
                    "records_dropped", "detector_cycles", "driver_cycles",
                    "ssb_flushes", "ssb_htm_aborts")
        return {name: sum(self.series(name)) for name in additive}

    def windows_jsonl(self) -> str:
        """Canonical per-window serialization (byte-stable per seed)."""
        return "".join(
            json.dumps(w.as_dict(), sort_keys=True, separators=(",", ":"))
            + "\n"
            for w in self.windows
        )

    def snapshots_jsonl(self) -> str:
        """Canonical metrics-snapshot serialization (byte-stable)."""
        return "".join(
            MetricsRegistry.snapshot_json(snap) + "\n"
            for snap in self.snapshots
        )

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def render_timeline(self, width: int = 32) -> str:
        """ASCII phase timeline: one row per detection window.

        The bar scales to the run's peak window HITM rate; the state
        column marks repair attached (``R``), rolled back (``X``) and
        detector stalls (``S``); ``drop/s`` is the per-window outbox
        drop rate.  Runs with the overload controller engaged grow a
        mode column (``-``/``T``/``S``/``P`` for nominal, throttled,
        shedding, passthrough) plus the per-window shed count.
        """
        if not self.windows:
            return "(no detection windows recorded)"
        controlled = any(w.control_mode is not None for w in self.windows)
        peak = max(w.hitm_rate for w in self.windows) or 1.0
        header = (
            "win  kcycles         hitm/s  %-*s  recs  drop  drop/s st"
            % (width, "rate (peak %.0f/s)" % peak)
        )
        if controlled:
            header += "  mode  shed"
        rows = [header]
        for w in self.windows:
            bar = "#" * int(round(width * w.hitm_rate / peak))
            state = "S" if w.stalled else _STATE_GLYPHS.get(w.repair_state, "?")
            span = "%d-%d" % (w.start_cycle // 1000, w.end_cycle // 1000)
            row = (
                "%3d  %-13s %8.0f  %-*s %5d %5d %7.0f  %s"
                % (
                    w.index, span, w.hitm_rate, width, bar,
                    w.records_seen, w.records_dropped, w.drop_rate, state,
                )
            )
            if controlled:
                row += "     %s %5d" % (
                    _CONTROL_GLYPHS.get(w.control_mode, " "),
                    w.records_shed,
                )
            rows.append(row)
        return "\n".join(rows)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def window_counter_events(self) -> List[Dict]:
        """Per-window Chrome counter tracks (HITM rate, record flow)."""
        events = []
        for w in self.windows:
            events.append({
                "name": "hitm_rate", "ph": "C", "ts": w.end_cycle,
                "pid": 3, "tid": 0,
                "args": {"hitm_per_s": round(w.hitm_rate, 3)},
            })
            events.append({
                "name": "record_flow", "ph": "C", "ts": w.end_cycle,
                "pid": 3, "tid": 0,
                "args": {"seen": w.records_seen, "dropped": w.records_dropped},
            })
        return events

    def to_chrome_trace(self) -> Dict:
        """Trace events plus the windowed counter tracks, one document."""
        return self.tracer.to_chrome_trace(
            extra_events=self.window_counter_events()
        )

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(), fh, sort_keys=True, indent=1)
            fh.write("\n")

    def __repr__(self):
        return "<RunTelemetry %d windows, %d events%s>" % (
            len(self.windows), len(self.tracer),
            "" if self.tracer.enabled else " (tracing off)",
        )


def hitm_rate(events: int, cycles: int) -> float:
    """HITM events per simulated second over a cycle span."""
    if cycles <= 0:
        return 0.0
    return events * CYCLES_PER_SECOND / cycles
