"""Unified run observability: event tracing, windowed metrics, bench.

LASER's whole argument is deployability — an *online* monitor whose
overhead and decisions must be legible to operators.  This package is
the measurement layer that makes a run legible:

* :mod:`repro.obs.trace` — a ring-buffered structured event tracer with
  instrumentation points in the machine, the PMU/driver, the detection
  pipeline and the repair manager.  Near-zero cost when disabled (one
  attribute load and a branch per site), seed-deterministic when
  enabled, exportable as JSONL and as Chrome ``trace_event`` JSON so a
  run opens directly in Perfetto.
* :mod:`repro.obs.metrics` — a counters/gauges/histograms registry
  snapshotted at every detector check interval.
* :mod:`repro.obs.telemetry` — the per-run bundle: the tracer, the
  metrics registry and the per-window time series exposed on
  ``LaserRunResult.telemetry``.
* :mod:`repro.obs.profile` — the host-time profiler: scheduler/service
  lifecycle hooks attributing host wall-clock to each of the six
  services plus the sim core and PEBS drain, rendered as an ASCII
  flame-style self-time table (``python -m repro.obs profile``).
* :mod:`repro.obs.spans` — causal span tracing: promotes the flat
  trace events into flow trees (records → window → threshold → repair
  lifecycle) exported as Chrome trace_event flow arrows
  (``python -m repro.obs spans``).
* :mod:`repro.obs.bench` — the perf snapshot writer behind
  ``BENCH_obs.json`` (native vs. LASER-on overhead — simulated-cycle
  ratios primary, wall clock informational — across the workload
  suite).
* :mod:`repro.obs.bench_core` — the speed scoreboard behind
  ``BENCH_core.json``: simulator cycles/sec, records/sec through the
  detection path and per-service self-time shares, the baseline every
  perf PR is measured against.
* ``python -m repro.obs`` — runs any registered workload and prints a
  phase timeline plus a per-component cycle breakdown (a per-run
  Figure 12).
"""

# NOTE: this package is imported by the components it instruments
# (sim.machine, pebs, detect, repair), so the package init must stay
# dependency-light: trace/metrics/telemetry/profile only.  The bench
# writers pull in workloads + experiments; import them explicitly as
# ``repro.obs.bench`` / ``repro.obs.bench_core`` (the CLI and CI do);
# ``repro.obs.spans`` is pure but imported explicitly for symmetry.
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import NULL_PROFILER, HostProfiler, render_profile
from repro.obs.telemetry import RunTelemetry, WindowStats
from repro.obs.trace import NULL_TRACER, EventTracer, TraceEvent

__all__ = [
    "TraceEvent",
    "EventTracer",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "WindowStats",
    "RunTelemetry",
    "HostProfiler",
    "NULL_PROFILER",
    "render_profile",
]
