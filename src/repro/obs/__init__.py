"""Unified run observability: event tracing, windowed metrics, bench.

LASER's whole argument is deployability — an *online* monitor whose
overhead and decisions must be legible to operators.  This package is
the measurement layer that makes a run legible:

* :mod:`repro.obs.trace` — a ring-buffered structured event tracer with
  instrumentation points in the machine, the PMU/driver, the detection
  pipeline and the repair manager.  Near-zero cost when disabled (one
  attribute load and a branch per site), seed-deterministic when
  enabled, exportable as JSONL and as Chrome ``trace_event`` JSON so a
  run opens directly in Perfetto.
* :mod:`repro.obs.metrics` — a counters/gauges/histograms registry
  snapshotted at every detector check interval.
* :mod:`repro.obs.telemetry` — the per-run bundle: the tracer, the
  metrics registry and the per-window time series exposed on
  ``LaserRunResult.telemetry``.
* :mod:`repro.obs.bench` — the perf snapshot writer behind
  ``BENCH_obs.json`` (native vs. LASER-on overhead, wall clock and
  record throughput across the workload suite).
* ``python -m repro.obs`` — runs any registered workload and prints a
  phase timeline plus a per-component cycle breakdown (a per-run
  Figure 12).
"""

# NOTE: this package is imported by the components it instruments
# (sim.machine, pebs, detect, repair), so the package init must stay
# dependency-light: trace/metrics/telemetry only.  The bench writer
# pulls in workloads + experiments; import it explicitly as
# ``repro.obs.bench`` (the CLI and CI do).
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.telemetry import RunTelemetry, WindowStats
from repro.obs.trace import NULL_TRACER, EventTracer, TraceEvent

__all__ = [
    "TraceEvent",
    "EventTracer",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "WindowStats",
    "RunTelemetry",
]
