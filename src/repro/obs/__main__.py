"""``python -m repro.obs`` — run a workload, show where the time went.

Prints a per-run "Figure 12": the phase timeline (per-window HITM rate,
record flow and repair state) and the per-component cycle breakdown
(application, PMU assist stalls, kernel driver, userspace detector),
plus the repair/degradation lifecycle events from the trace.

Subcommands extend the report into the performance observatory:
``profile`` renders the host-time flame table (where the *wall clock*
went, as opposed to simulated cycles), and ``spans`` renders the causal
flow trees linking record batches to the repairs they caused.

Examples::

    python -m repro.obs linear_regression
    python -m repro.obs kmeans --seed 3 --trace kmeans_trace.json
    python -m repro.obs profile histogram --json prof.json
    python -m repro.obs spans histogram' --out spans_trace.json
    python -m repro.obs --smoke          # CI smoke: run + verify exports
    python -m repro.obs --list
"""

import argparse
import sys
from typing import List, Optional

from repro.core.config import LaserConfig
from repro.core.laser import Laser, LaserRunResult

#: Trace events worth narrating to an operator, in one line each.
_LIFECYCLE_PREFIXES = (
    "laser.", "repair.", "detector.", "detect.line_over_threshold",
)


def _breakdown(result: LaserRunResult) -> str:
    """Per-component cycle shares (the per-run Figure 12)."""
    app = max(1, result.application_cpu_cycles)
    pmu_stalls = result.machine.injected_stall_cycles
    rows = [
        ("application busy", app - pmu_stalls),
        ("PMU assist stalls", pmu_stalls),
        ("kernel driver", result.driver_cycles),
        ("userspace detector", result.detector_cycles),
    ]
    lines = ["%-20s %12s %8s" % ("component", "cycles", "share")]
    for name, cycles in rows:
        lines.append(
            "%-20s %12d %7.2f%%" % (name, cycles, 100.0 * cycles / app)
        )
    stats = result.pipeline.stats
    lines.append(
        "records: %d seen, %d admitted, %d undecodable PCs, "
        "%d dropped, %d pending at exit"
        % (stats.records_seen, stats.records_admitted,
           stats.undecodable_pcs, result.health.records_dropped,
           result.health.records_pending_at_exit)
    )
    tracer = result.telemetry.tracer
    lines.append(
        "ring: %d events emitted, %d retained, %d dropped "
        "(capacity %d)"
        % (tracer.events_emitted, len(tracer), tracer.events_dropped,
           tracer.capacity)
    )
    return "\n".join(lines)


def _lifecycle(result: LaserRunResult, limit: int = 40) -> str:
    events = [
        e for e in result.telemetry.tracer.events()
        if e.name.startswith(_LIFECYCLE_PREFIXES)
    ]
    if not events:
        return "(no lifecycle events recorded)"
    lines = []
    shown = events[:limit]
    for event in shown:
        args = ""
        if event.args:
            args = " " + " ".join(
                "%s=%s" % (k, v) for k, v in sorted(event.args.items())
            )
        lines.append("%10d  %-28s%s" % (event.cycle, event.name, args))
    if len(events) > limit:
        lines.append("... %d more lifecycle events" % (len(events) - limit))
    return "\n".join(lines)


def run_one(name: str, seed: int = 0, scale: float = 1.0,
            repair: bool = True, capacity: int = 65_536,
            profile: bool = False, spans: bool = False) -> LaserRunResult:
    from repro.workloads.registry import get_workload

    config = LaserConfig(seed=seed, repair_enabled=repair,
                         trace_enabled=True, trace_capacity=capacity,
                         profile_enabled=profile, trace_spans=spans)
    return Laser(config).run_workload(get_workload(name), scale=scale)


def report(result: LaserRunResult, name: str) -> str:
    sections = [
        "== %s: %d cycles, %d HITM events, repaired=%s" % (
            name, result.cycles, result.pmu.total_hitm_count,
            result.repaired),
        "health: %s" % result.health.summary(),
        "",
        "-- phase timeline (%d detection windows)"
        % result.telemetry.window_count,
        result.telemetry.render_timeline(),
        "",
        "-- cycle breakdown",
        _breakdown(result),
        "",
        "-- lifecycle events",
        _lifecycle(result),
    ]
    return "\n".join(sections)


def smoke() -> int:
    """CI smoke: trace a run, verify determinism and export sanity."""
    import json

    name = "linear_regression"
    first = run_one(name)
    second = run_one(name)
    print(report(first, name))
    failures = []
    if first.telemetry.tracer.to_jsonl() != second.telemetry.tracer.to_jsonl():
        failures.append("trace JSONL not deterministic across identical runs")
    if first.telemetry.snapshots_jsonl() != second.telemetry.snapshots_jsonl():
        failures.append("metrics snapshots not deterministic")
    if not first.telemetry.windows:
        failures.append("no detection windows recorded")
    doc = first.telemetry.to_chrome_trace()
    if not doc.get("traceEvents"):
        failures.append("empty Chrome trace export")
    json.dumps(doc)  # must serialize
    if failures:
        for failure in failures:
            print("SMOKE FAILURE: %s" % failure, file=sys.stderr)
        return 1
    print("\nsmoke ok: %d events, %d windows, deterministic exports"
          % (len(first.telemetry.tracer), first.telemetry.window_count))
    return 0


def _profile_main(argv: List[str]) -> int:
    """``python -m repro.obs profile <workload>``: the host-time table."""
    import json

    from repro.obs.profile import render_profile

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs profile",
        description="Run a workload with host-time profiling and render "
                    "the flame-style self-time table.",
    )
    parser.add_argument("workload", nargs="?", default="linear_regression")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--no-repair", action="store_true")
    parser.add_argument("--json", metavar="FILE",
                        help="also write the breakdown as JSON")
    args = parser.parse_args(argv)

    result = run_one(args.workload, seed=args.seed, scale=args.scale,
                     repair=not args.no_repair, profile=True)
    print(render_profile(
        result.profile,
        title="== host-time profile: %s (%d simulated cycles)"
              % (args.workload, result.cycles),
    ))
    shares = result.profile.aggregate_shares()
    top = sorted(shares.items(), key=lambda kv: -kv[1])[:3]
    print("top self-time: " + "  ".join(
        "%s=%.1f%%" % (label, 100.0 * share) for label, share in top))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(result.profile.as_dict(), fh, sort_keys=True, indent=1)
            fh.write("\n")
        print("wrote profile JSON to %s" % args.json)
    return 0


def _spans_main(argv: List[str]) -> int:
    """``python -m repro.obs spans <workload>``: the causal flow trees."""
    from repro.obs.spans import build_spans

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs spans",
        description="Run a workload with span tracing and render the "
                    "causal flow trees (records -> window -> threshold "
                    "-> repair lifecycle).",
    )
    parser.add_argument("workload", nargs="?", default="histogram'")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--no-repair", action="store_true")
    parser.add_argument("--max-windows", type=int, default=8,
                        help="window trees to print (0 = all)")
    parser.add_argument("--out", metavar="FILE",
                        help="write the Chrome trace with flow arrows "
                             "(open in Perfetto)")
    args = parser.parse_args(argv)

    result = run_one(args.workload, seed=args.seed, scale=args.scale,
                     repair=not args.no_repair, spans=True)
    spans = build_spans(result.telemetry.tracer.events())
    print("== causal spans: %s" % args.workload)
    print(spans.render(max_windows=args.max_windows))
    if args.out:
        spans.write_chrome_trace(args.out)
        print("wrote flow trace to %s (open at https://ui.perfetto.dev)"
              % args.out)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Observatory subcommands; the bare form keeps its legacy surface
    # (`python -m repro.obs <workload>`).
    if argv and argv[0] == "profile":
        return _profile_main(argv[1:])
    if argv and argv[0] == "spans":
        return _spans_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Run a workload under LASER with tracing on and "
                    "print the phase timeline + cycle breakdown.  "
                    "Subcommands: profile (host-time flame table), "
                    "spans (causal flow trees).",
    )
    parser.add_argument("workload", nargs="?", default="linear_regression",
                        help="registered workload name "
                             "(default: %(default)s)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--no-repair", action="store_true",
                        help="detection only (repair disabled)")
    parser.add_argument("--capacity", type=int, default=65_536,
                        help="trace ring capacity (default: %(default)s)")
    parser.add_argument("--trace", metavar="FILE",
                        help="write Chrome trace JSON (open in Perfetto)")
    parser.add_argument("--jsonl", metavar="FILE",
                        help="write the raw event stream as JSONL")
    parser.add_argument("--smoke", action="store_true",
                        help="CI smoke mode: run, verify exports, exit")
    parser.add_argument("--list", action="store_true",
                        help="list registered workloads and exit")
    args = parser.parse_args(argv)

    if args.list:
        from repro.workloads.registry import workload_names

        print("\n".join(workload_names()))
        return 0
    if args.smoke:
        return smoke()

    result = run_one(args.workload, seed=args.seed, scale=args.scale,
                     repair=not args.no_repair, capacity=args.capacity)
    print(report(result, args.workload))
    if args.trace:
        result.telemetry.write_chrome_trace(args.trace)
        print("\nwrote Chrome trace to %s (open at https://ui.perfetto.dev)"
              % args.trace)
    if args.jsonl:
        result.telemetry.tracer.write_jsonl(args.jsonl)
        print("wrote %d events to %s"
              % (len(result.telemetry.tracer), args.jsonl))
    return 0


if __name__ == "__main__":
    sys.exit(main())
