"""Causal span tracing: from flat trace events to flow trees.

The event tracer (:mod:`repro.obs.trace`) answers *what happened*; this
module answers *why*.  It promotes the flat, emission-ordered event
stream into span trees with flow IDs that link each stage of the
detection-to-repair causal chain::

    driver.drain ─┐
    detect.batch ─┴→ detect.window_roll → detect.line_over_threshold
        → repair.trigger → repair.plan → repair.verify
        → repair.attach → repair.watchdog → repair.detach

so "which records caused this repair" is answerable from a single trace
load: every repair chain carries the windows that fed its threshold
crossings, the batches those windows ingested, and the journal sequence
range of the records in those batches.

The builder is a *pure derivation* over an already-recorded event list
— it runs after the fact and emits nothing, so it cannot perturb a run.
The one extra emission it wants, ``detect.batch`` (per-poll batch size
and journal seq range), is gated behind ``config.trace_spans`` because
any new default-on event would change the trace stream's golden SHA-256
pin; without it the chain still builds, just without per-batch seq
attribution.

Ordering caveat the builder is written around:
``detect.line_over_threshold`` events are stamped with the *report
duration* (``duration_cycles``), not the machine cycle, so causality is
recovered from emission order — never from timestamp sorting — and the
Chrome export re-anchors threshold spans to their window's end cycle.

Exports: :meth:`SpanTrace.to_chrome_trace` writes a Chrome
``trace_event`` document where every span is a complete ("X") slice and
every repair chain is one flow (``s``/``t``/``f`` arrows, loadable in
Perfetto); :meth:`SpanTrace.render` is the ASCII flow-tree view the CLI
prints.
"""

import json
from typing import Dict, List, Optional

from repro.obs.trace import chrome_lane

__all__ = ["Span", "SpanTrace", "build_spans"]

#: Events the builder consumes; everything else passes through untouched.
_CAUSAL_EVENTS = frozenset((
    "driver.drain", "detect.batch", "detect.window_roll",
    "detect.line_over_threshold", "repair.trigger", "repair.plan",
    "repair.verify", "repair.plan_rejected", "repair.attach",
    "repair.backoff", "repair.watchdog", "repair.detach",
    "repair.quarantine",
))


class Span:
    """One node of the causal tree: an event plus its consequences."""

    __slots__ = ("sid", "name", "cycle", "args", "children")

    def __init__(self, sid: int, name: str, cycle: int,
                 args: Optional[Dict]):
        self.sid = sid
        self.name = name
        #: The emitting component's timestamp — beware that threshold
        #: events carry the report duration here, not the run clock.
        self.cycle = cycle
        self.args = args or {}
        self.children: List["Span"] = []

    def label(self) -> str:
        """One-line human form (the render tree's node text)."""
        args = self.args
        if self.name == "detect.window_roll":
            return "window @%d (seen=%s admitted=%s)" % (
                self.cycle, args.get("records_seen", "?"),
                args.get("records_admitted", "?"))
        if self.name == "detect.batch":
            seq_lo, seq_hi = args.get("seq_lo"), args.get("seq_hi")
            seq = (" seq %s..%s" % (seq_lo, seq_hi)
                   if seq_lo is not None else "")
            return "batch records=%s%s" % (args.get("records", "?"), seq)
        if self.name == "driver.drain":
            return "drain core=%s drained=%s dropped=%s" % (
                args.get("core", "?"), args.get("drained", "?"),
                args.get("dropped", 0))
        if self.name == "detect.line_over_threshold":
            return "threshold %s rate=%s" % (
                args.get("location", "?"), args.get("hitm_rate", "?"))
        if self.name == "repair.trigger":
            return "trigger @%d lines=%s pcs=%s" % (
                self.cycle, args.get("lines", "?"), args.get("pcs", "?"))
        if self.name == "repair.watchdog":
            return "watchdog @%d verdict=%s" % (
                self.cycle, args.get("verdict", "?"))
        if self.name == "repair.backoff":
            return "backoff reason=%s intervals=%s" % (
                args.get("reason", "?"), args.get("intervals", "?"))
        detail = " ".join(
            "%s=%s" % (k, v) for k, v in sorted(args.items())
        )
        return "%s @%d%s" % (self.name.split(".", 1)[1], self.cycle,
                             " " + detail if detail else "")

    def __repr__(self):
        return "<Span #%d %s @%d>" % (self.sid, self.name, self.cycle)


class _RepairChain:
    """One repair lifecycle: trigger through detach, plus provenance."""

    __slots__ = ("index", "trigger", "stages", "windows", "resolved")

    def __init__(self, index: int, trigger: Span):
        self.index = index
        self.trigger = trigger
        #: Lifecycle spans in emission order (trigger first).
        self.stages: List[Span] = [trigger]
        #: The window spans whose thresholds fed this trigger.
        self.windows: List[Span] = []
        self.resolved = False

    @property
    def outcome(self) -> str:
        names = [span.name for span in self.stages]
        if "repair.detach" in names:
            return "detached"
        if "repair.attach" in names:
            return "attached"
        if "repair.backoff" in names:
            last = self.stages[-1]
            return "backed off (%s)" % last.args.get("reason", "?")
        return "open"

    def records_behind(self) -> Dict:
        """How many records (and which journal seqs) caused this repair."""
        records = 0
        seq_lo: Optional[int] = None
        seq_hi: Optional[int] = None
        for window in self.windows:
            for child in window.children:
                if child.name != "detect.batch":
                    continue
                records += child.args.get("records", 0)
                lo, hi = child.args.get("seq_lo"), child.args.get("seq_hi")
                if lo is not None:
                    seq_lo = lo if seq_lo is None else min(seq_lo, lo)
                    seq_hi = hi if seq_hi is None else max(seq_hi, hi)
        return {"records": records, "seq_lo": seq_lo, "seq_hi": seq_hi,
                "windows": len(self.windows)}


class SpanTrace:
    """The causal view of one run: windows, repair chains, leftovers."""

    def __init__(self):
        #: Window spans, in roll order (children: drains, batches,
        #: thresholds).
        self.windows: List[Span] = []
        #: Repair chains, in trigger order.
        self.chains: List[_RepairChain] = []
        #: Causal spans that never found a parent (e.g. batches drained
        #: at exit after the last window rolled).
        self.orphans: List[Span] = []

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def render(self, max_windows: int = 0) -> str:
        """ASCII flow-tree: windows, then each repair chain with its
        provenance line."""
        lines = [
            "causal spans: %d windows, %d repair chains, %d orphans"
            % (len(self.windows), len(self.chains), len(self.orphans))
        ]
        shown = self.windows
        elided = 0
        if max_windows and len(shown) > max_windows:
            elided = len(shown) - max_windows
            shown = shown[:max_windows]
        for window in shown:
            lines.append(window.label())
            for child in window.children:
                lines.append("  " + child.label())
        if elided:
            lines.append("(… %d more windows)" % elided)
        for chain in self.chains:
            behind = chain.records_behind()
            lines.append(
                "repair chain #%d (flow %d): %s"
                % (chain.index, chain.index + 1, chain.outcome)
            )
            for span in chain.stages:
                lines.append("  " + span.label())
            seq = ("" if behind["seq_lo"] is None else
                   ", seq %d..%d" % (behind["seq_lo"], behind["seq_hi"]))
            lines.append(
                "  caused by: %d window(s), %d record(s)%s"
                % (behind["windows"], behind["records"], seq)
            )
        for orphan in self.orphans:
            lines.append("orphan: " + orphan.label())
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Chrome trace_event export (flow arrows)
    # ------------------------------------------------------------------

    def to_chrome_trace(self) -> Dict:
        """The causal view as its own Chrome ``trace_event`` document.

        Every span is a complete ("X") slice; every repair chain is one
        flow whose arrows run batch → window → threshold → trigger →
        … → detach.  Threshold spans are re-anchored to their window's
        end cycle (their native timestamp is the report duration, which
        would scatter them across the timeline).
        """
        events: List[Dict] = []
        pids_seen = set()

        def slice_for(span: Span, ts: int, dur: int = 1) -> Dict:
            pid, tid = chrome_lane(span.name, span.args)
            pids_seen.add(pid)
            entry = {
                "name": span.name, "ph": "X", "ts": ts, "dur": max(1, dur),
                "pid": pid, "tid": tid,
            }
            if span.args:
                entry["args"] = dict(span.args)
            return entry

        anchors: Dict[int, Dict] = {}  # sid -> its slice entry
        for window in self.windows:
            window_cycles = window.args.get("window_cycles", 0) or 1
            start = max(0, window.cycle - window_cycles)
            entry = slice_for(window, start, window_cycles)
            anchors[window.sid] = entry
            events.append(entry)
            for child in window.children:
                ts = (window.cycle if child.name
                      == "detect.line_over_threshold" else child.cycle)
                child_entry = slice_for(child, ts)
                anchors[child.sid] = child_entry
                events.append(child_entry)
        for chain in self.chains:
            for span in chain.stages:
                entry = slice_for(span, span.cycle)
                anchors[span.sid] = entry
                events.append(entry)
        for orphan in self.orphans:
            entry = slice_for(orphan, orphan.cycle)
            anchors[orphan.sid] = entry
            events.append(entry)
        # One flow per repair chain: provenance first (batches, window,
        # thresholds of each contributing window), then the lifecycle.
        for chain in self.chains:
            flow_id = chain.index + 1
            hops: List[Dict] = []
            for window in chain.windows:
                for child in window.children:
                    if child.name == "detect.batch":
                        hops.append(anchors[child.sid])
                hops.append(anchors[window.sid])
                for child in window.children:
                    if child.name == "detect.line_over_threshold":
                        hops.append(anchors[child.sid])
            hops.extend(anchors[span.sid] for span in chain.stages)
            for position, anchor in enumerate(hops):
                ph = ("s" if position == 0
                      else "f" if position == len(hops) - 1 else "t")
                flow = {
                    "name": "repair-cause", "cat": "causal",
                    "ph": ph, "id": flow_id,
                    "ts": anchor["ts"], "pid": anchor["pid"],
                    "tid": anchor["tid"],
                }
                if ph == "f":
                    flow["bp"] = "e"  # bind to the enclosing slice
                events.append(flow)
        metadata = [
            {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
             "args": {"name": name}}
            for pid, name in (
                (1, "application (simulated cores)"),
                (2, "LASER kernel driver"),
                (3, "LASER detector + repair"),
            )
            if pid in pids_seen
        ]
        return {
            "traceEvents": metadata + events,
            "displayTimeUnit": "ms",
            "otherData": {
                "clock": "simulated cycles (1 cycle = 1us of trace time)",
                "windows": len(self.windows),
                "repair_chains": len(self.chains),
            },
        }

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(), fh, sort_keys=True, indent=1)
            fh.write("\n")

    def __repr__(self):
        return "<SpanTrace %d windows, %d chains>" % (
            len(self.windows), len(self.chains))


def build_spans(events) -> SpanTrace:
    """Derive the causal span trees from an emission-ordered event list.

    ``events`` is a list of :class:`~repro.obs.trace.TraceEvent` (or
    anything with ``name``/``cycle``/``args``).  Causality is recovered
    from emission order: drains and batches pend until the window roll
    that consumed them; threshold crossings pend until a repair trigger
    claims the matching lines; lifecycle events append to the open
    chain (trigger → attach) or to the attached one (watchdog/detach).
    """
    trace = SpanTrace()
    next_sid = [0]

    def make_span(event) -> Span:
        next_sid[0] += 1
        return Span(next_sid[0], event.name, event.cycle, event.args)

    pending_feed: List[Span] = []      # drains + batches since last roll
    pending_thresholds: List[Span] = []
    active: Optional[_RepairChain] = None
    attached: Optional[_RepairChain] = None

    for event in events:
        name = event.name
        if name not in _CAUSAL_EVENTS:
            continue
        span = make_span(event)
        if name in ("driver.drain", "detect.batch"):
            pending_feed.append(span)
        elif name == "detect.window_roll":
            span.children.extend(pending_feed)
            pending_feed = []
            trace.windows.append(span)
        elif name == "detect.line_over_threshold":
            if trace.windows:
                trace.windows[-1].children.append(span)
                pending_thresholds.append(span)
            else:
                trace.orphans.append(span)
        elif name == "repair.trigger":
            active = _RepairChain(len(trace.chains), span)
            trace.chains.append(active)
            lines = set(span.args.get("lines") or ())
            claimed = [t for t in pending_thresholds
                       if t.args.get("location") in lines]
            if not claimed:
                claimed = list(pending_thresholds)
            for threshold in claimed:
                window = next(w for w in trace.windows
                              if threshold in w.children)
                if window not in active.windows:
                    active.windows.append(window)
            pending_thresholds = [t for t in pending_thresholds
                                  if t not in claimed]
        elif name in ("repair.plan", "repair.verify",
                      "repair.plan_rejected"):
            if active is not None:
                active.stages.append(span)
            else:
                trace.orphans.append(span)
        elif name == "repair.attach":
            if active is not None:
                active.stages.append(span)
                active.resolved = True
                attached, active = active, None
            else:
                trace.orphans.append(span)
        elif name == "repair.backoff":
            if active is not None:
                active.stages.append(span)
                active.resolved = True
                active = None
            else:
                trace.orphans.append(span)
        elif name in ("repair.watchdog", "repair.detach"):
            if attached is not None:
                attached.stages.append(span)
            else:
                trace.orphans.append(span)
        elif name == "repair.quarantine":
            # Emitted inside trigger evaluation *before* any trigger
            # event; it is its own (refused) causal endpoint.
            trace.orphans.append(span)
    trace.orphans.extend(pending_feed)
    return trace
