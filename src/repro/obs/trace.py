"""Structured event tracing for LASER runs.

The tracer is a bounded ring buffer of :class:`TraceEvent` records.
Design constraints, in order:

1. **Near-zero cost when disabled.**  Every instrumentation site is
   guarded by ``if tracer.enabled:`` — one attribute load and one branch
   on the hot path, nothing else.  Disabled tracing charges no simulated
   cycles and allocates no event objects, so a run with tracing off is
   bit-identical (in simulated cycles *and* in RNG consumption) to a run
   without the instrumentation at all.
2. **Determinism.**  Events are timestamped with the simulated cycle
   counter, never wall clock, and serialization sorts JSON keys — the
   same seed and config produce a byte-identical trace.
3. **Boundedness.**  The ring keeps the most recent ``capacity`` events
   and counts what it sheds in ``events_dropped`` (an online monitor
   must not let its own telemetry grow without limit).

Export formats:

* JSONL (one event per line) via :meth:`EventTracer.to_jsonl`;
* Chrome ``trace_event`` JSON via :meth:`EventTracer.to_chrome_trace`,
  loadable in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.
  One simulated cycle maps to one microsecond of trace time (the
  simulated clock defines ``CYCLES_PER_SECOND = 1_000_000``, so trace
  seconds equal simulated seconds).

Event names are ``component.event`` strings; the component prefix picks
the Perfetto process/thread lane (application cores, kernel driver,
detector/repair).
"""

import json
from collections import deque
from typing import Dict, List, Optional

__all__ = ["TraceEvent", "EventTracer", "NULL_TRACER", "chrome_lane"]

#: Default ring capacity: enough for every event of a tier-1 workload
#: run with room to spare, small enough to stay bounded on long runs.
DEFAULT_TRACE_CAPACITY = 65_536

# Perfetto lane assignment: (pid, process name, default tid, tid label).
_PID_APPLICATION = 1
_PID_DRIVER = 2
_PID_DETECTOR = 3

#: tid used for machine-global events inside the application process
#: (the discrete-event loop itself, as opposed to one core's work).
_TID_MACHINE = 99

_COMPONENT_PIDS = {
    "machine": _PID_APPLICATION,
    "htm": _PID_APPLICATION,
    "pebs": _PID_APPLICATION,
    "driver": _PID_DRIVER,
    "detect": _PID_DETECTOR,
    "detector": _PID_DETECTOR,
    "laser": _PID_DETECTOR,
    "repair": _PID_DETECTOR,
}

_PROCESS_NAMES = {
    _PID_APPLICATION: "application (simulated cores)",
    _PID_DRIVER: "LASER kernel driver",
    _PID_DETECTOR: "LASER detector + repair",
}


def chrome_lane(name: str, args: Optional[Dict]) -> tuple:
    """Map an event to its Chrome trace (pid, tid) lane.

    Application-process events land on the core that produced them;
    machine-global events get their own lane; driver drains land on the
    core whose buffer drained; detector/repair events share one lane.
    """
    component = name.split(".", 1)[0]
    pid = _COMPONENT_PIDS.get(component, _PID_DETECTOR)
    if pid is _PID_DETECTOR:
        return pid, 0
    if component == "machine":
        return pid, _TID_MACHINE
    if args and "core" in args:
        return pid, args["core"]
    return pid, 0


class TraceEvent:
    """One structured event: a cycle timestamp, a name, a phase, args.

    ``ph`` follows the Chrome trace_event phase vocabulary: ``"i"``
    (instant), ``"B"``/``"E"`` (duration begin/end) and ``"C"``
    (counter).
    """

    __slots__ = ("cycle", "name", "ph", "args")

    def __init__(self, cycle: int, name: str, ph: str = "i",
                 args: Optional[Dict] = None):
        self.cycle = cycle
        self.name = name
        self.ph = ph
        self.args = args

    def as_dict(self) -> Dict:
        out = {"cycle": self.cycle, "name": self.name, "ph": self.ph}
        if self.args:
            out["args"] = self.args
        return out

    def __repr__(self):
        return "<TraceEvent %s @%d %r>" % (self.name, self.cycle, self.args)


class EventTracer:
    """Ring-buffered event sink shared by every instrumented component."""

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY,
                 enabled: bool = True):
        if capacity < 1:
            raise ValueError("trace capacity must be >= 1")
        #: Hot-path guard.  Instrumentation sites test this before
        #: building argument dicts, so a disabled tracer costs one
        #: attribute load and one branch per site.
        self.enabled = enabled
        self.capacity = capacity
        self._ring = deque(maxlen=capacity)
        self.events_emitted = 0

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------

    def emit(self, name: str, cycle: int, ph: str = "i", **args) -> None:
        """Record one event (drops the oldest when the ring is full)."""
        if not self.enabled:
            return
        self.events_emitted += 1
        self._ring.append(TraceEvent(cycle, name, ph, args or None))

    @property
    def events_dropped(self) -> int:
        """Events shed by the ring (oldest-first) to stay bounded."""
        return self.events_emitted - len(self._ring)

    def events(self) -> List[TraceEvent]:
        """Retained events in emission order."""
        return list(self._ring)

    def events_named(self, prefix: str) -> List[TraceEvent]:
        """Retained events whose name starts with ``prefix``."""
        return [e for e in self._ring if e.name.startswith(prefix)]

    def clear(self) -> None:
        self._ring.clear()
        self.events_emitted = 0

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_jsonl(self) -> str:
        """One deterministic JSON object per line, emission order."""
        return "".join(
            json.dumps(event.as_dict(), sort_keys=True,
                       separators=(",", ":")) + "\n"
            for event in self._ring
        )

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_jsonl())

    def to_chrome_trace(self, extra_events: Optional[List[Dict]] = None) -> Dict:
        """The run as a Chrome ``trace_event`` document.

        ``extra_events`` lets callers (the telemetry bundle) append
        pre-built trace_event dicts such as per-window counter tracks.
        """
        trace_events: List[Dict] = []
        pids_seen = set()
        for event in self._ring:
            pid, tid = chrome_lane(event.name, event.args)
            pids_seen.add(pid)
            entry = {
                "name": event.name,
                "ph": event.ph,
                "ts": event.cycle,
                "pid": pid,
                "tid": tid,
            }
            if event.ph == "i":
                entry["s"] = "t"  # thread-scoped instant
            if event.args:
                entry["args"] = event.args
            trace_events.append(entry)
        if extra_events:
            trace_events.extend(extra_events)
            for entry in extra_events:
                pids_seen.add(entry.get("pid", _PID_DETECTOR))
        metadata = []
        for pid in sorted(pids_seen):
            metadata.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": _PROCESS_NAMES.get(pid, "pid %d" % pid)},
            })
        if _PID_APPLICATION in pids_seen:
            metadata.append({
                "name": "thread_name", "ph": "M",
                "pid": _PID_APPLICATION, "tid": _TID_MACHINE,
                "args": {"name": "event loop"},
            })
        return {
            "traceEvents": metadata + trace_events,
            "displayTimeUnit": "ms",
            "otherData": {
                "clock": "simulated cycles (1 cycle = 1us of trace time)",
                "events_emitted": self.events_emitted,
                "events_dropped": self.events_dropped,
            },
        }

    def write_chrome_trace(self, path: str,
                           extra_events: Optional[List[Dict]] = None) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(extra_events), fh,
                      sort_keys=True, indent=1)
            fh.write("\n")

    def __len__(self):
        return len(self._ring)

    def __repr__(self):
        return "<EventTracer %s %d/%d events (%d dropped)>" % (
            "on" if self.enabled else "off",
            len(self._ring), self.capacity, self.events_dropped,
        )


class _NullTracer(EventTracer):
    """The shared disabled tracer every component defaults to.

    A distinct type so accidental ``NULL_TRACER.enabled = True`` in one
    run cannot silently leak events into another: emission is a no-op
    regardless of the flag.
    """

    def __init__(self):
        super().__init__(capacity=1, enabled=False)

    def emit(self, name: str, cycle: int, ph: str = "i", **args) -> None:
        return None


#: Process-wide disabled tracer (never emits, never retains).
NULL_TRACER = _NullTracer()
