"""Host-time profiler: where the *wall clock* goes during a run.

The simulator's own accounting (Figure 12, ``BENCH_obs.json``) is in
*simulated* cycles — it can say the kernel driver cost the monitored
application 2%, but it cannot say which Python code burned the host's
time producing that answer.  That blind spot is exactly what a
vectorization PR needs lit: before making the hot path 10x faster, one
must know whether the hot path is the simulator core, the PEBS drain,
or one of the six lifecycle services.

:class:`HostProfiler` is the same shape as the event tracer
(:mod:`repro.obs.trace`): a shared object every instrumented component
holds, guarded by ``profiler.enabled`` so a disabled profiler costs one
attribute load and a branch per site, and a process-wide
:data:`NULL_PROFILER` that never records.  Crucially the profiler only
*reads* the host clock — it never touches simulated cycles, RNG streams
or any component state, so a profiled run's simulated outputs are
bit-identical to an unprofiled one (regression-tested against the
golden pins).

Categories form a small tree keyed by *path*: the scheduler opens one
span per slice (``start``/``poll``/``check``/``exit``) and one nested
span per service, the machine opens ``sim.core`` around each run
slice, and the kernel driver opens ``pebs.drain`` around its full
drain.  ``begin``/``end`` maintain a stack; the time a span spends in
its children is subtracted, so the breakdown is *self time* — shares
sum to 100% of profiled wall time with no double counting.

Rendering: :func:`render_profile` is an ASCII flame-style table
(indentation is call-tree depth); :meth:`HostProfiler.as_dict` is the
machine-readable export the ``BENCH_core.json`` scoreboard embeds.
"""

import time
from typing import Dict, List, Optional, Tuple

__all__ = ["HostProfiler", "NULL_PROFILER", "render_profile"]

#: Bump on any backwards-incompatible change to the export layout.
PROFILE_SCHEMA = "laser-host-profile/v1"

#: Canonical leaf labels of the run kernel's profiled categories, in
#: scheduler slice order (the six services) plus the two hot sinks
#: outside the service fan-outs.  ``aggregate_shares`` reports these
#: even when zero, so downstream consumers (BENCH_core) see a stable
#: key set.
KERNEL_CATEGORIES = (
    "sim.core",
    "pebs.drain",
    "resilience",
    "driver_poll",
    "detection",
    "repair",
    "telemetry",
    "control",
)


class HostProfiler:
    """Stack-based self-time accumulator over ``time.perf_counter_ns``.

    ``begin(label)`` pushes a span; ``end()`` pops it and charges the
    elapsed time *minus the time spent in nested spans* to the span's
    path (the tuple of labels on the stack).  Paths keep parent context
    — ``("poll", "driver_poll", "pebs.drain")`` is a different row from
    ``("exit", "detection", "pebs.drain")`` — which is what makes the
    rendered table flame-shaped.
    """

    __slots__ = ("enabled", "_stack", "_self_ns", "_calls")

    def __init__(self, enabled: bool = True):
        #: Hot-path guard, same discipline as ``EventTracer.enabled``.
        self.enabled = enabled
        # Stack frames are [label, start_ns, child_ns] lists.
        self._stack: List[list] = []
        self._self_ns: Dict[Tuple[str, ...], int] = {}
        self._calls: Dict[Tuple[str, ...], int] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def begin(self, label: str) -> None:
        if not self.enabled:
            return
        self._stack.append([label, time.perf_counter_ns(), 0])

    def end(self) -> None:
        if not self.enabled:
            return
        if not self._stack:
            raise RuntimeError("profiler end() without a matching begin()")
        label, start_ns, child_ns = self._stack.pop()
        elapsed = time.perf_counter_ns() - start_ns
        path = tuple(frame[0] for frame in self._stack) + (label,)
        self._self_ns[path] = (
            self._self_ns.get(path, 0) + max(0, elapsed - child_ns)
        )
        self._calls[path] = self._calls.get(path, 0) + 1
        if self._stack:
            self._stack[-1][2] += elapsed

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------

    @property
    def total_ns(self) -> int:
        """Profiled wall time: the sum of every path's self time."""
        return sum(self._self_ns.values())

    def paths(self) -> List[Tuple[str, ...]]:
        """Recorded paths, parents before children, siblings by cost."""
        ordered: List[Tuple[str, ...]] = []

        def visit(prefix: Tuple[str, ...]) -> None:
            children = sorted(
                {
                    path[: len(prefix) + 1]
                    for path in self._self_ns
                    if path[: len(prefix)] == prefix and len(path) > len(prefix)
                },
                key=lambda p: -self.subtree_ns(p),
            )
            for child in children:
                if child in self._self_ns:
                    ordered.append(child)
                visit(child)

        visit(())
        return ordered

    def subtree_ns(self, prefix: Tuple[str, ...]) -> int:
        """Self time of a path plus all of its descendants."""
        return sum(
            ns for path, ns in self._self_ns.items()
            if path[: len(prefix)] == prefix
        )

    def self_ns(self, path: Tuple[str, ...]) -> int:
        return self._self_ns.get(path, 0)

    def calls(self, path: Tuple[str, ...]) -> int:
        return self._calls.get(path, 0)

    def leaf_self_ns(self, label: str) -> int:
        """Merged self time across every path ending in ``label``.

        The same leaf runs under several parents (``pebs.drain`` nests
        under both the poll and exit slices); this is the per-category
        total BENCH_core's detection-path throughput divides by.
        """
        return sum(
            ns for path, ns in self._self_ns.items() if path[-1] == label
        )

    def aggregate_shares(self) -> Dict[str, float]:
        """Self-time share per *leaf label*, merged across paths.

        The same service runs in several slices (poll/check/exit) and
        the PEBS drain nests under two different services; this view
        collapses those paths onto their leaf label — the per-service
        breakdown the BENCH_core scoreboard commits.  Every kernel
        category is present (zero when never entered) so the key set is
        stable across workloads.
        """
        total = self.total_ns
        merged: Dict[str, int] = {label: 0 for label in KERNEL_CATEGORIES}
        for path, ns in self._self_ns.items():
            merged[path[-1]] = merged.get(path[-1], 0) + ns
        if total <= 0:
            return {label: 0.0 for label in merged}
        return {label: ns / total for label, ns in merged.items()}

    def merge(self, other: "HostProfiler") -> None:
        """Fold another profiler's totals into this one (multi-run
        aggregation for the scoreboard)."""
        for path, ns in other._self_ns.items():
            self._self_ns[path] = self._self_ns.get(path, 0) + ns
        for path, calls in other._calls.items():
            self._calls[path] = self._calls.get(path, 0) + calls

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def as_dict(self) -> Dict:
        """Machine-readable breakdown (host-dependent; never committed
        as an equality-checked artifact — only rendered or embedded in
        rate scoreboards)."""
        total = self.total_ns
        rows = []
        for path in self.paths():
            self_ns = self.self_ns(path)
            rows.append({
                "path": "/".join(path),
                "depth": len(path) - 1,
                "calls": self.calls(path),
                "self_ms": round(self_ns / 1e6, 3),
                "share": round(self_ns / total, 4) if total else 0.0,
            })
        return {
            "schema": PROFILE_SCHEMA,
            "total_ms": round(total / 1e6, 3),
            "rows": rows,
            "shares": {
                label: round(share, 4)
                for label, share in sorted(self.aggregate_shares().items())
            },
        }

    def __repr__(self):
        return "<HostProfiler %s %d paths, %.1f ms>" % (
            "on" if self.enabled else "off",
            len(self._self_ns), self.total_ns / 1e6,
        )


class _NullProfiler(HostProfiler):
    """The shared disabled profiler (same guard pattern as the tracer):
    a distinct type so flipping ``enabled`` on it cannot start charging
    a foreign run's spans into process-global state."""

    def __init__(self):
        super().__init__(enabled=False)

    def begin(self, label: str) -> None:
        return None

    def end(self) -> None:
        return None


#: Process-wide disabled profiler (never records).
NULL_PROFILER = _NullProfiler()


def render_profile(profiler: HostProfiler, width: int = 28,
                   title: Optional[str] = None) -> str:
    """ASCII flame-style self-time table.

    One row per recorded path, indented by depth; the bar scales to the
    costliest row's self time.  Shares are of total *profiled* host
    time, so the column sums to 100%.
    """
    paths = profiler.paths()
    if not paths:
        return "(no host-time samples recorded — profiling off?)"
    total = profiler.total_ns or 1
    peak = max(profiler.self_ns(path) for path in paths) or 1
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "%-34s %8s %10s %7s  %s"
        % ("category (self time)", "calls", "ms", "share", "")
    )
    for path in paths:
        self_ns = profiler.self_ns(path)
        bar = "#" * int(round(width * self_ns / peak))
        label = "  " * (len(path) - 1) + path[-1]
        lines.append(
            "%-34s %8d %10.3f %6.1f%%  %s"
            % (label, profiler.calls(path), self_ns / 1e6,
               100.0 * self_ns / total, bar)
        )
    lines.append("profiled host time: %.3f ms" % (total / 1e6))
    return "\n".join(lines)
