"""The speed scoreboard: how fast the *simulator itself* runs.

``BENCH_obs.json`` answers "what does LASER cost the monitored
application" in simulated cycles; this writer answers the question
every perf PR needs first: "how fast does the reproduction execute on
the host" — the baseline ROADMAP item 1's 10x vectorization target is
measured against.  Per workload it captures:

* **sim_cycles_per_sec** — simulated cycles retired per host second
  with LASER attached (the event-loop + detection throughput);
* **native_cycles_per_sec** — the same for an unmonitored run (the
  pure event-loop speed ceiling);
* **records_per_sec** — stripped PEBS records through the *detection
  path* per host second: records seen divided by the profiler's self
  time in ``pebs.drain`` plus the ``detection`` service (the number
  the vectorization PR must 10x).  v1 divided by whole-run wall time,
  which a record-free or simulator-bound workload skews toward zero
  regardless of detection speed; that whole-run rate is kept as
  **records_per_wall_sec**;
* **self_time_shares** — the host-time profiler's per-category
  breakdown (``sim.core``, ``pebs.drain``, the six services), merged
  across seeds, saying *where* the host time goes;
* **laser_cycles** / **records_seen** — seed-deterministic anchors so
  a rate change can be attributed to host speed vs. behavior change.

Rates are host-dependent by nature, so the committed snapshot is a
*trajectory record*, not an equality pin: the CI drift gate
(``--against --max-drift-pct``) thresholds the relative rate drift
generously — it exists to catch order-of-magnitude regressions (an
accidentally quadratic hot path), not 10% host jitter.  The
deterministic anchors, by contrast, should not move at all unless
behavior changed.

Workloads shard over :class:`~repro.experiments.runner.SweepRunner`
(rates are measured *inside* each worker, so pool width changes
wall-clock, not the measured rates).

Usage::

    python -m repro.obs.bench_core --out BENCH_core.json [--runs N]
        [--workloads a,b,c] [--workers W]
        [--against BENCH_core.json --max-drift-pct 75]
"""

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

from repro.core.config import LaserConfig
from repro.experiments.runner import (
    SweepRunner,
    run_laser_on,
    run_native,
    trimmed_mean,
)
from repro.experiments.tables import geomean
from repro.obs.bench import DEFAULT_BENCH_WORKLOADS
from repro.obs.profile import HostProfiler

__all__ = ["BENCH_CORE_SCHEMA", "collect_bench_core", "write_bench_core",
           "render_bench_core", "max_rate_drift_pct", "diff_bench_core"]

#: Bump on any backwards-incompatible change to the JSON layout.
#: v2: ``records_per_sec`` is detection-path throughput (records /
#: profiled drain+detection self time); the v1 whole-run rate moved to
#: ``records_per_wall_sec``; record-free workloads are excluded from
#: ``geomean_records_per_sec`` by their ``records_seen`` anchor.
BENCH_CORE_SCHEMA = "laser-core-bench/v2"

#: Seeds per workload.  Rates use the trimmed mean over per-seed rates
#: (drop min and max — the paper's averaging discipline), so 5 gives a
#: middle-3 average.
DEFAULT_CORE_RUNS = 5

#: The rate fields the CI drift gate thresholds.  ``base.get(field)``
#: guards make v1 baselines (no ``records_per_wall_sec``) comparable.
RATE_FIELDS = ("native_cycles_per_sec", "sim_cycles_per_sec",
               "records_per_sec", "records_per_wall_sec")

#: Detection-path profiler categories: the denominator of the v2
#: ``records_per_sec`` metric.
DETECTION_PATH_LABELS = ("pebs.drain", "detection")


def _bench_core_one(name: str, runs: int, scale: float) -> Dict:
    """Measure one workload's host-speed profile (runs in a worker)."""
    from repro.workloads.registry import get_workload

    workload = get_workload(name)
    native_rates: List[float] = []
    for seed in range(runs):
        t0 = time.perf_counter()
        result = run_native(workload, seed=seed, scale=scale)
        elapsed = time.perf_counter() - t0
        if elapsed > 0:
            native_rates.append(result.cycles / elapsed)

    sim_rates: List[float] = []
    record_rates: List[float] = []
    record_wall_rates: List[float] = []
    laser_cycles: List[float] = []
    records_seen = 0
    merged = HostProfiler()
    config = LaserConfig(profile_enabled=True)
    for seed in range(runs):
        t0 = time.perf_counter()
        result = run_laser_on(workload, seed=seed, scale=scale,
                              config=config)
        elapsed = time.perf_counter() - t0
        laser_cycles.append(float(result.cycles))
        seed_records = result.pipeline.stats.records_seen
        records_seen += seed_records
        if elapsed > 0:
            sim_rates.append(result.cycles / elapsed)
            record_wall_rates.append(seed_records / elapsed)
        if result.profile is not None:
            # Detection-path throughput: records over the host time
            # actually spent draining and detecting, measured per seed
            # (this run's fresh profiler, not the merged totals).
            path_ns = sum(result.profile.leaf_self_ns(label)
                          for label in DETECTION_PATH_LABELS)
            if seed_records and path_ns > 0:
                record_rates.append(seed_records / (path_ns / 1e9))
            merged.merge(result.profile)

    shares = merged.aggregate_shares()
    return {
        # Host-dependent rates (the scoreboard proper).
        "native_cycles_per_sec": round(trimmed_mean(native_rates), 1)
        if native_rates else 0.0,
        "sim_cycles_per_sec": round(trimmed_mean(sim_rates), 1)
        if sim_rates else 0.0,
        "records_per_sec": round(trimmed_mean(record_rates), 1)
        if record_rates else 0.0,
        "records_per_wall_sec": round(trimmed_mean(record_wall_rates), 1)
        if record_wall_rates else 0.0,
        # Host-dependent attribution (where the time goes).
        "self_time_shares": {
            label: round(share, 4) for label, share in sorted(shares.items())
        },
        # Seed-deterministic anchors (attribute rate moves to host
        # speed vs. behavior change).
        "laser_cycles": trimmed_mean(laser_cycles),
        "records_seen": records_seen,
    }


def collect_bench_core(workload_names: Optional[List[str]] = None,
                       runs: int = DEFAULT_CORE_RUNS, scale: float = 1.0,
                       workers: Optional[int] = None,
                       runner: Optional[SweepRunner] = None) -> Dict:
    """Measure the suite; returns the ``BENCH_core.json`` document.

    Pass ``runner`` to reuse a caller's :class:`SweepRunner` (its
    ``cost_summary`` then covers this sweep); otherwise one is built
    from ``workers``.
    """
    names = workload_names or DEFAULT_BENCH_WORKLOADS
    if runner is None:
        runner = SweepRunner(workers)
    cells = [(name, runs, scale) for name in names]
    measured = runner.starmap(_bench_core_one, cells)
    workloads: Dict[str, Dict] = dict(zip(names, measured))
    return {
        "schema": BENCH_CORE_SCHEMA,
        "config": {
            "runs": runs,
            "scale": scale,
            "seeds": list(range(runs)),
            "averaging": "trimmed mean over per-seed rates "
                         "(drop min and max)",
            "note": "rates are host-dependent; laser_cycles and "
                    "records_seen are seed-deterministic anchors; "
                    "records_per_sec is detection-path throughput "
                    "(records / profiled drain+detection self time), "
                    "records_per_wall_sec is the v1 whole-run rate",
        },
        "workloads": workloads,
        "geomean_sim_cycles_per_sec": geomean(
            [w["sim_cycles_per_sec"] for w in workloads.values()
             if w["sim_cycles_per_sec"]] or [0.0]),
        # Record-free workloads (records_seen == 0) have no detection
        # throughput to measure — excluded by the deterministic anchor,
        # not by rate truthiness, so a measured-but-tiny rate still
        # counts while "nothing to measure" never skews the geomean.
        "geomean_records_per_sec": geomean(
            [w["records_per_sec"] for w in workloads.values()
             if w["records_seen"]] or [0.0]),
        "geomean_records_per_wall_sec": geomean(
            [w["records_per_wall_sec"] for w in workloads.values()
             if w["records_seen"]] or [0.0]),
    }


def write_bench_core(path: str, bench: Optional[Dict] = None,
                     **collect_kwargs) -> Dict:
    """Collect (unless given) and write the scoreboard; returns it."""
    if bench is None:
        bench = collect_bench_core(**collect_kwargs)
    with open(path, "w") as fh:
        json.dump(bench, fh, sort_keys=True, indent=1)
        fh.write("\n")
    return bench


def render_bench_core(bench: Dict) -> str:
    """Human-readable scoreboard summary."""
    rows = ["%-20s %12s %12s %10s %10s  %s"
            % ("workload", "native cyc/s", "laser cyc/s", "recs/s",
               "recs/wall-s", "top self-time")]
    for name in sorted(bench["workloads"]):
        w = bench["workloads"][name]
        shares = w.get("self_time_shares", {})
        top = sorted(shares.items(), key=lambda kv: -kv[1])[:2]
        top_text = " ".join(
            "%s=%.0f%%" % (label, 100.0 * share) for label, share in top)
        rows.append(
            "%-20s %12.0f %12.0f %10.0f %10.0f  %s"
            % (name, w["native_cycles_per_sec"], w["sim_cycles_per_sec"],
               w["records_per_sec"], w.get("records_per_wall_sec", 0.0),
               top_text)
        )
    rows.append("geomean: %.0f sim cycles/s, %.0f records/s "
                "(detection path), %.0f records/wall-s"
                % (bench["geomean_sim_cycles_per_sec"],
                   bench["geomean_records_per_sec"],
                   bench.get("geomean_records_per_wall_sec", 0.0)))
    return "\n".join(rows)


def max_rate_drift_pct(old: Dict, new: Dict) -> float:
    """Largest relative rate *regression* (percent) vs a baseline.

    Scans the :data:`RATE_FIELDS` for every workload present in both
    snapshots and reports the worst percentage *drop* — the scoreboard
    is a speed floor, so getting faster is never a failure.  Rates are
    host-dependent (pool contention, runner hardware), so gate
    thresholds should stay generous: the gate exists to catch
    order-of-magnitude regressions (an accidentally quadratic hot
    path), not host jitter — an 85%% threshold tolerates the host being
    ~6x slower than the baseline machine and still fails a 10x
    regression.
    """
    worst = 0.0
    for name, entry in new.get("workloads", {}).items():
        base = old.get("workloads", {}).get(name)
        if base is None:
            continue
        for field in RATE_FIELDS:
            if base.get(field):
                drop = 100.0 * (base[field] - entry[field]) / base[field]
                worst = max(worst, drop)
    return worst


def diff_bench_core(old: Dict, new: Dict) -> str:
    """Rate and anchor drift between two scoreboards."""
    rows = []
    for name in sorted(new["workloads"]):
        entry = new["workloads"][name]
        base = old.get("workloads", {}).get(name)
        if base is None:
            rows.append("%-20s (not in baseline)" % name)
            continue
        for field in RATE_FIELDS:
            if base.get(field):
                delta = 100.0 * (entry[field] - base[field]) / base[field]
                if abs(delta) >= 1.0:
                    rows.append("%-20s %s: %.0f -> %.0f (%+.1f%%)"
                                % (name, field, base[field], entry[field],
                                   delta))
        # Deterministic anchors: any move here is a behavior change.
        for field in ("laser_cycles", "records_seen"):
            if entry.get(field) != base.get(field):
                rows.append("%-20s %s: %s -> %s (BEHAVIOR CHANGE)"
                            % (name, field, base.get(field),
                               entry.get(field)))
    if not rows:
        return "no rate drift >= 1% and no anchor drift vs baseline"
    return "\n".join(rows)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.bench_core",
        description="Write the BENCH_core.json speed scoreboard "
                    "(simulator cycles/sec, records/sec, per-service "
                    "self-time shares).",
    )
    parser.add_argument("--out", default="BENCH_core.json",
                        help="output path (default: %(default)s)")
    parser.add_argument("--runs", type=int, default=DEFAULT_CORE_RUNS,
                        help="seeds per workload (default: %(default)s)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale factor (default: %(default)s)")
    parser.add_argument("--workloads", default=None,
                        help="comma-separated workload names "
                             "(default: the bench suite)")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool width (default: host cores; "
                             "1 = serial)")
    parser.add_argument("--against", metavar="BASELINE",
                        help="also print rate drift vs a committed "
                             "baseline scoreboard")
    parser.add_argument("--max-drift-pct", type=float, default=None,
                        metavar="PCT",
                        help="with --against: exit 1 if any rate drifts "
                             "more than PCT%% from the baseline "
                             "(generous: rates are host-dependent)")
    args = parser.parse_args(argv)
    names = args.workloads.split(",") if args.workloads else None
    runner = SweepRunner(args.workers)
    bench = write_bench_core(args.out, workload_names=names,
                             runs=args.runs, scale=args.scale,
                             runner=runner)
    print(render_bench_core(bench))
    print(runner.cost_summary())
    print("wrote %s (%d workloads)" % (args.out, len(bench["workloads"])))
    if args.against:
        with open(args.against) as fh:
            baseline = json.load(fh)
        print("\n-- drift vs %s" % args.against)
        print(diff_bench_core(baseline, bench))
        if args.max_drift_pct is not None:
            worst = max_rate_drift_pct(baseline, bench)
            if worst > args.max_drift_pct:
                print("RATE DRIFT GATE FAILED: %.1f%% > %.1f%% allowed"
                      % (worst, args.max_drift_pct))
                return 1
            print("rate drift gate ok: %.1f%% <= %.1f%% allowed"
                  % (worst, args.max_drift_pct))
    elif args.max_drift_pct is not None:
        parser.error("--max-drift-pct requires --against")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
