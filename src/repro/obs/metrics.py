"""Windowed metrics: counters, gauges and histograms with snapshots.

The registry is the queryable side of observability: where the tracer
answers "what happened, in order", the registry answers "how much, per
window".  The LASER loop updates these metrics at every detector check
interval and snapshots the whole registry, producing a time series that
rides on ``LaserRunResult.telemetry``.

Everything is plain integer/float arithmetic on simulated quantities —
snapshots of the same seeded run are byte-identical when serialized
(keys sort, no wall-clock anywhere).
"""

import json
from typing import Dict, List, Optional, Sequence, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Default histogram bucket upper bounds, in "events per simulated
#: second" — tuned to the HITM-rate magnitudes of the workload suite
#: (thresholds live at 1K/4K per second).
DEFAULT_BUCKETS = (100.0, 1_000.0, 4_000.0, 16_000.0, 64_000.0, 256_000.0)


class Counter:
    """Monotonically increasing tally."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError("counter %s cannot decrease" % self.name)
        self.value += amount

    def snapshot(self) -> Union[int, float]:
        return self.value


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def snapshot(self) -> Union[int, float]:
        return self.value


class Histogram:
    """Fixed-bucket distribution (cumulative-style, like Prometheus).

    ``counts[i]`` tallies observations ``<= buckets[i]``; the final
    slot counts overflow beyond the last bound.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total",
                 "min_value", "max_value")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be sorted and non-empty")
        self.name = name
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.min_value: Optional[float] = None
        self.max_value: Optional[float] = None

    def observe(self, value: Union[int, float]) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min_value,
            "max": self.max_value,
            "buckets": {
                ("le_%g" % bound): self.counts[i]
                for i, bound in enumerate(self.buckets)
            },
            "overflow": self.counts[-1],
        }


class MetricsRegistry:
    """Name -> metric map with get-or-create accessors and snapshots."""

    def __init__(self):
        self._metrics: Dict[str, Union[Counter, Gauge, Histogram]] = {}

    def _get(self, name: str, cls, *args):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, *args)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                "metric %r already registered as %s"
                % (name, type(metric).__name__)
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get(name, Histogram, buckets)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def snapshot(self) -> Dict:
        """Point-in-time value of every registered metric."""
        return {
            name: self._metrics[name].snapshot()
            for name in sorted(self._metrics)
        }

    @staticmethod
    def snapshot_json(snapshot: Dict) -> str:
        """Canonical (byte-stable) serialization of one snapshot."""
        return json.dumps(snapshot, sort_keys=True, separators=(",", ":"))

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self):
        return len(self._metrics)
