"""Struct-of-arrays record batches (the ``[accel]`` record plane).

A :class:`RecordBatch` wraps one poll's worth of stripped records with
lazily materialized numpy columns (``pc``/``addr``/``core``/``cycle``/
``seq``/``weight``), so the batch-wise stages — the driver's timestamp
merge, journal dedup against the acked watermark, and the detection
pipeline's vectorized filter/aggregate/classify path — can run as a
handful of array kernels instead of a Python loop per record.

Columns are materialized **per column, on first use**: converting a
Python object field to an array element costs ~50ns, while gathering an
already-built column through a merge or dedup permutation costs ~2ns,
so each stage pays only for the columns it actually reads and the
permuting stages (:meth:`sorted_merge`, :meth:`dedup_after`) carry
built columns forward instead of letting a later stage rebuild them.

The batch is also a sequence of the original :class:`StrippedRecord`
objects, so every scalar consumer (trace emission, replay, the pure-
Python pipeline fallback) keeps working unchanged; the columns are a
*view* of the records, never a second source of truth.  Under the
``python`` engine no numpy type is ever touched and every method takes
the scalar path, which keeps numpy a genuinely optional dependency.

Bit-identity: both engines implement the same total orders (the
``(cycle, core, pc)`` merge is a stable sort in both) and the same
exact integer arithmetic, so which engine ran is observable only in
host wall-clock.
"""

from typing import Dict, Iterator, List, Optional

from repro.accel import get_numpy
from repro.pebs.events import StrippedRecord

__all__ = ["RecordBatch"]

#: Column builders: genexpr factory + whether the column is unsigned.
#: ``pc``/``addr`` are uint64 (kernel-half addresses exceed int64); the
#: bookkeeping columns are int64.  Direct-attribute genexprs measure
#: faster than ``map(attrgetter(...))`` and ``np.array(list-comp)``.
_COLUMN_BUILDERS = {
    "pc": (lambda recs: (r.pc for r in recs), True),
    "addr": (lambda recs: (r.data_addr for r in recs), True),
    "core": (lambda recs: (r.core for r in recs), False),
    "cycle": (lambda recs: (r.cycle for r in recs), False),
    "seq": (lambda recs: (r.seq for r in recs), False),
    "weight": (lambda recs: (r.weight for r in recs), False),
}

_COLUMN_ORDER = ("pc", "addr", "core", "cycle", "seq", "weight")


class RecordBatch:
    """One batch of stripped records plus their struct-of-arrays view."""

    __slots__ = ("records", "engine", "_cols")

    def __init__(self, records: List[StrippedRecord], engine: str = "python",
                 _cols: Optional[Dict] = None):
        self.records = records
        #: Resolved record-plane engine (``"numpy"`` or ``"python"``);
        #: decides whether column kernels or scalar loops run.
        self.engine = engine
        # name -> ndarray cache; permuting stages pre-seed it with
        # gathered columns so downstream stages skip the rebuild.
        self._cols: Dict = {} if _cols is None else _cols

    # ------------------------------------------------------------------
    # Sequence protocol (scalar consumers see a list of records)
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[StrippedRecord]:
        return iter(self.records)

    def __getitem__(self, index):
        return self.records[index]

    def __bool__(self) -> bool:
        return bool(self.records)

    # ------------------------------------------------------------------
    # Struct-of-arrays view
    # ------------------------------------------------------------------

    def col(self, name: str):
        """One column as an ndarray, built on first use then cached."""
        arr = self._cols.get(name)
        if arr is None:
            np = get_numpy()
            gen, unsigned = _COLUMN_BUILDERS[name]
            recs = self.records
            arr = np.fromiter(gen(recs),
                              np.uint64 if unsigned else np.int64,
                              count=len(recs))
            self._cols[name] = arr
        return arr

    def columns(self):
        """The full SoA view: ``(pc, addr, core, cycle, seq, weight)``."""
        return tuple(self.col(name) for name in _COLUMN_ORDER)

    # ------------------------------------------------------------------
    # Batch-wise stages
    # ------------------------------------------------------------------

    def sorted_merge(self) -> "RecordBatch":
        """The driver's detector-facing merge order: ``(cycle, core, pc)``.

        Stable under both engines, so records with equal keys keep their
        buffer-drain order and the merged sequence is engine-invariant.
        The merged batch inherits every already-built column via an
        array gather.
        """
        recs = self.records
        if self.engine == "numpy" and len(recs) >= 2:
            np = get_numpy()
            order = np.lexsort((self.col("pc"), self.col("core"),
                                self.col("cycle")))
            gathered = {name: arr[order]
                        for name, arr in self._cols.items()}
            return RecordBatch([recs[i] for i in order], self.engine,
                               _cols=gathered)
        out = list(recs)
        out.sort(key=lambda r: (r.cycle, r.core, r.pc))
        return RecordBatch(out, self.engine)

    def dedup_after(self, acked_seq: int):
        """Split into ``(fresh_batch, duplicate_count)`` at the watermark.

        Mirrors :meth:`repro.resilience.journal.RecordJournal.dedup`:
        a record whose seqno is at or below ``acked_seq`` was already
        applied and must be dropped.  The common case — nothing below
        the watermark — returns ``self`` without copying; the drop path
        carries built columns forward through the same mask.
        """
        if self.engine == "numpy" and len(self.records) >= 2:
            np = get_numpy()
            fresh_mask = self.col("seq") > acked_seq
            kept = int(fresh_mask.sum())
            if kept == len(self.records):
                return self, 0
            idx = np.nonzero(fresh_mask)[0]
            gathered = {name: arr[idx] for name, arr in self._cols.items()}
            fresh = RecordBatch([self.records[i] for i in idx], self.engine,
                                _cols=gathered)
            return fresh, len(self.records) - kept
        fresh_list = [r for r in self.records if r.seq > acked_seq]
        if len(fresh_list) == len(self.records):
            return self, 0
        return (RecordBatch(fresh_list, self.engine),
                len(self.records) - len(fresh_list))

    def max_seq(self) -> int:
        """Highest journal seqno in the batch (0 when empty)."""
        if not self.records:
            return 0
        if self.engine == "numpy" and len(self.records) >= 2:
            return int(self.col("seq").max())
        return max(r.seq for r in self.records)

    def first_cycle(self) -> int:
        """TSC of the first (oldest, post-merge) record in the batch."""
        return self.records[0].cycle

    def __repr__(self):
        return "<RecordBatch %d records engine=%s>" % (
            len(self.records), self.engine,
        )
