"""Performance monitoring unit: HITM counting + PEBS sampling.

The PMU is installed as the machine's ``on_hitm`` hook.  It counts HITM
events per core (the pre-Haswell capability) and, when PEBS is enabled,
materializes a record for every SAV-th event per core — setting the
Sample-After Value to ``n`` means "every nth event is sampled"
(Section 3).  Record materialization is a microcode assist charged to
the triggering core; that cost is the hook's return value and becomes
application slowdown.

Records pass through the imprecision model before landing in the
driver's per-core buffers.
"""

from typing import List

from repro._constants import NUM_CORES, PEBS_RECORD_COST
from repro.obs.trace import NULL_TRACER
from repro.pebs.events import PebsRecord
from repro.pebs.imprecision import ImprecisionModel

__all__ = ["PerformanceMonitoringUnit"]


class PerformanceMonitoringUnit:
    """Per-core HITM counters plus PEBS record generation."""

    def __init__(
        self,
        imprecision: ImprecisionModel,
        driver=None,
        sample_after_value: int = 19,
        num_cores: int = NUM_CORES,
        record_cost: int = PEBS_RECORD_COST,
        pebs_enabled: bool = True,
        injector=None,
        tracer=None,
    ):
        if sample_after_value < 1:
            raise ValueError("SAV must be >= 1")
        self.imprecision = imprecision
        self.driver = driver
        self.sample_after_value = sample_after_value
        self.num_cores = num_cores
        self.record_cost = record_cost
        self.pebs_enabled = pebs_enabled
        #: Optional :class:`repro.faults.FaultInjector`; hosts the
        #: ``pebs.record_drop`` and ``pebs.record_corrupt`` sites.
        self.injector = injector
        #: Event tracer (``repro.obs.trace``); emits ``pebs.sample``
        #: whenever the microcode assist materializes a record.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.hitm_counts: List[int] = [0] * num_cores
        self.records_generated = 0

    # ------------------------------------------------------------------
    # Machine hook
    # ------------------------------------------------------------------

    def on_hitm(self, core: int, inst, addr: int, is_write: bool,
                cycle: int) -> int:
        """Machine ``on_hitm`` hook; returns stall cycles for the core."""
        self.hitm_counts[core] += 1
        if not self.pebs_enabled:
            return 0
        if self.hitm_counts[core] % self.sample_after_value != 0:
            return 0
        recorded_pc, recorded_addr = self.imprecision.distort(
            inst.pc, addr, store_triggered=is_write
        )
        record = PebsRecord(
            pc=recorded_pc,
            data_addr=recorded_addr,
            core=core,
            cycle=cycle,
            store_triggered=is_write,
        )
        self.records_generated += 1
        if self.tracer.enabled:
            self.tracer.emit(
                "pebs.sample", cycle, core=core, pc=record.pc,
                data_addr=record.data_addr, store=is_write,
            )
        extra = self.record_cost
        if self.injector is not None:
            if self.injector.fires("pebs.record_drop"):
                # The microcode assist still ran; the record is lost on
                # its way to the per-core buffer.
                return extra
            if self.injector.fires("pebs.record_corrupt"):
                rng = self.injector.rng("pebs.record_corrupt")
                record.pc = rng.getrandbits(40)
                record.data_addr = rng.getrandbits(40)
        if self.driver is not None:
            extra += self.driver.deliver(record)
        return extra

    @property
    def total_hitm_count(self) -> int:
        return sum(self.hitm_counts)
