"""Performance monitoring unit: HITM counting + PEBS sampling.

The PMU is installed as the machine's ``on_hitm`` hook.  It counts HITM
events per core (the pre-Haswell capability) and, when PEBS is enabled,
materializes a record for every SAV-th event per core — setting the
Sample-After Value to ``n`` means "every nth event is sampled"
(Section 3).  Record materialization is a microcode assist charged to
the triggering core; that cost is the hook's return value and becomes
application slowdown.

Records pass through the imprecision model before landing in the
driver's per-core buffers.

Two knobs here belong to the overload controller (:mod:`repro.control`):
``sample_after_value`` may be raised mid-run to throttle record flow at
the source, and ``sample_weight`` stamps each record with the SAV
multiplier so downstream rate estimates stay unbiased.

The ``load.burst`` fault site also lives here: a counter misfire storm
that materializes batches of garbage-PC records at the *current* SAV.
Storm records are counted against a separate synthetic event counter —
the real per-core HITM counters and their sampling phase are never
perturbed, so the genuine record stream is identical with or without
the storm.  Storm records charge no microcode-assist cycles (a phantom
counter event never ran an assist for real work) but they do fill
driver buffers, so their interrupt cost — and the admission budget that
sheds them — is real.
"""

from typing import List

from repro._constants import NUM_CORES, PEBS_RECORD_COST
from repro.obs.trace import NULL_TRACER
from repro.pebs.events import PebsRecord
from repro.pebs.imprecision import ImprecisionModel

__all__ = ["PerformanceMonitoringUnit", "BURST_EVENTS_PER_FIRE"]

#: Synthetic counter events added per ``load.burst`` fire.  The site is
#: consulted once per real HITM event, so a storm with firing
#: probability ``p`` multiplies the record rate by roughly
#: ``1 + p * BURST_EVENTS_PER_FIRE`` while it lasts.
BURST_EVENTS_PER_FIRE = 16

#: Storm records carry PCs from far above any mapped region, so the
#: detector's memory-map filter classifies them as garbage (Section 3.1
#: imprecision at adversarial rates) rather than app samples.
_BURST_PC_BASE = 1 << 44


class PerformanceMonitoringUnit:
    """Per-core HITM counters plus PEBS record generation."""

    def __init__(
        self,
        imprecision: ImprecisionModel,
        driver=None,
        sample_after_value: int = 19,
        num_cores: int = NUM_CORES,
        record_cost: int = PEBS_RECORD_COST,
        pebs_enabled: bool = True,
        injector=None,
        tracer=None,
    ):
        if sample_after_value < 1:
            raise ValueError("SAV must be >= 1")
        self.imprecision = imprecision
        self.driver = driver
        self.sample_after_value = sample_after_value
        #: Base-SAV multiple each sampled record stands for; the
        #: overload controller keeps this equal to the SAV multiplier
        #: it applied, and it is 1 whenever the controller is off.
        self.sample_weight = 1
        self.num_cores = num_cores
        self.record_cost = record_cost
        self.pebs_enabled = pebs_enabled
        #: Optional :class:`repro.faults.FaultInjector`; hosts the
        #: ``pebs.record_drop``, ``pebs.record_corrupt`` and
        #: ``load.burst`` sites.
        self.injector = injector
        #: Event tracer (``repro.obs.trace``); emits ``pebs.sample``
        #: whenever the microcode assist materializes a record.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.hitm_counts: List[int] = [0] * num_cores
        self.records_generated = 0
        #: Synthetic ``load.burst`` accounting, separate from the real
        #: counters so storms never shift the genuine sampling phase.
        self.burst_events = 0
        self.burst_records = 0

    # ------------------------------------------------------------------
    # Machine hook
    # ------------------------------------------------------------------

    def on_hitm(self, core: int, inst, addr: int, is_write: bool,
                cycle: int) -> int:
        """Machine ``on_hitm`` hook; returns stall cycles for the core."""
        self.hitm_counts[core] += 1
        if not self.pebs_enabled:
            return 0
        extra = 0
        if self.hitm_counts[core] % self.sample_after_value == 0:
            extra = self._sample(core, inst, addr, is_write, cycle)
        if self.injector is not None and self.injector.fires("load.burst"):
            extra += self._burst_storm(core, cycle)
        return extra

    def _sample(self, core: int, inst, addr: int, is_write: bool,
                cycle: int) -> int:
        """The SAV-th event: materialize one record (microcode assist)."""
        recorded_pc, recorded_addr = self.imprecision.distort(
            inst.pc, addr, store_triggered=is_write
        )
        record = PebsRecord(
            pc=recorded_pc,
            data_addr=recorded_addr,
            core=core,
            cycle=cycle,
            store_triggered=is_write,
            weight=self.sample_weight,
        )
        self.records_generated += 1
        if self.tracer.enabled:
            self.tracer.emit(
                "pebs.sample", cycle, core=core, pc=record.pc,
                data_addr=record.data_addr, store=is_write,
            )
        extra = self.record_cost
        if self.injector is not None:
            if self.injector.fires("pebs.record_drop"):
                # The microcode assist still ran; the record is lost on
                # its way to the per-core buffer.
                return extra
            if self.injector.fires("pebs.record_corrupt"):
                rng = self.injector.rng("pebs.record_corrupt")
                record.pc = rng.getrandbits(40)
                record.data_addr = rng.getrandbits(40)
        if self.driver is not None:
            extra += self.driver.deliver(record)
        return extra

    def _burst_storm(self, core: int, cycle: int) -> int:
        """One ``load.burst`` fire: a batch of phantom counter events.

        Sampled at the *current* SAV — which is exactly what closes the
        control loop: raising the SAV throttles the storm at its source.
        """
        rng = self.injector.rng("load.burst")
        extra = 0
        for _ in range(BURST_EVENTS_PER_FIRE):
            self.burst_events += 1
            if self.burst_events % self.sample_after_value != 0:
                continue
            record = PebsRecord(
                pc=_BURST_PC_BASE | rng.getrandbits(32),
                data_addr=rng.getrandbits(40),
                core=core,
                cycle=cycle,
                store_triggered=False,
            )
            self.records_generated += 1
            self.burst_records += 1
            if self.driver is not None:
                extra += self.driver.deliver(record)
        return extra

    @property
    def total_hitm_count(self) -> int:
        return sum(self.hitm_counts)
