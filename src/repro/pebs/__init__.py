"""PEBS performance-monitoring substrate.

Models the Haswell PMU facilities LASER depends on (Section 3): per-core
HITM event counters, Precise Event-Based Sampling with a Sample-After
Value, the PEBS record format, and — crucially — the *imprecision* of
HITM records that Section 3.1 characterizes, without which LASERDETECT's
filtering pipeline would have nothing to do.
"""

from repro.pebs.events import PebsRecord, StrippedRecord
from repro.pebs.imprecision import ImprecisionModel, ImprecisionParams
from repro.pebs.pmu import PerformanceMonitoringUnit
from repro.pebs.driver import KernelDriver

__all__ = [
    "PebsRecord",
    "StrippedRecord",
    "ImprecisionModel",
    "ImprecisionParams",
    "PerformanceMonitoringUnit",
    "KernelDriver",
]
