"""The LASER kernel driver model.

Per Section 6: "The driver configures the chip's performance monitoring
unit to record HITM events into per-core memory buffers.  The driver
receives an interrupt whenever a per-core buffer is full, and empties
the buffer by moving the records to an internal buffer that feeds into a
kernel file-like device.  The driver removes irrelevant information from
the HITM records ... and sends only the PC, data address, and
originating core to the detector."

The interrupt cost is charged to the core whose buffer filled; total
driver CPU time is tracked separately for the Figure 12 breakdown.

The internal buffer (the *outbox*) is bounded: a kernel driver cannot
let a stalled reader grow an allocation without limit, so when the
outbox is full the driver drops the freshly drained records and counts
them in ``records_dropped`` — the detector observes the loss through
the count, never through a crash.

Crash recoverability (``repro.resilience``): when the driver is given a
:class:`~repro.resilience.journal.RecordJournal`, every record is
journaled — as a stripped copy, stamped with a sequence number — at
``deliver`` time, the moment the PMU hands it over.  The per-core
buffers and the outbox are *volatile*: ``crash_reset`` wipes them (a
driver crash loses exactly that state), and the journal is what heals
the wipe.  A driver whose restart budget is exhausted is ``halted`` and
drops deliveries with accounting instead of crashing the run.

Admission control (``repro.control``): the overload controller may set
a per-interval record budget via :meth:`set_admission`.  A record
arriving after the interval's budget is exhausted is *shed* — counted
in ``records_shed`` and discarded before it is journaled or buffered,
so a storm can never grow the journal, the buffers or the outbox past
what the budget allows, and crash replay never resurrects a shed
record.  ``admission_budget`` is ``None`` (unlimited) unless the
controller escalates, so controller-off runs take one predictable
branch here and stay bit-identical.
"""

from typing import List

from repro._constants import (
    DRIVER_INTERRUPT_COST,
    DRIVER_OUTBOX_CAPACITY,
    NUM_CORES,
    PEBS_BUFFER_RECORDS,
)
from repro.obs.profile import NULL_PROFILER
from repro.obs.trace import NULL_TRACER
from repro.pebs.batch import RecordBatch
from repro.pebs.events import PebsRecord, StrippedRecord

__all__ = ["KernelDriver"]

#: Outbox size below which the numpy merge is not worth the column
#: build; the scalar sort wins on tiny batches and both orders are
#: identical, so the cutover is invisible.
_MERGE_BATCH_MIN = 32


class KernelDriver:
    """Per-core PEBS buffers draining into a bounded detector queue."""

    def __init__(self, num_cores: int = NUM_CORES,
                 buffer_records: int = PEBS_BUFFER_RECORDS,
                 interrupt_cost: int = DRIVER_INTERRUPT_COST,
                 outbox_capacity: int = DRIVER_OUTBOX_CAPACITY,
                 injector=None, tracer=None, journal=None,
                 profiler=None, engine: str = "python"):
        self.num_cores = num_cores
        #: Resolved record-plane engine (``"numpy"``/``"python"``); the
        #: system runner passes :func:`repro.accel.resolve_engine`'s
        #: choice, direct constructions default to the scalar plane.
        self.engine = engine
        self.buffer_records = buffer_records
        self.interrupt_cost = interrupt_cost
        self.outbox_capacity = outbox_capacity
        #: Optional :class:`repro.faults.FaultInjector`; hosts the
        #: ``driver.outbox_overflow`` site.
        self.injector = injector
        #: Event tracer (``repro.obs.trace``); emits ``driver.drain``
        #: per buffer drain and ``driver.outbox_drop`` on overflow.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Host-time profiler; charges the full-drain path (the bulk of
        #: the driver's host cost) to ``pebs.drain``.  The per-record
        #: ``deliver`` hot path is intentionally unprofiled — a clock
        #: read per record would cost more than the thing measured.
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        #: Optional write-ahead :class:`RecordJournal`; when present,
        #: every delivered record is journaled before it touches any
        #: volatile buffer.
        self.journal = journal
        #: Set by the supervisor when the driver's restart budget is
        #: exhausted: a halted driver drops deliveries with accounting.
        self.halted = False
        #: Records the driver may admit in the current check interval;
        #: ``None`` = unlimited (the controller-off fast path).
        self.admission_budget = None
        self._admitted_in_interval = 0
        self._core_buffers: List[List[PebsRecord]] = [[] for _ in range(num_cores)]
        self._outbox: List[StrippedRecord] = []
        self.interrupts = 0
        self.driver_cycles = 0
        self.records_forwarded = 0
        self.records_dropped = 0
        self.records_shed = 0

    # ------------------------------------------------------------------
    # PMU-facing side
    # ------------------------------------------------------------------

    def deliver(self, record: PebsRecord) -> int:
        """Accept a record from the PMU; returns interrupt cost if any."""
        if self.halted:
            self.records_dropped += 1
            return 0
        if self.admission_budget is not None:
            # Admission control: shed *before* the journal write, so a
            # shed record leaves no durable trace to replay, and before
            # the buffers, so it costs no interrupt either.
            if self._admitted_in_interval >= self.admission_budget:
                self.records_shed += 1
                return 0
            self._admitted_in_interval += 1
        if self.journal is not None:
            # Journal the stripped form first (write-ahead: durable
            # before volatile), then stamp the raw record so the copy
            # later drained to the outbox carries the same seqno.
            stripped = StrippedRecord.from_pebs(record)
            record.seq = self.journal.append(stripped)
        buffer = self._core_buffers[record.core]
        buffer.append(record)
        if len(buffer) < self.buffer_records:
            return 0
        self._drain_core(record.core)
        self.interrupts += 1
        self.driver_cycles += self.interrupt_cost
        return self.interrupt_cost

    def _drain_core(self, core: int) -> None:
        buffer = self._core_buffers[core]
        if not buffer:
            return
        overflow = (self.injector is not None
                    and self.injector.fires("driver.outbox_overflow"))
        dropped_before = self.records_dropped
        for rec in buffer:
            if overflow or len(self._outbox) >= self.outbox_capacity:
                self.records_dropped += 1
            else:
                self._outbox.append(StrippedRecord.from_pebs(rec))
                self.records_forwarded += 1
        if self.tracer.enabled:
            # The drain happens at the interrupt that the last-delivered
            # record raised; its TSC is the drain's timestamp.
            cycle = buffer[-1].cycle
            dropped = self.records_dropped - dropped_before
            self.tracer.emit("driver.drain", cycle, core=core,
                             drained=len(buffer), dropped=dropped,
                             outbox=len(self._outbox))
            if dropped:
                self.tracer.emit("driver.outbox_drop", cycle, core=core,
                                 dropped=dropped,
                                 capacity=self.outbox_capacity)
        buffer.clear()

    # ------------------------------------------------------------------
    # Detector-facing side (the kernel file-like device)
    # ------------------------------------------------------------------

    def read_records(self) -> List[StrippedRecord]:
        """Drain the outbox (the detector's read() on the device).

        Records are merged across cores in timestamp order (Haswell PEBS
        records carry a TSC field): without the merge, each interrupt
        would deliver a burst of same-core records, and the detector's
        cache line model would see artificial same-address runs.
        Same-TSC records from different cores are tie-broken by
        (core, pc) so the merge order is a property of the records, not
        of buffer-drain order.
        """
        return self._read_batch().records

    def read_batch(self) -> RecordBatch:
        """:meth:`read_records`, kept as a struct-of-arrays batch."""
        return self._read_batch()

    def _read_batch(self) -> RecordBatch:
        out = self._outbox
        self._outbox = []
        if self.engine == "numpy" and len(out) >= _MERGE_BATCH_MIN:
            # The merge builds the (cycle, core, pc) columns; the batch
            # carries them forward so dedup and the pipeline gather
            # instead of rebuilding.
            return RecordBatch(out, self.engine).sorted_merge()
        out.sort(key=lambda record: (record.cycle, record.core, record.pc))
        return RecordBatch(out, self.engine)

    def flush_all(self) -> List[StrippedRecord]:
        """Final drain at application exit: empty every core buffer too."""
        return self.flush_batch().records

    def flush_batch(self) -> RecordBatch:
        """Full drain, kept as a struct-of-arrays batch.

        This is the detector poll's read: the batch flows on through
        journal dedup and the vectorized pipeline without being torn
        back into per-record Python objects.
        """
        profiler = self.profiler
        if not profiler.enabled:
            return self._flush_batch()
        profiler.begin("pebs.drain")
        try:
            return self._flush_batch()
        finally:
            profiler.end()

    def _flush_batch(self) -> RecordBatch:
        for core in range(self.num_cores):
            self._drain_core(core)
        return self._read_batch()

    @property
    def pending_records(self) -> int:
        return len(self._outbox) + sum(len(b) for b in self._core_buffers)

    # ------------------------------------------------------------------
    # Admission control (``repro.control``)
    # ------------------------------------------------------------------

    def set_admission(self, budget) -> None:
        """Set the next interval's record budget and reset its meter.

        Called by the control service once per check interval: with a
        budget of ``None`` admission is unlimited, ``0`` sheds every
        delivery (passthrough).  Resetting the meter here — rather than
        on a clock the driver would need to own — keeps the budget
        boundary aligned with the detector's poll slice.
        """
        if budget is not None and budget < 0:
            raise ValueError("admission budget must be >= 0 or None")
        self.admission_budget = budget
        self._admitted_in_interval = 0

    # ------------------------------------------------------------------
    # Crash model (``repro.resilience``)
    # ------------------------------------------------------------------

    def crash_reset(self) -> int:
        """A driver crash: every volatile buffer is wiped.

        Returns the number of records lost from volatile state.  They
        are *not* counted in ``records_dropped`` — when a journal is
        attached each of them was journaled at delivery, so replay
        recovers them; without a journal the caller owns the accounting.
        """
        wiped = len(self._outbox)
        self._outbox = []
        for buffer in self._core_buffers:
            wiped += len(buffer)
            buffer.clear()
        return wiped
