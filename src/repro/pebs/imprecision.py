"""The Haswell HITM-record imprecision model.

Section 3.1 characterizes (with >160 assembly test cases) how accurate
the PC and data address in a Haswell HITM record actually are:

* **Load-triggered** events (read of a remotely-Modified line,
  Figure 1a) are fairly precise: ~75% of data addresses are correct; PCs
  are exact ~40% of the time and within one adjacent instruction ~70% of
  the time.
* **Store-triggered** events (Figure 1c) still produce records ("total
  event counts are very similar") but are *highly* inaccurate, "likely
  due to the delayed completion of stores in the presence of store
  buffers": exact PCs are rare, adjacent PCs reach ~34%.
* Over 99% of incorrect PCs still land somewhere in the program binary;
  95% of incorrect data addresses come from unmapped address space, the
  rest from the stack or the kernel.

This module reproduces those statistics.  Per-PC deterministic jitter
(derived from a seeded hash of the PC) modulates the base probabilities
so that individual test cases spread around the mean, as the scatter in
Figure 3 shows, while remaining exactly reproducible.
"""

import random
from typing import Tuple

from repro.isa.program import PC_STRIDE
from repro.rng import derive_seed
from repro.sim.vmmap import KERNEL_BASE, STACK_SIZE, STACK_TOP

__all__ = ["ImprecisionParams", "ImprecisionModel"]


class ImprecisionParams:
    """Base accuracy probabilities, before per-PC jitter."""

    def __init__(
        self,
        load_addr_correct: float = 0.75,
        load_pc_exact: float = 0.42,
        load_pc_adjacent: float = 0.30,
        store_addr_correct: float = 0.10,
        store_pc_exact: float = 0.05,
        store_pc_adjacent: float = 0.29,
        wrong_pc_in_binary: float = 0.99,
        wrong_addr_unmapped: float = 0.95,
        per_pc_jitter: float = 0.15,
    ):
        self.load_addr_correct = load_addr_correct
        self.load_pc_exact = load_pc_exact
        self.load_pc_adjacent = load_pc_adjacent
        self.store_addr_correct = store_addr_correct
        self.store_pc_exact = store_pc_exact
        self.store_pc_adjacent = store_pc_adjacent
        self.wrong_pc_in_binary = wrong_pc_in_binary
        self.wrong_addr_unmapped = wrong_addr_unmapped
        self.per_pc_jitter = per_pc_jitter


#: A synthetic "unmapped" address range used for garbage data addresses.
UNMAPPED_BASE = 0x0000_5000_0000_0000
UNMAPPED_SPAN = 0x0000_0FFF_0000_0000


class ImprecisionModel:
    """Distorts ground-truth (pc, addr) pairs the way Haswell does."""

    def __init__(self, code_base: int, code_end: int,
                 params: ImprecisionParams = None, seed: int = 0):
        self.code_base = code_base
        self.code_end = code_end
        self.params = params or ImprecisionParams()
        self._rng = random.Random(derive_seed(seed, "pebs-imprecision"))
        self._pc_bias = {}

    # ------------------------------------------------------------------
    # Per-PC jitter: a deterministic bias in [-j, +j] per program counter
    # ------------------------------------------------------------------

    def _bias(self, pc: int) -> float:
        bias = self._pc_bias.get(pc)
        if bias is None:
            j = self.params.per_pc_jitter
            local = random.Random(derive_seed(pc, "pc-bias"))
            bias = local.uniform(-j, j)
            self._pc_bias[pc] = bias
        return bias

    @staticmethod
    def _clamp(p: float) -> float:
        return min(1.0, max(0.0, p))

    # ------------------------------------------------------------------
    # Distortion
    # ------------------------------------------------------------------

    def distort(self, pc: int, data_addr: int, store_triggered: bool) -> Tuple[int, int]:
        """Return the (recorded_pc, recorded_addr) for a HITM event."""
        p = self.params
        bias = self._bias(pc)
        if store_triggered:
            p_addr = self._clamp(p.store_addr_correct + bias * 0.3)
            p_exact = self._clamp(p.store_pc_exact + bias * 0.3)
            p_adj = p.store_pc_adjacent
        else:
            p_addr = self._clamp(p.load_addr_correct + bias)
            p_exact = self._clamp(p.load_pc_exact + bias)
            p_adj = p.load_pc_adjacent

        rng = self._rng
        recorded_pc = self._distort_pc(pc, p_exact, p_adj, rng)
        recorded_addr = self._distort_addr(data_addr, p_addr, rng)
        return recorded_pc, recorded_addr

    def _distort_pc(self, pc: int, p_exact: float, p_adj: float,
                    rng: random.Random) -> int:
        draw = rng.random()
        if draw < p_exact:
            return pc
        if draw < p_exact + p_adj:
            # Skid to the subsequent instruction (pre-Haswell-style skid,
            # reduced to one instruction on Haswell).
            adjacent = pc + PC_STRIDE
            if adjacent >= self.code_end:
                adjacent = pc - PC_STRIDE
            return adjacent
        if rng.random() < self.params.wrong_pc_in_binary:
            # Somewhere else in the program's binary.
            span = (self.code_end - self.code_base) // PC_STRIDE
            return self.code_base + rng.randrange(span) * PC_STRIDE
        # Entirely outside the binary.
        return KERNEL_BASE + rng.randrange(0x10000) * PC_STRIDE

    def _distort_addr(self, addr: int, p_correct: float,
                      rng: random.Random) -> int:
        if rng.random() < p_correct:
            return addr
        if rng.random() < self.params.wrong_addr_unmapped:
            return UNMAPPED_BASE + rng.randrange(UNMAPPED_SPAN)
        if rng.random() < 0.5:
            # A stack address.
            return STACK_TOP - rng.randrange(STACK_SIZE)
        # A kernel address.
        return KERNEL_BASE + rng.randrange(0x100000)

    # ------------------------------------------------------------------
    # Ground-truth helpers (used by the Figure 3 characterization)
    # ------------------------------------------------------------------

    @staticmethod
    def classify_pc(recorded_pc: int, true_pc: int) -> str:
        """'exact', 'adjacent' or 'wrong' relative to the true PC."""
        if recorded_pc == true_pc:
            return "exact"
        if abs(recorded_pc - true_pc) == PC_STRIDE:
            return "adjacent"
        return "wrong"
