"""PEBS record formats.

A raw :class:`PebsRecord` carries the full processor context the
hardware dumps into the PEBS buffer (we model the register file as an
opaque payload).  The kernel driver strips records down to
:class:`StrippedRecord` — "only the PC, data address, and originating
core" (Section 6) — before they reach the userspace detector.

Both record classes carry a ``seq`` slot: the write-ahead journal
(:mod:`repro.resilience.journal`) stamps each stripped record with a
monotone sequence number at the driver boundary, and the stripped copy
forwarded to the detector inherits it so duplicate delivery after a
crash can be detected against the acked watermark.  ``seq == 0`` means
"never journaled" (resilience disabled).

They also carry a ``weight``: how many base-SAV records this record
stands for.  The overload controller (:mod:`repro.control`) raises the
SAV under load; records sampled at the elevated SAV are stamped with
the SAV multiplier so the detection pipeline's rate estimates stay
unbiased.  ``weight == 1`` always, outside controller throttling.
"""

__all__ = ["PebsRecord", "StrippedRecord", "XSNP_HITM_EVENT"]

#: Name of the precise load-HITM event introduced with Haswell.
XSNP_HITM_EVENT = "MEM_LOAD_UOPS_LLC_HIT_RETIRED.XSNP_HITM"


class PebsRecord:
    """A full PEBS record as produced by the (simulated) hardware."""

    __slots__ = ("pc", "data_addr", "core", "cycle", "store_triggered",
                 "register_file", "seq", "weight")

    def __init__(self, pc: int, data_addr: int, core: int, cycle: int,
                 store_triggered: bool, register_file=None, seq: int = 0,
                 weight: int = 1):
        self.pc = pc
        self.data_addr = data_addr
        self.core = core
        self.cycle = cycle
        self.seq = seq
        self.weight = weight
        #: Whether the triggering access was a store (Figure 1c).  The
        #: real record does not expose this; it exists for ground-truth
        #: instrumentation in the characterization experiments and MUST
        #: NOT be consulted by the detector.
        self.store_triggered = store_triggered
        self.register_file = register_file

    def __repr__(self):
        return "<PebsRecord pc=%#x addr=%#x core=%d cyc=%d>" % (
            self.pc, self.data_addr, self.core, self.cycle,
        )


class StrippedRecord:
    """What the driver forwards to the detector: PC, address, core, time."""

    __slots__ = ("pc", "data_addr", "core", "cycle", "seq", "weight")

    def __init__(self, pc: int, data_addr: int, core: int, cycle: int,
                 seq: int = 0, weight: int = 1):
        self.pc = pc
        self.data_addr = data_addr
        self.core = core
        self.cycle = cycle
        self.seq = seq
        self.weight = weight

    @classmethod
    def from_pebs(cls, record: PebsRecord) -> "StrippedRecord":
        return cls(record.pc, record.data_addr, record.core, record.cycle,
                   seq=record.seq, weight=record.weight)

    def __repr__(self):
        return "<Record pc=%#x addr=%#x core=%d cyc=%d>" % (
            self.pc, self.data_addr, self.core, self.cycle,
        )
