"""Static data-race certification: the sharing certificate.

``certify_program`` classifies every statically-shared cache line of a
program into a four-point lattice, ordered by severity::

    RACE  >  SYNC_TRUE_SHARING  >  FALSE_SHARING  >  THREAD_LOCAL

A cross-thread pair of accesses with at least one write is examined per
cache line (the same access universe the sharing predictor uses, via
``predict.collect_line_accesses``):

* **overlapping bytes** — a potential race, unless some synchronization
  argument discharges it: the pair is ordered by a happens-before edge
  (``mhp.py``), protected by a common must-held lock (``lockset.py``),
  made of two atomic RMWs (``cmpxchg``/``xadd`` — x86 ``lock``-prefixed
  instructions), confined to a recognized synchronization word (a lock,
  flag or barrier word — that traffic *is* the synchronization), or
  made of two SSB pseudo-ops (LASERREPAIR serializes those through HTM
  regions).  A discharged overlapping pair is *synchronized true
  sharing*; an undischarged one is a **race**.
* **disjoint bytes** — false sharing: never a data race (no byte is
  contested), whatever the synchronization.

Lines with cross-thread accesses but no write-bearing pair, and lines
touched by one thread only, sit at the lattice bottom — "thread-local"
here is shorthand for *thread-local or read-only*.

The result is a :class:`SharingCertificate`: serializable, deterministic
for a given built workload, carrying per-(pc, line) evidence for every
verdict.  The runtime consults it in two places (both opt-in via
``LaserConfig``): the repair service refuses to SSB-rewrite source
locations certified ``RACE`` (repairing a racy line would paper over a
correctness bug), and the detector's record filter can prioritize
certificate-flagged lines.

Like every must-analysis here, the certifier is conservative toward
``RACE``: happens-before edges it cannot prove are simply absent, so
benign idioms it does not recognize (e.g. an intentionally-racy
"modified" flag updated with a plain ``addm``) certify as races.  That
asymmetry is the point of the quarantine gate — refusing to repair a
line that might be racy is safe; the converse is not.
"""

import enum
import json
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from repro._constants import CACHE_LINE_SIZE
from repro.isa.instructions import Opcode
from repro.isa.program import Program, SourceLocation
from repro.static.mhp import MhpAnalysis, analyze_mhp

if TYPE_CHECKING:  # pragma: no cover
    from repro.static.predict import StaticAccess

__all__ = [
    "LineVerdict",
    "PairEvidence",
    "LineCertificate",
    "SharingCertificate",
    "certify_program",
    "certify_built",
]

#: Atomic RMW opcodes (x86 ``lock`` prefix); ``ADDM`` is deliberately
#: absent — it is the *un-locked* memory-destination add, and two of
#: them on the same word race.
_ATOMIC_OPS = frozenset({Opcode.CMPXCHG, Opcode.XADD})

_SSB_OPS = frozenset({Opcode.SSB_LOAD, Opcode.SSB_STORE, Opcode.SSB_ADDM})

#: Evidence pairs retained per cache line (deterministic prefix).
MAX_EVIDENCE_PAIRS = 8


class LineVerdict(enum.Enum):
    """The certification lattice, ordered by severity."""

    THREAD_LOCAL = "THREAD_LOCAL"
    FALSE_SHARING = "FALSE_SHARING"
    SYNC_TRUE_SHARING = "SYNC_TRUE_SHARING"
    RACE = "RACE"

    @property
    def severity(self) -> int:
        return _SEVERITY[self]


_SEVERITY = {
    LineVerdict.THREAD_LOCAL: 0,
    LineVerdict.FALSE_SHARING: 1,
    LineVerdict.SYNC_TRUE_SHARING: 2,
    LineVerdict.RACE: 3,
}


class PairEvidence:
    """One classified access pair: why a line got (part of) its verdict."""

    __slots__ = ("kind", "thread_a", "pc_a", "loc_a",
                 "thread_b", "pc_b", "loc_b")

    def __init__(self, kind: str, thread_a: int, pc_a: int,
                 loc_a: Optional[SourceLocation], thread_b: int,
                 pc_b: int, loc_b: Optional[SourceLocation]):
        #: "race", "ordered", "locked", "atomic", "sync_word", "ssb"
        #: or "false_sharing".
        self.kind = kind
        self.thread_a = thread_a
        self.pc_a = pc_a
        self.loc_a = loc_a
        self.thread_b = thread_b
        self.pc_b = pc_b
        self.loc_b = loc_b

    def to_list(self) -> List:
        return [self.kind, self.thread_a, self.pc_a, str(self.loc_a),
                self.thread_b, self.pc_b, str(self.loc_b)]

    @classmethod
    def from_list(cls, data: List) -> "PairEvidence":
        kind, thread_a, pc_a, loc_a, thread_b, pc_b, loc_b = data
        return cls(kind, thread_a, pc_a, _parse_loc(loc_a),
                   thread_b, pc_b, _parse_loc(loc_b))

    def __repr__(self) -> str:
        return "<PairEvidence %s t%d@0x%x ~ t%d@0x%x>" % (
            self.kind, self.thread_a, self.pc_a, self.thread_b, self.pc_b)


def _parse_loc(text: str) -> Optional[SourceLocation]:
    if not text or text == "None":
        return None
    file, _, line = text.rpartition(":")
    if not file or not line.isdigit():
        return None
    return SourceLocation(file, int(line))


class LineCertificate:
    """Verdict and evidence for one cache line."""

    __slots__ = ("line", "verdict", "threads", "pair_counts", "evidence",
                 "locations")

    def __init__(self, line: int, verdict: LineVerdict,
                 threads: List[int], pair_counts: Dict[str, int],
                 evidence: List[PairEvidence],
                 locations: Optional[List[SourceLocation]] = None):
        self.line = line
        self.verdict = verdict
        self.threads = threads
        #: kind -> number of classified pairs of that kind.
        self.pair_counts = pair_counts
        #: Deterministic sample of classified pairs (first
        #: ``MAX_EVIDENCE_PAIRS`` in thread/instruction order).
        self.evidence = evidence
        #: Every source location with an access on this line (not just
        #: paired ones) — the repair gate's line<->location join.
        self.locations = locations or []

    def to_dict(self) -> Dict:
        return {
            "line": self.line,
            "verdict": self.verdict.value,
            "threads": list(self.threads),
            "pair_counts": dict(sorted(self.pair_counts.items())),
            "evidence": [pair.to_list() for pair in self.evidence],
            "locations": [str(loc) for loc in self.locations],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "LineCertificate":
        locations = [_parse_loc(text) for text in data.get("locations", [])]
        return cls(
            data["line"], LineVerdict(data["verdict"]),
            list(data["threads"]), dict(data["pair_counts"]),
            [PairEvidence.from_list(e) for e in data["evidence"]],
            [loc for loc in locations if loc is not None],
        )

    def __repr__(self) -> str:
        return "<LineCertificate 0x%x %s threads=%s>" % (
            self.line, self.verdict.value, self.threads)


class SharingCertificate:
    """The certifier's whole-program output, runtime- and CI-consumable."""

    SCHEMA_VERSION = 1

    def __init__(self, program_name: str, num_threads: int,
                 lines: Dict[int, LineCertificate],
                 location_verdicts: Dict[SourceLocation, LineVerdict],
                 clipped_footprints: int,
                 lock_addresses: FrozenSet[int],
                 sync_addresses: FrozenSet[Tuple[int, int]]):
        self.program_name = program_name
        self.num_threads = num_threads
        self.lines = lines
        #: Source location -> worst verdict over every pair it joins.
        self.location_verdicts = location_verdicts
        #: Footprints too wide or unbounded to classify: the coverage
        #: gap that makes the certificate incomplete.
        self.clipped_footprints = clipped_footprints
        self.lock_addresses = lock_addresses
        self.sync_addresses = sync_addresses
        self._gate_map: Optional[Dict[SourceLocation, LineVerdict]] = None

    # -- verdict queries ------------------------------------------------

    @property
    def complete(self) -> bool:
        """True when every footprint was classified (nothing clipped)."""
        return self.clipped_footprints == 0

    @property
    def unsafe(self) -> bool:
        """True when any line certifies RACE."""
        return any(
            cert.verdict is LineVerdict.RACE for cert in self.lines.values()
        )

    def verdict_for_line(self, line: int) -> LineVerdict:
        cert = self.lines.get(line)
        return cert.verdict if cert is not None else LineVerdict.THREAD_LOCAL

    def verdict_for_location(self, location: SourceLocation) -> LineVerdict:
        """Worst verdict over the pairs this location itself joins."""
        return self.location_verdicts.get(location, LineVerdict.THREAD_LOCAL)

    def gate_verdict_for_location(self, location: SourceLocation) -> LineVerdict:
        """The repair gate's view: the location *or any line it touches*.

        Repairing is a per-line act (the SSB serializes the whole cache
        line's store traffic), so a location whose own pairs are mere
        false sharing must still be quarantined when a race rides the
        same line — e.g. per-thread counters packed next to an
        unsynchronized result word.
        """
        if self._gate_map is None:
            gate: Dict[SourceLocation, LineVerdict] = dict(
                self.location_verdicts)
            for cert in self.lines.values():
                for loc in cert.locations:
                    held = gate.get(loc, LineVerdict.THREAD_LOCAL)
                    if cert.verdict.severity > held.severity:
                        gate[loc] = cert.verdict
            self._gate_map = gate
        return self._gate_map.get(location, LineVerdict.THREAD_LOCAL)

    def racy_lines(self) -> List[LineCertificate]:
        return [cert for cert in self.iter_lines()
                if cert.verdict is LineVerdict.RACE]

    def racy_locations(self) -> List[SourceLocation]:
        return sorted(
            (loc for loc, verdict in self.location_verdicts.items()
             if verdict is LineVerdict.RACE),
            key=lambda loc: (loc.file, loc.line),
        )

    def priority_lines(self) -> Set[int]:
        """Cache lines worth the detector's budget (any sharing at all)."""
        return {
            line for line, cert in self.lines.items()
            if cert.verdict is not LineVerdict.THREAD_LOCAL
        }

    def counts(self) -> Dict[str, int]:
        out = {verdict.value: 0 for verdict in LineVerdict}
        for cert in self.lines.values():
            out[cert.verdict.value] += 1
        return out

    def iter_lines(self) -> List[LineCertificate]:
        return [self.lines[line] for line in sorted(self.lines)]

    # -- serialization --------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "version": self.SCHEMA_VERSION,
            "program": self.program_name,
            "num_threads": self.num_threads,
            "clipped_footprints": self.clipped_footprints,
            "lock_addresses": sorted(self.lock_addresses),
            "sync_addresses": sorted(list(pair)
                                     for pair in self.sync_addresses),
            "lines": [cert.to_dict() for cert in self.iter_lines()],
            "locations": sorted(
                ([loc.file, loc.line, verdict.value]
                 for loc, verdict in self.location_verdicts.items()),
                key=lambda row: (row[0], row[1]),
            ),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "SharingCertificate":
        if data.get("version") != cls.SCHEMA_VERSION:
            raise ValueError(
                "unsupported certificate version %r" % data.get("version"))
        lines = {
            entry["line"]: LineCertificate.from_dict(entry)
            for entry in data["lines"]
        }
        locations = {
            SourceLocation(file, line): LineVerdict(verdict)
            for file, line, verdict in data["locations"]
        }
        return cls(
            data["program"], data["num_threads"], lines, locations,
            data["clipped_footprints"],
            frozenset(data["lock_addresses"]),
            frozenset(tuple(pair) for pair in data["sync_addresses"]),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SharingCertificate":
        return cls.from_dict(json.loads(text))

    # -- rendering ------------------------------------------------------

    def render(self) -> str:
        rows = ["%-12s %-18s %-9s %s" % ("cache line", "verdict", "threads",
                                         "pairs (by kind)")]
        for cert in self.iter_lines():
            if cert.verdict is LineVerdict.THREAD_LOCAL:
                continue
            kinds = " ".join(
                "%s=%d" % (kind, count)
                for kind, count in sorted(cert.pair_counts.items())
                if count
            )
            rows.append("0x%-10x %-18s %-9s %s" % (
                cert.line, cert.verdict.value,
                ",".join(str(t) for t in cert.threads), kinds))
        counts = self.counts()
        rows.append(
            "%s: RACE=%d SYNC_TS=%d FS=%d local/ro=%d clipped=%d -> %s"
            % (self.program_name, counts["RACE"],
               counts["SYNC_TRUE_SHARING"], counts["FALSE_SHARING"],
               counts["THREAD_LOCAL"], self.clipped_footprints,
               "UNSAFE" if self.unsafe else "safe"))
        if self.unsafe:
            for loc in self.racy_locations():
                rows.append("  racy location: %s" % (loc,))
        return "\n".join(rows)

    def __repr__(self) -> str:
        return "<SharingCertificate %s lines=%d %s>" % (
            self.program_name, len(self.lines),
            "UNSAFE" if self.unsafe else "safe")


# ----------------------------------------------------------------------
# Pair classification
# ----------------------------------------------------------------------

def _sync_word_bitmaps(
    lock_addresses: Iterable[int],
    sync_addresses: Iterable[Tuple[int, int]],
) -> Dict[int, int]:
    """Per-cache-line byte bitmap covered by synchronization words."""
    bitmaps: Dict[int, int] = {}
    words = [(addr, 8) for addr in lock_addresses]
    words.extend(sync_addresses)
    for addr, size in words:
        for byte in range(addr, addr + size):
            line = byte // CACHE_LINE_SIZE
            bitmaps[line] = bitmaps.get(line, 0) | (
                1 << (byte - line * CACHE_LINE_SIZE))
    return bitmaps


def _classify_pair(first: "StaticAccess", second: "StaticAccess",
                   overlap: int, sync_bitmap: int,
                   mhp: MhpAnalysis) -> str:
    """The evidence kind for one cross-thread write-bearing pair."""
    if not overlap:
        return "false_sharing"
    if first.op in _SSB_OPS and second.op in _SSB_OPS:
        return "ssb"  # LASERREPAIR serializes SSB ops through HTM
    if first.op in _ATOMIC_OPS and second.op in _ATOMIC_OPS:
        return "atomic"
    if overlap & ~sync_bitmap == 0:
        return "sync_word"  # the contested bytes *are* the lock/flag
    if first.locks & second.locks:
        return "locked"
    if mhp.ordered(first.thread, first.index, second.thread, second.index):
        return "ordered"
    return "race"


_KIND_VERDICT = {
    "race": LineVerdict.RACE,
    "ordered": LineVerdict.SYNC_TRUE_SHARING,
    "locked": LineVerdict.SYNC_TRUE_SHARING,
    "atomic": LineVerdict.SYNC_TRUE_SHARING,
    "sync_word": LineVerdict.SYNC_TRUE_SHARING,
    "ssb": LineVerdict.SYNC_TRUE_SHARING,
    "false_sharing": LineVerdict.FALSE_SHARING,
}


def certify_program(program: Program,
                    init_addrs: Iterable[int] = ()) -> SharingCertificate:
    """Certify every statically-shared cache line of ``program``."""
    # Deferred: predict imports the dynamic report types from
    # repro.core, which imports this module for the repair gate — a
    # module-level import here would close that cycle when the static
    # package is the interpreter's entry point.
    from repro.static.predict import collect_line_accesses

    collection = collect_line_accesses(program)
    mhp = analyze_mhp(program, analyses=collection.analyses,
                      init_addrs=init_addrs)
    sync_bitmaps = _sync_word_bitmaps(
        collection.lock_universe, mhp.sync_addresses)

    lines: Dict[int, LineCertificate] = {}
    location_verdicts: Dict[SourceLocation, LineVerdict] = {}
    for line in sorted(collection.accesses_by_line):
        accesses = collection.accesses_by_line[line]
        sync_bitmap = sync_bitmaps.get(line, 0)
        threads = sorted({access.thread for access in accesses})
        touching = sorted(
            {access.loc for access in accesses if access.loc is not None},
            key=lambda loc: (loc.file, loc.line),
        )
        pair_counts: Dict[str, int] = {}
        evidence: List[PairEvidence] = []
        verdict = LineVerdict.THREAD_LOCAL
        for i, first in enumerate(accesses):
            for second in accesses[i + 1:]:
                if first.thread == second.thread:
                    continue
                if not (first.is_write or second.is_write):
                    continue
                kind = _classify_pair(
                    first, second, first.bitmap & second.bitmap,
                    sync_bitmap, mhp)
                pair_counts[kind] = pair_counts.get(kind, 0) + 1
                if len(evidence) < MAX_EVIDENCE_PAIRS:
                    evidence.append(PairEvidence(
                        kind, first.thread, first.pc, first.loc,
                        second.thread, second.pc, second.loc))
                pair_verdict = _KIND_VERDICT[kind]
                if pair_verdict.severity > verdict.severity:
                    verdict = pair_verdict
                for loc in (first.loc, second.loc):
                    if loc is None:
                        continue
                    held = location_verdicts.get(loc, LineVerdict.THREAD_LOCAL)
                    if pair_verdict.severity > held.severity:
                        location_verdicts[loc] = pair_verdict
                    elif loc not in location_verdicts:
                        location_verdicts[loc] = held
        lines[line] = LineCertificate(
            line, verdict, threads, pair_counts, evidence, touching)

    return SharingCertificate(
        program.name, program.num_threads, lines, location_verdicts,
        len(collection.clipped), collection.lock_universe,
        mhp.sync_addresses)


def certify_built(built) -> SharingCertificate:
    """Certify a built workload, honoring its initial memory image."""
    return certify_program(
        built.program,
        init_addrs=[addr for addr, _value, _size in built.init_writes],
    )
