"""Static sharing prediction: footprints -> cache lines -> TS/FS.

The predictor runs the abstract interpreter (``absint.py``) and lockset
analysis (``lockset.py``) on every thread of a program, projects each
memory footprint onto 64-byte cache lines with byte-granular bitmaps,
and classifies every line that two threads may touch:

* overlapping bytes with at least one write -> potential true sharing;
* disjoint bytes with at least one write  -> potential false sharing;
* pairs whose must-held locksets intersect are *synchronized*: they
  still share the line (lock-protected true sharing is the bounded TS
  noise the dynamic detector sees) but are flagged as lock-protected.

Where the dynamic detector (``core/detect``) counts observed HITM
events, the predictor counts *access pairs that may conflict* — it has
no notion of rate, so it over-reports cold sharing (a one-time handoff
and a hot loop look identical).  That asymmetry is exactly what
``experiments/static_cmp.py`` measures: static recall of dynamically
confirmed lines is high, static precision is low.

Reports mirror the shape of :mod:`repro.core.detect.report` (per-source
-line rows, a ``render()`` table, ``false_sharing_lines``) so the
experiment harnesses can score both sides with the same code.
"""

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro._constants import CACHE_LINE_SIZE
from repro.core.detect.report import ContentionClass
from repro.isa.instructions import Opcode
from repro.isa.program import Program, SourceLocation
from repro.static.absint import (
    Footprint,
    ThreadValueAnalysis,
    analyze_thread_values,
    thread_entry_registers,
)
from repro.static.interval import StrideInterval
from repro.static.lockset import (
    ThreadLocksets,
    analyze_locksets,
    collect_lock_addresses,
)

__all__ = [
    "StaticAccess",
    "LineAccessCollection",
    "LinePrediction",
    "StaticLineReport",
    "StaticSharingReport",
    "collect_line_accesses",
    "predict_program",
]

#: Footprints spanning more than this many bytes are clipped (with
#: accounting) instead of enumerated.
MAX_FOOTPRINT_SPAN = 1 << 18

#: Cap on enumerated addresses per footprint; wider strided footprints
#: are conservatively densified (over-approximating toward TS).
MAX_ENUM_POINTS = 1 << 16


class StaticAccess:
    """One footprint's contribution to one cache line."""

    __slots__ = ("thread", "index", "loc", "line", "bitmap", "is_write",
                 "locks", "pc", "op")

    def __init__(self, thread: int, index: int, loc: Optional[SourceLocation],
                 line: int, bitmap: int, is_write: bool,
                 locks: FrozenSet[int], pc: int = -1,
                 op: Optional[Opcode] = None):
        self.thread = thread
        self.index = index
        self.loc = loc
        self.line = line
        self.bitmap = bitmap
        self.is_write = is_write
        self.locks = locks
        #: Virtual address of the instruction (evidence for certificates).
        self.pc = pc
        #: The opcode behind the access (atomicity matters to ``race.py``).
        self.op = op


class LinePrediction:
    """Aggregate verdict for one cache line."""

    __slots__ = ("line", "ts_pairs", "fs_pairs", "sync_pairs", "threads")

    def __init__(self, line: int):
        self.line = line
        self.ts_pairs = 0
        self.fs_pairs = 0
        self.sync_pairs = 0
        self.threads: Set[int] = set()

    @property
    def total_pairs(self) -> int:
        return self.ts_pairs + self.fs_pairs

    @property
    def lock_protected(self) -> bool:
        return self.total_pairs > 0 and self.sync_pairs == self.total_pairs

    @property
    def contention_class(self) -> ContentionClass:
        if self.ts_pairs and not self.fs_pairs:
            return ContentionClass.TRUE_SHARING
        if self.fs_pairs and not self.ts_pairs:
            return ContentionClass.FALSE_SHARING
        return ContentionClass.UNKNOWN


class StaticLineReport:
    """One predicted source line (mirrors ``LineReport``)."""

    __slots__ = ("location", "ts_pairs", "fs_pairs", "sync_pairs",
                 "cache_lines", "threads")

    def __init__(self, location: SourceLocation):
        self.location = location
        self.ts_pairs = 0
        self.fs_pairs = 0
        self.sync_pairs = 0
        self.cache_lines: Set[int] = set()
        self.threads: Set[int] = set()

    @property
    def lock_protected(self) -> bool:
        total = self.ts_pairs + self.fs_pairs
        return total > 0 and self.sync_pairs == total

    @property
    def contention_class(self) -> ContentionClass:
        if self.ts_pairs and not self.fs_pairs:
            return ContentionClass.TRUE_SHARING
        if self.fs_pairs and not self.ts_pairs:
            return ContentionClass.FALSE_SHARING
        return ContentionClass.UNKNOWN

    def __repr__(self):
        return "<StaticLineReport %s TS=%d FS=%d -> %s%s>" % (
            self.location, self.ts_pairs, self.fs_pairs,
            self.contention_class.value,
            " [locked]" if self.lock_protected else "")


class StaticSharingReport:
    """The predictor's output for one program."""

    def __init__(self, program: Program,
                 lines: List[StaticLineReport],
                 line_predictions: Dict[int, LinePrediction],
                 clipped: List[Tuple[int, Footprint]],
                 lock_universe: FrozenSet[int]):
        self.program = program
        self.lines = lines
        self.line_predictions = line_predictions
        #: (thread, footprint) pairs too wide or unbounded to enumerate;
        #: their sharing is *not* predicted — an explicit coverage gap
        #: rather than a silent one.
        self.clipped = clipped
        self.lock_universe = lock_universe

    def predicted_locations(self) -> List[SourceLocation]:
        return [line.location for line in self.lines]

    def line_for(self, location: SourceLocation) -> Optional[StaticLineReport]:
        for line in self.lines:
            if line.location == location:
                return line
        return None

    def false_sharing_lines(self) -> List[StaticLineReport]:
        return [
            line for line in self.lines
            if line.contention_class is ContentionClass.FALSE_SHARING
        ]

    def flagged_cache_lines(
        self, kind: Optional[ContentionClass] = None
    ) -> Set[int]:
        """Cache lines predicted shared (optionally of one class)."""
        if kind is None:
            return set(self.line_predictions)
        return {
            line for line, pred in self.line_predictions.items()
            if pred.contention_class is kind
        }

    def render(self) -> str:
        if not self.lines:
            out = "no cross-thread sharing predicted"
        else:
            rows = ["%-28s %6s %8s %8s %8s %7s" % (
                "location", "lines", "TSpairs", "FSpairs", "class", "locked")]
            for line in self.lines:
                rows.append("%-28s %6d %8d %8d %8s %7s" % (
                    str(line.location), len(line.cache_lines),
                    line.ts_pairs, line.fs_pairs,
                    line.contention_class.value,
                    "yes" if line.lock_protected else ""))
            out = "\n".join(rows)
        if self.clipped:
            out += "\n(%d footprint(s) clipped or unbounded; not predicted)" \
                % len(self.clipped)
        return out


# ----------------------------------------------------------------------
# Footprint -> per-line byte bitmaps
# ----------------------------------------------------------------------

def _line_bitmaps(addr: StrideInterval, size: int) -> Dict[int, int]:
    """Map cache-line index -> byte bitmap the footprint may touch."""
    bitmaps: Dict[int, int] = {}

    def mark(byte_lo: int, byte_hi: int) -> None:
        """Mark the contiguous byte range [byte_lo, byte_hi]."""
        line = byte_lo // CACHE_LINE_SIZE
        while line * CACHE_LINE_SIZE <= byte_hi:
            line_base = line * CACHE_LINE_SIZE
            lo = max(byte_lo, line_base) - line_base
            hi = min(byte_hi, line_base + CACHE_LINE_SIZE - 1) - line_base
            bitmaps[line] = bitmaps.get(line, 0) | (
                ((1 << (hi - lo + 1)) - 1) << lo)
            line += 1

    step = addr.stride or 1
    count = (addr.hi - addr.lo) // step + 1
    if step <= size or count > MAX_ENUM_POINTS:
        # Dense (or too many points to enumerate): one contiguous range.
        mark(addr.lo, addr.hi + size - 1)
    else:
        for base in range(addr.lo, addr.hi + 1, step):
            mark(base, base + size - 1)
    return bitmaps


class LineAccessCollection:
    """The shared front half of the predictor and the race certifier.

    One abstract-interpretation + lockset pass over every thread, with
    each bounded footprint projected onto per-cache-line byte bitmaps.
    Both consumers (``predict_program`` and ``race.certify_program``)
    classify the same ``accesses_by_line``, so their line universes are
    identical by construction.
    """

    __slots__ = ("analyses", "locksets", "lock_universe",
                 "accesses_by_line", "clipped")

    def __init__(self, analyses: List[ThreadValueAnalysis],
                 locksets: List[ThreadLocksets],
                 lock_universe: FrozenSet[int],
                 accesses_by_line: Dict[int, List[StaticAccess]],
                 clipped: List[Tuple[int, Footprint]]):
        self.analyses = analyses
        self.locksets = locksets
        self.lock_universe = lock_universe
        self.accesses_by_line = accesses_by_line
        self.clipped = clipped


def collect_line_accesses(program: Program) -> LineAccessCollection:
    """Run value + lockset analysis and bucket accesses by cache line."""
    analyses: List[ThreadValueAnalysis] = []
    for tid, code in enumerate(program.threads):
        analyses.append(analyze_thread_values(
            code, entry_registers=thread_entry_registers(tid)))

    lock_universe = frozenset().union(
        *[collect_lock_addresses(va) for va in analyses]
    ) if analyses else frozenset()
    locksets: List[ThreadLocksets] = [
        analyze_locksets(va, frozenset(lock_universe)) for va in analyses
    ]

    accesses_by_line: Dict[int, List[StaticAccess]] = {}
    clipped: List[Tuple[int, Footprint]] = []
    for tid, va in enumerate(analyses):
        for fp in va.footprints:
            addr = fp.addr
            if not addr.is_bounded or addr.span > MAX_FOOTPRINT_SPAN:
                clipped.append((tid, fp))
                continue
            locks = locksets[tid].held_at(fp.index)
            for line, bitmap in _line_bitmaps(addr, fp.size).items():
                accesses_by_line.setdefault(line, []).append(StaticAccess(
                    tid, fp.index, fp.inst.loc, line, bitmap,
                    fp.is_store, locks, pc=fp.inst.pc, op=fp.inst.op))
    return LineAccessCollection(
        analyses, locksets, frozenset(lock_universe), accesses_by_line,
        clipped)


def predict_program(program: Program) -> StaticSharingReport:
    """Run the full static sharing prediction over ``program``."""
    collection = collect_line_accesses(program)
    accesses_by_line = collection.accesses_by_line
    clipped = collection.clipped
    lock_universe = collection.lock_universe

    line_predictions: Dict[int, LinePrediction] = {}
    by_location: Dict[SourceLocation, StaticLineReport] = {}
    for line, accesses in accesses_by_line.items():
        prediction = None
        for i, first in enumerate(accesses):
            for second in accesses[i + 1:]:
                if first.thread == second.thread:
                    continue
                if not (first.is_write or second.is_write):
                    continue
                if prediction is None:
                    prediction = line_predictions.setdefault(
                        line, LinePrediction(line))
                overlap = first.bitmap & second.bitmap
                synchronized = bool(first.locks & second.locks)
                if overlap:
                    prediction.ts_pairs += 1
                else:
                    prediction.fs_pairs += 1
                if synchronized:
                    prediction.sync_pairs += 1
                prediction.threads.update((first.thread, second.thread))
                for access in (first, second):
                    if access.loc is None:
                        continue
                    row = by_location.setdefault(
                        access.loc, StaticLineReport(access.loc))
                    if overlap:
                        row.ts_pairs += 1
                    else:
                        row.fs_pairs += 1
                    if synchronized:
                        row.sync_pairs += 1
                    row.cache_lines.add(line)
                    row.threads.update((first.thread, second.thread))

    lines = sorted(
        by_location.values(),
        key=lambda row: (-(row.ts_pairs + row.fs_pairs), str(row.location)),
    )
    return StaticSharingReport(
        program, lines, line_predictions, clipped, frozenset(lock_universe))
