"""Abstract interpretation of one thread's code over its CFG.

The interpreter runs each :class:`ThreadCode` to a fixpoint over the
stride-interval domain (``interval.py``), producing:

* a register state at every basic-block entry and every instruction,
* a :class:`Footprint` (address interval + access width) for every
  memory operation.

Plain interval analysis widens every loop-carried pointer to ``+inf``,
which would reduce the sharing predictor to "everything may touch
everything".  Mini-ISA loops are overwhelmingly *counted* — a register
initialized outside the loop, bumped by a constant each iteration, and
tested against zero or a bound — so the interpreter recognizes the two
idioms (countdown ``sub/bne`` and countup ``add/blt``, in both
test-at-latch and test-at-header shapes), derives a trip count, and
pins every self-bumped register at the loop header to the closed-form
hull ``[init, init + delta * trips]``.  Registers that escape the
idiom fall back to classic widening, so the fixpoint always
terminates; their footprints simply come out unbounded and are clipped
(with accounting) by the consumer.

The interpreter understands the SSB pseudo-ops, so it can run on both
original and LASERREPAIR-instrumented code — the rewrite verifier uses
it to prove exempt loads disjoint from buffered stores.
"""

from collections import deque
from math import gcd
from typing import Dict, List, Optional, Set, Tuple

from repro.isa.cfg import ControlFlowGraph, build_cfg
from repro.isa.instructions import (
    COND_BRANCH_OPS,
    NUM_REGISTERS,
    Instruction,
    Opcode,
    Operand,
)
from repro.isa.program import ThreadCode
from repro.static.interval import StrideInterval

__all__ = [
    "Footprint",
    "ThreadValueAnalysis",
    "analyze_thread_values",
    "thread_entry_registers",
]

#: Header visits before classic widening kicks in for non-induction
#: registers (counted loops converge in 2-3 visits; this is a backstop).
WIDEN_AFTER_VISITS = 24

State = List[StrideInterval]

_ALU = {
    Opcode.ADD: StrideInterval.add,
    Opcode.SUB: StrideInterval.sub,
    Opcode.MUL: StrideInterval.mul,
    Opcode.DIV: StrideInterval.div,
    Opcode.AND: StrideInterval.and_,
    Opcode.OR: StrideInterval.or_,
    Opcode.XOR: StrideInterval.xor,
    Opcode.SHL: StrideInterval.shl,
    Opcode.SHR: StrideInterval.shr,
}

#: Opcodes whose execution writes ``rd`` with a memory-derived value.
_MEM_DEST_OPS = frozenset(
    {Opcode.LOAD, Opcode.SSB_LOAD, Opcode.CMPXCHG, Opcode.XADD}
)

#: Memory operations that produce a footprint.
_FOOTPRINT_OPS = frozenset(
    {Opcode.LOAD, Opcode.STORE, Opcode.ADDM, Opcode.CMPXCHG, Opcode.XADD,
     Opcode.SSB_LOAD, Opcode.SSB_STORE, Opcode.SSB_ADDM}
)


class Footprint:
    """The memory bytes one instruction may touch."""

    __slots__ = ("index", "inst", "addr", "size")

    def __init__(self, index: int, inst: Instruction,
                 addr: StrideInterval, size: int):
        self.index = index
        self.inst = inst
        self.addr = addr
        self.size = size

    @property
    def is_load(self) -> bool:
        return self.inst.is_load

    @property
    def is_store(self) -> bool:
        return self.inst.is_store

    @property
    def bounded(self) -> bool:
        return self.addr.is_bounded

    def may_overlap(self, other: "Footprint") -> bool:
        return self.addr.may_overlap(self.size, other.addr, other.size)

    def __repr__(self):
        return "<Footprint #%d %s addr=%r sz=%d>" % (
            self.index, self.inst.op.value, self.addr, self.size)


class _Loop:
    """A natural loop: header, body, and its counted-loop evidence."""

    __slots__ = ("header", "body", "bumps", "nested_bump_regs")

    def __init__(self, header: int):
        self.header = header
        self.body: Set[int] = {header}
        #: reg -> list of per-iteration constant deltas (self-bumps).
        self.bumps: Dict[int, List[int]] = {}
        #: Regs whose bump sits inside a nested loop (delta per outer
        #: iteration is the inner trip count times the delta — unknown
        #: here, so growth in that direction is unbounded).
        self.nested_bump_regs: Set[int] = set()


def thread_entry_registers(tid: int) -> Dict[int, StrideInterval]:
    """The register file :class:`repro.sim.machine.Machine` gives thread
    ``tid`` at startup: zeros, plus r14 = thread id and r15 = stack
    pointer.  Analyses that know which thread will run the code pass
    this as ``entry_registers`` for exact thread-private addressing.
    """
    from repro.sim.vmmap import STACK_SIZE, STACK_TOP

    return {
        14: StrideInterval.const(tid),
        15: StrideInterval.const(STACK_TOP - tid * 2 * STACK_SIZE - 4096),
    }


def _eval(operand: Optional[Operand], state: State) -> StrideInterval:
    if operand is None:
        return StrideInterval.top()
    if operand.is_reg:
        return state[operand.value]
    return StrideInterval.const(operand.value)


def _value_of_width(size: int) -> StrideInterval:
    """Anything loaded from memory: bounded only by the access width."""
    return StrideInterval(0, (1 << (8 * size)) - 1, 1)


def _transfer(inst: Instruction, state: State) -> None:
    """Apply one instruction to ``state`` in place (no footprints)."""
    op = inst.op
    alu = _ALU.get(op)
    if alu is not None:
        state[inst.rd] = alu(_eval(inst.a, state), _eval(inst.b, state))
    elif op is Opcode.MOV:
        state[inst.rd] = _eval(inst.a, state)
    elif op in _MEM_DEST_OPS:
        state[inst.rd] = _value_of_width(inst.size)
    elif inst.rd is not None:
        state[inst.rd] = StrideInterval.top()


def _footprint_of(index: int, inst: Instruction,
                  state: State) -> Optional[Footprint]:
    if inst.op not in _FOOTPRINT_OPS:
        return None
    addr = _eval(inst.a, state).add(StrideInterval.const(inst.offset))
    return Footprint(index, inst, addr, inst.size)


# ----------------------------------------------------------------------
# Branch refinement
# ----------------------------------------------------------------------

def _refine_reg(state: State, reg: int,
                refined: Optional[StrideInterval]) -> Optional[State]:
    if refined is None:
        return None
    new = list(state)
    new[reg] = refined
    return new


def _exclude_const(interval: StrideInterval, c: int) -> Optional[StrideInterval]:
    """Refine ``interval`` knowing its value is not ``c`` (endpoint trim)."""
    step = interval.stride or 1
    lo, hi = interval.lo, interval.hi
    if lo is not None and lo == c:
        lo = lo + step
        if hi is not None and lo > hi:
            return None
    elif hi is not None and hi == c:
        hi = hi - step
        if lo is not None and lo > hi:
            return None
    return StrideInterval(lo, hi, interval.stride if lo is not None else 1)


def _refine_branch(state: State, inst: Instruction,
                   taken: bool) -> Optional[State]:
    """Narrow ``state`` along one edge of a conditional branch.

    Returns None when the edge is infeasible under the abstract state.
    """
    if inst.op not in COND_BRANCH_OPS:
        return state
    a, b = inst.a, inst.b
    a_val, b_val = _eval(a, state), _eval(b, state)
    # Refine whichever side is a register against the other side's
    # constant value (if any); refining both is possible but the
    # workloads only ever compare a register against a constant.
    if a is not None and a.is_reg and b_val.is_const:
        reg, interval, c = a.value, a_val, b_val.lo
        relation = {"lt_c": True}
    elif b is not None and b.is_reg and a_val.is_const:
        # c OP b: mirror the relation around the constant.
        reg, interval, c = b.value, b_val, a_val.lo
        relation = {"lt_c": False}
    else:
        return state

    op = inst.op
    if (op is Opcode.BEQ) == taken and op in (Opcode.BEQ, Opcode.BNE):
        # Equality holds on this edge.
        return _refine_reg(state, reg, interval.meet_range(c, c))
    if op in (Opcode.BEQ, Opcode.BNE):
        return _refine_reg(state, reg, _exclude_const(interval, c))
    # BLT / BGE: "a < b" truth on this edge.
    lt = (op is Opcode.BLT) == taken
    if not relation["lt_c"]:
        # Condition is ``c < reg`` (or its negation).
        if lt:
            return _refine_reg(state, reg, interval.meet_range(c + 1, None))
        return _refine_reg(state, reg, interval.meet_range(None, c))
    if lt:
        return _refine_reg(state, reg, interval.meet_range(None, c - 1))
    return _refine_reg(state, reg, interval.meet_range(c, None))


# ----------------------------------------------------------------------
# Loop discovery and trip counts
# ----------------------------------------------------------------------

def _find_loops(cfg: ControlFlowGraph) -> Dict[int, _Loop]:
    loops: Dict[int, _Loop] = {}
    for block in cfg.blocks:
        for succ in block.successors:
            if succ not in cfg.dominators(block.index):
                continue
            loop = loops.setdefault(succ, _Loop(succ))
            # Natural loop of the back edge: walk predecessors from the
            # latch until the header closes the walk.
            work = [block.index]
            while work:
                node = work.pop()
                if node in loop.body:
                    continue
                loop.body.add(node)
                work.extend(cfg.blocks[node].predecessors)
    for loop in loops.values():
        _collect_bumps(cfg, loop, loops)
    return loops


def _collect_bumps(cfg: ControlFlowGraph, loop: _Loop,
                   loops: Dict[int, _Loop]) -> None:
    """Find registers whose only writes inside the loop are self-bumps."""
    instructions = cfg.code.instructions
    written: Dict[int, List[Tuple[int, Optional[int]]]] = {}
    for block_index in loop.body:
        nested = any(
            other.header != loop.header and block_index in other.body
            and other.header in loop.body
            for other in loops.values()
        )
        for i in cfg.blocks[block_index].instruction_indices():
            inst = instructions[i]
            if inst.rd is None or inst.op in COND_BRANCH_OPS:
                continue
            delta = None
            if (inst.op in (Opcode.ADD, Opcode.SUB)
                    and inst.a is not None and inst.a.is_reg
                    and inst.a.value == inst.rd
                    and inst.b is not None and not inst.b.is_reg):
                delta = inst.b.value if inst.op is Opcode.ADD else -inst.b.value
            written.setdefault(inst.rd, []).append((i, delta))
            if delta is not None and nested:
                loop.nested_bump_regs.add(inst.rd)
    for reg, writes in written.items():
        deltas = [d for _, d in writes]
        if all(d is not None for d in deltas):
            loop.bumps[reg] = deltas  # type: ignore[assignment]


def _const_of(operand: Optional[Operand], entry: State) -> Optional[int]:
    if operand is None:
        return None
    value = _eval(operand, entry)
    return value.lo if value.is_const else None


def _trip_count(cfg: ControlFlowGraph, loop: _Loop,
                entry: State) -> Tuple[Optional[int], Optional[int]]:
    """(max trip count, counter register) for a counted loop, else None.

    Recognizes four shapes: the continue test at the latch (``bne c,0``
    countdown / ``blt c,B`` countup) and the exit test at the header
    (``beq c,0`` / ``bge c,B``).
    """
    instructions = cfg.code.instructions
    candidates: List[Tuple[Instruction, bool]] = []  # (branch, exits_on_true)
    header_start = cfg.blocks[loop.header].start
    for block_index in loop.body:
        block = cfg.blocks[block_index]
        last = instructions[block.end - 1]
        if last.op not in COND_BRANCH_OPS:
            continue
        if last.target == header_start:
            candidates.append((last, False))  # taken edge continues
        else:
            target_block = cfg.block_of_instruction(last.target).index
            if target_block not in loop.body:
                candidates.append((last, True))  # taken edge exits

    for branch, exits_on_true in candidates:
        if branch.a is None or not branch.a.is_reg:
            continue
        counter = branch.a.value
        deltas = loop.bumps.get(counter)
        if deltas is None or len(deltas) != 1 or counter in loop.nested_bump_regs:
            continue
        delta = deltas[0]
        init = entry[counter]
        bound = _const_of(branch.b, entry)
        if bound is not None and branch.b is not None and branch.b.is_reg:
            # A register bound must be loop-invariant.
            if branch.b.value in loop.bumps or any(
                branch.b.value == instructions[i].rd
                for bi in loop.body
                for i in cfg.blocks[bi].instruction_indices()
            ):
                bound = None
        countdown = (branch.op is (Opcode.BNE if not exits_on_true else Opcode.BEQ))
        countup = (branch.op is (Opcode.BLT if not exits_on_true else Opcode.BGE))
        if countdown and bound == 0 and delta < 0:
            if init.hi is None:
                return None, counter
            return max(0, -(-init.hi // -delta)), counter
        if countup and bound is not None and delta > 0:
            if init.lo is None:
                return None, counter
            return max(0, -((init.lo - bound) // delta)), counter
    return None, None


def _induction_hull(init: StrideInterval, deltas: List[int],
                    trips: Optional[int]) -> StrideInterval:
    pos = sum(d for d in deltas if d > 0)
    neg = sum(d for d in deltas if d < 0)
    if trips is None:
        lo = init.lo if neg == 0 else None
        hi = init.hi if pos == 0 else None
    else:
        lo = None if init.lo is None else init.lo + neg * trips
        hi = None if init.hi is None else init.hi + pos * trips
    if len(deltas) == 1 and lo is not None:
        stride = gcd(abs(deltas[0]), init.stride)
    else:
        stride = 1
    return StrideInterval(lo, hi, stride or 1)


# ----------------------------------------------------------------------
# The fixpoint engine
# ----------------------------------------------------------------------

def _join_states(states: List[Optional[State]]) -> Optional[State]:
    live = [s for s in states if s is not None]
    if not live:
        return None
    joined = list(live[0])
    for state in live[1:]:
        for r in range(NUM_REGISTERS):
            joined[r] = joined[r].join(state[r])
    return joined


def _states_equal(a: Optional[State], b: Optional[State]) -> bool:
    if a is None or b is None:
        return a is b
    return all(x == y for x, y in zip(a, b))


class ThreadValueAnalysis:
    """Fixpoint result for one thread."""

    def __init__(self, cfg: ControlFlowGraph,
                 block_in: Dict[int, Optional[State]],
                 states_before: Dict[int, State],
                 footprints: List[Footprint]):
        self.cfg = cfg
        #: Register state at each basic-block entry (None = unreachable).
        self.block_in = block_in
        #: Register state immediately before each reachable instruction.
        self.states_before = states_before
        #: One footprint per reachable memory operation.
        self.footprints = footprints

    def footprint_for(self, index: int) -> Optional[Footprint]:
        for fp in self.footprints:
            if fp.index == index:
                return fp
        return None

    @property
    def unbounded_footprints(self) -> List[Footprint]:
        return [fp for fp in self.footprints if not fp.bounded]


def analyze_thread_values(
    code: ThreadCode,
    entry_registers: Optional[Dict[int, StrideInterval]] = None,
    cfg: Optional[ControlFlowGraph] = None,
) -> ThreadValueAnalysis:
    """Run the abstract interpreter on one thread to a fixpoint."""
    if cfg is None:
        cfg = build_cfg(code)
    instructions = code.instructions
    loops = _find_loops(cfg)

    entry: State = [StrideInterval.const(0)] * NUM_REGISTERS
    for reg_index, value in (entry_registers or {}).items():
        entry[reg_index] = value

    block_in: Dict[int, Optional[State]] = {
        b.index: None for b in cfg.blocks
    }
    edge_out: Dict[Tuple[int, int], Optional[State]] = {}
    visits: Dict[int, int] = {b.index: 0 for b in cfg.blocks}

    def block_out_edges(block_index: int, state: State) -> None:
        """Run the block body, then split the state per successor edge."""
        block = cfg.blocks[block_index]
        working = list(state)
        for i in block.instruction_indices():
            _transfer(instructions[i], working)
        last = instructions[block.end - 1]
        for succ in block.successors:
            taken = last.is_branch and last.target == cfg.blocks[succ].start
            refined = _refine_branch(working, last, taken)
            edge_out[(block_index, succ)] = (
                None if refined is None else list(refined)
            )

    def compute_in(block_index: int) -> Optional[State]:
        preds = cfg.blocks[block_index].predecessors
        incoming: List[Optional[State]] = [
            edge_out.get((p, block_index)) for p in preds
        ]
        if block_index == 0:
            incoming.append(list(entry))
        joined = _join_states(incoming)
        loop = loops.get(block_index)
        if loop is None or joined is None:
            return joined
        outside: List[Optional[State]] = [
            edge_out.get((p, block_index))
            for p in preds if p not in loop.body
        ]
        if block_index == 0:
            outside.append(list(entry))
        outside_join = _join_states(outside)
        if outside_join is None:
            return joined
        trips, _counter = _trip_count(cfg, loop, outside_join)
        for reg_index, deltas in loop.bumps.items():
            if reg_index in loop.nested_bump_regs:
                joined[reg_index] = _induction_hull(
                    outside_join[reg_index], deltas, None)
            else:
                joined[reg_index] = _induction_hull(
                    outside_join[reg_index], deltas, trips)
        return joined

    work = deque([0])
    in_work = {0}
    while work:
        block_index = work.popleft()
        in_work.discard(block_index)
        new_in = compute_in(block_index)
        if new_in is None:
            continue
        visits[block_index] += 1
        old_in = block_in[block_index]
        if visits[block_index] > WIDEN_AFTER_VISITS and old_in is not None:
            new_in = [o.widen(n) for o, n in zip(old_in, new_in)]
        if _states_equal(old_in, new_in) and visits[block_index] > 1:
            continue
        block_in[block_index] = new_in
        block_out_edges(block_index, new_in)
        for succ in cfg.blocks[block_index].successors:
            if succ not in in_work:
                in_work.add(succ)
                work.append(succ)

    # Final pass: per-instruction states and footprints.
    states_before: Dict[int, State] = {}
    footprints: List[Footprint] = []
    for block in cfg.blocks:
        state = block_in[block.index]
        if state is None:
            continue
        working = list(state)
        for i in block.instruction_indices():
            states_before[i] = list(working)
            fp = _footprint_of(i, instructions[i], working)
            if fp is not None:
                footprints.append(fp)
            _transfer(instructions[i], working)
    return ThreadValueAnalysis(cfg, block_in, states_before, footprints)
