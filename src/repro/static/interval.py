"""Stride-interval abstract domain for register values.

The static analyzer approximates every register with a *stride
interval*: the set of integers ``{lo + k*stride | k >= 0}`` clipped to
``[lo, hi]``.  The domain is the classic strided-interval lattice of
binary analysis (Reps/Balakrishnan's value-set analysis uses the same
shape) restricted to a single region: mini-ISA programs address memory
with absolute heap addresses, so one numeric strided interval per
register suffices.

``lo``/``hi`` of ``None`` mean unbounded below/above.  A ``stride`` of
0 denotes a singleton (and requires ``lo == hi``); a stride of 1 is a
dense interval.  Alignment information only makes sense relative to a
known lower bound, so any interval without one is normalized to
stride 1.

The domain deliberately ignores 64-bit wraparound: the analyzer treats
register arithmetic as ideal integers, which is sound for the address
computations it is used on (workload pointers never wrap) and keeps
every operation a few integer comparisons.
"""

from math import gcd
from typing import Iterator, Optional

__all__ = ["StrideInterval"]

#: Spans wider than this are not enumerated by callers that walk the
#: concretization (the sharing predictor clips and accounts instead).
DEFAULT_MAX_SPAN = 1 << 20


def _min(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None or b is None:
        return None
    return min(a, b)


def _max(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None or b is None:
        return None
    return max(a, b)


def _add(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None or b is None:
        return None
    return a + b


def _sub(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None or b is None:
        return None
    return a - b


class StrideInterval:
    """An immutable strided interval ``{lo + k*stride} ∩ [lo, hi]``."""

    __slots__ = ("lo", "hi", "stride")

    def __init__(self, lo: Optional[int], hi: Optional[int], stride: int = 1):
        if stride < 0:
            raise ValueError("stride must be non-negative")
        if lo is not None and hi is not None:
            if lo > hi:
                raise ValueError("empty interval: [%d, %d]" % (lo, hi))
            if lo == hi:
                stride = 0
            elif stride > 1:
                # Snap hi onto the stride grid anchored at lo.
                hi = lo + ((hi - lo) // stride) * stride
            elif stride == 0:
                stride = 1
        else:
            # Alignment is anchored at lo; without both bounds sane,
            # keep stride only when lo is known.
            if lo is None or stride == 0:
                stride = 1
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)
        object.__setattr__(self, "stride", stride)

    def __setattr__(self, name, value):
        raise AttributeError("StrideInterval is immutable")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def const(cls, value: int) -> "StrideInterval":
        return cls(value, value, 0)

    @classmethod
    def top(cls) -> "StrideInterval":
        return cls(None, None, 1)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------

    @property
    def is_const(self) -> bool:
        return self.lo is not None and self.lo == self.hi

    @property
    def is_bounded(self) -> bool:
        return self.lo is not None and self.hi is not None

    @property
    def is_top(self) -> bool:
        return self.lo is None and self.hi is None

    @property
    def span(self) -> Optional[int]:
        """``hi - lo`` when bounded, else None."""
        if not self.is_bounded:
            return None
        return self.hi - self.lo

    def contains(self, value: int) -> bool:
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        if self.lo is not None and self.stride > 1:
            return (value - self.lo) % self.stride == 0
        return True

    def values(self, max_count: int) -> Iterator[int]:
        """Enumerate the concretization (bounded intervals only)."""
        if not self.is_bounded:
            raise ValueError("cannot enumerate an unbounded interval")
        step = self.stride or 1
        count = (self.hi - self.lo) // step + 1
        if count > max_count:
            raise ValueError("interval too wide to enumerate: %d values" % count)
        return iter(range(self.lo, self.hi + 1, step))

    # ------------------------------------------------------------------
    # Lattice operations
    # ------------------------------------------------------------------

    def join(self, other: "StrideInterval") -> "StrideInterval":
        lo = _min(self.lo, other.lo)
        hi = _max(self.hi, other.hi)
        if lo is None:
            return StrideInterval(lo, hi, 1)
        if self.lo is None or other.lo is None:
            stride = 1
        else:
            stride = gcd(self.stride, other.stride, abs(self.lo - other.lo))
        return StrideInterval(lo, hi, stride or (0 if lo == hi else 1))

    def widen(self, newer: "StrideInterval") -> "StrideInterval":
        """Standard interval widening: drop any bound that moved."""
        joined = self.join(newer)
        lo = self.lo if (self.lo is not None and joined.lo == self.lo) else None
        hi = self.hi if (self.hi is not None and joined.hi == self.hi) else None
        stride = joined.stride if lo is not None else 1
        return StrideInterval(lo, hi, stride or 1 if lo != hi or lo is None else 0)

    def meet_range(self, lo: Optional[int],
                   hi: Optional[int]) -> Optional["StrideInterval"]:
        """Intersect with ``[lo, hi]``; None if the result is empty.

        Unlike the join helpers, a ``None`` bound here means *unbounded*,
        so the intersection keeps whichever bound is known.
        """
        if lo is None:
            new_lo = self.lo
        elif self.lo is None:
            new_lo = lo
        else:
            new_lo = max(self.lo, lo)
        if hi is None:
            new_hi = self.hi
        elif self.hi is None:
            new_hi = hi
        else:
            new_hi = min(self.hi, hi)
        if new_lo is not None and self.lo is not None and self.stride > 1:
            # Snap the new lower bound up onto the stride grid.
            excess = (new_lo - self.lo) % self.stride
            if excess:
                new_lo += self.stride - excess
        if new_lo is not None and new_hi is not None and new_lo > new_hi:
            return None
        stride = self.stride if (new_lo is not None and self.lo is not None) else 1
        return StrideInterval(new_lo, new_hi, stride or 1)

    # ------------------------------------------------------------------
    # Arithmetic transfer functions
    # ------------------------------------------------------------------

    def add(self, other: "StrideInterval") -> "StrideInterval":
        lo = _add(self.lo, other.lo)
        hi = _add(self.hi, other.hi)
        stride = gcd(self.stride, other.stride) if lo is not None else 1
        return StrideInterval(
            lo, hi, stride or (0 if lo is not None and lo == hi else 1))

    def sub(self, other: "StrideInterval") -> "StrideInterval":
        lo = _sub(self.lo, other.hi)
        hi = _sub(self.hi, other.lo)
        stride = gcd(self.stride, other.stride) if lo is not None else 1
        return StrideInterval(
            lo, hi, stride or (0 if lo is not None and lo == hi else 1))

    def mul(self, other: "StrideInterval") -> "StrideInterval":
        if self.is_const:
            return other._mul_const(self.lo)
        if other.is_const:
            return self._mul_const(other.lo)
        if self.is_bounded and other.is_bounded:
            products = [
                self.lo * other.lo, self.lo * other.hi,
                self.hi * other.lo, self.hi * other.hi,
            ]
            return StrideInterval(min(products), max(products), 1)
        return StrideInterval.top()

    def _mul_const(self, c: int) -> "StrideInterval":
        if c == 0:
            return StrideInterval.const(0)
        if c > 0:
            return StrideInterval(
                None if self.lo is None else self.lo * c,
                None if self.hi is None else self.hi * c,
                self.stride * c,
            )
        return StrideInterval(
            None if self.hi is None else self.hi * c,
            None if self.lo is None else self.lo * c,
            self.stride * -c,
        )

    def shl(self, other: "StrideInterval") -> "StrideInterval":
        if other.is_const and 0 <= other.lo < 64:
            return self._mul_const(1 << other.lo)
        return StrideInterval.top()

    def shr(self, other: "StrideInterval") -> "StrideInterval":
        if not (other.is_const and 0 <= other.lo < 64):
            return StrideInterval.top()
        c = other.lo
        if self.is_const:
            return StrideInterval.const(self.lo >> c)
        lo = None if self.lo is None else self.lo >> c
        hi = None if self.hi is None else self.hi >> c
        stride = self.stride >> c if self.stride % (1 << c) == 0 else 1
        return StrideInterval(lo, hi, stride or 1)

    def div(self, other: "StrideInterval") -> "StrideInterval":
        if self.is_const and other.is_const and other.lo != 0:
            return StrideInterval.const(self.lo // other.lo)
        return StrideInterval.top()

    def and_(self, other: "StrideInterval") -> "StrideInterval":
        if self.is_const and other.is_const:
            return StrideInterval.const(self.lo & other.lo)
        # AND with a non-negative constant mask bounds the result.
        for side in (self, other):
            if side.is_const and side.lo >= 0:
                return StrideInterval(0, side.lo, 1)
        return StrideInterval.top()

    def or_(self, other: "StrideInterval") -> "StrideInterval":
        return self._bitwise(other, int.__or__)

    def xor(self, other: "StrideInterval") -> "StrideInterval":
        return self._bitwise(other, int.__xor__)

    def _bitwise(self, other: "StrideInterval", op) -> "StrideInterval":
        if self.is_const and other.is_const:
            return StrideInterval.const(op(self.lo, other.lo))
        if (self.is_bounded and other.is_bounded
                and self.lo >= 0 and other.lo >= 0):
            bits = max(self.hi.bit_length(), other.hi.bit_length())
            return StrideInterval(0, (1 << bits) - 1, 1)
        return StrideInterval.top()

    # ------------------------------------------------------------------
    # Footprint reasoning
    # ------------------------------------------------------------------

    def may_overlap(self, size: int, other: "StrideInterval",
                    other_size: int) -> bool:
        """Can an access ``[a, a+size)`` with ``a`` drawn from this
        interval touch a byte of ``[b, b+other_size)`` with ``b`` drawn
        from ``other``?  Conservative: True unless provably disjoint.
        """
        # Range-level disjointness first.
        if self.hi is not None and other.lo is not None:
            if self.hi + size - 1 < other.lo:
                return False
        if other.hi is not None and self.lo is not None:
            if other.hi + other_size - 1 < self.lo:
                return False
        # Ranges overlap; try stride/offset reasoning (the AoS case:
        # interleaved fields with a common element stride never collide).
        if (self.lo is None or other.lo is None
                or self.stride == 0 and other.stride == 0):
            if self.lo is not None and other.lo is not None \
                    and self.stride == 0 and other.stride == 0:
                return not (self.lo + size - 1 < other.lo
                            or other.lo + other_size - 1 < self.lo)
            return True
        s = gcd(self.stride, other.stride)
        if s <= 1:
            return True
        d = (other.lo - self.lo) % s
        # Addresses are self.lo + i*s' and other.lo + j*s''; modulo s the
        # residues are fixed, so byte ranges collide only if the residue
        # gap admits it in either direction around the ring.
        return d < size or s - d < other_size

    def __eq__(self, other):
        return (isinstance(other, StrideInterval)
                and self.lo == other.lo
                and self.hi == other.hi
                and self.stride == other.stride)

    def __hash__(self):
        return hash((self.lo, self.hi, self.stride))

    def __repr__(self):
        def b(v):
            return "?" if v is None else "%#x" % v if abs(v) > 4096 else str(v)
        if self.is_const:
            return "<SI %s>" % b(self.lo)
        return "<SI [%s, %s] /%d>" % (b(self.lo), b(self.hi), self.stride)
