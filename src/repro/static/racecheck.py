"""Race-certification CLI: the repo's own data-race lint pass.

Usage::

    python -m repro.static.racecheck                 # certify registry +
                                                     # variants vs goldens
    python -m repro.static.racecheck --regen         # rewrite the goldens
    python -m repro.static.racecheck NAME [NAME...]  # certify workloads;
                                                     # exit 1 if any RACE
    python -m repro.static.racecheck --golden PATH   # alternate golden file

With no workload arguments the whole registry plus the off-registry
racy variants are certified and compared against the committed golden
verdicts (``tests/golden/race_verdicts.json``): any drift — a workload
flipping safe/unsafe, per-class line counts moving, racy source
locations changing — exits nonzero, so CI gates on certifier stability
the same way the run goldens gate on bit-identity.  The positive
controls are additionally required to certify RACE: a certifier that
stops seeing planted races fails the check even if the goldens were
regenerated.

With explicit workload names the exit code reflects safety itself
(nonzero iff any named workload certifies unsafe), which is the
"lint one program" mode.
"""

import argparse
import json
import os
import sys
from typing import Dict, List, Optional

from repro.core.config import LaserConfig
from repro.static.race import SharingCertificate, certify_built
from repro.workloads import all_workloads, get_workload
from repro.workloads.registry import variant_workloads

__all__ = ["certificate_summary", "golden_path", "main"]

GOLDEN_SCHEMA_VERSION = 1

#: Variants that must certify RACE no matter what the goldens say.
POSITIVE_CONTROLS = ("racy_counter", "racy_handoff")


def golden_path() -> str:
    """The committed golden-verdict file, relative to the repo root."""
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(root, "tests", "golden", "race_verdicts.json")


def certificate_summary(cert: SharingCertificate) -> Dict:
    """The golden-pinned projection of one certificate.

    Deliberately coarser than the full certificate (which carries
    per-line byte evidence): the pin is per-class line counts plus the
    racy source locations, so layout-neutral refactors of the evidence
    format don't churn the goldens while any verdict movement does.
    """
    return {
        "unsafe": cert.unsafe,
        "counts": cert.counts(),
        "clipped_footprints": cert.clipped_footprints,
        "racy_locations": [str(loc) for loc in cert.racy_locations()],
    }


def _certify_all(config: LaserConfig) -> Dict[str, Dict]:
    summaries: Dict[str, Dict] = {}
    for workload in all_workloads() + variant_workloads():
        built = workload.build(heap_offset=config.heap_shift,
                               seed=config.seed)
        summaries[workload.name] = certificate_summary(certify_built(built))
    return summaries


def _diff(golden: Dict[str, Dict], current: Dict[str, Dict]) -> List[str]:
    problems: List[str] = []
    for name in sorted(set(golden) | set(current)):
        if name not in current:
            problems.append("%s: in goldens but not certified" % name)
            continue
        if name not in golden:
            problems.append("%s: certified but missing from goldens "
                            "(run --regen)" % name)
            continue
        want, got = golden[name], current[name]
        for key in ("unsafe", "counts", "clipped_footprints",
                    "racy_locations"):
            if want.get(key) != got.get(key):
                problems.append("%s: %s drifted: golden=%r current=%r"
                                % (name, key, want.get(key), got.get(key)))
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.static.racecheck",
        description="Certify workload data-race safety against goldens.")
    parser.add_argument("workloads", nargs="*",
                        help="workload names (default: whole registry "
                             "+ variants vs goldens)")
    parser.add_argument("--regen", action="store_true",
                        help="rewrite the golden verdict file")
    parser.add_argument("--golden", default=None,
                        help="golden file path (default: %s)" % golden_path())
    args = parser.parse_args(argv)
    config = LaserConfig()

    if args.workloads:
        if args.regen:
            parser.error("--regen takes no workload arguments")
        unsafe = 0
        for name in args.workloads:
            built = get_workload(name).build(
                heap_offset=config.heap_shift, seed=config.seed)
            cert = certify_built(built)
            print("== %s" % name)
            print(cert.render())
            print()
            unsafe += int(cert.unsafe)
        if unsafe:
            print("racecheck: %d of %d workload(s) certify UNSAFE"
                  % (unsafe, len(args.workloads)))
        return 1 if unsafe else 0

    path = args.golden or golden_path()
    current = _certify_all(config)

    problems: List[str] = []
    for name in POSITIVE_CONTROLS:
        if not current.get(name, {}).get("unsafe"):
            problems.append(
                "%s: positive control no longer certifies RACE" % name)

    if args.regen:
        if problems:
            for line in problems:
                print("racecheck: %s" % line)
            return 1
        payload = {"version": GOLDEN_SCHEMA_VERSION, "workloads": current}
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print("racecheck: wrote %d verdicts to %s" % (len(current), path))
        return 0

    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, ValueError) as exc:
        print("racecheck: cannot read goldens at %s: %s" % (path, exc))
        print("racecheck: run with --regen to create them")
        return 1
    if payload.get("version") != GOLDEN_SCHEMA_VERSION:
        print("racecheck: unsupported golden schema %r"
              % payload.get("version"))
        return 1

    problems.extend(_diff(payload["workloads"], current))
    unsafe_count = sum(1 for s in current.values() if s["unsafe"])
    if problems:
        for line in problems:
            print("racecheck: %s" % line)
        print("racecheck: FAIL (%d problem(s) across %d workloads)"
              % (len(problems), len(current)))
        return 1
    print("racecheck: OK — %d workloads match goldens "
          "(%d unsafe, %d safe; positive controls racy)"
          % (len(current), unsafe_count, len(current) - unsafe_count))
    return 0


if __name__ == "__main__":
    sys.exit(main())
