"""CLI: static sharing prediction + race certification for workloads.

Usage::

    python -m repro.static linear_regression [more workloads...]
    python -m repro.static --all

Builds each workload exactly as a LASER run would (the detector's fork
shifts the heap base by ``LaserConfig.heap_shift``) so predicted cache
lines are directly comparable to a dynamic report's.

Exits nonzero when any analyzed workload certifies unsafe (at least one
RACE line), so CI and scripts can gate on the verdict.  The committed
golden expectations live in ``tests/golden/race_verdicts.json`` and are
checked by ``python -m repro.static.racecheck``.
"""

import sys

from repro.core.config import LaserConfig
from repro.static.predict import predict_program
from repro.static.race import certify_built
from repro.workloads import all_workloads, get_workload


def main(argv) -> int:
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0 if argv else 1
    config = LaserConfig()
    names = (
        [w.name for w in all_workloads()] if argv == ["--all"] else argv
    )
    unsafe = []
    for name in names:
        workload = get_workload(name)
        built = workload.build(heap_offset=config.heap_shift,
                               seed=config.seed)
        report = predict_program(built.program)
        certificate = certify_built(built)
        print("== %s" % name)
        print(report.render())
        print(certificate.render())
        print()
        if certificate.unsafe:
            unsafe.append(name)
    if unsafe:
        print("unsafe (RACE lines certified): %s" % ", ".join(unsafe))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
