"""Rewrite verifier: lint LASERREPAIR's SSB-instrumented output.

``core/repair/rewrite.py`` output was previously trusted blindly; a bug
there (a dropped flush, a misplaced alias check, instrumentation
leaking out of the analyzed region) would silently break TSO or
single-thread semantics at runtime.  The verifier discharges three
obligations against each rewritten thread *before* the repair is
attached:

1. **Flush discipline (TSO).**  No *plain* ``STORE``/``ADDM`` may
   execute while the SSB may hold unflushed bytes: the younger direct
   store would become globally visible before the older buffered
   stores — store-store reordering, the one way a store buffer breaks
   TSO.  Ordering points (``FENCE``, ``CMPXCHG``/``XADD``, ``HALT``)
   are *drain* points, not violations: the runtime flushes the buffer
   there (``sim/core.py``) before touching memory, and the rewriter
   deliberately leans on the ``HALT`` drain instead of planting a
   flush on straight-line exit paths.  A thread that can fall off the
   end (no ``HALT``) with a dirty buffer is still flagged — nothing
   would ever publish those bytes.  Checked as a forward may-dataflow
   ("may the SSB hold unflushed bytes here?") over the instrumented
   CFG.

2. **Exempt-load soundness.**  Every load left un-instrumented inside
   the region either (a) has a footprint provably disjoint from every
   buffered store's footprint under the abstract interpreter, or (b) is
   guarded by an ``ALIAS_CHECK`` on the same base register, earlier in
   the same block, with no intervening redefinition of that register.

3. **Region confinement.**  Injected instructions appear exactly where
   the analysis said (flushes at flush points, checks before their
   loads), every region memory op that must be redirected is, nothing
   outside the region is touched, and branch targets survived the
   index-map translation.

Any violation rejects the plan (``LaserRepair`` counts it in
``plans_verifier_rejected`` and the run's ``RunHealth``).
"""

from typing import Dict, List, Optional, Set

from repro.isa.cfg import build_cfg
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import ThreadCode
from repro.static.absint import analyze_thread_values, thread_entry_registers

__all__ = ["Violation", "VerificationResult", "verify_rewrite"]

#: Ordering points where the runtime drains the SSB (``sim/core.py``
#: calls ``_drain_ssb_if_active`` before the memory access).
_DRAIN_OPS = frozenset(
    {Opcode.FENCE, Opcode.CMPXCHG, Opcode.XADD, Opcode.HALT}
)

#: Plain globally-visible writes: executing one while the SSB is dirty
#: reorders it ahead of the older buffered stores (obligation 1).
_DIRECT_STORE_OPS = frozenset({Opcode.STORE, Opcode.ADDM})

#: Ops that put bytes into the SSB.
_BUFFERED_STORE_OPS = frozenset({Opcode.SSB_STORE, Opcode.SSB_ADDM})

#: New-code ops every instrumented original op must have become.
_SSB_COUNTERPART = {
    Opcode.LOAD: Opcode.SSB_LOAD,
    Opcode.STORE: Opcode.SSB_STORE,
    Opcode.ADDM: Opcode.SSB_ADDM,
}

#: Ops that overwrite their destination register.
_REG_WRITE_OPS = frozenset(
    {Opcode.MOV, Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV,
     Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHR,
     Opcode.LOAD, Opcode.SSB_LOAD, Opcode.CMPXCHG, Opcode.XADD}
)


class Violation:
    """One broken obligation, anchored at a new-code instruction."""

    __slots__ = ("kind", "index", "message")

    def __init__(self, kind: str, index: int, message: str):
        self.kind = kind  # "tso-flush" | "alias" | "confinement"
        self.index = index
        self.message = message

    def __repr__(self):
        return "<Violation %s @%d: %s>" % (self.kind, self.index, self.message)


class VerificationResult:
    """Outcome of verifying one rewritten thread."""

    def __init__(self, thread: Optional[int],
                 violations: List[Violation]):
        self.thread = thread
        self.violations = violations

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        if self.ok:
            return "ok"
        kinds: Dict[str, int] = {}
        for violation in self.violations:
            kinds[violation.kind] = kinds.get(violation.kind, 0) + 1
        counts = " ".join(
            "%s=%d" % (kind, count) for kind, count in sorted(kinds.items())
        )
        return "%d violation(s): %s (first: %s)" % (
            len(self.violations), counts, self.violations[0].message)

    def __repr__(self):
        return "<VerificationResult %s>" % self.summary()


def _copy_position(index: int, index_map: Dict[int, int],
                   flush_before: Set[int], checks_before: Set[int]) -> int:
    """New-code index of the *copy* of original instruction ``index``.

    ``index_map`` points at the first instruction injected for an
    original index (so branches land on the guard), hence the copy sits
    after any flush and alias check injected there.
    """
    return (index_map[index]
            + (1 if index in flush_before else 0)
            + (1 if index in checks_before else 0))


# ----------------------------------------------------------------------
# Obligation 1: flush discipline
# ----------------------------------------------------------------------

def _check_flush_discipline(new_code: ThreadCode,
                            violations: List[Violation]) -> None:
    cfg = build_cfg(new_code)
    instructions = new_code.instructions

    def block_out(block_index: int, dirty: bool) -> bool:
        for i in cfg.blocks[block_index].instruction_indices():
            op = instructions[i].op
            if op in _BUFFERED_STORE_OPS:
                dirty = True
            elif op is Opcode.SSB_FLUSH or op in _DRAIN_OPS:
                dirty = False
        return dirty

    # Seed every block: a block *generates* dirty on its own (an
    # SSB_STORE inside), so each must push its out-state at least once.
    dirty_in: Dict[int, bool] = {b.index: False for b in cfg.blocks}
    work = [b.index for b in cfg.blocks]
    while work:
        block_index = work.pop()
        out = block_out(block_index, dirty_in[block_index])
        for succ in cfg.blocks[block_index].successors:
            if out and not dirty_in[succ]:
                dirty_in[succ] = True
                work.append(succ)

    for block in cfg.blocks:
        dirty = dirty_in[block.index]
        for i in block.instruction_indices():
            op = instructions[i].op
            if op in _DIRECT_STORE_OPS and dirty:
                violations.append(Violation(
                    "tso-flush", i,
                    "direct %s at %d reachable with unflushed SSB stores "
                    "(store-store reordering)" % (op.value, i)))
            elif op in _BUFFERED_STORE_OPS:
                dirty = True
            elif op is Opcode.SSB_FLUSH or op in _DRAIN_OPS:
                dirty = False
        if not block.successors and instructions[block.end - 1].op \
                is not Opcode.HALT and dirty:
            violations.append(Violation(
                "tso-flush", block.end - 1,
                "thread falls off the end with unflushed SSB stores"))


# ----------------------------------------------------------------------
# Obligation 2: exempt loads
# ----------------------------------------------------------------------

def _check_exempt_loads(analysis, new_code: ThreadCode,
                        index_map: Dict[int, int],
                        thread: Optional[int],
                        violations: List[Violation]) -> None:
    if not analysis.exempt_loads:
        return
    flush_before = set(analysis.flush_before_instructions)
    checks_before = set(analysis.alias_checks)
    entry = thread_entry_registers(thread) if thread is not None else None
    values = analyze_thread_values(new_code, entry_registers=entry)
    instructions = new_code.instructions

    buffered = [
        fp for fp in values.footprints
        if fp.inst.op in _BUFFERED_STORE_OPS
    ]

    for exempt in sorted(analysis.exempt_loads):
        position = _copy_position(exempt, index_map, flush_before,
                                  checks_before)
        inst = instructions[position]
        if inst.op is not Opcode.LOAD:
            violations.append(Violation(
                "alias", position,
                "exempt load %d is not a plain LOAD in the rewrite"
                % exempt))
            continue
        footprint = values.footprint_for(position)
        if footprint is not None and buffered and all(
                not footprint.may_overlap(store) for store in buffered):
            continue  # provably non-aliasing: no guard needed
        if not buffered:
            continue  # nothing ever enters the SSB
        if not _is_guarded(values.cfg, instructions, position):
            violations.append(Violation(
                "alias", position,
                "exempt load at %d (orig %d) neither provably disjoint "
                "from buffered stores nor guarded by an ALIAS_CHECK"
                % (position, exempt)))


def _is_guarded(cfg, instructions: List[Instruction], position: int) -> bool:
    """An ALIAS_CHECK covers the load: same base register and address
    expression, earlier in the block, with no redefinition between."""
    load = instructions[position]
    if load.a is None or not load.a.is_reg:
        return False
    base = load.a.value
    block = cfg.block_of_instruction(position)
    for i in range(position - 1, block.start - 1, -1):
        inst = instructions[i]
        if (inst.op is Opcode.ALIAS_CHECK and inst.a == load.a
                and inst.offset == load.offset and inst.size == load.size):
            return True
        if inst.op in _REG_WRITE_OPS and inst.rd == base:
            return False  # the checked def is not this load's def
    return False


# ----------------------------------------------------------------------
# Obligation 3: confinement
# ----------------------------------------------------------------------

def _check_confinement(original: ThreadCode, analysis,
                       new_code: ThreadCode, index_map: Dict[int, int],
                       violations: List[Violation]) -> None:
    flush_before = set(analysis.flush_before_instructions)
    checks_before = set(analysis.alias_checks)
    instrumented = analysis.instrumented_instruction_indices()
    old_instructions = original.instructions
    new_instructions = new_code.instructions

    expected_flush = {index_map[f] for f in flush_before}
    expected_check = {
        index_map[c] + (1 if c in flush_before else 0) for c in checks_before
    }
    expected_ssb: Dict[int, Opcode] = {}
    for i in instrumented:
        old_op = old_instructions[i].op
        counterpart = _SSB_COUNTERPART.get(old_op)
        if counterpart is None:
            continue  # CMPXCHG/XADD stay direct: they drain the SSB
        position = _copy_position(i, index_map, flush_before, checks_before)
        expected_ssb[position] = counterpart

    for j, inst in enumerate(new_instructions):
        if inst.op is Opcode.SSB_FLUSH and j not in expected_flush:
            violations.append(Violation(
                "confinement", j,
                "SSB_FLUSH at %d not at an analysis flush point" % j))
        elif inst.op is Opcode.ALIAS_CHECK and j not in expected_check:
            violations.append(Violation(
                "confinement", j,
                "ALIAS_CHECK at %d not at an analysis check point" % j))
        elif inst.op in (Opcode.SSB_LOAD, Opcode.SSB_STORE, Opcode.SSB_ADDM):
            if expected_ssb.get(j) is not inst.op:
                violations.append(Violation(
                    "confinement", j,
                    "%s at %d outside the instrumentation region"
                    % (inst.op.value, j)))

    for j in sorted(expected_flush):
        if new_instructions[j].op is not Opcode.SSB_FLUSH:
            violations.append(Violation(
                "confinement", j,
                "missing SSB_FLUSH at analysis flush point %d" % j))
    for j in sorted(expected_check):
        if new_instructions[j].op is not Opcode.ALIAS_CHECK:
            violations.append(Violation(
                "confinement", j,
                "missing ALIAS_CHECK at analysis check point %d" % j))
    for j, op in sorted(expected_ssb.items()):
        if new_instructions[j].op is not op:
            violations.append(Violation(
                "confinement", j,
                "region memory op at %d left uninstrumented (%s, wanted %s)"
                % (j, new_instructions[j].op.value, op.value)))

    # Branch retargeting survived the index-map translation.
    for i, old in enumerate(old_instructions):
        if not old.is_branch:
            continue
        position = _copy_position(i, index_map, flush_before, checks_before)
        new = new_instructions[position]
        if not new.is_branch or new.target != index_map[old.target]:
            violations.append(Violation(
                "confinement", position,
                "branch at %d retargeted to %s, expected %d"
                % (position,
                   getattr(new, "target", None), index_map[old.target])))


def verify_rewrite(original: ThreadCode, analysis,
                   new_code: ThreadCode, index_map: Dict[int, int],
                   thread: Optional[int] = None) -> VerificationResult:
    """Verify one rewritten thread against its repair analysis.

    ``analysis`` is the :class:`ThreadRepairAnalysis` the rewrite was
    produced from (duck-typed: only ``flush_before_instructions``,
    ``alias_checks``, ``exempt_loads`` and
    ``instrumented_instruction_indices()`` are consulted).
    """
    violations: List[Violation] = []
    _check_flush_discipline(new_code, violations)
    _check_exempt_loads(analysis, new_code, index_map, thread, violations)
    _check_confinement(original, analysis, new_code, index_map, violations)
    return VerificationResult(thread, violations)
