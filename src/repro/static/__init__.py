"""Static analysis over mini-ISA programs.

Three layers, each usable on its own:

* :mod:`repro.static.interval` / :mod:`repro.static.absint` — a
  stride-interval abstract interpreter computing per-instruction memory
  footprints (with counted-loop trip-count induction, so pointer-bump
  loops stay bounded);
* :mod:`repro.static.lockset` — must-held lockset analysis over the
  ISA's cmpxchg lock idioms;
* :mod:`repro.static.predict` — whole-program sharing prediction:
  footprints projected onto 64-byte cache lines, classified TS/FS, in
  the same report shape the dynamic detector emits;
* :mod:`repro.static.verify` — the TSO/SSB rewrite verifier gating
  LASERREPAIR's instrumented code (see ``core/repair/manager.py``);
* :mod:`repro.static.mhp` — may-happen-in-parallel / happens-before
  analysis over the flag-handoff and counting-barrier idioms;
* :mod:`repro.static.race` — the data-race certifier: every shared
  cache line classified RACE / SYNC_TRUE_SHARING / FALSE_SHARING /
  THREAD_LOCAL into a serializable :class:`SharingCertificate` that
  gates repair (``LaserConfig.race_gate``) and can pre-seed the
  detector's record filter (``LaserConfig.static_prefilter``).

``python -m repro.static <workload>`` prints the prediction and the
certificate for a bundled workload (nonzero exit if unsafe);
``python -m repro.static.racecheck`` certifies the whole registry
against the committed golden verdicts.
"""

from repro.static.absint import (
    Footprint,
    ThreadValueAnalysis,
    analyze_thread_values,
    thread_entry_registers,
)
from repro.static.interval import StrideInterval
from repro.static.lockset import (
    ThreadLocksets,
    analyze_locksets,
    collect_lock_addresses,
)
from repro.static.mhp import (
    HbEdge,
    MhpAnalysis,
    analyze_mhp,
)
from repro.static.predict import (
    LineAccessCollection,
    LinePrediction,
    StaticAccess,
    StaticLineReport,
    StaticSharingReport,
    collect_line_accesses,
    predict_program,
)
from repro.static.race import (
    LineCertificate,
    LineVerdict,
    PairEvidence,
    SharingCertificate,
    certify_built,
    certify_program,
)
from repro.static.verify import (
    VerificationResult,
    Violation,
    verify_rewrite,
)

__all__ = [
    "StrideInterval",
    "Footprint",
    "ThreadValueAnalysis",
    "analyze_thread_values",
    "thread_entry_registers",
    "ThreadLocksets",
    "analyze_locksets",
    "collect_lock_addresses",
    "StaticAccess",
    "LineAccessCollection",
    "LinePrediction",
    "StaticLineReport",
    "StaticSharingReport",
    "collect_line_accesses",
    "predict_program",
    "Violation",
    "VerificationResult",
    "verify_rewrite",
    "HbEdge",
    "MhpAnalysis",
    "analyze_mhp",
    "LineVerdict",
    "PairEvidence",
    "LineCertificate",
    "SharingCertificate",
    "certify_program",
    "certify_built",
]
