"""Static analysis over mini-ISA programs.

Three layers, each usable on its own:

* :mod:`repro.static.interval` / :mod:`repro.static.absint` — a
  stride-interval abstract interpreter computing per-instruction memory
  footprints (with counted-loop trip-count induction, so pointer-bump
  loops stay bounded);
* :mod:`repro.static.lockset` — must-held lockset analysis over the
  ISA's cmpxchg lock idioms;
* :mod:`repro.static.predict` — whole-program sharing prediction:
  footprints projected onto 64-byte cache lines, classified TS/FS, in
  the same report shape the dynamic detector emits;
* :mod:`repro.static.verify` — the TSO/SSB rewrite verifier gating
  LASERREPAIR's instrumented code (see ``core/repair/manager.py``).

``python -m repro.static <workload>`` prints the prediction for a
bundled workload.
"""

from repro.static.absint import (
    Footprint,
    ThreadValueAnalysis,
    analyze_thread_values,
    thread_entry_registers,
)
from repro.static.interval import StrideInterval
from repro.static.lockset import (
    ThreadLocksets,
    analyze_locksets,
    collect_lock_addresses,
)
from repro.static.predict import (
    LinePrediction,
    StaticAccess,
    StaticLineReport,
    StaticSharingReport,
    predict_program,
)
from repro.static.verify import (
    VerificationResult,
    Violation,
    verify_rewrite,
)

__all__ = [
    "StrideInterval",
    "Footprint",
    "ThreadValueAnalysis",
    "analyze_thread_values",
    "thread_entry_registers",
    "ThreadLocksets",
    "analyze_locksets",
    "collect_lock_addresses",
    "StaticAccess",
    "LinePrediction",
    "StaticLineReport",
    "StaticSharingReport",
    "predict_program",
    "Violation",
    "VerificationResult",
    "verify_rewrite",
]
