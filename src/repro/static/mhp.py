"""May-happen-in-parallel analysis over mini-ISA programs.

The machine starts every program thread at cycle 0 (there is no dynamic
spawn), so the *baseline* is "all cross-thread instruction pairs may
overlap" and the analysis works by carving out pairs that provably
cannot: a happens-before relation derived from the ISA's two release/
acquire idioms, evaluated on top of the abstract interpreter's constant
addresses (``absint.py``).

Recognized synchronization
--------------------------

* **Flag handoff** (release store / acquire spin): thread A stores to a
  constant word ``F`` and thread B spins in a loop re-loading ``F``
  until its value satisfies an exit test that *excludes the initial
  value 0* (``bge r, c`` with ``c >= 1``, ``bne r, 0``, ``beq r, c``
  with ``c != 0``).  Under TSO a plain store has release semantics and
  the dependent load has acquire semantics, so when B leaves the wait,
  everything A executed before *every* one of its ``F``-stores has
  happened.  The rule requires A to be the only thread that may write
  ``F`` (otherwise another thread could satisfy the wait first) and
  ``F`` to not be seeded by the workload's initial memory image (the
  wait could then pass without any store at all).

* **Counting barrier** (``sim/locks.emit_barrier_wait``): every
  participant ``xadd``-increments a constant word once (the site sits
  in no loop) and spins until the word reaches ``N``.  When ``N``
  equals the total number of increment sites, leaving the spin proves
  every participant's pre-barrier code has executed.

Both rules order *instruction regions* via dominance: the "pre" side of
an edge is every instruction that dominates all of the releasing
sites (it must have executed before the flag could be set), and the
"post" side is every instruction dominated by the spin's exit block
(it can only execute after the wait observed the flag).  Edges are
direct — the analysis does not chain happens-before transitively
across threads — which loses precision but only in the safe direction
(unordered pairs stay "may happen in parallel").

Mutual exclusion (the cmpxchg lock idiom) is *not* happens-before; it
is composed separately by the race certifier through the must-held
locksets of ``lockset.py``.
"""

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.isa.cfg import ControlFlowGraph
from repro.isa.instructions import COND_BRANCH_OPS, Opcode
from repro.isa.program import Program
from repro.static.absint import (
    ThreadValueAnalysis,
    _eval,
    analyze_thread_values,
    thread_entry_registers,
)
from repro.static.interval import StrideInterval

__all__ = ["FlagWait", "HbEdge", "MhpAnalysis", "analyze_mhp"]


class FlagWait:
    """One recognized acquire spin: re-load a word until it leaves 0."""

    __slots__ = ("thread", "load_index", "branch_index", "addr", "size",
                 "exit_block", "bound")

    def __init__(self, thread: int, load_index: int, branch_index: int,
                 addr: int, size: int, exit_block: int,
                 bound: Optional[int]):
        self.thread = thread
        self.load_index = load_index
        self.branch_index = branch_index
        self.addr = addr
        self.size = size
        #: CFG block entered only when the wait condition held.
        self.exit_block = exit_block
        #: The comparison constant of a ``bge`` exit (barrier count),
        #: ``None`` for equality-shaped exits.
        self.bound = bound


class HbEdge:
    """One derived happens-before edge between two threads."""

    __slots__ = ("kind", "addr", "src_thread", "dst_thread", "pre", "post")

    def __init__(self, kind: str, addr: int, src_thread: int,
                 dst_thread: int, pre: FrozenSet[int],
                 post: FrozenSet[int]):
        #: "handoff" or "barrier".
        self.kind = kind
        #: The synchronization word the edge was derived from.
        self.addr = addr
        self.src_thread = src_thread
        self.dst_thread = dst_thread
        #: Instruction indices in ``src_thread`` ordered before...
        self.pre = pre
        #: ...every instruction index in ``dst_thread`` listed here.
        self.post = post

    def __repr__(self) -> str:
        return "<HbEdge %s @0x%x t%d(%d insts) -> t%d(%d insts)>" % (
            self.kind, self.addr, self.src_thread, len(self.pre),
            self.dst_thread, len(self.post))


class MhpAnalysis:
    """Queryable result: which cross-thread pairs are provably ordered."""

    def __init__(self, num_threads: int, edges: List[HbEdge],
                 sync_addresses: FrozenSet[Tuple[int, int]],
                 waits: List[FlagWait]):
        self.num_threads = num_threads
        self.edges = edges
        #: ``(addr, size)`` words used as flags or barriers; accesses to
        #: them are synchronization traffic, not application sharing.
        self.sync_addresses = sync_addresses
        #: Every recognized wait (including those that produced no edge).
        self.waits = waits
        self._by_pair: Dict[Tuple[int, int], List[HbEdge]] = {}
        for edge in edges:
            key = (edge.src_thread, edge.dst_thread)
            self._by_pair.setdefault(key, []).append(edge)

    def ordered(self, thread_a: int, index_a: int,
                thread_b: int, index_b: int) -> bool:
        """True if the pair is provably ordered (either direction)."""
        if thread_a == thread_b:
            return True  # program order; same-thread pairs cannot race
        for edge in self._by_pair.get((thread_a, thread_b), ()):
            if index_a in edge.pre and index_b in edge.post:
                return True
        for edge in self._by_pair.get((thread_b, thread_a), ()):
            if index_b in edge.pre and index_a in edge.post:
                return True
        return False

    def may_happen_in_parallel(self, thread_a: int, index_a: int,
                               thread_b: int, index_b: int) -> bool:
        return not self.ordered(thread_a, index_a, thread_b, index_b)


# ----------------------------------------------------------------------
# CFG helpers
# ----------------------------------------------------------------------

def _natural_loop_bodies(cfg: ControlFlowGraph) -> List[Set[int]]:
    """Bodies of all natural loops (header included), one per header."""
    bodies: Dict[int, Set[int]] = {}
    for block in cfg.blocks:
        for succ in block.successors:
            if succ not in cfg.dominators(block.index):
                continue
            body = bodies.setdefault(succ, {succ})
            work = [block.index]
            while work:
                node = work.pop()
                if node in body:
                    continue
                body.add(node)
                work.extend(cfg.blocks[node].predecessors)
    return list(bodies.values())


def _instructions_dominating(cfg: ControlFlowGraph, site: int) -> Set[int]:
    """Instruction indices that execute before ``site`` on every path."""
    site_block = cfg.block_of_instruction(site)
    out: Set[int] = set()
    for dom in cfg.dominators(site_block.index):
        if dom == site_block.index:
            out.update(range(site_block.start, site))
        else:
            out.update(cfg.blocks[dom].instruction_indices())
    return out


def _instructions_dominated_by(cfg: ControlFlowGraph,
                               block_index: int) -> Set[int]:
    """Instruction indices that can only run after ``block_index`` ran."""
    out: Set[int] = set()
    for block in cfg.blocks:
        if block_index in cfg.dominators(block.index):
            out.update(block.instruction_indices())
    return out


def _pre_region(cfg: ControlFlowGraph, sites: Iterable[int]) -> FrozenSet[int]:
    """Instructions dominating *every* site (empty if no sites)."""
    result: Optional[Set[int]] = None
    for site in sites:
        doms = _instructions_dominating(cfg, site)
        result = doms if result is None else (result & doms)
    return frozenset(result or ())


# ----------------------------------------------------------------------
# Wait recognition
# ----------------------------------------------------------------------

def _exit_excludes_zero(op: Opcode, c: int, exit_on_taken: bool) -> bool:
    """Does the exit edge of the wait branch rule out the value 0?"""
    if op is Opcode.BEQ:
        return c != 0 if exit_on_taken else c == 0
    if op is Opcode.BNE:
        return c == 0 if exit_on_taken else c != 0
    if op is Opcode.BGE:
        return c >= 1 if exit_on_taken else False
    if op is Opcode.BLT:
        return False if exit_on_taken else c >= 1
    return False


def _find_waits(thread: int, values: ThreadValueAnalysis) -> List[FlagWait]:
    """Recognize acquire spins: load a constant word, test, loop."""
    cfg = values.cfg
    instructions = cfg.code.instructions
    loops = _natural_loop_bodies(cfg)
    waits: List[FlagWait] = []
    for block in cfg.blocks:
        if block.end - block.start < 2:
            continue
        branch_index = block.end - 1
        branch = instructions[branch_index]
        if branch.op not in COND_BRANCH_OPS:
            continue
        if branch.a is None or not branch.a.is_reg:
            continue
        watched = branch.a.value
        # The watched register must be freshly loaded from a constant
        # address inside the same block, with no intervening write.
        load_index = None
        for i in range(branch_index - 1, block.start - 1, -1):
            inst = instructions[i]
            if inst.op is Opcode.LOAD and inst.rd == watched:
                load_index = i
                break
            if inst.rd == watched:
                break
        if load_index is None:
            continue
        state = values.states_before.get(load_index)
        branch_state = values.states_before.get(branch_index)
        if state is None or branch_state is None:
            continue
        load = instructions[load_index]
        addr = _eval(load.a, state).add(StrideInterval.const(load.offset))
        if not addr.is_const:
            continue
        bound_val = _eval(branch.b, branch_state)
        if not bound_val.is_const:
            continue
        # The branch must be a loop exit whose other edge stays in a
        # loop that re-runs the load (the spin).
        spin_loops = [
            body for body in loops
            if block.index in body
        ]
        exit_block = None
        for succ in block.successors:
            in_all = all(succ in body for body in spin_loops)
            if spin_loops and not in_all:
                exit_block = succ if exit_block is None else exit_block
        if exit_block is None:
            continue
        # Entering the exit block must *prove* the wait passed: the
        # spin branch must be its only way in.
        if cfg.blocks[exit_block].predecessors != [block.index]:
            continue
        exit_on_taken = branch.target == cfg.blocks[exit_block].start
        c = bound_val.lo
        if not _exit_excludes_zero(branch.op, c, exit_on_taken):
            continue
        is_bge_shape = (
            (branch.op is Opcode.BGE and exit_on_taken)
            or (branch.op is Opcode.BLT and not exit_on_taken)
        )
        waits.append(FlagWait(
            thread, load_index, branch_index, addr.lo + 0, load.size,
            exit_block, c if is_bge_shape else None))
    return waits


def _overlapping_store_sites(values: ThreadValueAnalysis, addr: int,
                             size: int) -> List[int]:
    """Indices of stores that may write any byte of ``[addr, addr+size)``."""
    word = StrideInterval.const(addr)
    return [
        fp.index for fp in values.footprints
        if fp.is_store and fp.addr.may_overlap(fp.size, word, size)
    ]


def _exact_const_address(values: ThreadValueAnalysis,
                         index: int) -> Optional[int]:
    fp = values.footprint_for(index)
    if fp is None or not fp.addr.is_const:
        return None
    return fp.addr.lo


# ----------------------------------------------------------------------
# The analysis
# ----------------------------------------------------------------------

def analyze_mhp(
    program: Program,
    analyses: Optional[Sequence[ThreadValueAnalysis]] = None,
    init_addrs: Iterable[int] = (),
) -> MhpAnalysis:
    """Derive the happens-before edges of ``program``.

    ``init_addrs`` are addresses seeded by the workload's initial
    memory image (``BuiltWorkload.init_writes``): a word that may start
    nonzero cannot anchor a flag rule, because the wait could pass
    without any store having happened.
    """
    if analyses is None:
        analyses = [
            analyze_thread_values(
                code, entry_registers=thread_entry_registers(tid))
            for tid, code in enumerate(program.threads)
        ]
    analyses = list(analyses)
    seeded = set(init_addrs)

    waits: List[FlagWait] = []
    for tid, values in enumerate(analyses):
        waits.extend(_find_waits(tid, values))

    sync_addresses: Set[Tuple[int, int]] = {
        (wait.addr, wait.size) for wait in waits
    }

    edges: List[HbEdge] = []
    for wait in waits:
        word_seeded = any(
            wait.addr <= a < wait.addr + wait.size for a in seeded
        )
        if word_seeded:
            continue
        writer_sites: Dict[int, List[int]] = {}
        for tid, values in enumerate(analyses):
            sites = _overlapping_store_sites(values, wait.addr, wait.size)
            if sites:
                writer_sites[tid] = sites
        if wait.thread in writer_sites:
            # A thread that writes its own flag could satisfy the wait
            # itself: check the barrier shape, where that is the point.
            edges.extend(_barrier_edges(wait, analyses, writer_sites))
            continue
        if len(writer_sites) == 1:
            (writer,), (sites,) = writer_sites.keys(), writer_sites.values()
            pre = _pre_region(analyses[writer].cfg, sites)
            post = frozenset(_instructions_dominated_by(
                analyses[wait.thread].cfg, wait.exit_block))
            if pre and post:
                edges.append(HbEdge("handoff", wait.addr, writer,
                                    wait.thread, pre, post))
        else:
            edges.extend(_barrier_edges(wait, analyses, writer_sites))

    return MhpAnalysis(
        program.num_threads, edges, frozenset(sync_addresses), waits)


def _barrier_edges(
    wait: FlagWait,
    analyses: Sequence[ThreadValueAnalysis],
    writer_sites: Dict[int, List[int]],
) -> List[HbEdge]:
    """Edges for the counting-barrier shape, or none if it is not one.

    Soundness conditions: every write to the word is a single-use
    ``xadd`` of exactly 1 at an exact constant address (so the word
    counts arrivals), and the wait's exit bound equals the total number
    of increment sites (so leaving the spin proves every site ran).
    """
    if wait.bound is None:
        return []
    total_sites = 0
    for tid, sites in writer_sites.items():
        values = analyses[tid]
        loops = _natural_loop_bodies(values.cfg)
        for site in sites:
            inst = values.cfg.code.instructions[site]
            if inst.op is not Opcode.XADD:
                return []
            if inst.b is None or inst.b.is_reg or inst.b.value != 1:
                return []
            if _exact_const_address(values, site) != wait.addr:
                return []
            site_block = values.cfg.block_of_instruction(site).index
            if any(site_block in body for body in loops):
                return []  # re-armed barrier: counting argument breaks
            total_sites += 1
    if total_sites != wait.bound:
        return []
    post = frozenset(_instructions_dominated_by(
        analyses[wait.thread].cfg, wait.exit_block))
    if not post:
        return []
    edges = []
    for tid, sites in writer_sites.items():
        if tid == wait.thread:
            continue
        pre = _pre_region(analyses[tid].cfg, sites)
        if pre:
            edges.append(HbEdge("barrier", wait.addr, tid,
                                wait.thread, pre, post))
    return edges
