"""Must-held lockset analysis over the mini-ISA's lock idioms.

The ISA has no lock instruction; workloads build spin locks out of
``CMPXCHG`` (``sim/locks.py``).  The analysis recognizes the acquire
idiom structurally:

* an acquire candidate is ``CMPXCHG rd, [A], expected=0, desired!=0``
  whose address resolves to a constant ``A`` under the value analysis;
* the acquisition *succeeds* only on the taken edge of a following
  ``BEQ rd, 0`` in the same block (the spin-loop success test), with no
  intervening write to ``rd``;
* a release is any store that may write the lock word (``sim/locks.py``
  releases with a plain store of 0, and any unrecognized write to the
  word conservatively kills the held state).

Lock state flows forward along CFG edges; the meet at a join is set
*intersection* (a lock is held only if held on every incoming path),
which makes this a must-analysis: reporting a lock held when it is not
would wrongly suppress a sharing prediction, while the converse merely
loses precision.  Unreachable blocks start at the full universe so
they never erode the meet.
"""

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.isa.instructions import Instruction, Opcode
from repro.static.absint import ThreadValueAnalysis, _eval
from repro.static.interval import StrideInterval

__all__ = ["ThreadLocksets", "collect_lock_addresses", "analyze_locksets"]

LockSet = FrozenSet[int]


def _const_address(inst: Instruction, state) -> Optional[int]:
    """The exact address of a memory op, when the value analysis has it."""
    addr = _eval(inst.a, state)
    if not addr.is_const:
        return None
    return addr.lo + inst.offset


def collect_lock_addresses(values: ThreadValueAnalysis) -> Set[int]:
    """Constant addresses this thread uses in the cmpxchg-acquire idiom."""
    locks: Set[int] = set()
    instructions = values.cfg.code.instructions
    for i, state in values.states_before.items():
        inst = instructions[i]
        if inst.op is not Opcode.CMPXCHG:
            continue
        expected = _eval(inst.b, state)
        desired = _eval(inst.c, state)
        if not (expected.is_const and expected.lo == 0):
            continue
        if desired.is_const and desired.lo == 0:
            continue
        address = _const_address(inst, state)
        if address is not None:
            locks.add(address)
    return locks


class ThreadLocksets:
    """Per-instruction must-held locksets for one thread."""

    def __init__(self, before: Dict[int, LockSet], universe: FrozenSet[int]):
        #: Lockset guaranteed held immediately before each instruction.
        self.before = before
        self.universe = universe

    def held_at(self, index: int) -> LockSet:
        return self.before.get(index, frozenset())


def analyze_locksets(values: ThreadValueAnalysis,
                     universe: FrozenSet[int]) -> ThreadLocksets:
    """Forward must-dataflow of held locks over one thread."""
    cfg = values.cfg
    instructions = cfg.code.instructions

    #: None = not yet visited (top: the full universe, identity of meet).
    block_in: List[Optional[FrozenSet[int]]] = [None] * len(cfg.blocks)

    def run_block(block_index: int, held_in: FrozenSet[int]):
        """Returns (per-edge locksets, per-instruction locksets)."""
        block = cfg.blocks[block_index]
        held = set(held_in)
        before: Dict[int, FrozenSet[int]] = {}
        #: Pending acquire: (result register, lock address).
        pending: Optional[Tuple[int, int]] = None
        for i in block.instruction_indices():
            state = values.states_before.get(i)
            if state is None:
                break
            before[i] = frozenset(held)
            inst = instructions[i]
            if inst.op is Opcode.CMPXCHG:
                address = _const_address(inst, state)
                expected = _eval(inst.b, state)
                desired = _eval(inst.c, state)
                if (address in universe
                        and expected.is_const and expected.lo == 0
                        and not (desired.is_const and desired.lo == 0)):
                    pending = (inst.rd, address)
                else:
                    pending = None
            elif inst.rd is not None and pending is not None \
                    and inst.rd == pending[0]:
                pending = None
            if inst.is_store and held:
                # Any write that may touch a held lock word releases it
                # (sim/locks.py releases with a plain store of 0).
                addr = _eval(inst.a, state).add(
                    StrideInterval.const(inst.offset))
                for lock in list(held):
                    if addr.may_overlap(inst.size,
                                        StrideInterval.const(lock), 8):
                        held.discard(lock)
        base = frozenset(held)
        edges: Dict[int, FrozenSet[int]] = {}
        last = instructions[block.end - 1]
        for succ in block.successors:
            out = base
            if (pending is not None and last.op is Opcode.BEQ
                    and last.a is not None and last.a.is_reg
                    and last.a.value == pending[0]
                    and last.b is not None and not last.b.is_reg
                    and last.b.value == 0
                    and last.target == cfg.blocks[succ].start):
                out = base | {pending[1]}
            edges[succ] = out
        return edges, before

    before_all: Dict[int, LockSet] = {}
    work = [0]
    block_in[0] = frozenset()
    while work:
        block_index = work.pop()
        held_in = block_in[block_index]
        if held_in is None:
            continue
        edges, before = run_block(block_index, held_in)
        before_all.update(before)
        for succ, out in edges.items():
            current = block_in[succ]
            new = out if current is None else (current & out)
            if current is None or new != current:
                block_in[succ] = new
                work.append(succ)

    return ThreadLocksets(before_all, universe)
